#include "climate/model.hpp"

#include <cmath>

#include "common/bytebuf.hpp"

namespace esg::climate {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Deterministic unit-normal-ish noise from a hash of the coordinates, so a
/// month's field is identical no matter where or in what order it is
/// generated (replicas must agree byte-for-byte).
double hash_noise(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  std::uint64_t s = seed ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xC2B2AE3D27D4EB4FULL) ^ (c * 0x165667B19E3779F9ULL);
  const std::uint64_t r1 = common::splitmix64(s);
  const std::uint64_t r2 = common::splitmix64(s);
  // Sum of two uniforms, centered: triangular ~ normal enough here.
  const double u1 = static_cast<double>(r1 >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(r2 >> 11) * 0x1.0p-53;
  return (u1 + u2 - 1.0) * 1.732;  // unit variance-ish
}

}  // namespace

ClimateModel::ClimateModel(ModelConfig config) : config_(config) {
  // Fixed terrain: a handful of seeded Gaussian hills.
  const auto& g = config_.grid;
  terrain_.assign(g.cells(), 0.0);
  common::Rng rng(config_.seed);
  const int hills = 8;
  for (int h = 0; h < hills; ++h) {
    const double ci = rng.uniform(0.0, g.nlat);
    const double cj = rng.uniform(0.0, g.nlon);
    const double amp = rng.uniform(0.5, 2.0);
    const double width = rng.uniform(2.0, 6.0);
    for (int i = 0; i < g.nlat; ++i) {
      for (int j = 0; j < g.nlon; ++j) {
        // Wrap longitude distance.
        double dj = std::abs(j - cj);
        dj = std::min(dj, g.nlon - dj);
        const double di = i - ci;
        const double d2 = (di * di + dj * dj) / (width * width);
        terrain_[static_cast<std::size_t>(i) * g.nlon + j] +=
            amp * std::exp(-d2);
      }
    }
  }
}

double ClimateModel::terrain(int i, int j) const {
  return terrain_[static_cast<std::size_t>(i) * config_.grid.nlon + j];
}

double ClimateModel::cell_value(const std::string& variable, int month, int i,
                                int j, double noise) const {
  const auto& g = config_.grid;
  const double lat = g.lat(i);
  const double phase = 2.0 * kPi * (month % 12) / 12.0;
  // Seasonal forcing flips sign across the equator.
  const double season = std::cos(phase) * (lat >= 0 ? 1.0 : -1.0);
  // Slow ENSO-like mode, ~4-year period, strongest in the tropics.
  const double enso = std::sin(2.0 * kPi * month / 50.0) *
                      std::exp(-(lat * lat) / (30.0 * 30.0));

  if (variable == "temperature") {
    const double base = 28.0 - 55.0 * std::pow(std::sin(lat * kPi / 180.0), 2);
    return base - 8.0 * season - 4.0 * terrain(i, j) + 1.5 * enso +
           1.2 * noise;
  }
  if (variable == "precipitation") {
    // mm/day: ITCZ band + storm tracks, scaled positive.
    const double itcz = 8.0 * std::exp(-(lat * lat) / (12.0 * 12.0));
    const double storm =
        3.0 * std::exp(-std::pow((std::abs(lat) - 45.0) / 12.0, 2));
    const double value =
        itcz + storm + 1.0 * terrain(i, j) + 1.5 * enso + 1.0 * noise;
    return value < 0.0 ? 0.0 : value;
  }
  // cloud_fraction in [0, 1].
  const double base = 0.45 + 0.25 * std::exp(-(lat * lat) / (15.0 * 15.0)) +
                      0.1 * season * 0.3 + 0.08 * terrain(i, j) +
                      0.07 * noise;
  return base < 0.0 ? 0.0 : (base > 1.0 ? 1.0 : base);
}

Field ClimateModel::generate(const std::string& variable, int month0,
                             int count) const {
  const auto& g = config_.grid;
  Field field(g, count, variable, units_of(variable));
  const std::uint64_t vseed = config_.seed ^ common::fnv1a64(variable);
  for (int t = 0; t < count; ++t) {
    const int month = month0 + t;
    for (int i = 0; i < g.nlat; ++i) {
      for (int j = 0; j < g.nlon; ++j) {
        const auto ui = static_cast<std::uint64_t>(i);
        const auto uj = static_cast<std::uint64_t>(j);
        // Truncated AR(1): weather noise with month-to-month memory, yet
        // stateless per (variable, month, cell).
        const double e0 = hash_noise(vseed, static_cast<std::uint64_t>(month),
                                     ui, uj);
        const double e1 = hash_noise(
            vseed, static_cast<std::uint64_t>(month - 1), ui, uj);
        const double e2 = hash_noise(
            vseed, static_cast<std::uint64_t>(month - 2), ui, uj);
        const double noise = (e0 + 0.6 * e1 + 0.36 * e2) / 1.22;
        field.at(t, i, j) = cell_value(variable, month, i, j, noise);
      }
    }
  }
  return field;
}

const std::vector<std::string>& ClimateModel::variables() {
  static const std::vector<std::string> kVars = {"temperature",
                                                 "precipitation",
                                                 "cloud_fraction"};
  return kVars;
}

std::string ClimateModel::units_of(const std::string& variable) {
  if (variable == "temperature") return "degC";
  if (variable == "precipitation") return "mm/day";
  if (variable == "cloud_fraction") return "1";
  return "";
}

std::shared_ptr<const std::vector<std::uint8_t>> ClimateModel::write_chunk(
    int month0, int count) const {
  const auto& g = config_.grid;
  ncformat::NcxWriter w;
  w.add_dimension("time", static_cast<std::uint32_t>(count));
  w.add_dimension("lat", static_cast<std::uint32_t>(g.nlat));
  w.add_dimension("lon", static_cast<std::uint32_t>(g.nlon));
  w.add_global_attr("source", "esg synthetic climate model");
  w.add_global_attr("base_year", std::to_string(config_.base_year));
  w.add_global_attr("month0", std::to_string(month0));

  // Coordinate variables.
  std::vector<double> lat(g.nlat), lon(g.nlon), time(count);
  for (int i = 0; i < g.nlat; ++i) lat[i] = g.lat(i);
  for (int j = 0; j < g.nlon; ++j) lon[j] = g.lon(j);
  for (int t = 0; t < count; ++t) time[t] = month0 + t;
  (void)w.add_variable("lat", ncformat::DataType::f64, {"lat"}, lat,
                       {{"units", "degrees_north"}});
  (void)w.add_variable("lon", ncformat::DataType::f64, {"lon"}, lon,
                       {{"units", "degrees_east"}});
  (void)w.add_variable("time", ncformat::DataType::f64, {"time"}, time,
                       {{"units", "months since base_year"}});

  for (const auto& var : variables()) {
    const Field f = generate(var, month0, count);
    (void)w.add_variable(var, ncformat::DataType::f32, {"time", "lat", "lon"},
                         f.data(), {{"units", units_of(var)}});
  }
  return w.finish();
}

}  // namespace esg::climate
