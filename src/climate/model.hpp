// Synthetic climate-model output generator.
//
// Stands in for the PCMDI model runs the paper visualizes (temperature,
// precipitation, cloud cover — Fig 3).  Fields are physically plausible
// rather than physically accurate: a latitudinal climatology, a seasonal
// cycle whose phase flips hemisphere, fixed "terrain" structure from seeded
// Gaussian hills, a slow ENSO-like oscillation, and AR(1) weather noise.
// Everything derives deterministically from the seed, so replicated files
// generated at different sites are bit-identical.
#pragma once

#include <string>
#include <vector>

#include "climate/field.hpp"
#include "common/rng.hpp"
#include "ncformat/ncx.hpp"

namespace esg::climate {

struct ModelConfig {
  GridSpec grid;
  std::uint64_t seed = 2001;
  int base_year = 1995;  // month index 0 = January of this year
};

class ClimateModel {
 public:
  explicit ClimateModel(ModelConfig config);

  /// Generate `count` consecutive months of a variable starting at absolute
  /// month index `month0` (0 = Jan of base_year).
  Field generate(const std::string& variable, int month0, int count) const;

  /// Variables this model produces.
  static const std::vector<std::string>& variables();
  static std::string units_of(const std::string& variable);

  /// Encode months [month0, month0+count) of every variable into one ncx
  /// file — the shape of a CDMS dataset time-chunk file.
  std::shared_ptr<const std::vector<std::uint8_t>> write_chunk(
      int month0, int count) const;

  const ModelConfig& config() const { return config_; }

 private:
  double terrain(int i, int j) const;
  double cell_value(const std::string& variable, int month, int i, int j,
                    double noise) const;

  ModelConfig config_;
  std::vector<double> terrain_;  // seeded Gaussian hills, fixed per model
};

}  // namespace esg::climate
