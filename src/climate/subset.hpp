// Server-side subsetting — the first ESG-II feature (paper §9):
//
// "We are now starting work ... on ESG-II, a next-generation system that
// supports (1) distribution of data analysis and visualization pipelines,
// so that some data analysis operations (at least extraction and
// subsetting, similar to those available with DODS) can be performed local
// to the data before it is transferred over the network."
//
// This module implements that operation as a GridFTP ERET server-side
// processing plugin: given an ncx chunk file, it extracts one variable
// and/or clips the time range and lat/lon box, producing a smaller ncx
// file that is what actually crosses the wire.
//
// Parameter string grammar (';'-separated, each clause optional):
//   var=<name>                keep one data variable (plus coordinates)
//   months=<lo>:<hi>          absolute month range, hi exclusive, clipped
//                             against the file's coverage
//   lat=<lo>:<hi>             latitude box in degrees
//   lon=<lo>:<hi>             longitude box in degrees (no wrap-around)
// e.g. "var=temperature;months=36:42;lat=-30:30"
#pragma once

#include <optional>
#include <string>

#include "common/result.hpp"
#include "storage/storage.hpp"

namespace esg::climate {

/// ERET module name under which the testbed registers the subsetter.
inline constexpr const char* kNcxSubsetModule = "ncx.subset";

struct SubsetSpec {
  std::optional<std::string> variable;
  std::optional<std::pair<int, int>> months;       // [lo, hi)
  std::optional<std::pair<double, double>> lat;    // [lo, hi]
  std::optional<std::pair<double, double>> lon;    // [lo, hi]

  std::string to_params() const;
};

common::Result<SubsetSpec> parse_subset_params(const std::string& params);

/// Apply a subset to an ncx file object.  The input must carry real
/// content; the result is a fresh ncx file with clipped dimensions, the
/// adjusted `month0` global attribute, and coordinate variables preserved.
common::Result<storage::FileObject> ncx_subset(
    const storage::FileObject& file, const SubsetSpec& spec);

/// The ERET-module-shaped entry point (string params).
common::Result<storage::FileObject> ncx_subset_module(
    const storage::FileObject& file, const std::string& params);

}  // namespace esg::climate
