// CDAT-style analysis operations (paper §3: "The CDAT data analysis package
// ... provides a flexible system for analysis of climate model data.
// Analysis then proceeds in the client, as usual.").
#pragma once

#include "climate/field.hpp"
#include "common/result.hpp"

namespace esg::climate {

/// Mean over the time axis; result has ntime == 1.
Field time_mean(const Field& field);

/// Deviation of every time step from the time mean.
Field anomaly(const Field& field);

/// Mean over longitudes: per (time, lat) values, returned as a field with
/// nlon == 1.
Field zonal_mean(const Field& field);

/// Area-weighted (cos latitude) global mean per time step.
std::vector<double> global_mean_series(const Field& field);

/// Bilinear regrid of every time step onto a new grid.
Field regrid(const Field& field, const GridSpec& target);

/// Pointwise difference a - b (grids and ntime must match).
common::Result<Field> difference(const Field& a, const Field& b);

/// Monthly climatology: mean per calendar month (ntime == 12).
/// `first_month_of_year` says which calendar month (0 = Jan) time step 0
/// is; the input should span whole years for an unbiased climatology.
Field seasonal_climatology(const Field& field, int first_month_of_year = 0);

/// Least-squares linear trend per cell, in units per time step
/// (ntime == 1).  Needs at least 2 time steps.
Field linear_trend(const Field& field);

/// Pearson correlation of two fields' time series per cell (ntime == 1,
/// values in [-1, 1]; 0 where either series is constant).
common::Result<Field> correlation(const Field& a, const Field& b);

struct FieldStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

FieldStats field_stats(const Field& field);

}  // namespace esg::climate
