#include "climate/subset.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strings.hpp"
#include "ncformat/ncx.hpp"

namespace esg::climate {

using common::Errc;
using common::Error;
using common::Result;

std::string SubsetSpec::to_params() const {
  std::string out;
  auto append = [&out](const std::string& clause) {
    if (!out.empty()) out += ';';
    out += clause;
  };
  if (variable) append("var=" + *variable);
  if (months) {
    append("months=" + std::to_string(months->first) + ":" +
           std::to_string(months->second));
  }
  if (lat) {
    append("lat=" + std::to_string(lat->first) + ":" +
           std::to_string(lat->second));
  }
  if (lon) {
    append("lon=" + std::to_string(lon->first) + ":" +
           std::to_string(lon->second));
  }
  return out;
}

namespace {

Result<std::pair<double, double>> parse_range(const std::string& text,
                                              const std::string& clause) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) {
    return Error{Errc::invalid_argument, "bad range in " + clause};
  }
  char* end1 = nullptr;
  char* end2 = nullptr;
  const double lo = std::strtod(text.c_str(), &end1);
  const double hi = std::strtod(text.c_str() + colon + 1, &end2);
  if (end1 != text.c_str() + colon || (end2 && *end2 != '\0')) {
    return Error{Errc::invalid_argument, "bad range in " + clause};
  }
  if (lo > hi) {
    return Error{Errc::invalid_argument, "inverted range in " + clause};
  }
  return std::make_pair(lo, hi);
}

}  // namespace

Result<SubsetSpec> parse_subset_params(const std::string& params) {
  SubsetSpec spec;
  for (const auto& clause : common::split_trimmed(params, ';')) {
    const auto eq = clause.find('=');
    if (eq == std::string::npos) {
      return Error{Errc::invalid_argument, "bad subset clause: " + clause};
    }
    const std::string key = common::to_lower(clause.substr(0, eq));
    const std::string value = clause.substr(eq + 1);
    if (key == "var") {
      spec.variable = value;
    } else if (key == "months") {
      auto range = parse_range(value, clause);
      if (!range) return range.error();
      spec.months = std::make_pair(static_cast<int>(range->first),
                                   static_cast<int>(range->second));
    } else if (key == "lat") {
      auto range = parse_range(value, clause);
      if (!range) return range.error();
      spec.lat = *range;
    } else if (key == "lon") {
      auto range = parse_range(value, clause);
      if (!range) return range.error();
      spec.lon = *range;
    } else {
      return Error{Errc::invalid_argument, "unknown subset key: " + key};
    }
  }
  return spec;
}

Result<storage::FileObject> ncx_subset(const storage::FileObject& file,
                                       const SubsetSpec& spec) {
  if (!file.content) {
    return Error{Errc::invalid_argument,
                 "subsetting needs file content: " + file.name};
  }
  auto reader = ncformat::NcxReader::open(file.content);
  if (!reader) return reader.error();

  auto ntime = reader->dimension_size("time");
  auto nlat = reader->dimension_size("lat");
  auto nlon = reader->dimension_size("lon");
  if (!ntime || !nlat || !nlon) {
    return Error{Errc::invalid_argument, "not a climate chunk: " + file.name};
  }
  auto lat_coord = reader->read("lat");
  auto lon_coord = reader->read("lon");
  auto time_coord = reader->read("time");
  if (!lat_coord || !lon_coord || !time_coord) {
    return Error{Errc::invalid_argument, "chunk missing coordinates"};
  }
  const auto& gattrs = reader->global_attrs();
  const int month0 =
      gattrs.count("month0") ? std::atoi(gattrs.at("month0").c_str()) : 0;

  // Resolve index windows.
  std::uint32_t t0 = 0, tc = *ntime;
  if (spec.months) {
    const int lo = std::max(spec.months->first, month0);
    const int hi = std::min(spec.months->second,
                            month0 + static_cast<int>(*ntime));
    if (lo >= hi) {
      return Error{Errc::invalid_argument,
                   "month range misses file coverage"};
    }
    t0 = static_cast<std::uint32_t>(lo - month0);
    tc = static_cast<std::uint32_t>(hi - lo);
  }
  auto window = [](const std::vector<double>& coords, double lo, double hi)
      -> std::pair<std::uint32_t, std::uint32_t> {
    std::uint32_t first = 0;
    while (first < coords.size() && coords[first] < lo) ++first;
    std::uint32_t last = first;
    while (last < coords.size() && coords[last] <= hi) ++last;
    return {first, last - first};
  };
  std::uint32_t i0 = 0, ic = *nlat;
  if (spec.lat) {
    std::tie(i0, ic) = window(*lat_coord, spec.lat->first, spec.lat->second);
    if (ic == 0) {
      return Error{Errc::invalid_argument, "latitude box selects no rows"};
    }
  }
  std::uint32_t j0 = 0, jc = *nlon;
  if (spec.lon) {
    std::tie(j0, jc) = window(*lon_coord, spec.lon->first, spec.lon->second);
    if (jc == 0) {
      return Error{Errc::invalid_argument, "longitude box selects no columns"};
    }
  }

  // Pick the data variables to keep.
  std::vector<std::string> kept;
  for (const auto& name : reader->variable_names()) {
    if (name == "lat" || name == "lon" || name == "time") continue;
    if (!spec.variable || name == *spec.variable) kept.push_back(name);
  }
  if (kept.empty()) {
    return Error{Errc::not_found,
                 "no such variable: " + spec.variable.value_or("?")};
  }

  // Build the subset file.
  ncformat::NcxWriter w;
  w.add_dimension("time", tc);
  w.add_dimension("lat", ic);
  w.add_dimension("lon", jc);
  for (const auto& [k, v] : gattrs) {
    if (k == "month0") continue;
    w.add_global_attr(k, v);
  }
  w.add_global_attr("month0", std::to_string(month0 + static_cast<int>(t0)));
  w.add_global_attr("subset", "1");

  std::vector<double> sub_lat(lat_coord->begin() + i0,
                              lat_coord->begin() + i0 + ic);
  std::vector<double> sub_lon(lon_coord->begin() + j0,
                              lon_coord->begin() + j0 + jc);
  std::vector<double> sub_time(time_coord->begin() + t0,
                               time_coord->begin() + t0 + tc);
  (void)w.add_variable("lat", ncformat::DataType::f64, {"lat"}, sub_lat,
                       {{"units", "degrees_north"}});
  (void)w.add_variable("lon", ncformat::DataType::f64, {"lon"}, sub_lon,
                       {{"units", "degrees_east"}});
  (void)w.add_variable("time", ncformat::DataType::f64, {"time"}, sub_time,
                       {{"units", "months since base_year"}});
  for (const auto& name : kept) {
    auto info = reader->variable(name);
    if (!info) return info.error();
    auto slab = reader->read_slab(name, {t0, i0, j0}, {tc, ic, jc});
    if (!slab) return slab.error();
    (void)w.add_variable(name, info->type, {"time", "lat", "lon"}, *slab,
                         info->attrs);
  }

  storage::FileObject out;
  out.content = w.finish();
  out.size = static_cast<common::Bytes>(out.content->size());
  out.name = file.name + "#subset";
  return out;
}

Result<storage::FileObject> ncx_subset_module(const storage::FileObject& file,
                                              const std::string& params) {
  auto spec = parse_subset_params(params);
  if (!spec) return spec.error();
  return ncx_subset(file, *spec);
}

}  // namespace esg::climate
