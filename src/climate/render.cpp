#include "climate/render.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "climate/analysis.hpp"

namespace esg::climate {

std::string render_ascii(const Field& field, int t) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 9;
  const auto stats = field_stats(field);
  const double lo = stats.min;
  const double span = stats.max - stats.min;

  std::ostringstream os;
  os << field.variable() << " [" << field.units() << "]  min=" << stats.min
     << " max=" << stats.max << " mean=" << stats.mean << "\n";
  const auto& g = field.grid();
  // Render north at the top.
  for (int i = g.nlat - 1; i >= 0; --i) {
    for (int j = 0; j < g.nlon; ++j) {
      const double v = field.at(t, i, j);
      const int level =
          span > 0 ? std::clamp(static_cast<int>((v - lo) / span * kLevels),
                                0, kLevels)
                   : 0;
      os << kRamp[level];
    }
    os << "\n";
  }
  return os.str();
}

namespace {

void diverging_color(double x, std::uint8_t rgb[3]) {
  // x in [0,1]: blue (0) -> white (0.5) -> red (1).
  x = std::clamp(x, 0.0, 1.0);
  if (x < 0.5) {
    const double f = x * 2.0;
    rgb[0] = static_cast<std::uint8_t>(60 + 195 * f);
    rgb[1] = static_cast<std::uint8_t>(80 + 175 * f);
    rgb[2] = 255;
  } else {
    const double f = (x - 0.5) * 2.0;
    rgb[0] = 255;
    rgb[1] = static_cast<std::uint8_t>(255 - 175 * f);
    rgb[2] = static_cast<std::uint8_t>(255 - 195 * f);
  }
}

}  // namespace

std::vector<std::uint8_t> render_ppm(const Field& field, int t, int scale) {
  const auto& g = field.grid();
  const auto stats = field_stats(field);
  const double lo = stats.min;
  const double span = stats.max - stats.min;
  const int width = g.nlon * scale;
  const int height = g.nlat * scale;

  std::vector<std::uint8_t> out;
  char header[64];
  const int n = std::snprintf(header, sizeof header, "P6\n%d %d\n255\n",
                              width, height);
  out.insert(out.end(), header, header + n);
  out.reserve(out.size() + 3u * width * height);

  for (int y = 0; y < height; ++y) {
    const int i = g.nlat - 1 - y / scale;  // north at top
    for (int x = 0; x < width; ++x) {
      const int j = x / scale;
      const double v = field.at(t, i, j);
      const double f = span > 0 ? (v - lo) / span : 0.5;
      std::uint8_t rgb[3];
      diverging_color(f, rgb);
      out.push_back(rgb[0]);
      out.push_back(rgb[1]);
      out.push_back(rgb[2]);
    }
  }
  return out;
}

common::Status write_ppm(const Field& field, const std::string& path, int t,
                         int scale) {
  const auto bytes = render_ppm(field, t, scale);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return common::Error{common::Errc::io_error, "cannot open " + path};
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return common::Error{common::Errc::io_error, "short write to " + path};
  }
  return common::ok_status();
}

}  // namespace esg::climate
