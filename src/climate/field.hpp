// Gridded climate fields: a regular lat-lon grid with a time axis, the unit
// of data CDAT-style analysis works on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace esg::climate {

/// Regular global grid: `nlat` rows from -90..90, `nlon` columns 0..360.
struct GridSpec {
  int nlat = 36;
  int nlon = 72;

  double lat(int i) const {
    return -90.0 + (i + 0.5) * 180.0 / nlat;
  }
  double lon(int j) const { return (j + 0.5) * 360.0 / nlon; }
  std::size_t cells() const {
    return static_cast<std::size_t>(nlat) * static_cast<std::size_t>(nlon);
  }
  bool operator==(const GridSpec& o) const {
    return nlat == o.nlat && nlon == o.nlon;
  }
};

/// (time, lat, lon) field, row-major with time outermost.
class Field {
 public:
  Field() = default;
  Field(GridSpec grid, int ntime, std::string variable = {},
        std::string units = {})
      : grid_(grid),
        ntime_(ntime),
        variable_(std::move(variable)),
        units_(std::move(units)),
        data_(static_cast<std::size_t>(ntime) * grid.cells(), 0.0) {}

  const GridSpec& grid() const { return grid_; }
  int ntime() const { return ntime_; }
  const std::string& variable() const { return variable_; }
  const std::string& units() const { return units_; }
  void set_variable(std::string v) { variable_ = std::move(v); }

  double& at(int t, int i, int j) {
    return data_[index(t, i, j)];
  }
  double at(int t, int i, int j) const { return data_[index(t, i, j)]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// First time slice of the month offset `t` as a flat lat-lon vector.
  std::vector<double> slice(int t) const;

  /// Append another field's time steps (grids must match).
  common::Status append_time(const Field& other);

 private:
  std::size_t index(int t, int i, int j) const {
    return (static_cast<std::size_t>(t) * grid_.nlat + i) * grid_.nlon + j;
  }

  GridSpec grid_;
  int ntime_ = 0;
  std::string variable_;
  std::string units_;
  std::vector<double> data_;
};

}  // namespace esg::climate
