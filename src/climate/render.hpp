// Headless renderers — the Fig 3 stand-in.
//
// VCDAT drew temperature, clouds and terrain in 3D; our renderers produce
// an ASCII heat map for terminals and a PPM image (blue-white-red ramp) for
// files, from any single time slice of a Field.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "climate/field.hpp"
#include "common/result.hpp"

namespace esg::climate {

/// ASCII heat map of time slice `t`; one character per cell, darker
/// characters for higher values, annotated with the value range.
std::string render_ascii(const Field& field, int t = 0);

/// PPM (P6) image of time slice `t`, `scale` pixels per cell, blue-to-red
/// diverging ramp.
std::vector<std::uint8_t> render_ppm(const Field& field, int t = 0,
                                     int scale = 4);

/// Write a PPM rendering to disk.
common::Status write_ppm(const Field& field, const std::string& path,
                         int t = 0, int scale = 4);

}  // namespace esg::climate
