#include "climate/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace esg::climate {

Field time_mean(const Field& field) {
  const auto& g = field.grid();
  Field out(g, 1, field.variable(), field.units());
  const double nt = std::max(1, field.ntime());
  for (int i = 0; i < g.nlat; ++i) {
    for (int j = 0; j < g.nlon; ++j) {
      double sum = 0.0;
      for (int t = 0; t < field.ntime(); ++t) sum += field.at(t, i, j);
      out.at(0, i, j) = sum / nt;
    }
  }
  return out;
}

Field anomaly(const Field& field) {
  const Field mean = time_mean(field);
  const auto& g = field.grid();
  Field out(g, field.ntime(), field.variable() + "_anom", field.units());
  for (int t = 0; t < field.ntime(); ++t) {
    for (int i = 0; i < g.nlat; ++i) {
      for (int j = 0; j < g.nlon; ++j) {
        out.at(t, i, j) = field.at(t, i, j) - mean.at(0, i, j);
      }
    }
  }
  return out;
}

Field zonal_mean(const Field& field) {
  const auto& g = field.grid();
  GridSpec zg = g;
  zg.nlon = 1;
  Field out(zg, field.ntime(), field.variable() + "_zonal", field.units());
  for (int t = 0; t < field.ntime(); ++t) {
    for (int i = 0; i < g.nlat; ++i) {
      double sum = 0.0;
      for (int j = 0; j < g.nlon; ++j) sum += field.at(t, i, j);
      out.at(t, i, 0) = sum / g.nlon;
    }
  }
  return out;
}

std::vector<double> global_mean_series(const Field& field) {
  const auto& g = field.grid();
  std::vector<double> weights(g.nlat);
  double wsum = 0.0;
  for (int i = 0; i < g.nlat; ++i) {
    weights[i] = std::cos(g.lat(i) * 3.14159265358979323846 / 180.0);
    wsum += weights[i];
  }
  std::vector<double> out(field.ntime(), 0.0);
  for (int t = 0; t < field.ntime(); ++t) {
    double acc = 0.0;
    for (int i = 0; i < g.nlat; ++i) {
      double row = 0.0;
      for (int j = 0; j < g.nlon; ++j) row += field.at(t, i, j);
      acc += weights[i] * row / g.nlon;
    }
    out[t] = acc / wsum;
  }
  return out;
}

Field regrid(const Field& field, const GridSpec& target) {
  const auto& g = field.grid();
  Field out(target, field.ntime(), field.variable(), field.units());
  for (int t = 0; t < field.ntime(); ++t) {
    for (int i = 0; i < target.nlat; ++i) {
      // Fractional source row for the target latitude.
      const double fi =
          (target.lat(i) + 90.0) / 180.0 * g.nlat - 0.5;
      const int i0 = std::clamp(static_cast<int>(std::floor(fi)), 0,
                                g.nlat - 1);
      const int i1 = std::min(i0 + 1, g.nlat - 1);
      const double wi = std::clamp(fi - i0, 0.0, 1.0);
      for (int j = 0; j < target.nlon; ++j) {
        const double fj = target.lon(j) / 360.0 * g.nlon - 0.5;
        int j0 = static_cast<int>(std::floor(fj));
        const double wj = fj - j0;
        // Longitude wraps.
        j0 = ((j0 % g.nlon) + g.nlon) % g.nlon;
        const int j1 = (j0 + 1) % g.nlon;
        const double v =
            (1 - wi) * ((1 - wj) * field.at(t, i0, j0) +
                        wj * field.at(t, i0, j1)) +
            wi * ((1 - wj) * field.at(t, i1, j0) + wj * field.at(t, i1, j1));
        out.at(t, i, j) = v;
      }
    }
  }
  return out;
}

common::Result<Field> difference(const Field& a, const Field& b) {
  if (!(a.grid() == b.grid()) || a.ntime() != b.ntime()) {
    return common::Error{common::Errc::invalid_argument,
                         "field shape mismatch in difference"};
  }
  Field out(a.grid(), a.ntime(), a.variable() + "_diff", a.units());
  for (std::size_t k = 0; k < a.data().size(); ++k) {
    out.data()[k] = a.data()[k] - b.data()[k];
  }
  return out;
}

Field seasonal_climatology(const Field& field, int first_month_of_year) {
  const auto& g = field.grid();
  Field out(g, 12, field.variable() + "_clim", field.units());
  std::vector<int> counts(12, 0);
  for (int t = 0; t < field.ntime(); ++t) {
    ++counts[(first_month_of_year + t) % 12];
  }
  for (int t = 0; t < field.ntime(); ++t) {
    const int m = (first_month_of_year + t) % 12;
    for (int i = 0; i < g.nlat; ++i) {
      for (int j = 0; j < g.nlon; ++j) {
        out.at(m, i, j) += field.at(t, i, j) / std::max(1, counts[m]);
      }
    }
  }
  return out;
}

Field linear_trend(const Field& field) {
  const auto& g = field.grid();
  Field out(g, 1, field.variable() + "_trend", field.units() + "/step");
  const int n = field.ntime();
  if (n < 2) return out;
  // x = 0..n-1: precompute the x moments once.
  const double mean_x = (n - 1) / 2.0;
  double sxx = 0.0;
  for (int t = 0; t < n; ++t) sxx += (t - mean_x) * (t - mean_x);
  for (int i = 0; i < g.nlat; ++i) {
    for (int j = 0; j < g.nlon; ++j) {
      double mean_y = 0.0;
      for (int t = 0; t < n; ++t) mean_y += field.at(t, i, j);
      mean_y /= n;
      double sxy = 0.0;
      for (int t = 0; t < n; ++t) {
        sxy += (t - mean_x) * (field.at(t, i, j) - mean_y);
      }
      out.at(0, i, j) = sxy / sxx;
    }
  }
  return out;
}

common::Result<Field> correlation(const Field& a, const Field& b) {
  if (!(a.grid() == b.grid()) || a.ntime() != b.ntime()) {
    return common::Error{common::Errc::invalid_argument,
                         "field shape mismatch in correlation"};
  }
  const auto& g = a.grid();
  const int n = a.ntime();
  Field out(g, 1, a.variable() + "_corr_" + b.variable(), "1");
  for (int i = 0; i < g.nlat; ++i) {
    for (int j = 0; j < g.nlon; ++j) {
      double ma = 0.0, mb = 0.0;
      for (int t = 0; t < n; ++t) {
        ma += a.at(t, i, j);
        mb += b.at(t, i, j);
      }
      ma /= n;
      mb /= n;
      double saa = 0.0, sbb = 0.0, sab = 0.0;
      for (int t = 0; t < n; ++t) {
        const double da = a.at(t, i, j) - ma;
        const double db = b.at(t, i, j) - mb;
        saa += da * da;
        sbb += db * db;
        sab += da * db;
      }
      out.at(0, i, j) =
          (saa > 0.0 && sbb > 0.0) ? sab / std::sqrt(saa * sbb) : 0.0;
    }
  }
  return out;
}

FieldStats field_stats(const Field& field) {
  common::OnlineStats s;
  for (double v : field.data()) s.add(v);
  return FieldStats{s.min(), s.max(), s.mean(), s.stddev()};
}

}  // namespace esg::climate
