#include "climate/field.hpp"

namespace esg::climate {

std::vector<double> Field::slice(int t) const {
  const std::size_t n = grid_.cells();
  std::vector<double> out(n);
  const std::size_t base = static_cast<std::size_t>(t) * n;
  for (std::size_t k = 0; k < n; ++k) out[k] = data_[base + k];
  return out;
}

common::Status Field::append_time(const Field& other) {
  if (!(other.grid_ == grid_)) {
    return common::Error{common::Errc::invalid_argument,
                         "grid mismatch appending field"};
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  ntime_ += other.ntime_;
  return common::ok_status();
}

}  // namespace esg::climate
