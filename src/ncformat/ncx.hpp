// ncx — a small self-describing binary array format standing in for netCDF.
//
// The paper's datasets are "thousands of individual data files stored in a
// self-describing binary format such as netCDF" (§3).  ncx reproduces the
// parts CDMS-style tooling needs: named dimensions, typed multidimensional
// variables with attributes, global attributes, and hyperslab reads.
//
// Layout (little-endian):
//   magic "NCX1"
//   u32 ndims    { str name, u32 size } *
//   u32 ngattrs  { str name, str value } *
//   u32 nvars    { str name, u8 type, u32 ndims { str dim } *,
//                  u32 nattrs { str, str } *, u64 offset, u64 nbytes } *
//   data blobs (row-major, dimension order as declared per variable)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytebuf.hpp"
#include "common/result.hpp"

namespace esg::ncformat {

enum class DataType : std::uint8_t { f32 = 0, f64 = 1 };

std::size_t type_size(DataType t);

struct Dimension {
  std::string name;
  std::uint32_t size = 0;
};

struct VariableInfo {
  std::string name;
  DataType type = DataType::f32;
  std::vector<std::string> dims;  // names, outermost first
  std::map<std::string, std::string> attrs;
  std::uint64_t offset = 0;  // data blob position (filled by the codec)
  std::uint64_t nbytes = 0;

  /// Element count = product of dimension sizes (resolved via the file).
  std::uint64_t element_count(const std::vector<Dimension>& dims_table) const;
};

class NcxWriter {
 public:
  void add_dimension(const std::string& name, std::uint32_t size);
  void add_global_attr(const std::string& name, const std::string& value);

  /// Declare a variable over previously added dimensions and provide its
  /// data (row-major, converted to `type` on encode).  The data length must
  /// equal the product of the dimension sizes.
  common::Status add_variable(const std::string& name, DataType type,
                              const std::vector<std::string>& dims,
                              const std::vector<double>& data,
                              std::map<std::string, std::string> attrs = {});

  /// Encode the file.
  std::shared_ptr<const std::vector<std::uint8_t>> finish() const;

 private:
  struct PendingVar {
    VariableInfo info;
    std::vector<double> data;
  };
  std::vector<Dimension> dims_;
  std::map<std::string, std::string> global_attrs_;
  std::vector<PendingVar> vars_;
};

class NcxReader {
 public:
  /// Parse a file; the reader shares ownership of the bytes.
  static common::Result<NcxReader> open(
      std::shared_ptr<const std::vector<std::uint8_t>> bytes);

  const std::vector<Dimension>& dimensions() const { return dims_; }
  const std::map<std::string, std::string>& global_attrs() const {
    return global_attrs_;
  }
  std::vector<std::string> variable_names() const;
  common::Result<VariableInfo> variable(const std::string& name) const;
  common::Result<std::uint32_t> dimension_size(const std::string& name) const;

  /// Full read of a variable as doubles (row-major).
  common::Result<std::vector<double>> read(const std::string& name) const;

  /// Hyperslab read: `start` and `count` per dimension, outermost first.
  common::Result<std::vector<double>> read_slab(
      const std::string& name, const std::vector<std::uint32_t>& start,
      const std::vector<std::uint32_t>& count) const;

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> bytes_;
  std::vector<Dimension> dims_;
  std::map<std::string, std::string> global_attrs_;
  std::vector<VariableInfo> vars_;
};

}  // namespace esg::ncformat
