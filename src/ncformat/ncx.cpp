#include "ncformat/ncx.hpp"

#include <cstring>

namespace esg::ncformat {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using common::Status;

namespace {
constexpr char kMagic[4] = {'N', 'C', 'X', '1'};
}

std::size_t type_size(DataType t) {
  return t == DataType::f32 ? 4 : 8;
}

std::uint64_t VariableInfo::element_count(
    const std::vector<Dimension>& dims_table) const {
  std::uint64_t n = 1;
  for (const auto& dname : dims) {
    for (const auto& d : dims_table) {
      if (d.name == dname) {
        n *= d.size;
        break;
      }
    }
  }
  return n;
}

void NcxWriter::add_dimension(const std::string& name, std::uint32_t size) {
  dims_.push_back(Dimension{name, size});
}

void NcxWriter::add_global_attr(const std::string& name,
                                const std::string& value) {
  global_attrs_[name] = value;
}

Status NcxWriter::add_variable(const std::string& name, DataType type,
                               const std::vector<std::string>& dims,
                               const std::vector<double>& data,
                               std::map<std::string, std::string> attrs) {
  std::uint64_t expect = 1;
  for (const auto& dname : dims) {
    bool found = false;
    for (const auto& d : dims_) {
      if (d.name == dname) {
        expect *= d.size;
        found = true;
        break;
      }
    }
    if (!found) {
      return Error{Errc::invalid_argument, "unknown dimension: " + dname};
    }
  }
  if (data.size() != expect) {
    return Error{Errc::invalid_argument,
                 "data length " + std::to_string(data.size()) +
                     " != dimension product " + std::to_string(expect)};
  }
  PendingVar v;
  v.info.name = name;
  v.info.type = type;
  v.info.dims = dims;
  v.info.attrs = std::move(attrs);
  v.data = data;
  vars_.push_back(std::move(v));
  return common::ok_status();
}

std::shared_ptr<const std::vector<std::uint8_t>> NcxWriter::finish() const {
  // First pass: header with zero offsets to learn its size, then rewrite.
  // Offsets are deterministic given the header length, so encode the header
  // twice with the second pass using real offsets.
  auto encode_header = [this](const std::vector<std::uint64_t>& offsets,
                              ByteWriter& w) {
    w.raw(kMagic, 4);
    w.u32(static_cast<std::uint32_t>(dims_.size()));
    for (const auto& d : dims_) {
      w.str(d.name);
      w.u32(d.size);
    }
    w.u32(static_cast<std::uint32_t>(global_attrs_.size()));
    for (const auto& [k, v] : global_attrs_) {
      w.str(k);
      w.str(v);
    }
    w.u32(static_cast<std::uint32_t>(vars_.size()));
    for (std::size_t i = 0; i < vars_.size(); ++i) {
      const auto& v = vars_[i];
      w.str(v.info.name);
      w.u8(static_cast<std::uint8_t>(v.info.type));
      w.u32(static_cast<std::uint32_t>(v.info.dims.size()));
      for (const auto& d : v.info.dims) w.str(d);
      w.u32(static_cast<std::uint32_t>(v.info.attrs.size()));
      for (const auto& [k, val] : v.info.attrs) {
        w.str(k);
        w.str(val);
      }
      w.u64(offsets.empty() ? 0 : offsets[i]);
      w.u64(v.data.size() * type_size(v.info.type));
    }
  };

  ByteWriter probe;
  encode_header(std::vector<std::uint64_t>(vars_.size(), 0), probe);
  const std::uint64_t header_size = probe.size();

  std::vector<std::uint64_t> offsets(vars_.size());
  std::uint64_t cursor = header_size;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    offsets[i] = cursor;
    cursor += vars_[i].data.size() * type_size(vars_[i].info.type);
  }

  ByteWriter out;
  encode_header(offsets, out);
  for (const auto& v : vars_) {
    if (v.info.type == DataType::f32) {
      for (double d : v.data) {
        const float f = static_cast<float>(d);
        out.raw(&f, sizeof f);
      }
    } else {
      for (double d : v.data) out.raw(&d, sizeof d);
    }
  }
  // Integrity footer: FNV-1a over everything before it, verified on open.
  auto bytes = out.take();
  const std::uint64_t checksum = common::fnv1a64(bytes.data(), bytes.size());
  bytes.resize(bytes.size() + 8);
  std::memcpy(bytes.data() + bytes.size() - 8, &checksum, 8);
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}

Result<NcxReader> NcxReader::open(
    std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  if (!bytes) {
    return Error{Errc::invalid_argument, "null ncx buffer"};
  }
  NcxReader reader;
  reader.bytes_ = std::move(bytes);
  ByteReader r(*reader.bytes_);
  char magic[4];
  if (reader.bytes_->size() < 12) {  // magic + checksum footer
    return Error{Errc::protocol_error, "ncx: truncated file"};
  }
  std::memcpy(magic, reader.bytes_->data(), 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Error{Errc::protocol_error, "ncx: bad magic"};
  }
  // Verify the integrity footer before trusting any header field.
  std::uint64_t stored = 0;
  std::memcpy(&stored, reader.bytes_->data() + reader.bytes_->size() - 8, 8);
  const std::uint64_t computed =
      common::fnv1a64(reader.bytes_->data(), reader.bytes_->size() - 8);
  if (stored != computed) {
    return Error{Errc::protocol_error, "ncx: checksum mismatch (corrupt file)"};
  }
  if (auto st = r.skip(4); !st.ok()) return st.error();

  auto ndims = r.u32();
  if (!ndims) return ndims.error();
  for (std::uint32_t i = 0; i < *ndims; ++i) {
    auto name = r.str();
    auto size = r.u32();
    if (!name || !size) return Error{Errc::protocol_error, "ncx: bad dims"};
    reader.dims_.push_back(Dimension{std::move(*name), *size});
  }
  auto ngattrs = r.u32();
  if (!ngattrs) return ngattrs.error();
  for (std::uint32_t i = 0; i < *ngattrs; ++i) {
    auto k = r.str();
    auto v = r.str();
    if (!k || !v) return Error{Errc::protocol_error, "ncx: bad gattrs"};
    reader.global_attrs_[std::move(*k)] = std::move(*v);
  }
  auto nvars = r.u32();
  if (!nvars) return nvars.error();
  for (std::uint32_t i = 0; i < *nvars; ++i) {
    VariableInfo v;
    auto name = r.str();
    auto type = r.u8();
    if (!name || !type || *type > 1) {
      return Error{Errc::protocol_error, "ncx: bad var header"};
    }
    v.name = std::move(*name);
    v.type = static_cast<DataType>(*type);
    auto nd = r.u32();
    if (!nd) return nd.error();
    for (std::uint32_t j = 0; j < *nd; ++j) {
      auto d = r.str();
      if (!d) return d.error();
      v.dims.push_back(std::move(*d));
    }
    auto na = r.u32();
    if (!na) return na.error();
    for (std::uint32_t j = 0; j < *na; ++j) {
      auto k = r.str();
      auto val = r.str();
      if (!k || !val) return Error{Errc::protocol_error, "ncx: bad attrs"};
      v.attrs[std::move(*k)] = std::move(*val);
    }
    auto off = r.u64();
    auto nb = r.u64();
    if (!off || !nb) return Error{Errc::protocol_error, "ncx: bad var size"};
    v.offset = *off;
    v.nbytes = *nb;
    if (v.offset + v.nbytes > reader.bytes_->size()) {
      return Error{Errc::protocol_error, "ncx: data past end of file"};
    }
    reader.vars_.push_back(std::move(v));
  }
  return reader;
}

std::vector<std::string> NcxReader::variable_names() const {
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& v : vars_) out.push_back(v.name);
  return out;
}

Result<VariableInfo> NcxReader::variable(const std::string& name) const {
  for (const auto& v : vars_) {
    if (v.name == name) return v;
  }
  return Error{Errc::not_found, "ncx: no variable " + name};
}

Result<std::uint32_t> NcxReader::dimension_size(const std::string& name) const {
  for (const auto& d : dims_) {
    if (d.name == name) return d.size;
  }
  return Error{Errc::not_found, "ncx: no dimension " + name};
}

Result<std::vector<double>> NcxReader::read(const std::string& name) const {
  auto v = variable(name);
  if (!v) return v.error();
  const std::size_t esize = type_size(v->type);
  const std::uint64_t n = v->nbytes / esize;
  std::vector<double> out(n);
  const std::uint8_t* base = bytes_->data() + v->offset;
  if (v->type == DataType::f32) {
    for (std::uint64_t i = 0; i < n; ++i) {
      float f;
      std::memcpy(&f, base + i * 4, 4);
      out[i] = f;
    }
  } else {
    for (std::uint64_t i = 0; i < n; ++i) {
      double d;
      std::memcpy(&d, base + i * 8, 8);
      out[i] = d;
    }
  }
  return out;
}

Result<std::vector<double>> NcxReader::read_slab(
    const std::string& name, const std::vector<std::uint32_t>& start,
    const std::vector<std::uint32_t>& count) const {
  auto v = variable(name);
  if (!v) return v.error();
  if (start.size() != v->dims.size() || count.size() != v->dims.size()) {
    return Error{Errc::invalid_argument, "ncx: slab rank mismatch"};
  }
  // Resolve dimension extents.
  std::vector<std::uint64_t> extent(v->dims.size());
  for (std::size_t i = 0; i < v->dims.size(); ++i) {
    auto sz = dimension_size(v->dims[i]);
    if (!sz) return sz.error();
    extent[i] = *sz;
    if (static_cast<std::uint64_t>(start[i]) + count[i] > extent[i]) {
      return Error{Errc::invalid_argument,
                   "ncx: slab out of range on " + v->dims[i]};
    }
  }
  // Row-major strides.
  std::vector<std::uint64_t> stride(v->dims.size(), 1);
  for (std::size_t i = v->dims.size(); i-- > 1;) {
    stride[i - 1] = stride[i] * extent[i];
  }

  std::uint64_t total = 1;
  for (auto c : count) total *= c;
  std::vector<double> out;
  out.reserve(total);

  const std::size_t esize = type_size(v->type);
  const std::uint8_t* base = bytes_->data() + v->offset;
  // Iterate the slab index space (odometer).
  std::vector<std::uint32_t> idx(v->dims.size(), 0);
  for (std::uint64_t k = 0; k < total; ++k) {
    std::uint64_t flat = 0;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      flat += (start[i] + idx[i]) * stride[i];
    }
    if (v->type == DataType::f32) {
      float f;
      std::memcpy(&f, base + flat * esize, 4);
      out.push_back(f);
    } else {
      double d;
      std::memcpy(&d, base + flat * esize, 8);
      out.push_back(d);
    }
    // Increment odometer (innermost fastest).
    for (std::size_t i = idx.size(); i-- > 0;) {
      if (++idx[i] < count[i]) break;
      idx[i] = 0;
    }
  }
  return out;
}

}  // namespace esg::ncformat
