// Per-server circuit breaker / replica health registry.
//
// The request manager's replica ranking (paper §4 step 3) scores candidates
// by NWS forecast bandwidth, but a forecast says nothing about a server that
// is crashing or refusing connections *right now*.  The registry tracks a
// classic three-state breaker per server host:
//
//   closed    — healthy; attempts flow normally.
//   open      — `failure_threshold` consecutive failures tripped it; allow()
//               refuses (short-circuits) until `cooldown` has elapsed.
//   half_open — cooldown over; allow() admits one probe attempt at a time.
//               A probe success (x `half_open_successes`) closes the
//               breaker; a probe failure re-opens it and restarts the
//               cooldown clock.  Outcomes of attempts admitted *before* the
//               trip (stale attempts still draining) neither release the
//               probe slot nor restart the cooldown: under sustained
//               concurrent load (many workers per site) they would
//               otherwise admit a herd of concurrent "probes" or starve
//               probing entirely.
//
// Two read paths with different contracts:
//   * allow(host)    — mutating; call once per actual attempt (it is what
//                      admits or consumes the half-open probe slot).
//   * healthy(host)  — const; safe for ranking.  A host is "unhealthy" only
//                      while its breaker is open and still cooling down.
//
// State transitions are exported as the `rm_breaker_state` gauge
// (0 = closed, 1 = open, 2 = half_open) plus counters for trips,
// short-circuits, and probes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace esg::rm {

struct BreakerConfig {
  /// Consecutive failures that trip a closed breaker open.
  int failure_threshold = 3;
  /// How long an open breaker refuses before admitting a probe.
  common::SimDuration cooldown = 60 * common::kSecond;
  /// Probe successes required to close a half-open breaker.
  int half_open_successes = 1;
};

enum class BreakerState { closed, open, half_open };

const char* breaker_state_name(BreakerState state);

class ReplicaHealthRegistry {
 public:
  explicit ReplicaHealthRegistry(sim::Simulation& simulation,
                                 BreakerConfig config = {});

  /// May this attempt proceed against `host`?  Mutating: an open breaker
  /// past its cooldown transitions to half_open and this call claims the
  /// probe slot.  Call exactly once per real attempt.
  bool allow(const std::string& host);

  /// Const ranking signal: false only while the breaker is open and still
  /// inside its cooldown.  Unknown hosts are healthy.
  bool healthy(const std::string& host) const;

  /// Attempt outcome feedback (wired to ReliableGet's on_attempt_result).
  void record_success(const std::string& host);
  void record_failure(const std::string& host);

  BreakerState state(const std::string& host) const;
  int consecutive_failures(const std::string& host) const;
  const BreakerConfig& config() const { return config_; }

  /// Every host the registry has seen an attempt or outcome for, sorted —
  /// lets an invariant harness assert "all breakers re-closed" without
  /// knowing the topology.
  std::vector<std::string> hosts() const;

 private:
  struct Entry {
    BreakerState state = BreakerState::closed;
    int failures = 0;            // consecutive
    int probe_successes = 0;     // while half_open
    common::SimTime opened_at = 0;
    // Probe-slot accounting while half_open.  Only admissions (allow()) and
    // state transitions touch it: attempt outcomes cannot distinguish the
    // probe from attempts admitted before the breaker tripped, so letting
    // every record_*() release the slot would admit a herd of "probes"
    // under sustained concurrent load (the campaign workload).
    int probes_in_flight = 0;
    common::SimTime probe_started = 0;
    obs::Gauge* gauge = nullptr;
  };

  Entry& entry(const std::string& host);
  void transition(const std::string& host, Entry& e, BreakerState to);

  sim::Simulation& sim_;
  BreakerConfig config_;
  std::map<std::string, Entry> entries_;
};

}  // namespace esg::rm
