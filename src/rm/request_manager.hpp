// The Request Manager (paper §4).
//
// "The Request Manager (RM) is a component designed to initiate, control
// and monitor multiple file transfers on behalf of multiple users
// concurrently."  For each logical file of each request the RM runs a
// worker that performs the paper's five steps:
//
//   (1) find all replicas of the file in the replica catalog;
//   (2) for each replica, consult NWS (via MDS) for the current bandwidth
//       and latency from the replica's site to the local site;
//   (3) select the "best" replica — highest forecast bandwidth;
//   (4) initiate a GridFTP get (through HRM staging first when the chosen
//       replica lives on a mass-storage system);
//   (5) monitor progress by polling the local file size every few seconds.
//
// Failures and slow replicas are handled by the GridFTP reliability plugin:
// restart from the byte marker, alternate replica on repeated failure.  In
// the emulator the RM's "threads" are concurrent simulation processes — one
// per file, exactly the paper's concurrency structure.
#pragma once

#include <memory>
#include <vector>

#include "gridftp/reliability.hpp"
#include "hrm/hrm.hpp"
#include "mds/mds.hpp"
#include "replica/catalog.hpp"
#include "rm/health.hpp"
#include "rm/monitor.hpp"

namespace esg::rm {

struct FileRequest {
  std::string collection;
  std::string filename;
  /// Optional per-file server-side processing (overrides the request-wide
  /// TransferOptions): e.g. the ESG-II ncx.subset module with a per-chunk
  /// month window.
  std::string eret_module = {};
  std::string eret_params = {};
};

struct RequestOptions {
  std::string local_path_prefix = "cache";  // where fetched files land
  gridftp::TransferOptions transfer;
  gridftp::ReliabilityOptions reliability;
  common::SimDuration poll_interval = 2 * common::kSecond;  // size polling
  common::SimDuration stage_timeout = 30 * common::kMinute;
  /// Retry policy for HRM stage requests.  stage_timeout above stays the
  /// per-attempt RPC timeout whenever stage_retry.attempt_timeout is 0.
  common::RetryPolicy stage_retry = {.max_attempts = 3,
                                     .retry_backoff = 15 * common::kSecond};
  std::size_t max_concurrent = 16;  // worker threads, paper-style
};

struct FileOutcome {
  FileRequest request;
  common::Status status = common::ok_status();
  common::Bytes size = 0;   // logical file size
  common::Bytes bytes = 0;  // bytes landed locally
  std::string local_name;
  std::string chosen_location;
  std::string chosen_host;
  common::Rate forecast_bandwidth = 0.0;
  int attempts = 0;
  int replica_switches = 0;
  bool staged_from_tape = false;
  common::SimTime started = 0;
  common::SimTime finished = 0;
};

struct RequestResult {
  common::Status status = common::ok_status();  // first failure, if any
  std::vector<FileOutcome> files;
  common::Bytes total_bytes = 0;
  common::SimTime started = 0;
  common::SimTime finished = 0;

  common::Rate aggregate_rate() const {
    const double secs = common::to_seconds(finished - started);
    return secs > 0 ? static_cast<double>(total_bytes) / secs : 0.0;
  }
};

class RequestManager {
 public:
  /// The RM is co-located with the destination: fetched files land in
  /// `ftp`'s local storage (the visualization system's disk cache).
  RequestManager(rpc::Orb& orb, const net::Host& host,
                 replica::ReplicaCatalog catalog, mds::MdsClient mds,
                 gridftp::GridFtpClient& ftp,
                 TransferMonitor* monitor = nullptr,
                 BreakerConfig breaker = {});

  /// Fetch a set of logical files concurrently.  `done` fires once every
  /// file reached a terminal state.
  void submit(std::vector<FileRequest> files, RequestOptions options,
              std::function<void(RequestResult)> done);

  const net::Host& host() const { return host_; }
  TransferMonitor* monitor() { return monitor_; }
  /// Per-server circuit breakers consulted by replica ranking and fed by
  /// every transfer attempt's outcome.
  ReplicaHealthRegistry& health() { return health_; }

 private:
  struct Job;     // one submit()
  struct Worker;  // one file

  rpc::Orb& orb_;
  const net::Host& host_;
  replica::ReplicaCatalog catalog_;
  mds::MdsClient mds_;
  gridftp::GridFtpClient& ftp_;
  TransferMonitor* monitor_;
  ReplicaHealthRegistry health_;
};

}  // namespace esg::rm
