#include "rm/health.hpp"

namespace esg::rm {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half_open";
  }
  return "unknown";
}

ReplicaHealthRegistry::ReplicaHealthRegistry(sim::Simulation& simulation,
                                             BreakerConfig config)
    : sim_(simulation), config_(config) {}

ReplicaHealthRegistry::Entry& ReplicaHealthRegistry::entry(
    const std::string& host) {
  auto it = entries_.find(host);
  if (it == entries_.end()) {
    it = entries_.emplace(host, Entry{}).first;
    it->second.gauge =
        &sim_.metrics().gauge("rm_breaker_state", {{"host", host}});
    it->second.gauge->set(0.0);
  }
  return it->second;
}

void ReplicaHealthRegistry::transition(const std::string& host, Entry& e,
                                       BreakerState to) {
  if (e.state == to) return;
  sim_.flight_recorder().record(
      "rm", std::string("breaker.") + breaker_state_name(to), host,
      {{"from", breaker_state_name(e.state)}});
  e.state = to;
  e.gauge->set(static_cast<double>(to));
  if (to == BreakerState::open) {
    e.opened_at = sim_.now();
    e.probe_successes = 0;
    sim_.metrics()
        .counter("rm_breaker_open_total", {{"host", host}})
        .add();
  }
  if (to == BreakerState::half_open) {
    e.probe_successes = 0;
    e.probes_in_flight = 0;
  }
  if (to == BreakerState::closed) {
    e.failures = 0;
    e.probes_in_flight = 0;
  }
}

bool ReplicaHealthRegistry::allow(const std::string& host) {
  Entry& e = entry(host);
  const auto now = sim_.now();
  switch (e.state) {
    case BreakerState::closed:
      return true;
    case BreakerState::open:
      if (now - e.opened_at < config_.cooldown) {
        sim_.metrics()
            .counter("rm_breaker_short_circuits_total", {{"host", host}})
            .add();
        return false;
      }
      transition(host, e, BreakerState::half_open);
      [[fallthrough]];
    case BreakerState::half_open:
      // One probe at a time; if a probe never reported back (the attempt
      // was swallowed somewhere), re-admit after another cooldown rather
      // than wedging the breaker half-open forever.
      if (e.probes_in_flight > 0 && now - e.probe_started < config_.cooldown) {
        sim_.metrics()
            .counter("rm_breaker_short_circuits_total", {{"host", host}})
            .add();
        return false;
      }
      e.probes_in_flight = 1;
      e.probe_started = now;
      sim_.metrics().counter("rm_breaker_probes_total", {{"host", host}}).add();
      return true;
  }
  return true;
}

bool ReplicaHealthRegistry::healthy(const std::string& host) const {
  auto it = entries_.find(host);
  if (it == entries_.end()) return true;
  const Entry& e = it->second;
  return e.state != BreakerState::open ||
         sim_.now() - e.opened_at >= config_.cooldown;
}

void ReplicaHealthRegistry::record_success(const std::string& host) {
  Entry& e = entry(host);
  e.failures = 0;
  switch (e.state) {
    case BreakerState::closed:
      break;
    case BreakerState::half_open:
      // Whether this was the probe or a stale attempt that outlived the
      // trip, a success is evidence of health; it consumes the probe slot
      // (freeing the next sequential probe when more successes are needed).
      e.probes_in_flight = 0;
      if (++e.probe_successes >= config_.half_open_successes) {
        transition(host, e, BreakerState::closed);
      }
      break;
    case BreakerState::open:
      // A success slipped through (last-resort attempt while open): the
      // server is evidently back.
      transition(host, e, BreakerState::closed);
      break;
  }
}

void ReplicaHealthRegistry::record_failure(const std::string& host) {
  Entry& e = entry(host);
  ++e.failures;
  switch (e.state) {
    case BreakerState::closed:
      if (e.failures >= config_.failure_threshold) {
        transition(host, e, BreakerState::open);
      }
      break;
    case BreakerState::half_open:
      if (e.probes_in_flight > 0) {
        // Failed probe: back to open, cooldown restarts.
        transition(host, e, BreakerState::open);
      } else {
        // A stale attempt (admitted before the trip, or a last-resort
        // override) failed while no probe was outstanding.  Re-open, but
        // keep the original cooldown clock: a stream of stale failures
        // must not keep pushing the next probe out forever.
        const common::SimTime original_opened_at = e.opened_at;
        transition(host, e, BreakerState::open);
        e.opened_at = original_opened_at;
      }
      break;
    case BreakerState::open:
      // Last-resort attempts while open don't refresh the cooldown clock —
      // that would starve the half-open probe.
      break;
  }
}

BreakerState ReplicaHealthRegistry::state(const std::string& host) const {
  auto it = entries_.find(host);
  return it == entries_.end() ? BreakerState::closed : it->second.state;
}

int ReplicaHealthRegistry::consecutive_failures(
    const std::string& host) const {
  auto it = entries_.find(host);
  return it == entries_.end() ? 0 : it->second.failures;
}

std::vector<std::string> ReplicaHealthRegistry::hosts() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [host, entry] : entries_) out.push_back(host);
  return out;  // std::map iteration is already sorted
}

}  // namespace esg::rm
