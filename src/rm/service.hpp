// The request manager's remote interface (paper §4: "The CDAT system calls
// the RM via a CORBA protocol that permits the specification of multiple
// logical files").
//
// RequestManagerService exposes a running RequestManager as RPC service
// "rm" with one method, REQUEST: a list of (collection, filename[, eret])
// tuples plus transfer options; the reply carries the per-file outcomes.
// Fetched data lands in the RM host's disk cache, from where a co-located
// client (the deployment in Fig 1) reads it.
#pragma once

#include "rm/request_manager.hpp"

namespace esg::rm {

class RequestManagerService {
 public:
  RequestManagerService(rpc::Orb& orb, RequestManager& rm);
  ~RequestManagerService();

  static void encode_request(common::ByteWriter& w,
                             const std::vector<FileRequest>& files,
                             const RequestOptions& options);
  static common::Result<RequestResult> decode_result(common::ByteReader& r);

 private:
  void handle(const std::string& method, rpc::Payload request,
              rpc::Reply reply);

  rpc::Orb& orb_;
  RequestManager& rm_;
};

/// Remote caller: CDAT's side of the CORBA boundary.
class RequestManagerClient {
 public:
  RequestManagerClient(rpc::Orb& orb, const net::Host& from,
                       const net::Host& rm_host);

  /// Submit a multi-file request to a remote RM; `timeout` must cover the
  /// whole transfer.
  void submit(const std::vector<FileRequest>& files,
              const RequestOptions& options,
              std::function<void(common::Result<RequestResult>)> done,
              common::SimDuration timeout = 2 * common::kHour);

 private:
  rpc::Orb& orb_;
  const net::Host& from_;
  const net::Host& rm_;
};

}  // namespace esg::rm
