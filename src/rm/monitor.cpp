#include "rm/monitor.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace esg::rm {

namespace {
std::string dropped_sentinel(std::size_t n) {
  return "... " + std::to_string(n) + " earlier lines dropped";
}
}  // namespace

void TransferMonitor::append_log(SimTime now, const std::string& line) {
  log_.push_back("[" + common::format_time(now) + "] " + line);
  if (log_.size() <= kMaxLogLines) return;
  // Overflow: discard the oldest real line but leave a visible count at the
  // front instead of losing history silently.  The sentinel occupies a log
  // slot itself, so the first overflow retires two lines.
  if (dropped_lines_ == 0) {
    log_.pop_front();
    log_.pop_front();
    dropped_lines_ = 2;
    log_.push_front(dropped_sentinel(dropped_lines_));
  } else {
    log_.erase(log_.begin() + 1);
    ++dropped_lines_;
    log_.front() = dropped_sentinel(dropped_lines_);
  }
}

void TransferMonitor::count_event(const char* event,
                                  const std::string& file,
                                  const std::string& detail) {
  if (registry_ != nullptr) {
    registry_->counter("monitor_events_total", {{"event", event}}).add();
  }
  if (recorder_ != nullptr) {
    std::vector<std::pair<std::string, std::string>> attrs;
    if (!detail.empty()) attrs.emplace_back("detail", detail);
    recorder_->record("monitor", std::string("monitor.") + event, file,
                      std::move(attrs));
  }
}

void TransferMonitor::file_queued(const std::string& file, Bytes total_size,
                                  SimTime now) {
  count_event("file_queued", file);
  auto& st = files_[file];
  st.total = total_size;
  st.order = next_order_++;
  append_log(now, "queued " + file + " (" + common::format_bytes(total_size) +
                      ")");
}

void TransferMonitor::replica_selected(const std::string& file,
                                       const std::string& host,
                                       Rate forecast_bandwidth, SimTime now) {
  count_event("replica_selected", file, host);
  auto& st = files_[file];
  st.replica_host = host;
  st.forecast = forecast_bandwidth;
  append_log(now, "selected replica at " + host + " for " + file +
                      " (forecast " + common::format_rate(forecast_bandwidth) +
                      ")");
}

void TransferMonitor::staging_started(const std::string& file,
                                      const std::string& host, SimTime now) {
  count_event("staging_started", file, host);
  files_[file].phase = FileState::Phase::staging;
  append_log(now, "HRM staging " + file + " from tape at " + host);
}

void TransferMonitor::transfer_started(const std::string& file,
                                       const std::string& host, SimTime now) {
  count_event("transfer_started", file, host);
  files_[file].phase = FileState::Phase::transferring;
  append_log(now, "gridftp transfer of " + file + " from " + host +
                      " started");
}

void TransferMonitor::progress(const std::string& file, Bytes current_size,
                               SimTime) {
  auto it = files_.find(file);
  if (it != files_.end()) it->second.current = current_size;
}

void TransferMonitor::replica_switched(const std::string& file,
                                       const std::string& new_host,
                                       SimTime now) {
  count_event("replica_switched", file, new_host);
  files_[file].replica_host = new_host;
  append_log(now, "switched " + file + " to alternate replica at " + new_host);
}

void TransferMonitor::transfer_complete(const std::string& file, Bytes size,
                                        SimTime now) {
  count_event("transfer_complete", file);
  auto& st = files_[file];
  st.phase = FileState::Phase::complete;
  st.current = size;
  append_log(now, "completed " + file + " (" + common::format_bytes(size) +
                      ")");
}

void TransferMonitor::transfer_failed(const std::string& file,
                                      const std::string& reason, SimTime now) {
  count_event("transfer_failed", file, reason);
  auto& st = files_[file];
  st.phase = FileState::Phase::failed;
  st.failure = reason;
  append_log(now, "FAILED " + file + ": " + reason);
}

Bytes TransferMonitor::total_bytes() const {
  Bytes sum = 0;
  for (const auto& [name, st] : files_) sum += st.current;
  return sum;
}

std::size_t TransferMonitor::files_complete() const {
  std::size_t n = 0;
  for (const auto& [name, st] : files_) {
    n += st.phase == FileState::Phase::complete;
  }
  return n;
}

bool TransferMonitor::all_terminal() const {
  for (const auto& [name, st] : files_) {
    if (st.phase != FileState::Phase::complete &&
        st.phase != FileState::Phase::failed) {
      return false;
    }
  }
  return !files_.empty();
}

std::string TransferMonitor::render(SimTime now) const {
  std::ostringstream os;
  os << "=== ESG Request Monitor  t=" << common::format_time(now)
     << "  files " << files_complete() << "/" << files_.size() << "  total "
     << common::format_bytes(total_bytes());
  if (now > 0) {
    os << " (" << common::format_rate(static_cast<double>(total_bytes()) /
                                      common::to_seconds(now))
       << " avg)";
  }
  os << " ===\n";

  // Stable ordering by arrival.
  std::vector<std::pair<std::string, const FileState*>> rows;
  rows.reserve(files_.size());
  for (const auto& [name, st] : files_) rows.emplace_back(name, &st);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second->order < b.second->order;
  });

  for (const auto& [name, st] : rows) {
    constexpr int kBar = 20;
    const double frac =
        st->total > 0 ? std::min(1.0, static_cast<double>(st->current) /
                                          static_cast<double>(st->total))
                      : 0.0;
    const int filled = static_cast<int>(frac * kBar + 0.5);
    os << "  " << name << "  [";
    for (int i = 0; i < kBar; ++i) os << (i < filled ? '#' : '.');
    os << "] " << static_cast<int>(frac * 100.0 + 0.5) << "%  "
       << common::format_bytes(st->current) << " / "
       << common::format_bytes(st->total);
    switch (st->phase) {
      case FileState::Phase::queued: os << "  (queued)"; break;
      case FileState::Phase::staging: os << "  (staging from tape)"; break;
      case FileState::Phase::transferring: break;
      case FileState::Phase::complete: os << "  (done)"; break;
      case FileState::Phase::failed: os << "  (FAILED)"; break;
    }
    os << "\n";
  }

  os << "--- replica selections ---\n";
  for (const auto& [name, st] : rows) {
    if (!st->replica_host.empty()) {
      os << "  " << name << " <- " << st->replica_host << " (forecast "
         << common::format_rate(st->forecast) << ")\n";
    }
  }

  os << "--- messages ---\n";
  const std::size_t shown = std::min<std::size_t>(log_.size(), 10);
  for (std::size_t i = log_.size() - shown; i < log_.size(); ++i) {
    os << "  " << log_[i] << "\n";
  }
  return os.str();
}

std::string TransferMonitor::render(
    SimTime now, const obs::MetricsSnapshot& snapshot) const {
  std::ostringstream os;
  os << render(now);
  os << "--- metrics ---\n";
  os << "  rm queue depth " << snapshot.value_or("rm_queue_depth", {})
     << "  active workers " << snapshot.value_or("rm_active_workers", {})
     << "  retries "
     << snapshot.family_total("rm_retries_total") << "\n";
  os << "  hrm cache hits " << snapshot.value_or("hrm_cache_hits_total", {})
     << "  misses " << snapshot.value_or("hrm_cache_misses_total", {}) << "\n";
  for (const auto& e : snapshot.entries) {
    if (e.name != "gridftp_channel_bytes_total") continue;
    std::string server = "?";
    for (const auto& [k, v] : e.labels) {
      if (k == "server") server = v;
    }
    os << "  gridftp bytes from " << server << "  "
       << common::format_bytes(static_cast<Bytes>(e.value)) << "\n";
  }
  return os.str();
}

}  // namespace esg::rm
