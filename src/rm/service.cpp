#include "rm/service.hpp"

namespace esg::rm {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using rpc::Payload;

RequestManagerService::RequestManagerService(rpc::Orb& orb, RequestManager& rm)
    : orb_(orb), rm_(rm) {
  orb_.register_service(
      rm_.host(), "rm",
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        handle(method, std::move(request), std::move(reply));
      });
}

RequestManagerService::~RequestManagerService() {
  orb_.unregister_service(rm_.host(), "rm");
}

void RequestManagerService::encode_request(ByteWriter& w,
                                           const std::vector<FileRequest>& files,
                                           const RequestOptions& options) {
  w.u32(static_cast<std::uint32_t>(files.size()));
  for (const auto& f : files) {
    w.str(f.collection);
    w.str(f.filename);
    w.str(f.eret_module);
    w.str(f.eret_params);
  }
  w.str(options.local_path_prefix);
  w.i32(options.transfer.parallelism);
  w.i64(options.transfer.buffer_size);
  w.boolean(options.transfer.use_channel_cache);
  w.i64(options.transfer.stall_timeout);
  w.u32(static_cast<std::uint32_t>(options.max_concurrent));
  w.i64(options.poll_interval);
}

namespace {

void encode_result(ByteWriter& w, const RequestResult& result) {
  w.boolean(result.status.ok());
  w.str(result.status.ok() ? "" : result.status.error().message);
  w.i64(result.total_bytes);
  w.i64(result.started);
  w.i64(result.finished);
  w.u32(static_cast<std::uint32_t>(result.files.size()));
  for (const auto& f : result.files) {
    w.str(f.request.collection);
    w.str(f.request.filename);
    w.boolean(f.status.ok());
    w.str(f.status.ok() ? "" : f.status.error().message);
    w.i64(f.size);
    w.i64(f.bytes);
    w.str(f.local_name);
    w.str(f.chosen_host);
    w.f64(f.forecast_bandwidth);
    w.i32(f.attempts);
    w.i32(f.replica_switches);
    w.boolean(f.staged_from_tape);
  }
}

}  // namespace

Result<RequestResult> RequestManagerService::decode_result(ByteReader& r) {
  RequestResult result;
  auto ok = r.boolean();
  auto msg = r.str();
  auto total = r.i64();
  auto started = r.i64();
  auto finished = r.i64();
  auto count = r.u32();
  if (!ok || !msg || !total || !started || !finished || !count) {
    return Error{Errc::protocol_error, "bad RM result encoding"};
  }
  if (!*ok) result.status = Error{Errc::unavailable, *msg};
  result.total_bytes = *total;
  result.started = *started;
  result.finished = *finished;
  for (std::uint32_t i = 0; i < *count; ++i) {
    FileOutcome f;
    auto collection = r.str();
    auto filename = r.str();
    auto fok = r.boolean();
    auto fmsg = r.str();
    auto size = r.i64();
    auto bytes = r.i64();
    auto local = r.str();
    auto host = r.str();
    auto forecast = r.f64();
    auto attempts = r.i32();
    auto switches = r.i32();
    auto staged = r.boolean();
    if (!collection || !filename || !fok || !fmsg || !size || !bytes ||
        !local || !host || !forecast || !attempts || !switches || !staged) {
      return Error{Errc::protocol_error, "bad RM file outcome encoding"};
    }
    f.request.collection = std::move(*collection);
    f.request.filename = std::move(*filename);
    if (!*fok) f.status = Error{Errc::unavailable, *fmsg};
    f.size = *size;
    f.bytes = *bytes;
    f.local_name = std::move(*local);
    f.chosen_host = std::move(*host);
    f.forecast_bandwidth = *forecast;
    f.attempts = *attempts;
    f.replica_switches = *switches;
    f.staged_from_tape = *staged;
    result.files.push_back(std::move(f));
  }
  return result;
}

void RequestManagerService::handle(const std::string& method, Payload request,
                                   rpc::Reply reply) {
  if (method != "REQUEST") {
    return reply(Error{Errc::protocol_error, "unknown RM method: " + method});
  }
  ByteReader r(request);
  auto count = r.u32();
  if (!count) return reply(Error{Errc::protocol_error, "bad RM request"});
  std::vector<FileRequest> files;
  files.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto collection = r.str();
    auto filename = r.str();
    auto module = r.str();
    auto params = r.str();
    if (!collection || !filename || !module || !params) {
      return reply(Error{Errc::protocol_error, "bad RM request file"});
    }
    files.push_back(FileRequest{std::move(*collection), std::move(*filename),
                                std::move(*module), std::move(*params)});
  }
  RequestOptions options;
  auto prefix = r.str();
  auto parallelism = r.i32();
  auto buffer = r.i64();
  auto cache = r.boolean();
  auto stall = r.i64();
  auto max_conc = r.u32();
  auto poll = r.i64();
  if (!prefix || !parallelism || !buffer || !cache || !stall || !max_conc ||
      !poll) {
    return reply(Error{Errc::protocol_error, "bad RM request options"});
  }
  options.local_path_prefix = std::move(*prefix);
  options.transfer.parallelism = *parallelism;
  options.transfer.buffer_size = *buffer;
  options.transfer.use_channel_cache = *cache;
  options.transfer.stall_timeout = *stall;
  options.max_concurrent = *max_conc;
  options.poll_interval = *poll;

  rm_.submit(std::move(files), std::move(options),
             [reply = std::move(reply)](RequestResult result) {
               ByteWriter w;
               encode_result(w, result);
               reply(w.take());
             });
}

RequestManagerClient::RequestManagerClient(rpc::Orb& orb,
                                           const net::Host& from,
                                           const net::Host& rm_host)
    : orb_(orb), from_(from), rm_(rm_host) {}

void RequestManagerClient::submit(
    const std::vector<FileRequest>& files, const RequestOptions& options,
    std::function<void(Result<RequestResult>)> done,
    common::SimDuration timeout) {
  ByteWriter w;
  RequestManagerService::encode_request(w, files, options);
  orb_.call(from_, rm_, "rm", "REQUEST", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              if (!r) return done(r.error());
              ByteReader reader(*r);
              done(RequestManagerService::decode_result(reader));
            },
            timeout);
}

}  // namespace esg::rm
