// Transfer-monitoring tool (paper §4, Figure 4).
//
// "Since the transfer of large files can take many minutes, a transfer-
// monitoring tool was developed to show the status of the request transfer
// dynamically.  Each file is monitored every few seconds as to its current
// size.  This information as well as the total bytes transferred for all
// file requests are displayed on the client's screen."
//
// The monitor receives events from the request manager and renders the same
// three-pane display as Figure 4: per-file progress bars on top, the chosen
// replica locations in the middle, and a scrolling message log at the
// bottom.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace esg::rm {

using common::Bytes;
using common::Rate;
using common::SimTime;

class TransferMonitor {
 public:
  /// Mirror monitor events into `registry` (monitor_events_total{event=...});
  /// also enables the metrics pane of the snapshot render() overload.
  /// Pass nullptr to detach.  The registry must outlive the monitor.
  void bind_registry(obs::MetricsRegistry* registry) { registry_ = registry; }

  /// Mirror monitor events into a flight recorder (category "monitor") so a
  /// postmortem timeline also shows the client-side view of the transfer.
  /// Pass nullptr to detach.  The recorder must outlive the monitor.
  void bind_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  // ---- events from the request manager ----
  void file_queued(const std::string& file, Bytes total_size, SimTime now);
  void replica_selected(const std::string& file, const std::string& host,
                        Rate forecast_bandwidth, SimTime now);
  void staging_started(const std::string& file, const std::string& host,
                       SimTime now);
  void transfer_started(const std::string& file, const std::string& host,
                        SimTime now);
  void progress(const std::string& file, Bytes current_size, SimTime now);
  void replica_switched(const std::string& file, const std::string& new_host,
                        SimTime now);
  void transfer_complete(const std::string& file, Bytes size, SimTime now);
  void transfer_failed(const std::string& file, const std::string& reason,
                       SimTime now);

  // ---- display ----
  /// Full Figure 4-style frame.
  std::string render(SimTime now) const;
  /// Same frame plus a metrics pane rendered from a registry snapshot
  /// (queue depth, GridFTP channel bytes, HRM cache hits, retries).
  std::string render(SimTime now, const obs::MetricsSnapshot& snapshot) const;
  /// The scrolling message log (most recent last).  When the log overflows,
  /// the oldest entries are replaced by a "... N earlier lines dropped"
  /// sentinel at the front rather than vanishing silently.
  const std::deque<std::string>& log() const { return log_; }
  /// Lines discarded from the front of log() so far.
  std::size_t dropped_log_lines() const { return dropped_lines_; }

  Bytes total_bytes() const;
  std::size_t files_total() const { return files_.size(); }
  std::size_t files_complete() const;
  bool all_terminal() const;  // every file completed or failed

 private:
  struct FileState {
    Bytes total = 0;
    Bytes current = 0;
    std::string replica_host;
    Rate forecast = 0.0;
    enum class Phase { queued, staging, transferring, complete, failed } phase =
        Phase::queued;
    std::string failure;
    int order = 0;  // stable display order
  };

  void append_log(SimTime now, const std::string& line);
  void count_event(const char* event, const std::string& file = {},
                   const std::string& detail = {});

  std::map<std::string, FileState> files_;
  std::deque<std::string> log_;
  int next_order_ = 0;
  std::size_t dropped_lines_ = 0;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  static constexpr std::size_t kMaxLogLines = 200;
};

}  // namespace esg::rm
