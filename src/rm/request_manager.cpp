#include "rm/request_manager.hpp"

#include <algorithm>

namespace esg::rm {

using common::Bytes;
using common::Errc;
using common::Error;
using common::Rate;
using common::Result;
using common::Status;

RequestManager::RequestManager(rpc::Orb& orb, const net::Host& host,
                               replica::ReplicaCatalog catalog,
                               mds::MdsClient mds,
                               gridftp::GridFtpClient& ftp,
                               TransferMonitor* monitor,
                               BreakerConfig breaker)
    : orb_(orb),
      host_(host),
      catalog_(std::move(catalog)),
      mds_(std::move(mds)),
      ftp_(ftp),
      monitor_(monitor),
      health_(orb.network().simulation(), breaker) {}

// One submit(): owns the worker list and the completion barrier.
struct RequestManager::Job : std::enable_shared_from_this<Job> {
  RequestManager* rm = nullptr;
  RequestOptions options;
  std::vector<FileRequest> files;
  std::vector<std::shared_ptr<Worker>> workers;  // created at submit time
  std::vector<FileOutcome> outcomes;
  std::function<void(RequestResult)> done;
  std::size_t next_index = 0;
  std::size_t running = 0;
  std::size_t finished = 0;
  common::SimTime started = 0;
  // Resolved once per job; updated from pump()/worker_finished().
  obs::Gauge* queue_depth = nullptr;     // files not yet started
  obs::Gauge* active_workers = nullptr;  // workers in flight

  void pump();
  void worker_finished(std::size_t index, FileOutcome outcome);
  void publish_depth() {
    queue_depth->set(static_cast<double>(files.size() - next_index));
    active_workers->set(static_cast<double>(running));
  }
};

// One file: the paper's per-file thread.
struct RequestManager::Worker : std::enable_shared_from_this<Worker> {
  std::shared_ptr<Job> job;
  std::size_t index = 0;
  FileOutcome outcome;
  std::vector<replica::Replica> replicas;   // sorted best-first
  std::shared_ptr<gridftp::ReliableGet> fetch;
  sim::EventHandle poller;
  std::unique_ptr<hrm::HrmClient> hrm_client;
  int stage_attempts = 0;
  common::SimTime stage_started = 0;
  bool terminal = false;
  obs::TrackId track = 0;  // one trace track per file worker
  obs::Span span;          // whole-file "rm.file" span
  obs::Span phase;         // current step's child span

  RequestManager& rm() { return *job->rm; }
  sim::Simulation& sim() { return rm().orb_.network().simulation(); }
  TransferMonitor* monitor() { return rm().monitor_; }

  /// End the current step's span and open the next one under rm.file.  The
  /// matching flight event is what lets a postmortem tile the file's
  /// lifetime into phase slices that sum exactly to the rm.file span.
  void next_phase(const char* name) {
    phase.end();
    phase = sim().tracer().span(name, "rm", track);
    sim().flight_recorder().record("rm", "phase.begin",
                                   outcome.request.filename,
                                   {{"phase", name}}, track);
  }

  /// Runs at submit time for every file, before any worker is admitted:
  /// the rm.file span opens here, so time spent waiting behind the
  /// max_concurrent limit is inside the span and the profiler can bill it
  /// to queue-wait (the span's uncovered prefix before the first phase).
  void enqueue() {
    outcome.started = sim().now();
    outcome.request = job->files[index];
    track = sim().tracer().new_track("rm " + outcome.request.filename);
    span = sim().tracer().span("rm.file", "rm", track);
    span.set_attr("file", outcome.request.filename);
    sim().metrics().counter("rm_files_submitted_total").add();
    sim().flight_recorder().record("rm", "file.queued",
                                   outcome.request.filename, {}, track);
    outcome.local_name = job->options.local_path_prefix + "/" +
                         outcome.request.filename;
    if (!outcome.request.eret_module.empty()) {
      // Server-side-processed fetches land under a distinct local name so
      // they never alias a whole-file copy.
      outcome.local_name += "#" + outcome.request.eret_module;
    }
    if (monitor()) {
      monitor()->file_queued(outcome.request.filename, 0, sim().now());
    }
  }

  /// Admitted past the concurrency limit: the lifecycle proper begins.
  void activate() {
    next_phase("rm.lookup");
    // Step 0: logical file metadata (size, for the progress display).
    auto self = shared_from_this();
    rm().catalog_.lookup_logical_file(
        outcome.request.collection, outcome.request.filename,
        [self](Result<replica::LogicalFileInfo> info) {
          if (info) {
            self->outcome.size = info->size;
            if (self->monitor()) {
              self->monitor()->file_queued(self->outcome.request.filename,
                                           info->size, self->sim().now());
            }
          }
          self->find_replicas();
        });
  }

  // Step 1: all replicas from the replica catalog.
  void find_replicas() {
    next_phase("rm.find_replicas");
    auto self = shared_from_this();
    rm().catalog_.find_replicas(
        outcome.request.collection, outcome.request.filename,
        [self](Result<std::vector<replica::Replica>> r) {
          if (!r) return self->finish(Status(r.error()));
          self->replicas = std::move(*r);
          self->rank_replicas();
        });
  }

  // Step 2+3: NWS forecasts (via MDS) for every candidate, pick the best.
  void rank_replicas() {
    next_phase("rm.rank_replicas");
    auto self = shared_from_this();
    rm().mds_.query_paths_to(
        rm().host_.name(),
        [self](Result<std::vector<mds::NetworkRecord>> records) {
          // Forecast per source host; unknown paths rank as zero.
          std::map<std::string, const mds::NetworkRecord*> by_src;
          if (records) {
            for (const auto& rec : *records) by_src[rec.src_host] = &rec;
          }
          auto score = [&by_src](const replica::Replica& rep) -> Rate {
            auto it = by_src.find(rep.location.hostname);
            if (it == by_src.end()) return 0.0;
            if (it->second->probe_failed) return -1.0;  // likely down
            return it->second->bandwidth;
          };
          std::stable_sort(self->replicas.begin(), self->replicas.end(),
                           [&score](const auto& a, const auto& b) {
                             return score(a) > score(b);
                           });
          // Circuit-breaker pass: demote hosts whose breaker is open (and
          // still cooling) below every healthy candidate, keeping the NWS
          // order within each group.
          std::stable_partition(
              self->replicas.begin(), self->replicas.end(),
              [self](const replica::Replica& rep) {
                return self->rm().health_.healthy(rep.location.hostname);
              });
          const auto& best = self->replicas.front();
          self->outcome.chosen_location = best.location.name;
          self->outcome.chosen_host = best.location.hostname;
          self->outcome.forecast_bandwidth = std::max(0.0, score(best));
          self->sim()
              .metrics()
              .counter("rm_replica_selected_total",
                       {{"host", best.location.hostname}})
              .add();
          self->span.set_attr("replica", best.location.hostname);
          self->sim().flight_recorder().record(
              "rm", "replica.selected", self->outcome.request.filename,
              {{"host", best.location.hostname}}, self->track);
          if (self->monitor()) {
            self->monitor()->replica_selected(
                self->outcome.request.filename, best.location.hostname,
                self->outcome.forecast_bandwidth, self->sim().now());
          }
          self->maybe_stage();
        });
  }

  // Step 4a: HRM staging when the chosen replica sits on tape.
  void maybe_stage() {
    const auto& best = replicas.front();
    if (best.location.storage_type != "mss") return begin_transfer();
    next_phase("hrm.stage");
    net::Host* hrm_host =
        rm().orb_.network().find_host(best.location.hostname);
    if (hrm_host == nullptr) {
      return finish(Error{Errc::not_found,
                          "unknown HRM host " + best.location.hostname});
    }
    outcome.staged_from_tape = true;
    if (monitor()) {
      monitor()->staging_started(outcome.request.filename,
                                 best.location.hostname, sim().now());
    }
    hrm_client = std::make_unique<hrm::HrmClient>(rm().orb_, rm().host_,
                                                  *hrm_host);
    stage_started = sim().now();
    attempt_stage();
  }

  /// One stage attempt; retries under options.stage_retry (the HRM may be
  /// mid-crash or its tape library stalled — staging is the slowest, most
  /// failure-prone rung of the fetch ladder).
  void attempt_stage() {
    if (terminal) return;
    const auto& policy = job->options.stage_retry;
    if (stage_attempts > 0 &&
        policy.past_deadline(stage_started, sim().now())) {
      // A truncated backoff lands exactly on the deadline; fail here rather
      // than issuing one more stage RPC past the overall budget.
      return finish(Error{Errc::timed_out,
                          "stage deadline exceeded after " +
                              std::to_string(stage_attempts) + " attempts"});
    }
    ++stage_attempts;
    const auto timeout = policy.attempt_timeout > 0
                             ? policy.attempt_timeout
                             : job->options.stage_timeout;
    auto self = shared_from_this();
    hrm_client->stage(
        replicas.front().url.path, track,
        [self](Result<Bytes> staged) {
          if (self->terminal) return;
          if (staged) return self->begin_transfer();
          const auto& policy = self->job->options.stage_retry;
          if (policy.out_of_attempts(self->stage_attempts) ||
              policy.past_deadline(self->stage_started, self->sim().now())) {
            return self->finish(Status(staged.error()));
          }
          self->sim().metrics().counter("rm_stage_retries_total").add();
          // Backoff truncated to the remaining deadline budget: the retry
          // fires no later than the deadline itself, where attempt_stage()
          // gives up, instead of sleeping past the overall budget.  The
          // exact sleep goes on the event so the profiler can bill the
          // window to the backoff category.
          const common::SimDuration delay = policy.backoff_within_deadline(
              self->stage_attempts, self->stage_started, self->sim().now(),
              self->sim().rng());
          self->sim().flight_recorder().record(
              "rm", "stage.retry", self->outcome.request.filename,
              {{"attempt", std::to_string(self->stage_attempts)},
               {"error", staged.error().to_string()},
               {"backoff_ns", std::to_string(delay)}},
              self->track);
          self->sim().schedule_after(delay,
                                     [self] { self->attempt_stage(); });
        },
        timeout);
  }

  // Step 4b: GridFTP get through the reliability plugin, alternates ready.
  void begin_transfer() {
    next_phase("rm.transfer");
    std::vector<gridftp::FtpUrl> urls;
    urls.reserve(replicas.size());
    for (const auto& rep : replicas) urls.push_back(rep.url);
    if (monitor()) {
      monitor()->transfer_started(outcome.request.filename,
                                  outcome.chosen_host, sim().now());
    }
    gridftp::TransferOptions transfer = job->options.transfer;
    transfer.obs_track = track;  // nest gridftp/net spans under this worker
    if (!outcome.request.eret_module.empty()) {
      transfer.eret_module = outcome.request.eret_module;
      transfer.eret_params = outcome.request.eret_params;
    }
    // Wire the per-server circuit breakers into the reliability plugin:
    // attempts consult allow() and every outcome feeds the breaker, unless
    // the caller supplied its own hooks.
    gridftp::ReliabilityOptions reliability = job->options.reliability;
    auto* health = &rm().health_;
    if (!reliability.replica_allowed) {
      reliability.replica_allowed = [health](const std::string& host) {
        return health->allow(host);
      };
    }
    if (!reliability.on_attempt_result) {
      reliability.on_attempt_result = [health](const std::string& host,
                                               bool ok) {
        if (ok) {
          health->record_success(host);
        } else {
          health->record_failure(host);
        }
      };
    }
    auto self = shared_from_this();
    fetch = gridftp::ReliableGet::start(
        rm().ftp_, std::move(urls), outcome.local_name, transfer,
        std::move(reliability), nullptr,
        [self](gridftp::ReliableResult r) {
          self->outcome.bytes = r.total_bytes;
          self->outcome.attempts = r.attempts;
          self->outcome.replica_switches = r.replica_switches;
          self->finish(r.status);
        });
    arm_poller();
  }

  // Step 5: poll the local file size every few seconds (paper behaviour).
  void arm_poller() {
    auto self = shared_from_this();
    poller = sim().schedule_every(job->options.poll_interval, [self] {
      if (self->terminal) return false;
      const Bytes size = self->rm().ftp_.local_storage()
                             .size_of(self->outcome.local_name)
                             .value_or(0);
      if (self->monitor()) {
        self->monitor()->progress(self->outcome.request.filename, size,
                                  self->sim().now());
      }
      if (self->fetch && self->fetch->active()) {
        const std::string current = self->fetch->current_replica().host;
        if (current != self->outcome.chosen_host) {
          self->outcome.chosen_host = current;
          self->sim().flight_recorder().record(
              "rm", "replica.switched", self->outcome.request.filename,
              {{"host", current}}, self->track);
          if (self->monitor()) {
            self->monitor()->replica_switched(self->outcome.request.filename,
                                              current, self->sim().now());
          }
        }
      }
      return true;
    });
  }

  void finish(Status status) {
    if (terminal) return;
    terminal = true;
    poller.cancel();
    outcome.status = std::move(status);
    outcome.finished = sim().now();
    auto& metrics = sim().metrics();
    metrics.counter(outcome.status.ok() ? "rm_files_completed_total"
                                        : "rm_files_failed_total")
        .add();
    metrics
        .histogram("rm_file_duration_seconds", obs::duration_boundaries())
        .observe(common::to_seconds(outcome.finished - outcome.started));
    if (outcome.attempts > 1) {
      metrics.counter("rm_retries_total")
          .add(static_cast<std::uint64_t>(outcome.attempts - 1));
    }
    if (outcome.replica_switches > 0) {
      metrics.counter("rm_replica_switches_total")
          .add(static_cast<std::uint64_t>(outcome.replica_switches));
    }
    phase.end();
    span.set_attr("status",
                  outcome.status.ok() ? "ok"
                                      : outcome.status.error().to_string());
    span.set_attr("bytes", std::to_string(outcome.bytes));
    span.end();
    sim().flight_recorder().record(
        "rm", outcome.status.ok() ? "file.complete" : "file.failed",
        outcome.request.filename,
        {{"status", outcome.status.ok()
                        ? std::string("ok")
                        : outcome.status.error().to_string()},
         {"bytes", std::to_string(outcome.bytes)},
         {"attempts", std::to_string(outcome.attempts)},
         {"switches", std::to_string(outcome.replica_switches)}},
        track);
    if (monitor()) {
      if (outcome.status.ok()) {
        monitor()->transfer_complete(outcome.request.filename, outcome.bytes,
                                     sim().now());
      } else {
        monitor()->transfer_failed(outcome.request.filename,
                                   outcome.status.error().to_string(),
                                   sim().now());
      }
    }
    // Release the HRM pin if we staged.
    if (outcome.staged_from_tape && hrm_client && !replicas.empty()) {
      hrm_client->release(replicas.front().url.path, [](Status) {});
    }
    job->worker_finished(index, std::move(outcome));
  }
};

void RequestManager::Job::pump() {
  while (running < options.max_concurrent && next_index < files.size()) {
    ++running;
    publish_depth();
    workers[next_index++]->activate();
  }
  publish_depth();
}

void RequestManager::Job::worker_finished(std::size_t index,
                                          FileOutcome outcome) {
  outcomes[index] = std::move(outcome);
  workers[index].reset();  // callbacks keep the worker alive while needed
  --running;
  ++finished;
  publish_depth();
  if (finished == files.size()) {
    RequestResult result;
    result.files = std::move(outcomes);
    result.started = started;
    result.finished = rm->orb_.network().simulation().now();
    for (const auto& f : result.files) {
      result.total_bytes += f.bytes;
      if (!f.status.ok() && result.status.ok()) result.status = f.status;
    }
    if (done) done(std::move(result));
    return;
  }
  pump();
}

void RequestManager::submit(std::vector<FileRequest> files,
                            RequestOptions options,
                            std::function<void(RequestResult)> done) {
  auto job = std::make_shared<Job>();
  job->rm = this;
  job->options = std::move(options);
  job->files = std::move(files);
  job->outcomes.resize(job->files.size());
  job->done = std::move(done);
  job->started = orb_.network().simulation().now();
  auto& metrics = orb_.network().simulation().metrics();
  job->queue_depth = &metrics.gauge("rm_queue_depth");
  job->active_workers = &metrics.gauge("rm_active_workers");
  if (job->files.empty()) {
    orb_.network().simulation().schedule_after(0, [job] {
      RequestResult r;
      r.started = r.finished = job->started;
      job->done(std::move(r));
    });
    return;
  }
  // Every file opens its rm.file span now; pump() admits them through the
  // concurrency limit, so the pre-activation stretch is visible queue wait.
  job->workers.reserve(job->files.size());
  for (std::size_t i = 0; i < job->files.size(); ++i) {
    auto worker = std::make_shared<Worker>();
    worker->job = job;
    worker->index = i;
    worker->enqueue();
    job->workers.push_back(std::move(worker));
  }
  job->pump();
}

}  // namespace esg::rm
