#include "dods/dods.hpp"

namespace esg::dods {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using rpc::Payload;

DodsServer::DodsServer(rpc::Orb& orb, const net::Host& host,
                       std::shared_ptr<storage::HostStorage> storage)
    : orb_(orb), host_(host), storage_(std::move(storage)) {
  orb_.register_service(
      host_, "dods",
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        handle(method, std::move(request), std::move(reply));
      });
}

DodsServer::~DodsServer() { orb_.unregister_service(host_, "dods"); }

void DodsServer::register_filter(const std::string& name, Filter filter) {
  filters_[name] = std::move(filter);
}

Result<storage::FileObject> DodsServer::resolve_ticket(std::uint64_t ticket) {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return Error{Errc::not_found, "unknown DODS ticket"};
  }
  storage::FileObject file = it->second;
  tickets_.erase(it);
  return file;
}

void DodsServer::handle(const std::string& method, Payload request,
                        rpc::Reply reply) {
  if (method != "GET") {
    return reply(Error{Errc::protocol_error, "405 method not allowed"});
  }
  ByteReader r(request);
  auto path = r.str();
  auto filter_name = r.str();
  auto constraint = r.str();
  if (!path || !filter_name || !constraint) {
    return reply(Error{Errc::protocol_error, "400 bad request"});
  }
  auto file = storage_->get(*path);
  if (!file) return reply(Error{Errc::not_found, "404 " + *path});

  storage::FileObject effective = std::move(*file);
  if (!filter_name->empty()) {
    auto it = filters_.find(*filter_name);
    if (it == filters_.end()) {
      return reply(Error{Errc::invalid_argument,
                         "501 no such filter: " + *filter_name});
    }
    auto processed = it->second(effective, *constraint);
    if (!processed) return reply(processed.error());
    effective = std::move(*processed);
  }
  const std::uint64_t ticket = next_ticket_++;
  tickets_[ticket] = effective;
  ByteWriter w;
  w.u64(ticket);
  w.i64(effective.size);
  reply(w.take());
}

// Per-fetch state machine; kept alive by shared_ptr captures.
struct DodsClient::Op : std::enable_shared_from_this<DodsClient::Op> {
  DodsClient* client = nullptr;
  const net::Host* server_host = nullptr;
  DodsServer* server = nullptr;
  std::string path, local_name;
  DodsOptions options;
  std::function<void(DodsResult)> done;
  DodsResult result;
  std::unique_ptr<net::TcpTransfer> tcp;
  std::uint64_t ticket = 0;
  Bytes size = 0;
  bool finished = false;

  sim::Simulation& sim() { return client->orb_.network().simulation(); }

  void attempt() {
    if (finished) return;
    if (result.attempts >= options.max_attempts) {
      return finish(Error{Errc::timed_out,
                          "gave up after " +
                              std::to_string(result.attempts) + " requests"});
    }
    ++result.attempts;
    ByteWriter w;
    w.str(path);
    w.str(options.filter);
    w.str(options.constraint);
    auto self = shared_from_this();
    client->orb_.call(
        client->local_, *server_host, "dods", "GET", w.take(),
        [self](Result<Payload> r) {
          if (self->finished) return;
          if (!r) return self->retry_or_fail(Status(r.error()));
          ByteReader reader(*r);
          auto ticket = reader.u64();
          auto size = reader.i64();
          if (!ticket || !size) {
            return self->finish(Error{Errc::protocol_error, "bad GET reply"});
          }
          self->ticket = *ticket;
          self->size = *size;
          self->stream_body();
        },
        options.stall_timeout);
  }

  void stream_body() {
    // One TCP stream, cold every time (HTTP/1.0 spirit), no markers: a
    // failure throws the partial body away.
    net::TcpOptions tcp_opts;
    tcp_opts.streams = 1;
    tcp_opts.buffer_size = options.buffer_size;
    tcp_opts.slow_start = true;
    tcp_opts.dead_interval = options.stall_timeout;
    tcp_opts.connect_delay =
        client->orb_.network().rtt(*server_host, client->local_);
    auto self = shared_from_this();
    net::TcpCallbacks cbs;
    cbs.on_complete = [self](Status st) {
      if (self->finished) return;
      if (!st.ok()) return self->retry_or_fail(st);
      self->result.bytes_transferred = self->size;
      // Attach content (emulator data plane).
      if (self->server != nullptr) {
        if (auto file = self->server->resolve_ticket(self->ticket)) {
          file->name = self->local_name;
          (void)self->client->storage_->put(std::move(*file));
        }
      }
      self->finish(common::ok_status());
    };
    tcp = std::make_unique<net::TcpTransfer>(client->orb_.network(),
                                             *server_host, client->local_,
                                             size, tcp_opts, std::move(cbs));
  }

  void retry_or_fail(Status st) {
    if (tcp) tcp->cancel();
    if (result.attempts >= options.max_attempts) return finish(std::move(st));
    auto self = shared_from_this();
    sim().schedule_after(options.retry_backoff, [self] { self->attempt(); });
  }

  void finish(Status st) {
    if (finished) return;
    finished = true;
    if (tcp) tcp->cancel();
    result.status = std::move(st);
    result.finished = sim().now();
    if (done) done(std::move(result));
  }
};

DodsClient::DodsClient(rpc::Orb& orb, const net::Host& local_host,
                       std::shared_ptr<storage::HostStorage> local_storage,
                       const std::map<std::string, DodsServer*>& servers)
    : orb_(orb),
      local_(local_host),
      storage_(std::move(local_storage)),
      servers_(servers) {}

void DodsClient::fetch(const std::string& server_host, const std::string& path,
                       const std::string& local_name,
                       const DodsOptions& options,
                       std::function<void(DodsResult)> done) {
  auto op = std::make_shared<Op>();
  op->client = this;
  op->server_host = orb_.network().find_host(server_host);
  auto it = servers_.find(server_host);
  op->server = it == servers_.end() ? nullptr : it->second;
  op->path = path;
  op->local_name = local_name;
  op->options = options;
  op->done = std::move(done);
  op->result.started = orb_.network().simulation().now();
  if (op->server_host == nullptr) {
    orb_.network().simulation().schedule_after(0, [op, server_host] {
      op->finish(Error{Errc::not_found, "unknown host: " + server_host});
    });
    return;
  }
  op->attempt();
}

}  // namespace esg::dods
