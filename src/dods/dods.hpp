// DODS-style remote data access — the related-work baseline (paper §8).
//
// "DODS, the Distributed Oceanographic Data System, has focused on the
// complementary problem of providing remote access to a data file ...
// DODS servers provide filters for a number of different data formats
// that provide subsetting and format translation ... DODS was designed
// with a heavy emphasis on generality and relies solely upon HTTP as a
// transport protocol.  While this approach facilitates easy deployment,
// it is not well-suited to HPC applications or very large data movement
// over high-bandwidth wide-area networks.  In addition, DODS does not
// currently address wide-area security requirements, replica management,
// access to secondary storage, or distributed catalog functions."
//
// The emulated DODS captures exactly that trade-off:
//   + URL access with constraint expressions (server-side subsetting via
//     pluggable filters, ncx registered by default);
//   + trivial deployment: no certificates, no catalogs;
//   - one TCP stream per request, modest HTTP-era socket buffers;
//   - no restart: a failed transfer starts over from byte zero;
//   - no replica selection: the URL names one server, reachable or not.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "net/tcp.hpp"
#include "rpc/orb.hpp"
#include "storage/storage.hpp"

namespace esg::dods {

using common::Bytes;

/// A subsetting/translation filter: applied when a request carries a
/// constraint expression ("?var=...").
using Filter = std::function<common::Result<storage::FileObject>(
    const storage::FileObject&, const std::string& constraint)>;

class DodsServer {
 public:
  DodsServer(rpc::Orb& orb, const net::Host& host,
             std::shared_ptr<storage::HostStorage> storage);
  ~DodsServer();

  const net::Host& host() const { return host_; }
  storage::HostStorage& storage() { return *storage_; }

  void register_filter(const std::string& name, Filter filter);

  /// Emulator data plane (same pattern as GridFTP tickets).
  common::Result<storage::FileObject> resolve_ticket(std::uint64_t ticket);

 private:
  void handle(const std::string& method, rpc::Payload request,
              rpc::Reply reply);

  rpc::Orb& orb_;
  const net::Host& host_;
  std::shared_ptr<storage::HostStorage> storage_;
  std::map<std::string, Filter> filters_;
  std::map<std::uint64_t, storage::FileObject> tickets_;
  std::uint64_t next_ticket_ = 1;
};

struct DodsResult {
  common::Status status = common::ok_status();
  Bytes bytes_transferred = 0;  // useful bytes landed (0 after any failure)
  int attempts = 0;             // full re-requests (no restart markers)
  common::SimTime started = 0;
  common::SimTime finished = 0;
};

struct DodsOptions {
  Bytes buffer_size = 64 * common::kKiB;  // HTTP-era socket buffer
  common::SimDuration stall_timeout = 30 * common::kSecond;
  int max_attempts = 1;  // re-GET from scratch on failure
  common::SimDuration retry_backoff = 10 * common::kSecond;
  /// Filter name + constraint; empty = whole file.
  std::string filter;
  std::string constraint;
};

class DodsClient {
 public:
  /// `servers` maps host name -> server object (process-local data plane).
  DodsClient(rpc::Orb& orb, const net::Host& local_host,
             std::shared_ptr<storage::HostStorage> local_storage,
             const std::map<std::string, DodsServer*>& servers);

  /// HTTP-style GET: one TCP stream, no auth, no restart.
  void fetch(const std::string& server_host, const std::string& path,
             const std::string& local_name, const DodsOptions& options,
             std::function<void(DodsResult)> done);

  storage::HostStorage& local_storage() { return *storage_; }

 private:
  struct Op;

  rpc::Orb& orb_;
  const net::Host& local_;
  std::shared_ptr<storage::HostStorage> storage_;
  const std::map<std::string, DodsServer*>& servers_;
};

}  // namespace esg::dods
