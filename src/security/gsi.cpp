#include "security/gsi.hpp"

#include <cassert>

#include "common/bytebuf.hpp"
#include "common/strings.hpp"

namespace esg::security {

using common::Errc;
using common::Error;
using common::fnv1a64;
using common::Result;
using common::Status;

std::string Certificate::signed_payload() const {
  return subject + "|" + issuer + "|" + std::to_string(not_before) + "|" +
         std::to_string(not_after) + "|" + std::to_string(public_tag) + "|" +
         (is_proxy ? "proxy" : "ee");
}

namespace {

std::uint64_t keyed_tag(const std::string& payload, std::uint64_t key) {
  return fnv1a64(payload) ^ (key * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

Credential Credential::delegate(SimTime now, SimDuration lifetime) const {
  Credential proxy;
  proxy.cert.subject = cert.subject + "/CN=proxy";
  proxy.cert.issuer = cert.subject;
  proxy.cert.not_before = now;
  proxy.cert.not_after = std::min(now + lifetime, cert.not_after);
  proxy.cert.is_proxy = true;
  // Derive the proxy keypair deterministically from the parent's key and
  // the validity window (good enough for an emulator's uniqueness needs).
  proxy.private_tag = fnv1a64(proxy.cert.subject) ^ private_tag ^
                      static_cast<std::uint64_t>(now);
  proxy.cert.public_tag = proxy.private_tag * 0x100000001b3ULL;
  // Proxies are signed with the *parent's* key (GSI's impersonation chain).
  proxy.cert.signature = keyed_tag(proxy.cert.signed_payload(), private_tag);
  return proxy;
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::uint64_t secret)
    : name_(std::move(name)), secret_(secret) {}

std::uint64_t CertificateAuthority::sign(const Certificate& cert) const {
  return keyed_tag(cert.signed_payload(), secret_);
}

Credential CertificateAuthority::issue(const std::string& subject, SimTime now,
                                       SimDuration lifetime) const {
  Credential cred;
  cred.cert.subject = subject;
  cred.cert.issuer = name_;
  cred.cert.not_before = now;
  cred.cert.not_after = now + lifetime;
  cred.private_tag = fnv1a64(subject) ^ secret_;
  cred.cert.public_tag = cred.private_tag * 0x100000001b3ULL;
  cred.cert.signature = sign(cred.cert);
  return cred;
}

Status CertificateAuthority::verify_chain(
    const std::vector<Certificate>& chain, SimTime now) const {
  if (chain.empty()) return Error{Errc::auth_failed, "empty chain"};

  // The last element must be a CA-issued end-entity certificate.
  const Certificate& root = chain.back();
  if (root.is_proxy) {
    return Error{Errc::auth_failed, "chain does not end at an identity cert"};
  }
  if (root.issuer != name_) {
    return Error{Errc::auth_failed, "unknown issuer: " + root.issuer};
  }
  if (root.signature != sign(root)) {
    return Error{Errc::auth_failed, "bad CA signature on " + root.subject};
  }

  // Walk proxies from the identity outwards, verifying linkage + windows.
  for (std::size_t i = chain.size(); i-- > 0;) {
    const Certificate& cert = chain[i];
    if (now < cert.not_before || now >= cert.not_after) {
      return Error{Errc::auth_failed, "certificate expired: " + cert.subject};
    }
    if (i + 1 < chain.size()) {
      const Certificate& signer = chain[i + 1];
      if (!cert.is_proxy) {
        return Error{Errc::auth_failed,
                     "non-proxy " + cert.subject + " inside chain"};
      }
      if (cert.issuer != signer.subject) {
        return Error{Errc::auth_failed,
                     "broken chain at " + cert.subject};
      }
      if (cert.not_after > signer.not_after) {
        return Error{Errc::auth_failed,
                     "proxy outlives signer: " + cert.subject};
      }
      // Proxies are verifiable with the signer's private key; the emulator
      // reconstructs it from the public tag (toy relation, see header note).
      const std::uint64_t signer_private =
          signer.public_tag * 0xce965057aff6957bULL;  // 0x100000001b3^-1 mod 2^64
      if (cert.signature !=
          keyed_tag(cert.signed_payload(), signer_private)) {
        return Error{Errc::auth_failed,
                     "bad proxy signature on " + cert.subject};
      }
    }
  }
  return common::ok_status();
}

void CredentialWallet::set_identity(Credential credential) {
  chain_.clear();
  chain_.push_back(std::move(credential));
}

const Credential& CredentialWallet::push_proxy(SimTime now,
                                               SimDuration lifetime) {
  assert(!chain_.empty());
  chain_.push_back(chain_.back().delegate(now, lifetime));
  return chain_.back();
}

std::vector<Certificate> CredentialWallet::chain() const {
  // Ordered [active, ..., identity] as verify_chain expects.
  std::vector<Certificate> out;
  out.reserve(chain_.size());
  for (std::size_t i = chain_.size(); i-- > 0;) out.push_back(chain_[i].cert);
  return out;
}

const Credential& CredentialWallet::active() const {
  assert(!chain_.empty());
  return chain_.back();
}

void GridMapFile::add(const std::string& subject,
                      const std::string& local_user) {
  entries_.emplace_back(subject, local_user);
}

std::string GridMapFile::base_subject(const std::string& subject) {
  std::string base = subject;
  const std::string marker = "/CN=proxy";
  while (common::ends_with(base, marker)) {
    base.resize(base.size() - marker.size());
  }
  return base;
}

Result<std::string> GridMapFile::map(const std::string& subject) const {
  const std::string base = base_subject(subject);
  for (const auto& [dn, user] : entries_) {
    if (dn == base) return user;
  }
  return Error{Errc::permission_denied, "no grid-mapfile entry for " + base};
}

SimDuration handshake_cost(SimDuration rtt, bool delegate_proxy) {
  const int rounds = kAuthRounds + (delegate_proxy ? kDelegationRounds : 0);
  return rounds * rtt;
}

}  // namespace esg::security
