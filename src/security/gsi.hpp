// Toy Grid Security Infrastructure (GSI).
//
// GridFTP in the paper authenticates every control and data channel with
// GSI: X.509 certificates, proxy delegation, and a grid-mapfile mapping
// distinguished names to local accounts.  Two aspects of GSI matter for the
// reproduction:
//
//  1. the *logic* — certificate chains, proxy delegation, expiry, and
//     mapfile authorization, all reproduced here faithfully; and
//  2. the *cost* — a GSI handshake spends several round trips, which is a
//     large part of why rebuilding data channels between consecutive
//     transfers produced the bandwidth dips in Figure 8 (and why data
//     channel caching, which skips re-authentication, was added afterward).
//
// SECURITY NOTE: signatures here are keyed FNV-1a tags, NOT cryptography.
// This is an emulator of protocol structure and cost, never of secrecy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace esg::security {

using common::SimDuration;
using common::SimTime;

struct Certificate {
  std::string subject;       // e.g. "/O=Grid/OU=esg/CN=rm/lbnl.gov"
  std::string issuer;        // CA name or delegating subject for proxies
  SimTime not_before = 0;
  SimTime not_after = 0;
  std::uint64_t public_tag = 0;  // stands in for the public key
  std::uint64_t signature = 0;   // keyed tag over the fields above
  bool is_proxy = false;

  /// The byte string covered by the signature.
  std::string signed_payload() const;
};

/// A certificate plus its "private key" tag.  Held by the entity it names.
struct Credential {
  Certificate cert;
  std::uint64_t private_tag = 0;

  /// Delegate a proxy credential (subject gains a "/CN=proxy" component),
  /// valid for `lifetime` starting at `now`, never outliving the parent.
  Credential delegate(SimTime now, SimDuration lifetime) const;
};

class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::string name, std::uint64_t secret = 0x5343'2001);

  const std::string& name() const { return name_; }

  /// Issue an end-entity credential for `subject`.
  Credential issue(const std::string& subject, SimTime now,
                   SimDuration lifetime) const;

  /// Verify a chain ordered [end-entity or proxy, ..., CA-issued root cert].
  /// Checks signatures, issuer linkage, validity windows at `now`, and that
  /// proxies never outlive their signer.
  common::Status verify_chain(const std::vector<Certificate>& chain,
                              SimTime now) const;

 private:
  std::uint64_t sign(const Certificate& cert) const;

  std::string name_;
  std::uint64_t secret_;
};

/// Builds the chain for a credential (proxy chains remember their ancestry).
class CredentialWallet {
 public:
  /// Store an identity credential issued directly by the CA.
  void set_identity(Credential credential);
  /// Create (and remember) a proxy for the current end of the chain.
  const Credential& push_proxy(SimTime now, SimDuration lifetime);

  /// Chain from the active credential back to the CA-issued certificate.
  std::vector<Certificate> chain() const;
  const Credential& active() const;
  bool has_identity() const { return !chain_.empty(); }

 private:
  std::vector<Credential> chain_;  // [identity, proxy, proxy-of-proxy, ...]
};

/// grid-mapfile: authorizes distinguished names onto local accounts.
class GridMapFile {
 public:
  void add(const std::string& subject, const std::string& local_user);
  /// Proxies are authorized through the subject they extend.
  common::Result<std::string> map(const std::string& subject) const;

  /// Strip proxy components to recover the identity subject.
  static std::string base_subject(const std::string& subject);

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Handshake cost model: mutual authentication spends `kAuthRounds` round
/// trips; delegating a proxy to the server adds one more.
inline constexpr int kAuthRounds = 2;
inline constexpr int kDelegationRounds = 1;

SimDuration handshake_cost(SimDuration rtt, bool delegate_proxy);

}  // namespace esg::security
