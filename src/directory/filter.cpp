#include "directory/filter.hpp"

#include <cstdlib>
#include <vector>

#include "common/strings.hpp"

namespace esg::directory {

using common::Errc;
using common::Error;
using common::Result;

struct Filter::Node {
  enum class Kind { and_, or_, not_, equals, present, ge, le, all };
  Kind kind = Kind::all;
  std::string attr;
  std::string value;  // may contain '*' for equals
  std::vector<std::shared_ptr<const Node>> children;
};

namespace {

using Node = Filter::Node;

// Recursive-descent parser over the filter text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<std::shared_ptr<const Node>> parse() {
    auto node = parse_filter();
    if (!node) return node;
    skip_ws();
    if (pos_ != text_.size()) {
      return err("trailing characters after filter");
    }
    return node;
  }

 private:
  Error err(const std::string& what) const {
    return Error{Errc::invalid_argument,
                 what + " at offset " + std::to_string(pos_) + " in '" +
                     text_ + "'"};
  }

  void skip_ws() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
  }

  Result<std::shared_ptr<const Node>> parse_filter() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return err("expected '('");
    }
    ++pos_;
    skip_ws();
    if (pos_ >= text_.size()) return err("unterminated filter");

    auto node = std::make_shared<Node>();
    const char op = text_[pos_];
    if (op == '&' || op == '|') {
      ++pos_;
      node->kind = op == '&' ? Node::Kind::and_ : Node::Kind::or_;
      skip_ws();
      while (pos_ < text_.size() && text_[pos_] == '(') {
        auto child = parse_filter();
        if (!child) return child;
        node->children.push_back(std::move(*child));
        skip_ws();
      }
    } else if (op == '!') {
      ++pos_;
      node->kind = Node::Kind::not_;
      auto child = parse_filter();
      if (!child) return child;
      node->children.push_back(std::move(*child));
      skip_ws();
    } else {
      // Simple comparison: attr op value, where op is '=', '>=', or '<='.
      const auto start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '=' &&
             text_[pos_] != ')' && text_[pos_] != '>' && text_[pos_] != '<') {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] == ')') {
        return err("expected comparison operator");
      }
      std::string attr(common::trim(text_.substr(start, pos_ - start)));
      if (attr.empty()) return err("empty attribute");
      if (text_[pos_] == '>' || text_[pos_] == '<') {
        node->kind = text_[pos_] == '>' ? Node::Kind::ge : Node::Kind::le;
        ++pos_;
        if (pos_ >= text_.size() || text_[pos_] != '=') {
          return err("expected '=' after '>'/'<'");
        }
      } else {
        node->kind = Node::Kind::equals;
      }
      ++pos_;  // consume '='
      const auto vstart = pos_;
      int depth = 0;
      while (pos_ < text_.size() && (text_[pos_] != ')' || depth > 0)) {
        if (text_[pos_] == '(') ++depth;
        if (text_[pos_] == ')') --depth;
        ++pos_;
      }
      node->attr = common::to_lower(attr);
      node->value = std::string(common::trim(text_.substr(vstart, pos_ - vstart)));
      if (node->kind == Node::Kind::equals && node->value == "*") {
        node->kind = Node::Kind::present;
      }
    }
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != ')') {
      return err("expected ')'");
    }
    ++pos_;
    return std::const_pointer_cast<const Node>(node);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool compare_ge(const std::string& a, const std::string& b) {
  char* ea = nullptr;
  char* eb = nullptr;
  const long long ia = std::strtoll(a.c_str(), &ea, 10);
  const long long ib = std::strtoll(b.c_str(), &eb, 10);
  if (ea && *ea == '\0' && eb && *eb == '\0' && !a.empty() && !b.empty()) {
    return ia >= ib;
  }
  return a >= b;
}

bool eval(const Node& node, const Entry& entry) {
  switch (node.kind) {
    case Node::Kind::all:
      return true;
    case Node::Kind::and_:
      for (const auto& c : node.children) {
        if (!eval(*c, entry)) return false;
      }
      return true;
    case Node::Kind::or_:
      for (const auto& c : node.children) {
        if (eval(*c, entry)) return true;
      }
      return false;
    case Node::Kind::not_:
      return !node.children.empty() && !eval(*node.children.front(), entry);
    case Node::Kind::present:
      return entry.has(node.attr);
    case Node::Kind::equals:
      for (const auto& v : entry.values(node.attr)) {
        if (node.value.find('*') != std::string::npos
                ? common::wildcard_match(node.value, v)
                : v == node.value) {
          return true;
        }
      }
      return false;
    case Node::Kind::ge:
      for (const auto& v : entry.values(node.attr)) {
        if (compare_ge(v, node.value)) return true;
      }
      return false;
    case Node::Kind::le:
      for (const auto& v : entry.values(node.attr)) {
        if (compare_ge(node.value, v)) return true;
      }
      return false;
  }
  return false;
}

std::string render(const Node& node) {
  switch (node.kind) {
    case Node::Kind::all:
      return "(objectclass=*)";
    case Node::Kind::and_:
    case Node::Kind::or_: {
      std::string out = node.kind == Node::Kind::and_ ? "(&" : "(|";
      for (const auto& c : node.children) out += render(*c);
      return out + ")";
    }
    case Node::Kind::not_:
      return "(!" + (node.children.empty() ? "" : render(*node.children[0])) +
             ")";
    case Node::Kind::present:
      return "(" + node.attr + "=*)";
    case Node::Kind::equals:
      return "(" + node.attr + "=" + node.value + ")";
    case Node::Kind::ge:
      return "(" + node.attr + ">=" + node.value + ")";
    case Node::Kind::le:
      return "(" + node.attr + "<=" + node.value + ")";
  }
  return "";
}

}  // namespace

Result<Filter> Filter::parse(const std::string& text) {
  Parser parser(text);
  auto root = parser.parse();
  if (!root) return root.error();
  return Filter(std::move(*root));
}

Filter Filter::match_all() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::all;
  return Filter(std::move(node));
}

bool Filter::matches(const Entry& entry) const {
  return root_ && eval(*root_, entry);
}

std::string Filter::to_string() const {
  return root_ ? render(*root_) : "(objectclass=*)";
}

}  // namespace esg::directory
