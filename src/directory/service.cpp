#include "directory/service.hpp"

namespace esg::directory {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using rpc::Payload;

namespace {

Payload encode_status() { return {}; }

Error decode_error(const std::string& context) {
  return Error{Errc::protocol_error, "malformed " + context + " payload"};
}

}  // namespace

DirectoryService::DirectoryService(rpc::Orb& orb, const net::Host& host,
                                   std::shared_ptr<DirectoryServer> server,
                                   std::string service_name)
    : orb_(orb),
      host_(host),
      server_(std::move(server)),
      service_name_(std::move(service_name)) {
  orb_.register_service(
      host_, service_name_,
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        dispatch(method, std::move(request), std::move(reply));
      });
}

void DirectoryService::dispatch(const std::string& method, Payload request,
                                rpc::Reply reply) {
  ByteReader r(request);
  if (method == "add") {
    auto ensure = r.boolean();
    auto entry = ensure ? Entry::deserialize(r)
                        : Result<Entry>(decode_error("add"));
    if (!ensure || !entry) return reply(decode_error("add"));
    const Status st = *ensure ? server_->ensure(std::move(*entry))
                              : server_->add(std::move(*entry));
    if (!st.ok()) return reply(st.error());
    return reply(encode_status());
  }
  if (method == "replace") {
    auto entry = Entry::deserialize(r);
    if (!entry) return reply(decode_error("replace"));
    const Status st = server_->replace(*entry);
    if (!st.ok()) return reply(st.error());
    return reply(encode_status());
  }
  if (method == "modify") {
    auto dn_text = r.str();
    auto count = dn_text ? r.u32() : Result<std::uint32_t>(decode_error("modify"));
    if (!dn_text || !count) return reply(decode_error("modify"));
    auto dn = Dn::parse(*dn_text);
    if (!dn) return reply(dn.error());
    std::vector<ModOp> ops;
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto kind = r.u8();
      auto attr = r.str();
      auto value = r.str();
      if (!kind || !attr || !value) return reply(decode_error("modify"));
      ops.push_back(ModOp{static_cast<ModOp::Kind>(*kind), std::move(*attr),
                          std::move(*value)});
    }
    const Status st = server_->modify(*dn, [&ops](Entry& e) {
      for (const auto& op : ops) {
        switch (op.kind) {
          case ModOp::Kind::set: e.set(op.attr, op.value); break;
          case ModOp::Kind::add: e.add(op.attr, op.value); break;
          case ModOp::Kind::remove_attr: e.remove_attr(op.attr); break;
          case ModOp::Kind::remove_value: e.remove_value(op.attr, op.value);
            break;
        }
      }
    });
    if (!st.ok()) return reply(st.error());
    return reply(encode_status());
  }
  if (method == "remove") {
    auto dn_text = r.str();
    auto recursive = r.boolean();
    if (!dn_text || !recursive) return reply(decode_error("remove"));
    auto dn = Dn::parse(*dn_text);
    if (!dn) return reply(dn.error());
    const Status st = server_->remove(*dn, *recursive);
    if (!st.ok()) return reply(st.error());
    return reply(encode_status());
  }
  if (method == "lookup") {
    auto dn_text = r.str();
    if (!dn_text) return reply(decode_error("lookup"));
    auto dn = Dn::parse(*dn_text);
    if (!dn) return reply(dn.error());
    auto entry = server_->lookup(*dn);
    if (!entry) return reply(entry.error());
    ByteWriter w;
    entry->serialize(w);
    return reply(w.take());
  }
  if (method == "search") {
    auto base_text = r.str();
    auto scope_text = base_text ? r.str() : Result<std::string>(decode_error("search"));
    auto filter_text = scope_text ? r.str() : Result<std::string>(decode_error("search"));
    if (!base_text || !scope_text || !filter_text) {
      return reply(decode_error("search"));
    }
    auto base = Dn::parse(*base_text);
    if (!base) return reply(base.error());
    auto scope = scope_from_name(*scope_text);
    if (!scope) return reply(scope.error());
    auto filter = Filter::parse(*filter_text);
    if (!filter) return reply(filter.error());
    auto entries = server_->search(*base, *scope, *filter);
    if (!entries) return reply(entries.error());
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(entries->size()));
    for (const auto& e : *entries) e.serialize(w);
    return reply(w.take());
  }
  reply(Error{Errc::protocol_error, "unknown directory method: " + method});
}

DirectoryClient::DirectoryClient(rpc::Orb& orb, const net::Host& client_host,
                                 const net::Host& server_host,
                                 std::string service_name)
    : orb_(orb),
      client_(client_host),
      server_(server_host),
      service_name_(std::move(service_name)) {}

void DirectoryClient::add(const Entry& entry, bool ensure,
                          std::function<void(Status)> done) {
  ByteWriter w;
  w.boolean(ensure);
  entry.serialize(w);
  orb_.call(client_, server_, service_name_, "add", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              done(r.ok() ? common::ok_status() : Status(r.error()));
            });
}

void DirectoryClient::replace(const Entry& entry,
                              std::function<void(Status)> done) {
  ByteWriter w;
  entry.serialize(w);
  orb_.call(client_, server_, service_name_, "replace", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              done(r.ok() ? common::ok_status() : Status(r.error()));
            });
}

void DirectoryClient::modify(const Dn& dn, const std::vector<ModOp>& ops,
                             std::function<void(Status)> done) {
  ByteWriter w;
  w.str(dn.to_string());
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const auto& op : ops) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.str(op.attr);
    w.str(op.value);
  }
  orb_.call(client_, server_, service_name_, "modify", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              done(r.ok() ? common::ok_status() : Status(r.error()));
            });
}

void DirectoryClient::remove(const Dn& dn, bool recursive,
                             std::function<void(Status)> done) {
  ByteWriter w;
  w.str(dn.to_string());
  w.boolean(recursive);
  orb_.call(client_, server_, service_name_, "remove", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              done(r.ok() ? common::ok_status() : Status(r.error()));
            });
}

void DirectoryClient::lookup(const Dn& dn,
                             std::function<void(Result<Entry>)> done) {
  ByteWriter w;
  w.str(dn.to_string());
  orb_.call(client_, server_, service_name_, "lookup", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              if (!r) return done(r.error());
              ByteReader reader(*r);
              done(Entry::deserialize(reader));
            });
}

void DirectoryClient::search(
    const Dn& base, Scope scope, const std::string& filter_text,
    std::function<void(Result<std::vector<Entry>>)> done) {
  ByteWriter w;
  w.str(base.to_string());
  w.str(scope_name(scope));
  w.str(filter_text);
  orb_.call(client_, server_, service_name_, "search", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              if (!r) return done(r.error());
              ByteReader reader(*r);
              auto count = reader.u32();
              if (!count) return done(count.error());
              std::vector<Entry> entries;
              entries.reserve(*count);
              for (std::uint32_t i = 0; i < *count; ++i) {
                auto e = Entry::deserialize(reader);
                if (!e) return done(e.error());
                entries.push_back(std::move(*e));
              }
              done(std::move(entries));
            });
}

}  // namespace esg::directory
