// Distinguished names, LDAP-style.
//
// Both catalogs in the paper are LDAP directories: the CDMS metadata
// catalog and the Globus replica catalog (Fig 6 shows DNs like
// "lc=CO2 measurements 1998, rc=GriPhyN, o=Grid").  A Dn is an ordered list
// of attribute=value RDNs from most-specific to root; attribute names are
// case-insensitive, values keep their case but compare trimmed.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"

namespace esg::directory {

class Dn {
 public:
  Dn() = default;

  /// Parse "lf=x,lc=co2-1998,rc=esg,o=grid".  Fails on empty/malformed RDNs.
  static common::Result<Dn> parse(const std::string& text);

  /// Build from already-split (attr, value) pairs, most-specific first.
  static Dn from_rdns(std::vector<std::pair<std::string, std::string>> rdns);

  bool empty() const { return rdns_.empty(); }
  std::size_t depth() const { return rdns_.size(); }

  const std::pair<std::string, std::string>& rdn(std::size_t i) const {
    return rdns_[i];
  }
  /// The most-specific component, e.g. {"lf", "x"}.
  const std::pair<std::string, std::string>& leaf() const { return rdns_.front(); }

  /// Drop the most-specific RDN; parent of a depth-1 DN is the empty DN.
  Dn parent() const;

  /// Prepend a new most-specific RDN.
  Dn child(const std::string& attr, const std::string& value) const;

  /// True if `this` is within the subtree rooted at `base` (inclusive).
  bool is_within(const Dn& base) const;

  bool operator==(const Dn& other) const { return normalized() == other.normalized(); }
  bool operator<(const Dn& other) const { return normalized() < other.normalized(); }

  /// Canonical form: lowercase attrs, single spaces, comma-joined.
  const std::string& normalized() const { return normalized_; }
  /// Display form as constructed.
  std::string to_string() const;

 private:
  void rebuild_normalized();

  std::vector<std::pair<std::string, std::string>> rdns_;
  std::string normalized_;
};

}  // namespace esg::directory
