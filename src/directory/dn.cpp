#include "directory/dn.hpp"

#include "common/strings.hpp"

namespace esg::directory {

using common::Errc;
using common::Error;
using common::Result;

Result<Dn> Dn::parse(const std::string& text) {
  Dn dn;
  for (const auto& part : common::split(text, ',')) {
    const auto trimmed = common::trim(part);
    if (trimmed.empty()) {
      return Error{Errc::invalid_argument, "empty RDN in: " + text};
    }
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0 ||
        eq == trimmed.size() - 1) {
      return Error{Errc::invalid_argument,
                   "malformed RDN '" + std::string(trimmed) + "'"};
    }
    const auto attr = common::trim(trimmed.substr(0, eq));
    const auto value = common::trim(trimmed.substr(eq + 1));
    dn.rdns_.emplace_back(std::string(attr), std::string(value));
  }
  if (dn.rdns_.empty()) {
    return Error{Errc::invalid_argument, "empty DN"};
  }
  dn.rebuild_normalized();
  return dn;
}

Dn Dn::from_rdns(std::vector<std::pair<std::string, std::string>> rdns) {
  Dn dn;
  dn.rdns_ = std::move(rdns);
  dn.rebuild_normalized();
  return dn;
}

Dn Dn::parent() const {
  Dn p;
  if (rdns_.size() > 1) {
    p.rdns_.assign(rdns_.begin() + 1, rdns_.end());
  }
  p.rebuild_normalized();
  return p;
}

Dn Dn::child(const std::string& attr, const std::string& value) const {
  Dn c;
  c.rdns_.reserve(rdns_.size() + 1);
  c.rdns_.emplace_back(attr, value);
  c.rdns_.insert(c.rdns_.end(), rdns_.begin(), rdns_.end());
  c.rebuild_normalized();
  return c;
}

bool Dn::is_within(const Dn& base) const {
  if (base.rdns_.size() > rdns_.size()) return false;
  const std::size_t offset = rdns_.size() - base.rdns_.size();
  for (std::size_t i = 0; i < base.rdns_.size(); ++i) {
    const auto& [ba, bv] = base.rdns_[i];
    const auto& [a, v] = rdns_[offset + i];
    if (!common::iequals(ba, a) || bv != v) return false;
  }
  return true;
}

void Dn::rebuild_normalized() {
  normalized_.clear();
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i > 0) normalized_ += ',';
    normalized_ += common::to_lower(rdns_[i].first);
    normalized_ += '=';
    normalized_ += rdns_[i].second;
  }
}

std::string Dn::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += rdns_[i].first + "=" + rdns_[i].second;
  }
  return out;
}

}  // namespace esg::directory
