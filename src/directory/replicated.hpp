// Replicated LDAP directory — the §6.2 future-work item ("Current design
// effort for the replica catalog is focused on support for distribution
// and replication of the catalog"), implemented.
//
// Primary-copy replication with asynchronous push:
//
//   * one primary serves all writes (add/replace/modify/remove), applies
//     them locally, acknowledges the client, and forwards the same wire
//     operation to every replica (eventual consistency — a read replica
//     lags by one WAN hop);
//   * any server answers reads; ReplicatedDirectoryClient tries its server
//     list in order and fails over on timeout/unavailable, so catalog
//     lookups survive the loss of the primary site;
//   * writes require the primary (single-master), matching the Globus
//     replica catalog's design direction of the time.
#pragma once

#include <memory>
#include <vector>

#include "directory/service.hpp"

namespace esg::directory {

/// Serves a DirectoryServer as primary and pushes every successful write
/// to the given replica services.
class ReplicatedDirectoryService {
 public:
  /// `replicas` are the hosts running plain DirectoryService instances
  /// (same service name) that receive the pushed writes.
  ReplicatedDirectoryService(rpc::Orb& orb, const net::Host& primary_host,
                             std::shared_ptr<DirectoryServer> server,
                             std::vector<const net::Host*> replicas,
                             std::string service_name = "ldap");

  DirectoryServer& server() { return *server_; }
  std::uint64_t writes_forwarded() const { return writes_forwarded_; }

 private:
  void dispatch(const std::string& method, rpc::Payload request,
                rpc::Reply reply);

  rpc::Orb& orb_;
  const net::Host& host_;
  std::shared_ptr<DirectoryServer> server_;
  std::unique_ptr<DirectoryService> local_;  // reuses the plain dispatcher
  std::vector<const net::Host*> replicas_;
  std::string service_name_;
  std::uint64_t writes_forwarded_ = 0;
};

/// Client with read failover across a server list (primary first).
class ReplicatedDirectoryClient {
 public:
  ReplicatedDirectoryClient(rpc::Orb& orb, const net::Host& client_host,
                            std::vector<const net::Host*> servers,
                            std::string service_name = "ldap");

  /// Writes go to the primary only.
  void add(const Entry& entry, bool ensure,
           std::function<void(common::Status)> done);
  void modify(const Dn& dn, const std::vector<ModOp>& ops,
              std::function<void(common::Status)> done);
  void remove(const Dn& dn, bool recursive,
              std::function<void(common::Status)> done);

  /// Reads fail over down the server list.
  void lookup(const Dn& dn, std::function<void(common::Result<Entry>)> done);
  void search(const Dn& base, Scope scope, const std::string& filter_text,
              std::function<void(common::Result<std::vector<Entry>>)> done);

  /// Index of the server that answered the most recent read (telemetry).
  std::size_t last_read_server() const { return last_read_server_; }

 private:
  template <typename ResultT>
  void read_with_failover(
      std::size_t server_index,
      std::function<void(DirectoryClient&,
                         std::function<void(common::Result<ResultT>)>)>
          issue,
      std::function<void(common::Result<ResultT>)> done);

  rpc::Orb& orb_;
  const net::Host& client_;
  std::vector<const net::Host*> servers_;
  std::string service_name_;
  std::size_t last_read_server_ = 0;
};

}  // namespace esg::directory
