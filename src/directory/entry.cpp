#include "directory/entry.hpp"

#include <algorithm>
#include <cstdlib>

namespace esg::directory {

void Entry::remove_value(const std::string& attr, const std::string& value) {
  auto it = attrs_.find(common::to_lower(attr));
  if (it == attrs_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
  if (v.empty()) attrs_.erase(it);
}

std::int64_t Entry::get_int(const std::string& attr,
                            std::int64_t fallback) const {
  const std::string v = get(attr);
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

const std::vector<std::string>& Entry::values(const std::string& attr) const {
  static const std::vector<std::string> kEmpty;
  auto it = attrs_.find(common::to_lower(attr));
  return it == attrs_.end() ? kEmpty : it->second;
}

void Entry::serialize(common::ByteWriter& w) const {
  w.str(dn_.to_string());
  w.u32(static_cast<std::uint32_t>(attrs_.size()));
  for (const auto& [attr, vals] : attrs_) {
    w.str(attr);
    w.str_vec(vals);
  }
}

common::Result<Entry> Entry::deserialize(common::ByteReader& r) {
  auto dn_text = r.str();
  if (!dn_text) return dn_text.error();
  auto dn = Dn::parse(*dn_text);
  if (!dn) return dn.error();
  Entry e(std::move(*dn));
  auto count = r.u32();
  if (!count) return count.error();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto attr = r.str();
    if (!attr) return attr.error();
    auto vals = r.str_vec();
    if (!vals) return vals.error();
    for (auto& v : *vals) e.add(*attr, std::move(v));
  }
  return e;
}

}  // namespace esg::directory
