#include "directory/replicated.hpp"

namespace esg::directory {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using rpc::Payload;

namespace {

bool is_write(const std::string& method) {
  return method == "add" || method == "replace" || method == "modify" ||
         method == "remove";
}

}  // namespace

ReplicatedDirectoryService::ReplicatedDirectoryService(
    rpc::Orb& orb, const net::Host& primary_host,
    std::shared_ptr<DirectoryServer> server,
    std::vector<const net::Host*> replicas, std::string service_name)
    : orb_(orb),
      host_(primary_host),
      server_(std::move(server)),
      replicas_(std::move(replicas)),
      service_name_(std::move(service_name)) {
  local_ = std::make_unique<DirectoryService>(orb_, host_, server_,
                                              service_name_);
  // Re-register with the forwarding wrapper (replaces local_'s handler).
  orb_.register_service(
      host_, service_name_,
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        dispatch(method, std::move(request), std::move(reply));
      });
}

void ReplicatedDirectoryService::dispatch(const std::string& method,
                                          Payload request, rpc::Reply reply) {
  if (!is_write(method)) {
    return local_->dispatch(method, std::move(request), std::move(reply));
  }
  // Apply locally; on success push the identical wire op to every replica
  // (asynchronously — the primary's ack does not wait for them).
  Payload copy = request;
  local_->dispatch(
      method, std::move(request),
      [this, method, copy = std::move(copy),
       reply = std::move(reply)](Result<Payload> r) mutable {
        if (r.ok()) {
          for (const net::Host* replica : replicas_) {
            ++writes_forwarded_;
            orb_.call(host_, *replica, service_name_, method, copy,
                      [](Result<Payload>) { /* eventual consistency */ });
          }
        }
        reply(std::move(r));
      });
}

ReplicatedDirectoryClient::ReplicatedDirectoryClient(
    rpc::Orb& orb, const net::Host& client_host,
    std::vector<const net::Host*> servers, std::string service_name)
    : orb_(orb),
      client_(client_host),
      servers_(std::move(servers)),
      service_name_(std::move(service_name)) {}

void ReplicatedDirectoryClient::add(const Entry& entry, bool ensure,
                                    std::function<void(Status)> done) {
  DirectoryClient primary(orb_, client_, *servers_.front(), service_name_);
  primary.add(entry, ensure, std::move(done));
}

void ReplicatedDirectoryClient::modify(const Dn& dn,
                                       const std::vector<ModOp>& ops,
                                       std::function<void(Status)> done) {
  DirectoryClient primary(orb_, client_, *servers_.front(), service_name_);
  primary.modify(dn, ops, std::move(done));
}

void ReplicatedDirectoryClient::remove(const Dn& dn, bool recursive,
                                       std::function<void(Status)> done) {
  DirectoryClient primary(orb_, client_, *servers_.front(), service_name_);
  primary.remove(dn, recursive, std::move(done));
}

template <typename ResultT>
void ReplicatedDirectoryClient::read_with_failover(
    std::size_t server_index,
    std::function<void(DirectoryClient&,
                       std::function<void(Result<ResultT>)>)>
        issue,
    std::function<void(Result<ResultT>)> done) {
  if (server_index >= servers_.size()) {
    return done(Error{Errc::unavailable, "no directory server reachable"});
  }
  DirectoryClient client(orb_, client_, *servers_[server_index],
                         service_name_);
  issue(client, [this, server_index, issue,
                 done = std::move(done)](Result<ResultT> r) mutable {
    const bool retryable =
        !r.ok() && (r.error().code == Errc::timed_out ||
                    r.error().code == Errc::unavailable);
    if (retryable) {
      return read_with_failover<ResultT>(server_index + 1, std::move(issue),
                                         std::move(done));
    }
    last_read_server_ = server_index;
    done(std::move(r));
  });
}

void ReplicatedDirectoryClient::lookup(
    const Dn& dn, std::function<void(Result<Entry>)> done) {
  read_with_failover<Entry>(
      0,
      [dn](DirectoryClient& c, std::function<void(Result<Entry>)> cb) {
        c.lookup(dn, std::move(cb));
      },
      std::move(done));
}

void ReplicatedDirectoryClient::search(
    const Dn& base, Scope scope, const std::string& filter_text,
    std::function<void(Result<std::vector<Entry>>)> done) {
  read_with_failover<std::vector<Entry>>(
      0,
      [base, scope, filter_text](
          DirectoryClient& c,
          std::function<void(Result<std::vector<Entry>>)> cb) {
        c.search(base, scope, filter_text, std::move(cb));
      },
      std::move(done));
}

}  // namespace esg::directory
