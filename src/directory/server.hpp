// In-memory LDAP-like directory tree with base/one/sub search.
//
// The storage core is independent of the network; directory/service.hpp
// binds a DirectoryServer to a host and serves it over RPC, which is how
// the replica catalog, the metadata catalog, and MDS are deployed in the
// emulated testbed.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "directory/entry.hpp"
#include "directory/filter.hpp"

namespace esg::directory {

enum class Scope { base, one, sub };

class DirectoryServer {
 public:
  /// Add an entry.  The parent must already exist (except depth-1 roots).
  common::Status add(Entry entry);

  /// Add an entry, creating missing ancestors as organizational units.
  common::Status ensure(Entry entry);

  /// Replace the attributes of an existing entry (DN unchanged).
  common::Status replace(const Entry& entry);

  /// Apply a mutation to an existing entry in place.
  common::Status modify(const Dn& dn,
                        const std::function<void(Entry&)>& mutation);

  /// Remove an entry; `recursive` removes the whole subtree, otherwise
  /// removing a non-leaf fails.
  common::Status remove(const Dn& dn, bool recursive = false);

  bool exists(const Dn& dn) const { return entries_.count(dn.normalized()) > 0; }

  common::Result<Entry> lookup(const Dn& dn) const;

  /// LDAP search: entries under `base` at `scope` matching `filter`,
  /// returned in normalized-DN order (deterministic).
  common::Result<std::vector<Entry>> search(const Dn& base, Scope scope,
                                            const Filter& filter) const;

  std::size_t size() const { return entries_.size(); }

 private:
  // Keyed by normalized DN; lexicographic order keeps subtrees contiguous
  // only per-branch, so searches still scan — fine at catalog scale.
  std::map<std::string, Entry> entries_;
};

const char* scope_name(Scope scope);
common::Result<Scope> scope_from_name(const std::string& name);

}  // namespace esg::directory
