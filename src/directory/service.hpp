// Network binding for the directory: serves a DirectoryServer over the RPC
// layer ("the LDAP protocol"), plus an async client.
//
// Wire methods: add (with ensure flag), replace, modify (attribute ops),
// remove, lookup, search.  All payloads are ByteWriter-framed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "directory/server.hpp"
#include "rpc/orb.hpp"

namespace esg::directory {

/// One attribute mutation shipped to the server.
struct ModOp {
  enum class Kind : std::uint8_t { set = 0, add = 1, remove_attr = 2,
                                   remove_value = 3 };
  Kind kind = Kind::set;
  std::string attr;
  std::string value;  // unused for remove_attr
};

/// Binds `server` as service `service_name` on `host`.
class DirectoryService {
 public:
  DirectoryService(rpc::Orb& orb, const net::Host& host,
                   std::shared_ptr<DirectoryServer> server,
                   std::string service_name = "ldap");

  DirectoryServer& server() { return *server_; }
  const net::Host& host() const { return host_; }
  const std::string& service_name() const { return service_name_; }

  /// The wire-operation dispatcher; public so wrappers (the replicated
  /// directory) can delegate to it.
  void dispatch(const std::string& method, rpc::Payload request,
                rpc::Reply reply);

 private:
  rpc::Orb& orb_;
  const net::Host& host_;
  std::shared_ptr<DirectoryServer> server_;
  std::string service_name_;
};

class DirectoryClient {
 public:
  DirectoryClient(rpc::Orb& orb, const net::Host& client_host,
                  const net::Host& server_host,
                  std::string service_name = "ldap");

  void add(const Entry& entry, bool ensure,
           std::function<void(common::Status)> done);

  void replace(const Entry& entry, std::function<void(common::Status)> done);

  void modify(const Dn& dn, const std::vector<ModOp>& ops,
              std::function<void(common::Status)> done);

  void remove(const Dn& dn, bool recursive,
              std::function<void(common::Status)> done);

  void lookup(const Dn& dn,
              std::function<void(common::Result<Entry>)> done);

  void search(const Dn& base, Scope scope, const std::string& filter_text,
              std::function<void(common::Result<std::vector<Entry>>)> done);

  const net::Host& server_host() const { return server_; }

 private:
  rpc::Orb& orb_;
  const net::Host& client_;
  const net::Host& server_;
  std::string service_name_;
};

}  // namespace esg::directory
