// RFC-2254-style search filters: "(&(objectclass=collection)(name=co2*))".
//
// Supports conjunction &, disjunction |, negation !, equality with '*'
// wildcards, presence (attr=*), and >= / <= comparisons (numeric when both
// sides parse as integers, lexicographic otherwise).
#pragma once

#include <memory>
#include <string>

#include "common/result.hpp"
#include "directory/entry.hpp"

namespace esg::directory {

class Filter {
 public:
  /// Parse a filter string.  The grammar requires outer parentheses, as in
  /// LDAP ("(attr=value)", "(&(a=1)(b=2))").
  static common::Result<Filter> parse(const std::string& text);

  /// A filter matching every entry.
  static Filter match_all();

  bool matches(const Entry& entry) const;

  std::string to_string() const;

  struct Node;  // implementation detail, defined in filter.cpp

 private:
  explicit Filter(std::shared_ptr<const Node> root) : root_(std::move(root)) {}
  std::shared_ptr<const Node> root_;
};

}  // namespace esg::directory
