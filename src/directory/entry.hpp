// Directory entries: a DN plus multi-valued, case-insensitively named
// attributes — the unit both catalogs and MDS store and search.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytebuf.hpp"
#include "common/strings.hpp"
#include "directory/dn.hpp"

namespace esg::directory {

class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const { return dn_; }
  void set_dn(Dn dn) { dn_ = std::move(dn); }

  /// Append a value to an attribute (attributes are multi-valued).
  Entry& add(const std::string& attr, std::string value) {
    attrs_[common::to_lower(attr)].push_back(std::move(value));
    return *this;
  }

  Entry& add(const std::string& attr, std::int64_t value) {
    return add(attr, std::to_string(value));
  }

  /// Replace all values of an attribute.
  Entry& set(const std::string& attr, std::string value) {
    auto& v = attrs_[common::to_lower(attr)];
    v.clear();
    v.push_back(std::move(value));
    return *this;
  }

  void remove_attr(const std::string& attr) {
    attrs_.erase(common::to_lower(attr));
  }

  /// Remove one specific value; drops the attribute when it empties.
  void remove_value(const std::string& attr, const std::string& value);

  bool has(const std::string& attr) const {
    return attrs_.count(common::to_lower(attr)) > 0;
  }

  /// First value of an attribute, or "" when absent.
  std::string get(const std::string& attr) const {
    auto it = attrs_.find(common::to_lower(attr));
    return it == attrs_.end() || it->second.empty() ? "" : it->second.front();
  }

  /// First value parsed as integer, or `fallback`.
  std::int64_t get_int(const std::string& attr, std::int64_t fallback = 0) const;

  const std::vector<std::string>& values(const std::string& attr) const;

  const std::map<std::string, std::vector<std::string>>& attributes() const {
    return attrs_;
  }

  void serialize(common::ByteWriter& w) const;
  static common::Result<Entry> deserialize(common::ByteReader& r);

 private:
  Dn dn_;
  std::map<std::string, std::vector<std::string>> attrs_;
};

}  // namespace esg::directory
