#include "directory/server.hpp"

namespace esg::directory {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;

Status DirectoryServer::add(Entry entry) {
  const std::string key = entry.dn().normalized();
  if (entries_.count(key)) {
    return Error{Errc::already_exists, "entry exists: " + entry.dn().to_string()};
  }
  if (entry.dn().depth() > 1) {
    const Dn parent = entry.dn().parent();
    if (!entries_.count(parent.normalized())) {
      return Error{Errc::not_found,
                   "parent missing for " + entry.dn().to_string()};
    }
  }
  entries_.emplace(key, std::move(entry));
  return common::ok_status();
}

Status DirectoryServer::ensure(Entry entry) {
  std::vector<Dn> missing;
  for (Dn cursor = entry.dn().parent(); !cursor.empty();
       cursor = cursor.parent()) {
    if (entries_.count(cursor.normalized())) break;
    missing.push_back(cursor);
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    Entry scaffold(*it);
    scaffold.add("objectclass", "organizationalUnit");
    entries_.emplace(it->normalized(), std::move(scaffold));
  }
  if (entries_.count(entry.dn().normalized())) {
    return replace(entry);
  }
  return add(std::move(entry));
}

Status DirectoryServer::replace(const Entry& entry) {
  auto it = entries_.find(entry.dn().normalized());
  if (it == entries_.end()) {
    return Error{Errc::not_found, "no entry: " + entry.dn().to_string()};
  }
  it->second = entry;
  return common::ok_status();
}

Status DirectoryServer::modify(const Dn& dn,
                               const std::function<void(Entry&)>& mutation) {
  auto it = entries_.find(dn.normalized());
  if (it == entries_.end()) {
    return Error{Errc::not_found, "no entry: " + dn.to_string()};
  }
  mutation(it->second);
  return common::ok_status();
}

Status DirectoryServer::remove(const Dn& dn, bool recursive) {
  auto it = entries_.find(dn.normalized());
  if (it == entries_.end()) {
    return Error{Errc::not_found, "no entry: " + dn.to_string()};
  }
  std::vector<std::string> doomed;
  for (const auto& [key, entry] : entries_) {
    if (key != dn.normalized() && entry.dn().is_within(dn)) {
      if (!recursive) {
        return Error{Errc::invalid_argument,
                     "entry has children: " + dn.to_string()};
      }
      doomed.push_back(key);
    }
  }
  for (const auto& key : doomed) entries_.erase(key);
  entries_.erase(dn.normalized());
  return common::ok_status();
}

Result<Entry> DirectoryServer::lookup(const Dn& dn) const {
  auto it = entries_.find(dn.normalized());
  if (it == entries_.end()) {
    return Error{Errc::not_found, "no entry: " + dn.to_string()};
  }
  return it->second;
}

Result<std::vector<Entry>> DirectoryServer::search(const Dn& base, Scope scope,
                                                   const Filter& filter) const {
  if (!base.empty() && !entries_.count(base.normalized())) {
    return Error{Errc::not_found, "search base missing: " + base.to_string()};
  }
  std::vector<Entry> out;
  for (const auto& [key, entry] : entries_) {
    bool in_scope = false;
    switch (scope) {
      case Scope::base:
        in_scope = key == base.normalized();
        break;
      case Scope::one:
        in_scope = entry.dn().depth() == base.depth() + 1 &&
                   entry.dn().is_within(base);
        break;
      case Scope::sub:
        in_scope = entry.dn().is_within(base);
        break;
    }
    if (in_scope && filter.matches(entry)) out.push_back(entry);
  }
  return out;
}

const char* scope_name(Scope scope) {
  switch (scope) {
    case Scope::base: return "base";
    case Scope::one: return "one";
    case Scope::sub: return "sub";
  }
  return "?";
}

Result<Scope> scope_from_name(const std::string& name) {
  if (name == "base") return Scope::base;
  if (name == "one") return Scope::one;
  if (name == "sub") return Scope::sub;
  return Error{Errc::invalid_argument, "bad scope: " + name};
}

}  // namespace esg::directory
