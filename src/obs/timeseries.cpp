#include "obs/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace esg::obs {

bool labels_contain(const Labels& labels, const Labels& subset) {
  for (const auto& want : subset) {
    bool found = false;
    for (const auto& have : labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// ---- rings ----

void TimeSeries::RawRing::push(SeriesPoint p) {
  slots[head] = p;
  head = (head + 1) % slots.size();
  if (size < slots.size()) ++size;
}

const SeriesPoint& TimeSeries::RawRing::at(std::size_t i) const {
  assert(i < size);
  const std::size_t oldest = (head + slots.size() - size) % slots.size();
  return slots[(oldest + i) % slots.size()];
}

void TimeSeries::RollupRing::push(RollupPoint p) {
  slots[head] = p;
  head = (head + 1) % slots.size();
  if (size < slots.size()) ++size;
}

const RollupPoint& TimeSeries::RollupRing::at(std::size_t i) const {
  assert(i < size);
  const std::size_t oldest = (head + slots.size() - size) % slots.size();
  return slots[(oldest + i) % slots.size()];
}

// ---- series ----

TimeSeries::TimeSeries(const TimeSeriesConfig& cfg)
    : fine_width_(cfg.fine_width), coarse_width_(cfg.coarse_width) {
  raw_.slots.resize(std::max<std::size_t>(1, cfg.raw_capacity));
  fine_.slots.resize(std::max<std::size_t>(1, cfg.fine_capacity));
  coarse_.slots.resize(std::max<std::size_t>(1, cfg.coarse_capacity));
}

void TimeSeries::roll(OpenBucket& bucket, RollupRing& ring,
                      common::SimDuration width, common::SimTime at,
                      double value) {
  const common::SimTime start = at - (at % width);
  if (bucket.open() && bucket.start != start) {
    ring.push(bucket.agg);
    bucket.start = -1;
  }
  if (!bucket.open()) {
    bucket.start = start;
    bucket.agg = RollupPoint{start, value, value, 0.0, 0};
  }
  bucket.agg.min = std::min(bucket.agg.min, value);
  bucket.agg.max = std::max(bucket.agg.max, value);
  bucket.agg.sum += value;
  ++bucket.agg.count;
}

void TimeSeries::append(common::SimTime at, double value) {
  if (samples_ == 0) {
    life_min_ = life_max_ = value;
  } else {
    life_min_ = std::min(life_min_, value);
    life_max_ = std::max(life_max_, value);
  }
  life_sum_ += value;
  ++samples_;
  raw_.push({at, value});
  roll(open_fine_, fine_, fine_width_, at, value);
  roll(open_coarse_, coarse_, coarse_width_, at, value);
}

std::vector<SeriesPoint> TimeSeries::raw() const {
  std::vector<SeriesPoint> out;
  out.reserve(raw_.size);
  for (std::size_t i = 0; i < raw_.size; ++i) out.push_back(raw_.at(i));
  return out;
}

std::vector<RollupPoint> TimeSeries::fine() const {
  std::vector<RollupPoint> out;
  out.reserve(fine_.size);
  for (std::size_t i = 0; i < fine_.size; ++i) out.push_back(fine_.at(i));
  return out;
}

std::vector<RollupPoint> TimeSeries::coarse() const {
  std::vector<RollupPoint> out;
  out.reserve(coarse_.size);
  for (std::size_t i = 0; i < coarse_.size; ++i) out.push_back(coarse_.at(i));
  return out;
}

bool TimeSeries::value_at(common::SimTime t, double* out) const {
  // Raw ring first: binary search over the monotone retained window.
  if (raw_.size > 0 && raw_.at(0).at <= t) {
    std::size_t lo = 0, hi = raw_.size;  // first index with at > t
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (raw_.at(mid).at <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    *out = raw_.at(lo - 1).value;
    return true;
  }
  // Before the raw window: the rollup bucket covering (or preceding) t.
  // For the cumulative counters windowed deltas read, a bucket's min is the
  // value at its first retained sample — the best available stand-in.
  auto from_ring = [t, out](const RollupRing& ring,
                            common::SimDuration width) {
    for (std::size_t i = ring.size; i-- > 0;) {
      const RollupPoint& p = ring.at(i);
      if (p.start <= t) {
        *out = (t < p.start + width) ? p.min : p.max;
        return true;
      }
    }
    return false;
  };
  if (from_ring(fine_, fine_width_)) return true;
  return from_ring(coarse_, coarse_width_);
}

double TimeSeries::delta(common::SimTime from, common::SimTime to) const {
  double v_from = 0.0;
  double v_to = 0.0;
  if (!value_at(to, &v_to)) return 0.0;
  if (!value_at(from, &v_from)) {
    // Window opens before anything retained: count from the oldest known
    // value (the series may have started mid-window).
    if (coarse_.size > 0) {
      v_from = coarse_.at(0).min;
    } else if (fine_.size > 0) {
      v_from = fine_.at(0).min;
    } else if (raw_.size > 0) {
      v_from = raw_.at(0).value;
    } else {
      return 0.0;
    }
  }
  return std::max(0.0, v_to - v_from);
}

WindowStats TimeSeries::stats(common::SimTime from, common::SimTime to) const {
  WindowStats w;
  auto fold = [&w](double mn, double mx, double sum, std::uint64_t n) {
    if (n == 0) return;
    if (w.count == 0) {
      w.min = mn;
      w.max = mx;
    } else {
      w.min = std::min(w.min, mn);
      w.max = std::max(w.max, mx);
    }
    w.sum += sum;
    w.count += n;
  };
  // Raw samples cover the newest span; rollup buckets answer for the part
  // of the window older than the oldest retained raw sample.
  const common::SimTime raw_begin =
      raw_.size > 0 ? raw_.at(0).at : to + 1;
  for (std::size_t i = 0; i < raw_.size; ++i) {
    const SeriesPoint& p = raw_.at(i);
    if (p.at <= from || p.at > to) continue;
    fold(p.value, p.value, p.value, 1);
  }
  for (std::size_t i = 0; i < fine_.size; ++i) {
    const RollupPoint& p = fine_.at(i);
    if (p.start + fine_width_ <= from || p.start > to) continue;
    if (p.start + fine_width_ > raw_begin) continue;  // raw already counted
    fold(p.min, p.max, p.sum, p.count);
  }
  const common::SimTime fine_begin =
      fine_.size > 0 ? fine_.at(0).start : raw_begin;
  for (std::size_t i = 0; i < coarse_.size; ++i) {
    const RollupPoint& p = coarse_.at(i);
    if (p.start + coarse_width_ <= from || p.start > to) continue;
    if (p.start + coarse_width_ > std::min(raw_begin, fine_begin)) continue;
    fold(p.min, p.max, p.sum, p.count);
  }
  return w;
}

// ---- store ----

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig cfg) : cfg_(cfg) {}

TimeSeries& TimeSeriesStore::series(std::string_view name, Labels labels) {
  Key key{std::string(name), normalize_labels(std::move(labels))};
  auto& slot = series_[std::move(key)];
  if (!slot) slot = std::make_unique<TimeSeries>(cfg_);
  return *slot;
}

const TimeSeries* TimeSeriesStore::find(std::string_view name,
                                        const Labels& labels) const {
  const auto it = series_.find(Key{std::string(name),
                                   normalize_labels(labels)});
  return it == series_.end() ? nullptr : it->second.get();
}

void TimeSeriesStore::append(std::string_view name, Labels labels,
                             common::SimTime at, double value) {
  series(name, std::move(labels)).append(at, value);
  ++samples_total_;
  last_sample_at_ = at;
}

void TimeSeriesStore::sample_registry(const MetricsRegistry& registry,
                                      common::SimTime at) {
  const MetricsSnapshot snap = registry.snapshot(at);
  for (const auto& e : snap.entries) {
    if (e.kind == MetricKind::histogram) {
      append(e.name + ":count", e.labels, at, static_cast<double>(e.count));
      append(e.name + ":sum", e.labels, at, e.sum);
      append(e.name + ":p50", e.labels, at, e.quantile(0.50));
      append(e.name + ":p99", e.labels, at, e.quantile(0.99));
    } else {
      append(e.name, e.labels, at, e.value);
    }
  }
}

double TimeSeriesStore::family_delta(std::string_view name,
                                     const Labels& labels,
                                     common::SimTime from,
                                     common::SimTime to) const {
  const Labels want = normalize_labels(labels);
  double total = 0.0;
  for (const auto& [key, s] : series_) {
    if (key.first != name || !labels_contain(key.second, want)) continue;
    total += s->delta(from, to);
  }
  return total;
}

double TimeSeriesStore::family_value(std::string_view name,
                                     const Labels& labels, common::SimTime t,
                                     bool* found) const {
  const Labels want = normalize_labels(labels);
  double total = 0.0;
  bool any = false;
  for (const auto& [key, s] : series_) {
    if (key.first != name || !labels_contain(key.second, want)) continue;
    double v = 0.0;
    if (s->value_at(t, &v)) {
      total += v;
      any = true;
    }
  }
  if (found != nullptr) *found = any;
  return total;
}

}  // namespace esg::obs
