// Run manifest: one JSON document that pins down *everything* a run was.
//
// The paper's evaluation (Table 1, Figure 8) is storytelling over
// monitoring data; to retell the story mechanically we need the run's
// identity in one artifact: the seed, the topology it ran against, the
// fault plan fingerprint, the flight-recorder digest and retained events,
// the final metrics snapshot, and the headline bench numbers.  Two
// same-seed runs must serialize to byte-identical manifests — that is the
// contract the run-diff tool and the bench gate are built on.
//
// Manifests round-trip: from_json() re-hydrates everything (including the
// metrics snapshot), so postmortems and SLO evaluation work offline on a
// MANIFEST_*.json file long after the simulation is gone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"

namespace esg::obs {

struct BenchValue {
  std::string name;
  double value = 0.0;
};

/// One telemetry series condensed for the manifest: whole-life aggregates
/// plus the retained coarse rollup points (bounded — the rings are fixed).
struct SeriesSummary {
  std::string name;
  Labels labels;
  std::uint64_t samples = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::vector<RollupPoint> points;
};

struct RunManifest {
  std::string name;
  std::uint64_t seed = 0;
  std::string topology;  // free-form summary (sites/links/hosts)
  std::uint64_t fault_timeline_hash = 0;
  std::uint64_t flight_digest = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_evicted = 0;
  std::vector<FlightEvent> events;  // the retained ring, oldest first
  MetricsSnapshot metrics;
  std::vector<BenchValue> bench;  // headline numbers (goodput, counts, ...)
  /// Streaming-telemetry payload (attach_telemetry): the alert timeline in
  /// fire order and condensed per-series history.  Both serialize
  /// deterministically and round-trip, so `esg-report timeline/alerts` and
  /// the bench gate work offline — and drift in alert firing is diffable.
  std::vector<AlertRecord> alerts;
  std::vector<SeriesSummary> series;
  /// Time-where profile (attach_profile): per-category self-times, tail
  /// exemplars, collapsed stacks, and (for small runs) per-file critical
  /// paths.  Serializes byte-deterministically and round-trips, powering
  /// `esg-report critical-path` / `esg-report flame` offline and the
  /// profile drift check in diff_manifests.
  bool has_profile = false;
  TimeWhereProfile profile;

  void set_bench(std::string bench_name, double value);
  double bench_or(std::string_view bench_name, double fallback) const;

  /// Deterministic serialization: same run state ⇒ identical bytes.
  std::string to_json() const;
  static common::Result<RunManifest> from_json(std::string_view text);
};

/// Capture a manifest from a live recorder + snapshot.  `timeline_hash` is
/// the FaultInjector's (0 when the run had no chaos engine).
RunManifest capture_manifest(std::string name, std::uint64_t seed,
                             std::string topology,
                             std::uint64_t timeline_hash,
                             const FlightRecorder& recorder,
                             MetricsSnapshot snapshot);

/// Fill manifest.alerts and manifest.series from a live telemetry store and
/// alert engine.  `include` filters series by name substring (empty = keep
/// every series); each summary retains at most `max_points` of the newest
/// coarse rollup points so manifests stay diff-friendly.
void attach_telemetry(RunManifest& manifest, const TimeSeriesStore& store,
                      const AlertEngine& alerts,
                      const std::vector<std::string>& include = {},
                      std::size_t max_points = 16);

/// Attach a time-where profile to the manifest.  When the profile covers
/// more than `max_files` files, only the files referenced by tail
/// exemplars keep their per-file rows (aggregates, exemplars, and stacks
/// are always complete) so fleet-scale manifests stay diff-friendly.
/// Per-file critical paths are truncated to `max_steps` steps, the
/// remainder merged into one elided step.
void attach_profile(RunManifest& manifest, const TimeWhereProfile& profile,
                    std::size_t max_files = 64, std::size_t max_steps = 64);

/// The manifest `profile` section as standalone deterministic JSON (also
/// embedded in BENCH_*.json by the benches).
std::string profile_to_json(const TimeWhereProfile& profile);

/// Convenience: read + parse a manifest file.
common::Result<RunManifest> load_manifest(const std::string& path);

/// Write `text` to `path`; false on I/O failure.
bool write_file(const std::string& path, const std::string& text);
/// Read a whole file.
common::Result<std::string> read_file(const std::string& path);

}  // namespace esg::obs
