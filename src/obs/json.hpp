// Minimal JSON value model + recursive-descent parser.
//
// The observability layer *writes* JSON in several places (metrics
// snapshots, Chrome traces, BENCH_*.json, run manifests); the analysis side
// — manifest diffing, bench gating, offline postmortems — has to *read* it
// back.  This is a deliberately small, dependency-free reader covering the
// JSON subset our own exporters emit: objects, arrays, strings with the
// escapes json_escape() produces, doubles, bools, null.  Object keys keep
// insertion order (our writers emit deterministically sorted documents, and
// keeping their order makes re-serialization byte-stable).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace esg::obs::json {

class Value;
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { null, boolean, number, string, array, object };

  Value() = default;
  explicit Value(bool b) : type_(Type::boolean), bool_(b) {}
  explicit Value(double d) : type_(Type::number), number_(d) {}
  explicit Value(std::string s) : type_(Type::string), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::array), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::object), object_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_number() const { return type_ == Type::number; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const {
    static const Array empty;
    return array_ ? *array_ : empty;
  }
  const Object& as_object() const {
    static const Object empty;
    return object_ ? *object_ : empty;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Member's number/string with a fallback — the common access pattern.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
common::Result<Value> parse(std::string_view text);

}  // namespace esg::obs::json
