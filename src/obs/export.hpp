// Exporters for the observability layer.
//
//   * to_chrome_trace(tracer): Chrome `trace_event` JSON — load the file in
//     about:tracing or https://ui.perfetto.dev to see the request-manager →
//     gridftp → net span hierarchy on per-file tracks.
//   * to_prometheus_text(snapshot): the classic text exposition format
//     (counters, gauges, histograms with cumulative `le` buckets).
//   * to_json(snapshot): machine-readable snapshot; bench_util.hpp embeds
//     this into BENCH_*.json so a perf run and its metrics travel together.
//
// All output is deterministic: same-seed simulations export byte-identical
// text (asserted by tests/obs_test.cpp).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace esg::obs {

/// JSON string-escape (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Chrome trace_event JSON ({"traceEvents": [...]}).  Sim time maps to
/// microseconds; tracks map to tids with thread_name metadata; spans still
/// open at export time are closed at the tracer's current clock.
std::string to_chrome_trace(const Tracer& tracer);

/// Prometheus text exposition format.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// JSON object: {"sim_time_ns": ..., "metrics": [...]}.
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace esg::obs
