#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace esg::obs {

namespace {

using common::SimDuration;
using common::SimTime;

const char* kCategoryNames[kProfileCategories] = {
    "queue-wait", "breaker-wait", "backoff", "stage",
    "network",    "checksum",     "overhead",
};

std::string_view span_attr(const SpanRecord& rec, std::string_view key) {
  for (const auto& [k, v] : rec.attrs) {
    if (k == key) return v;
  }
  return {};
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Category of an interval whose deepest covering span is `name`, when the
/// span itself decides (leaf phases / data movement).  Returns true and
/// sets `out` if decisive; ambiguous containers (the root, `rm.transfer`,
/// `hrm.stage`) fall through to the event-based gap classifier.
bool span_decides(std::string_view name, ProfileCategory& out) {
  if (name == "net.tcp") {
    out = ProfileCategory::network;
    return true;
  }
  if (name == "gridftp.checksum") {
    out = ProfileCategory::checksum;
    return true;
  }
  if (starts_with(name, "hrm.") && name != "hrm.stage") {
    out = ProfileCategory::stage;  // hrm.stage.rpc and friends
    return true;
  }
  if (name == "rm.lookup" || name == "rm.find_replicas" ||
      name == "rm.rank_replicas") {
    out = ProfileCategory::overhead;
    return true;
  }
  if (starts_with(name, "gridftp.")) {
    // Control-plane time inside an op not covered by net.tcp: session
    // AUTH, RETR/STOR round-trips, connect handshakes.
    out = ProfileCategory::overhead;
    return true;
  }
  return false;
}

struct Window {
  SimTime begin = 0;
  SimTime end = 0;
};

/// [from, to] intervals during which a host's breaker refused traffic
/// (open or half-open).
struct BreakerTimeline {
  std::vector<Window> open;

  bool covers(SimTime a, SimTime b) const {
    for (const auto& w : open) {
      if (w.begin <= a && w.end >= b) return true;
    }
    return false;
  }
};

SimDuration backoff_ns_of(const FlightEvent& e) {
  const std::string_view ns = e.attr("backoff_ns");
  if (!ns.empty()) {
    return std::strtoll(std::string(ns).c_str(), nullptr, 10);
  }
  const std::string_view s = e.attr("backoff_s");
  if (!s.empty()) {
    return common::from_seconds(std::strtod(std::string(s).c_str(), nullptr));
  }
  return 0;
}

struct RootContext {
  const SpanRecord* root = nullptr;
  std::vector<const SpanRecord*> descendants;  // same track, under root
  std::vector<Window> backoff;                 // retry/stage-retry sleeps
  std::vector<std::string> hosts;              // candidate replica hosts
  SimTime first_child_start = 0;               // = root end if no children
};

bool in_any(const std::vector<Window>& windows, SimTime a, SimTime b) {
  for (const auto& w : windows) {
    if (w.begin <= a && w.end >= b) return true;
  }
  return false;
}

const char* gap_frame(ProfileCategory c) {
  switch (c) {
    case ProfileCategory::queue_wait: return "(queued)";
    case ProfileCategory::breaker_wait: return "(breaker-wait)";
    case ProfileCategory::backoff: return "(backoff)";
    case ProfileCategory::stage: return "(staging)";
    default: return "(overhead)";
  }
}

}  // namespace

const char* profile_category_name(ProfileCategory c) {
  const int i = static_cast<int>(c);
  if (i < 0 || i >= kProfileCategories) return "?";
  return kCategoryNames[i];
}

ProfileCategory profile_category_from_name(std::string_view name) {
  for (int i = 0; i < kProfileCategories; ++i) {
    if (name == kCategoryNames[i]) return static_cast<ProfileCategory>(i);
  }
  return ProfileCategory::overhead;
}

common::SimDuration FileProfile::category_sum() const {
  SimDuration sum = 0;
  for (const SimDuration d : self) sum += d;
  return sum;
}

ProfileCategory FileProfile::dominant() const {
  int best = 0;
  for (int i = 1; i < kProfileCategories; ++i) {
    if (self[i] > self[best]) best = i;
  }
  return static_cast<ProfileCategory>(best);
}

double TimeWhereProfile::share(ProfileCategory c) const {
  if (total <= 0) return 0.0;
  return static_cast<double>(category_self[static_cast<int>(c)]) /
         static_cast<double>(total);
}

const FileProfile* TimeWhereProfile::find(std::string_view file) const {
  for (const auto& fp : files) {
    if (fp.file == file) return &fp;
  }
  return nullptr;
}

TimeWhereProfile build_profile(const std::vector<SpanRecord>& raw_spans,
                               const std::vector<FlightEvent>& events,
                               common::SimTime at,
                               const ProfileOptions& options) {
  TimeWhereProfile profile;
  profile.root_span = options.root_span;
  profile.at = at;

  // Clamp any still-open span to the capture time so truncated runs
  // decompose with real durations.
  std::vector<SpanRecord> spans = raw_spans;
  for (auto& rec : spans) {
    if (rec.open()) {
      rec.end = at;
      rec.clamped = true;
    }
  }

  std::unordered_map<SpanId, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const auto& rec : spans) by_id[rec.id] = &rec;

  // Host breaker timelines from the global event stream.  A breaker
  // refuses traffic from `breaker.open` until the next `breaker.closed`
  // (half-open still refuses normal requests).
  std::map<std::string, BreakerTimeline> breakers;
  {
    std::map<std::string, SimTime> opened_at;
    for (const auto& e : events) {
      if (!starts_with(e.name, "breaker.")) continue;
      if (e.name == "breaker.open") {
        opened_at.emplace(e.target, e.at);
      } else if (e.name == "breaker.closed") {
        auto it = opened_at.find(e.target);
        if (it != opened_at.end()) {
          breakers[e.target].open.push_back({it->second, e.at});
          opened_at.erase(it);
        }
      }
    }
    for (const auto& [host, begin] : opened_at) {
      breakers[host].open.push_back({begin, at});  // still open at capture
    }
  }

  // Collect roots and their per-track context.
  std::vector<RootContext> roots;
  for (const auto& rec : spans) {
    if (rec.name != options.root_span) continue;
    RootContext ctx;
    ctx.root = &rec;
    roots.push_back(std::move(ctx));
  }
  std::sort(roots.begin(), roots.end(),
            [](const RootContext& a, const RootContext& b) {
              if (a.root->start != b.root->start) {
                return a.root->start < b.root->start;
              }
              return a.root->id < b.root->id;
            });

  std::unordered_map<TrackId, RootContext*> by_track;
  for (auto& ctx : roots) by_track[ctx.root->track] = &ctx;

  // Attach descendants (walk parent chains; ids increase with creation
  // order, so the walk terminates).
  for (const auto& rec : spans) {
    auto it = by_track.find(rec.track);
    if (it == by_track.end()) continue;
    RootContext& ctx = *it->second;
    if (rec.id == ctx.root->id) continue;
    SpanId p = rec.parent;
    bool under_root = false;
    while (p != 0) {
      if (p == ctx.root->id) {
        under_root = true;
        break;
      }
      auto pit = by_id.find(p);
      if (pit == by_id.end()) break;
      p = pit->second->parent;
    }
    if (under_root) ctx.descendants.push_back(&rec);
  }

  // Attach per-track events: backoff windows and candidate hosts.
  for (const auto& e : events) {
    if (e.track == 0) continue;
    auto it = by_track.find(e.track);
    if (it == by_track.end()) continue;
    RootContext& ctx = *it->second;
    if (e.name == "retry.scheduled" || e.name == "stage.retry") {
      const SimDuration ns = backoff_ns_of(e);
      if (ns > 0) ctx.backoff.push_back({e.at, e.at + ns});
    }
    const std::string_view host = e.attr("host");
    if (!host.empty() &&
        std::find(ctx.hosts.begin(), ctx.hosts.end(), host) ==
            ctx.hosts.end()) {
      ctx.hosts.emplace_back(host);
    }
  }

  std::map<std::string, SimDuration> stack_weights;

  for (auto& ctx : roots) {
    const SpanRecord& root = *ctx.root;
    FileProfile fp;
    fp.file = std::string(span_attr(root, "file"));
    if (fp.file.empty()) fp.file = root.name + "#" + std::to_string(root.id);
    fp.track = root.track;
    fp.span = root.id;
    fp.start = root.start;
    fp.end = root.end;
    fp.clamped = root.clamped;
    const std::string_view status = span_attr(root, "status");
    fp.failed = !status.empty() && status != "ok";
    if (fp.clamped) ++profile.clamped_spans;

    // Elementary boundaries: descendant edges, backoff window edges, and
    // candidate-host breaker transitions, all clamped into the root span.
    std::vector<SimTime> bounds;
    bounds.push_back(root.start);
    bounds.push_back(root.end);
    auto add_bound = [&](SimTime t) {
      if (t > root.start && t < root.end) bounds.push_back(t);
    };
    ctx.first_child_start = root.end;
    for (const SpanRecord* d : ctx.descendants) {
      add_bound(d->start);
      add_bound(d->end);
      if (starts_with(d->name, "hrm.")) fp.staged = true;
      ctx.first_child_start = std::min(ctx.first_child_start, d->start);
    }
    for (const auto& w : ctx.backoff) {
      add_bound(w.begin);
      add_bound(w.end);
    }
    for (const auto& host : ctx.hosts) {
      auto bit = breakers.find(host);
      if (bit == breakers.end()) continue;
      for (const auto& w : bit->second.open) {
        add_bound(w.begin);
        add_bound(w.end);
      }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    auto all_breakers_open = [&](SimTime a, SimTime b) {
      if (ctx.hosts.empty()) return false;
      for (const auto& host : ctx.hosts) {
        auto bit = breakers.find(host);
        if (bit == breakers.end() || !bit->second.covers(a, b)) return false;
      }
      return true;
    };

    // Sweep elementary intervals, attributing each to the deepest
    // covering descendant (ties: later start, then higher id).
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const SimTime a = bounds[i];
      const SimTime b = bounds[i + 1];
      if (b <= a) continue;
      const SpanRecord* deepest = &root;
      int deepest_depth = 0;
      for (const SpanRecord* d : ctx.descendants) {
        if (d->start > a || d->end < b) continue;
        int depth = 0;
        for (SpanId p = d->id; p != 0 && p != root.id;) {
          auto pit = by_id.find(p);
          if (pit == by_id.end()) break;
          p = pit->second->parent;
          ++depth;
        }
        if (depth > deepest_depth ||
            (depth == deepest_depth &&
             (d->start > deepest->start ||
              (d->start == deepest->start && d->id > deepest->id)))) {
          deepest = d;
          deepest_depth = depth;
        }
      }

      ProfileCategory cat;
      bool gap = false;
      if (!span_decides(deepest->name, cat)) {
        gap = true;
        if (deepest == &root && b <= ctx.first_child_start) {
          cat = ProfileCategory::queue_wait;
        } else if (deepest->name == "hrm.stage") {
          cat = in_any(ctx.backoff, a, b) ? ProfileCategory::backoff
                                          : ProfileCategory::stage;
        } else if (all_breakers_open(a, b)) {
          cat = ProfileCategory::breaker_wait;
        } else if (in_any(ctx.backoff, a, b)) {
          cat = ProfileCategory::backoff;
        } else {
          cat = ProfileCategory::overhead;
        }
      }

      fp.self[static_cast<int>(cat)] += b - a;

      // Collapsed stack: root → deepest chain, plus a synthetic leaf
      // frame for gap intervals.
      std::vector<const SpanRecord*> chain;
      for (const SpanRecord* s = deepest; s != nullptr && s->id != root.id;) {
        chain.push_back(s);
        auto pit = by_id.find(s->parent);
        s = pit == by_id.end() ? nullptr : pit->second;
      }
      std::string stack = root.name;
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        stack += ';';
        stack += (*it)->name;
      }
      if (gap) {
        stack += ';';
        stack += gap_frame(cat);
      }
      stack_weights[stack] += b - a;

      // Critical path: extend the previous step when the deepest span and
      // category repeat, else begin a new one.
      const std::string frame = gap ? gap_frame(cat) : deepest->name;
      if (!fp.critical_path.empty() &&
          fp.critical_path.back().span == deepest->id &&
          fp.critical_path.back().category == cat &&
          fp.critical_path.back().end == a) {
        fp.critical_path.back().end = b;
      } else {
        CriticalStep step;
        step.frame = frame;
        step.category = cat;
        step.start = a;
        step.end = b;
        step.span = deepest->id;
        fp.critical_path.push_back(std::move(step));
      }
    }

    for (int i = 0; i < kProfileCategories; ++i) {
      profile.category_self[i] += fp.self[i];
    }
    profile.total += fp.total();
    profile.files.push_back(std::move(fp));
  }

  // Tail exemplars: the k slowest files per category.
  for (int c = 0; c < kProfileCategories; ++c) {
    std::vector<const FileProfile*> ranked;
    for (const auto& fp : profile.files) {
      if (fp.self[c] > 0) ranked.push_back(&fp);
    }
    std::sort(ranked.begin(), ranked.end(),
              [c](const FileProfile* a, const FileProfile* b) {
                if (a->self[c] != b->self[c]) return a->self[c] > b->self[c];
                return a->file < b->file;
              });
    const std::size_t k =
        std::min<std::size_t>(ranked.size(),
                              options.exemplars_per_category < 0
                                  ? 0
                                  : options.exemplars_per_category);
    for (std::size_t i = 0; i < k; ++i) {
      TailExemplar ex;
      ex.category = static_cast<ProfileCategory>(c);
      ex.file = ranked[i]->file;
      ex.track = ranked[i]->track;
      ex.span = ranked[i]->span;
      ex.self = ranked[i]->self[c];
      ex.total = ranked[i]->total();
      profile.exemplars.push_back(std::move(ex));
    }
  }

  profile.stacks.reserve(stack_weights.size());
  for (auto& [stack, self] : stack_weights) {
    profile.stacks.push_back(StackWeight{stack, self});
  }
  profile.files_profiled = profile.files.size();
  return profile;
}

TimeWhereProfile build_profile(const Tracer& tracer,
                               const FlightRecorder& recorder,
                               const ProfileOptions& options) {
  std::vector<FlightEvent> events(recorder.events().begin(),
                                  recorder.events().end());
  TimeWhereProfile profile =
      build_profile(tracer.closed_spans(), events, tracer.now(), options);
  profile.dropped_spans = tracer.dropped();
  return profile;
}

std::string TimeWhereProfile::render() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "time-where: %s — %llu files, total %.3fs%s\n",
                root_span.c_str(),
                static_cast<unsigned long long>(
                    files_profiled > 0 ? files_profiled : files.size()),
                common::to_seconds(total),
                clamped_spans > 0 ? " (truncated run: open spans clamped)"
                                  : "");
  std::string out = buf;
  std::snprintf(buf, sizeof(buf), "  %-13s %12s %7s  %s\n", "category",
                "self", "share", "slowest exemplar");
  out += buf;
  for (int c = 0; c < kProfileCategories; ++c) {
    const TailExemplar* slowest = nullptr;
    for (const auto& ex : exemplars) {
      if (static_cast<int>(ex.category) == c) {
        slowest = &ex;
        break;  // exemplars are category-major, slowest first
      }
    }
    std::string tail;
    if (slowest != nullptr) {
      std::snprintf(buf, sizeof(buf), "%s (%.3fs, span %llu)",
                    slowest->file.c_str(), common::to_seconds(slowest->self),
                    static_cast<unsigned long long>(slowest->span));
      tail = buf;
    }
    std::snprintf(buf, sizeof(buf), "  %-13s %11.3fs %6.1f%%  %s\n",
                  kCategoryNames[c], common::to_seconds(category_self[c]),
                  100.0 * share(static_cast<ProfileCategory>(c)),
                  tail.c_str());
    out += buf;
  }
  return out;
}

std::string render_critical_path(const FileProfile& fp) {
  char buf[256];
  const ProfileCategory dom = fp.dominant();
  std::snprintf(
      buf, sizeof(buf),
      "critical path: %s — total %.3fs, dominant %s (%.1f%%)%s%s\n",
      fp.file.c_str(), common::to_seconds(fp.total()),
      profile_category_name(dom),
      fp.total() > 0 ? 100.0 * static_cast<double>(fp.self_time(dom)) /
                           static_cast<double>(fp.total())
                     : 0.0,
      fp.failed ? " [failed]" : "", fp.clamped ? " [clamped]" : "");
  std::string out = buf;
  for (const auto& step : fp.critical_path) {
    std::snprintf(buf, sizeof(buf),
                  "  +%10.3fs %10.3fs  %-12s %s  [span %llu]\n",
                  common::to_seconds(step.start - fp.start),
                  common::to_seconds(step.duration()),
                  profile_category_name(step.category), step.frame.c_str(),
                  static_cast<unsigned long long>(step.span));
    out += buf;
  }
  return out;
}

}  // namespace esg::obs
