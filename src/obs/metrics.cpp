#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace esg::obs {

Labels normalize_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      boundaries_.size() + 1);
  for (std::size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  const auto idx = static_cast<std::size_t>(it - boundaries_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double histogram_quantile(const std::vector<double>& boundaries,
                          const std::vector<std::uint64_t>& buckets,
                          double p) {
  std::uint64_t count = 0;
  for (const std::uint64_t b : buckets) count += b;
  if (count == 0 || buckets.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // The extreme quantiles clamp to the observed bucket bounds, computed with
  // integer bucket scans rather than rank interpolation: p=0 is the lower
  // edge of the lowest non-empty bucket, p=1 the upper edge of the highest
  // one (the overflow bucket clamps both to the last finite boundary).
  // Interpolating at these ranks is fragile — `p * count` rounds in floating
  // point for large counts, and a rank of exactly 0 used to extrapolate
  // down the first occupied bucket regardless of where its mass sits.
  if (p <= 0.0) {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      if (i >= boundaries.size()) break;  // only overflow occupied
      if (i > 0) return boundaries[i - 1];
      return boundaries[0] > 0.0 ? 0.0 : boundaries[0];
    }
    return boundaries.empty() ? 0.0 : boundaries.back();
  }
  if (p >= 1.0) {
    if (buckets.size() > boundaries.size() && buckets[boundaries.size()] > 0) {
      return boundaries.empty() ? 0.0 : boundaries.back();  // max in overflow
    }
    for (std::size_t i = std::min(buckets.size(), boundaries.size()); i-- > 0;) {
      if (buckets[i] > 0) return boundaries[i];
    }
    return boundaries.empty() ? 0.0 : boundaries.back();
  }
  const double rank = p * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < boundaries.size() && i < buckets.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(buckets[i]);
    if (cumulative >= rank && buckets[i] > 0) {
      const double upper = boundaries[i];
      // Positive-valued histograms (durations, rates) start at zero; a
      // first boundary at or below zero leaves nothing to interpolate over.
      const double lower =
          i > 0 ? boundaries[i - 1] : (upper > 0.0 ? 0.0 : upper);
      return lower +
             (upper - lower) * (rank - prev) / static_cast<double>(buckets[i]);
    }
  }
  // Rank lands in the overflow bucket: clamp to the largest finite edge.
  return boundaries.empty() ? 0.0 : boundaries.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(boundaries_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const SnapshotEntry* MetricsSnapshot::find(std::string_view name,
                                           const Labels& labels) const {
  const Labels sorted = normalize_labels(labels);
  for (const auto& e : entries) {
    if (e.name == name && e.labels == sorted) return &e;
  }
  return nullptr;
}

double MetricsSnapshot::value_or(std::string_view name, const Labels& labels,
                                 double fallback) const {
  const SnapshotEntry* e = find(name, labels);
  return e == nullptr ? fallback : e->value;
}

double MetricsSnapshot::family_total(std::string_view name) const {
  double total = 0.0;
  for (const auto& e : entries) {
    if (e.name == name && e.kind != MetricKind::histogram) total += e.value;
  }
  return total;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  Key key{std::string(name), normalize_labels(std::move(labels))};
  std::scoped_lock lock(mu_);
  auto& slot = counters_[std::move(key)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  Key key{std::string(name), normalize_labels(std::move(labels))};
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[std::move(key)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> boundaries,
                                      Labels labels) {
  Key key{std::string(name), normalize_labels(std::move(labels))};
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[std::move(key)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(boundaries));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot(common::SimTime at) const {
  MetricsSnapshot snap;
  snap.at = at;
  std::scoped_lock lock(mu_);
  snap.entries.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  // std::map iteration gives (name, labels) order within each kind; the
  // final sort's (name, labels, kind) key is a total order over series, so
  // exporter output — and every digest built on it — is byte-stable no
  // matter how registration interleaved.
  for (const auto& [key, c] : counters_) {
    SnapshotEntry e;
    e.kind = MetricKind::counter;
    e.name = key.first;
    e.labels = key.second;
    e.value = static_cast<double>(c->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [key, g] : gauges_) {
    SnapshotEntry e;
    e.kind = MetricKind::gauge;
    e.name = key.first;
    e.labels = key.second;
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [key, h] : histograms_) {
    SnapshotEntry e;
    e.kind = MetricKind::histogram;
    e.name = key.first;
    e.labels = key.second;
    e.boundaries = h->boundaries();
    e.buckets = h->bucket_counts();
    e.count = h->count();
    e.sum = h->sum();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.labels != b.labels) return a.labels < b.labels;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return snap;
}

std::size_t MetricsRegistry::series_count() const {
  std::scoped_lock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<double> duration_boundaries() {
  return {0.1, 0.5, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 900.0, 3600.0};
}

std::vector<double> relative_error_boundaries() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
}

}  // namespace esg::obs
