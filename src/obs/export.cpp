#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace esg::obs {

namespace {

// Fixed-format doubles keep exports deterministic and diff-friendly.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_micros(common::SimTime t) {
  // Sim time is integer nanoseconds; Chrome wants microseconds.  Three
  // decimals preserve exact nanosecond resolution.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", t / 1000,
                static_cast<int>(t % 1000));
  return buf;
}

// Label-value escaping per the Prometheus text exposition format:
// backslash, double-quote, and line-feed are the three characters that
// must be escaped inside a quoted label value.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labels_block(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prom_escape(v) + "\"";
  }
  out += "}";
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::histogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_chrome_trace(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&out, &first](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n" + event;
  };

  for (const auto& [track, name] : tracer.tracks()) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(track) + ",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}}");
  }

  for (const auto& rec : tracer.closed_spans()) {
    std::string ev = "{\"name\":\"" + json_escape(rec.name) + "\"";
    if (!rec.category.empty()) {
      ev += ",\"cat\":\"" + json_escape(rec.category) + "\"";
    }
    ev += ",\"ph\":\"X\",\"ts\":" + fmt_micros(rec.start) +
          ",\"dur\":" + fmt_micros(rec.end - rec.start) +
          ",\"pid\":1,\"tid\":" + std::to_string(rec.track);
    ev += ",\"args\":{\"span_id\":" + std::to_string(rec.id) +
          ",\"parent_id\":" + std::to_string(rec.parent);
    if (rec.clamped) ev += ",\"clamped\":\"true\"";
    for (const auto& [k, v] : rec.attrs) {
      ev += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    ev += "}}";
    emit(ev);
  }

  for (const auto& rec : tracer.instants()) {
    std::string ev = "{\"name\":\"" + json_escape(rec.name) + "\"";
    if (!rec.category.empty()) {
      ev += ",\"cat\":\"" + json_escape(rec.category) + "\"";
    }
    ev += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + fmt_micros(rec.at) +
          ",\"pid\":1,\"tid\":" + std::to_string(rec.track);
    if (!rec.attrs.empty()) {
      ev += ",\"args\":{";
      bool first_attr = true;
      for (const auto& [k, v] : rec.attrs) {
        if (!first_attr) ev += ",";
        first_attr = false;
        ev += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
      }
      ev += "}";
    }
    ev += "}";
    emit(ev);
  }

  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":" +
         std::to_string(tracer.dropped()) + "}}";
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& e : snapshot.entries) {
    if (e.name != last_family) {
      out += "# TYPE " + e.name + " " + kind_name(e.kind) + "\n";
      last_family = e.name;
    }
    switch (e.kind) {
      case MetricKind::counter:
      case MetricKind::gauge:
        out += e.name + labels_block(e.labels) + " " + fmt_double(e.value) +
               "\n";
        break;
      case MetricKind::histogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < e.buckets.size(); ++i) {
          cumulative += e.buckets[i];
          Labels with_le = e.labels;
          with_le.emplace_back(
              "le", i < e.boundaries.size() ? fmt_double(e.boundaries[i])
                                            : "+Inf");
          out += e.name + "_bucket" + labels_block(with_le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += e.name + "_sum" + labels_block(e.labels) + " " +
               fmt_double(e.sum) + "\n";
        out += e.name + "_count" + labels_block(e.labels) + " " +
               std::to_string(e.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out =
      "{\"sim_time_ns\":" + std::to_string(snapshot.at) + ",\"metrics\":[";
  bool first = true;
  for (const auto& e : snapshot.entries) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"" + json_escape(e.name) + "\",\"kind\":\"" +
           kind_name(e.kind) + "\",\"labels\":" + labels_json(e.labels);
    if (e.kind == MetricKind::histogram) {
      out += ",\"boundaries\":[";
      for (std::size_t i = 0; i < e.boundaries.size(); ++i) {
        if (i > 0) out += ",";
        out += fmt_double(e.boundaries[i]);
      }
      out += "],\"buckets\":[";
      for (std::size_t i = 0; i < e.buckets.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(e.buckets[i]);
      }
      out += "],\"count\":" + std::to_string(e.count) +
             ",\"sum\":" + fmt_double(e.sum);
    } else {
      out += ",\"value\":" + fmt_double(e.value);
    }
    out += "}";
  }
  out += "\n]}";
  return out;
}

}  // namespace esg::obs
