// Flight recorder: a bounded, deterministic ring of structured events.
//
// The metrics registry answers "how much" and the tracer answers "how long",
// but neither answers "what happened, in order" — the question every
// postmortem starts with.  The FlightRecorder captures the discrete state
// transitions of a run (transfer lifecycle, breaker trips, fault
// injections, replica re-ranks, HRM stage events, link degradations) as a
// single time-ordered event stream shared by every component hanging off
// one Simulation.
//
// Two properties make it a *flight* recorder rather than a log:
//
//   * Bounded: the ring holds the most recent `capacity` events; overflow
//     evicts the oldest (counted, never silent).  Instrumented code never
//     checks capacity.
//   * Deterministic: events carry simulated time and a per-recorder
//     sequence number, and `digest()` folds every event ever recorded
//     (including evicted ones) into a running FNV-1a fingerprint — two
//     same-seed chaos runs must produce byte-identical digests, which is
//     what makes "replay the seed and diff" a debugging workflow.
//
// Events deliberately mirror the tracer's attribute style (small string
// key/value pairs) and carry the emitting worker's TrackId when known, so a
// postmortem can join the event stream against the span tree.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "obs/trace.hpp"

namespace esg::obs {

struct FlightEvent {
  std::uint64_t seq = 0;       // monotonically increasing, never reused
  common::SimTime at = 0;
  TrackId track = 0;           // joins against tracer spans; 0 = none
  std::string category;        // "rm", "gridftp", "hrm", "chaos", "net", ...
  std::string name;            // "breaker.open", "fault.brownout.begin", ...
  std::string target;          // file / host / link the event is about
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Value of an attribute, or "" when absent.
  std::string_view attr(std::string_view key) const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::function<common::SimTime()> clock,
                          std::size_t capacity = 1 << 15);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(std::string category, std::string name, std::string target,
              std::vector<std::pair<std::string, std::string>> attrs = {},
              TrackId track = 0);

  /// Retained events, oldest first.
  const std::deque<FlightEvent>& events() const { return ring_; }
  /// Every event ever recorded (retained + evicted).
  std::uint64_t recorded() const { return next_seq_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t capacity() const { return capacity_; }

  /// Running FNV-1a fingerprint over every event recorded so far (sequence,
  /// time, track, category, name, target, attrs).  Same-seed runs agree.
  std::uint64_t digest() const { return digest_; }

  /// Events touching `target` (exact match), oldest first.
  std::vector<const FlightEvent*> for_target(std::string_view target) const;
  /// Events on a tracer track, oldest first.
  std::vector<const FlightEvent*> for_track(TrackId track) const;
  /// Events with `at` in [from, to], oldest first.
  std::vector<const FlightEvent*> in_window(common::SimTime from,
                                            common::SimTime to) const;

 private:
  std::function<common::SimTime()> clock_;
  std::size_t capacity_;
  std::deque<FlightEvent> ring_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t digest_;
};

/// One event as a deterministic JSON object (shared by RunManifest and the
/// esg-report timeline rendering).
std::string to_json(const FlightEvent& event);

}  // namespace esg::obs
