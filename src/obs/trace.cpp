#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>

namespace esg::obs {

void Span::end() {
  if (tracer_ != nullptr && id_ != 0) tracer_->end(id_);
  tracer_ = nullptr;
  id_ = 0;
}

void Span::set_attr(std::string key, std::string value) {
  if (tracer_ != nullptr && id_ != 0) {
    tracer_->set_attr(id_, std::move(key), std::move(value));
  }
}

Span Span::child(std::string name, std::string category) {
  if (tracer_ == nullptr) return {};
  return Span(tracer_,
              tracer_->begin(std::move(name), std::move(category), track_,
                             id_),
              track_);
}

Tracer::Tracer(std::function<common::SimTime()> clock, std::size_t max_spans)
    : clock_(std::move(clock)), max_spans_(max_spans) {
  assert(clock_);
  track_names_[0] = "main";
}

TrackId Tracer::new_track(std::string name) {
  std::scoped_lock lock(mu_);
  const TrackId id = next_track_++;
  track_names_[id] = std::move(name);
  return id;
}

Span Tracer::span(std::string name, std::string category, TrackId track) {
  return Span(this, begin(std::move(name), std::move(category), track),
              track);
}

SpanId Tracer::begin(std::string name, std::string category, TrackId track,
                     SpanId parent) {
  const common::SimTime now = clock_();
  std::unique_lock lock(mu_);
  if (records_.size() >= max_spans_) {
    const std::size_t total = ++dropped_;
    const auto hook = drop_hook_;
    lock.unlock();
    if (hook) hook(total);
    return 0;
  }
  SpanRecord rec;
  rec.id = records_.size() + 1;
  rec.track = track;
  auto& stack = open_[track];
  rec.parent = parent != 0 ? parent : (stack.empty() ? 0 : stack.back());
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.start = now;
  stack.push_back(rec.id);
  records_.push_back(std::move(rec));
  return records_.back().id;
}

void Tracer::end(SpanId id) {
  if (id == 0) return;
  const common::SimTime now = clock_();
  std::scoped_lock lock(mu_);
  if (id > records_.size()) return;
  SpanRecord& rec = records_[id - 1];
  if (!rec.open()) return;
  rec.end = now;
  // Async spans may end out of LIFO order; erase wherever it sits.
  auto& stack = open_[rec.track];
  auto it = std::find(stack.rbegin(), stack.rend(), id);
  if (it != stack.rend()) stack.erase(std::next(it).base());
}

void Tracer::set_attr(SpanId id, std::string key, std::string value) {
  if (id == 0) return;
  std::scoped_lock lock(mu_);
  if (id > records_.size()) return;
  records_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::instant(std::string name, std::string category, TrackId track,
                     std::vector<std::pair<std::string, std::string>> attrs) {
  const common::SimTime now = clock_();
  std::unique_lock lock(mu_);
  if (instants_.size() >= max_spans_) {
    const std::size_t total = ++dropped_;
    const auto hook = drop_hook_;
    lock.unlock();
    if (hook) hook(total);
    return;
  }
  instants_.push_back(InstantRecord{track, std::move(name),
                                    std::move(category), now,
                                    std::move(attrs)});
}

void Tracer::set_capacity(std::size_t max_spans) {
  std::scoped_lock lock(mu_);
  max_spans_ = max_spans;
}

void Tracer::set_drop_hook(std::function<void(std::size_t)> hook) {
  std::scoped_lock lock(mu_);
  drop_hook_ = std::move(hook);
}

std::vector<SpanRecord> Tracer::spans() const {
  std::scoped_lock lock(mu_);
  return records_;
}

std::vector<SpanRecord> Tracer::closed_spans() const {
  const common::SimTime now = clock_();
  std::scoped_lock lock(mu_);
  std::vector<SpanRecord> out = records_;
  for (auto& rec : out) {
    if (rec.open()) {
      rec.end = now;
      rec.clamped = true;
    }
  }
  return out;
}

std::vector<InstantRecord> Tracer::instants() const {
  std::scoped_lock lock(mu_);
  return instants_;
}

std::map<TrackId, std::string> Tracer::tracks() const {
  std::scoped_lock lock(mu_);
  return track_names_;
}

std::size_t Tracer::span_count() const {
  std::scoped_lock lock(mu_);
  return records_.size();
}

std::size_t Tracer::dropped() const {
  std::scoped_lock lock(mu_);
  return dropped_;
}

}  // namespace esg::obs
