// Streaming telemetry: a fixed-memory, in-sim time-series store.
//
// The metrics registry holds *current* values; every consumer so far — the
// SLO watchdog, the bench gate, postmortems — reads it after the run ends.
// Long-lived interactive sessions and fleet campaigns (the 7.3 PB ESGF
// replication case study in PAPERS.md) live or die on *in-flight*
// monitoring, which needs history: "what was the retry rate over the last
// minute", "how did goodput move since the brownout began".
//
// The TimeSeriesStore keeps that history with strictly bounded memory.  A
// series is (name, labels), the same identity the registry uses.  Each
// series owns three fixed-capacity rings:
//
//   * raw      — every sample as (sim-time, value);
//   * fine     — rollups of min/max/sum/count per 10 s bucket (default);
//   * coarse   — the same per 60 s bucket.
//
// Rings overwrite oldest-first, so a series costs the same whether it holds
// ten samples or ten million (verified by a 1M-sample test).  Queries that
// reach past the raw window fall back to the rollups, so windowed deltas
// and stats stay answerable for the whole retained horizon.
//
// Feeding the store is one call — `sample_registry(registry, now)` snapshots
// every instrumented subsystem (rm, gridftp, net, hrm, campaign, chaos) into
// series with zero call-site changes; histograms additionally emit derived
// `<name>:p50` / `<name>:p99` / `<name>:count` / `<name>:sum` series so
// quantiles become plottable over time.  sim::Simulation schedules that
// call on the simulated clock (start_telemetry), which makes every sample —
// and every alert computed from them (obs/alert.hpp) — byte-deterministic
// across same-seed runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace esg::obs {

struct SeriesPoint {
  common::SimTime at = 0;
  double value = 0.0;
};

/// One closed rollup bucket: the aggregate of every raw sample whose time
/// fell in [start, start + width).
struct RollupPoint {
  common::SimTime start = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Aggregate of a window query (stats() below).
struct WindowStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Ring capacities and rollup widths; defaults retain ~10 min of raw
/// 1 s samples, ~1 h of 10 s rollups and ~4 h of 60 s rollups per series.
struct TimeSeriesConfig {
  std::size_t raw_capacity = 600;
  std::size_t fine_capacity = 360;
  std::size_t coarse_capacity = 240;
  common::SimDuration fine_width = 10 * common::kSecond;
  common::SimDuration coarse_width = 60 * common::kSecond;
};

/// One (name, labels) series: a raw ring plus two rollup rings.  Appends
/// must carry non-decreasing times (the sim clock guarantees it).
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesConfig& cfg);

  void append(common::SimTime at, double value);

  /// Retained raw samples, oldest first.
  std::vector<SeriesPoint> raw() const;
  /// Closed rollup buckets, oldest first (the still-open bucket excluded).
  std::vector<RollupPoint> fine() const;
  std::vector<RollupPoint> coarse() const;

  std::uint64_t samples() const { return samples_; }
  std::size_t raw_size() const { return raw_.size; }
  std::size_t fine_size() const { return fine_.size; }
  std::size_t coarse_size() const { return coarse_.size; }

  /// Whole-life aggregates (never evicted).
  double life_min() const { return life_min_; }
  double life_max() const { return life_max_; }
  double life_sum() const { return life_sum_; }

  /// Latest sample at or before `t`.  When `t` precedes the raw window the
  /// rollup rings answer (the bucket covering `t` contributes its min —
  /// exact for the monotone counters windowed deltas are computed on).
  /// False when nothing at or before `t` is retained.
  bool value_at(common::SimTime t, double* out) const;

  /// Increase over (from, to] for cumulative counters, clamped at 0 so a
  /// gauge fed through here cannot produce a negative "rate".
  double delta(common::SimTime from, common::SimTime to) const;

  /// min/max/sum/count over samples in (from, to], folding raw samples and
  /// rollup buckets that fall inside the window.
  WindowStats stats(common::SimTime from, common::SimTime to) const;

 private:
  struct RawRing {
    std::vector<SeriesPoint> slots;
    std::size_t head = 0;  // next write position
    std::size_t size = 0;
    void push(SeriesPoint p);
    const SeriesPoint& at(std::size_t i) const;  // i=0 oldest
  };
  struct RollupRing {
    std::vector<RollupPoint> slots;
    std::size_t head = 0;
    std::size_t size = 0;
    void push(RollupPoint p);
    const RollupPoint& at(std::size_t i) const;
  };
  struct OpenBucket {
    common::SimTime start = -1;
    RollupPoint agg;
    bool open() const { return start >= 0; }
  };

  void roll(OpenBucket& bucket, RollupRing& ring, common::SimDuration width,
            common::SimTime at, double value);

  common::SimDuration fine_width_;
  common::SimDuration coarse_width_;
  RawRing raw_;
  RollupRing fine_;
  RollupRing coarse_;
  OpenBucket open_fine_;
  OpenBucket open_coarse_;
  std::uint64_t samples_ = 0;
  double life_min_ = 0.0;
  double life_max_ = 0.0;
  double life_sum_ = 0.0;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig cfg = {});
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  const TimeSeriesConfig& config() const { return cfg_; }

  /// Find-or-create; the reference is stable for the store's lifetime.
  TimeSeries& series(std::string_view name, Labels labels = {});
  const TimeSeries* find(std::string_view name, const Labels& labels = {}) const;

  void append(std::string_view name, Labels labels, common::SimTime at,
              double value);

  /// The sampling hook: snapshot `registry` and append one sample per
  /// series.  Counters and gauges sample their value; histograms sample
  /// derived `<name>:count`, `<name>:sum`, `<name>:p50` and `<name>:p99`
  /// series.  Instrumented code needs no changes to start emitting history.
  void sample_registry(const MetricsRegistry& registry, common::SimTime at);

  /// Sum of delta(from, to] over every series whose name is `name` and
  /// whose labels contain `labels` as a subset (empty = whole family).
  double family_delta(std::string_view name, const Labels& labels,
                      common::SimTime from, common::SimTime to) const;
  /// Sum of the latest values (at or before `t`) across the same family
  /// selection; `found` (optional) reports whether any series matched.
  double family_value(std::string_view name, const Labels& labels,
                      common::SimTime t, bool* found = nullptr) const;

  /// Deterministic iteration, sorted by (name, labels).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, s] : series_) fn(key.first, key.second, *s);
  }

  std::size_t series_count() const { return series_.size(); }
  std::uint64_t samples_total() const { return samples_total_; }
  common::SimTime last_sample_at() const { return last_sample_at_; }

 private:
  using Key = std::pair<std::string, Labels>;

  TimeSeriesConfig cfg_;
  std::map<Key, std::unique_ptr<TimeSeries>> series_;
  std::uint64_t samples_total_ = 0;
  common::SimTime last_sample_at_ = 0;
};

/// True when every (k, v) in `subset` appears in (sorted) `labels`.
bool labels_contain(const Labels& labels, const Labels& subset);

}  // namespace esg::obs
