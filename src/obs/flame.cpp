#include "obs/flame.hpp"

#include <algorithm>
#include <map>

namespace esg::obs {

std::string to_collapsed_stacks(const std::vector<StackWeight>& stacks) {
  std::vector<const StackWeight*> sorted;
  sorted.reserve(stacks.size());
  for (const auto& sw : stacks) {
    if (sw.self > 0) sorted.push_back(&sw);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const StackWeight* a, const StackWeight* b) {
              return a->stack < b->stack;
            });
  std::string out;
  for (const StackWeight* sw : sorted) {
    out += sw->stack;
    out += ' ';
    out += std::to_string(sw->self);
    out += '\n';
  }
  return out;
}

std::string to_collapsed_stacks(const TimeWhereProfile& profile) {
  return to_collapsed_stacks(profile.stacks);
}

std::string to_collapsed_stacks(const FileProfile& fp,
                                const std::string& root_span) {
  // The critical path loses intermediate frames (it keeps only the deepest
  // span per step), so rebuild two-level stacks: root;frame.  Aggregate
  // repeated frames (e.g. several backoff gaps) into one line.
  std::map<std::string, common::SimDuration> weights;
  for (const auto& step : fp.critical_path) {
    std::string stack = root_span;
    if (step.frame != root_span) {
      stack += ';';
      stack += step.frame;
    }
    weights[stack] += step.duration();
  }
  std::vector<StackWeight> stacks;
  stacks.reserve(weights.size());
  for (auto& [stack, self] : weights) {
    stacks.push_back(StackWeight{stack, self});
  }
  return to_collapsed_stacks(stacks);
}

}  // namespace esg::obs
