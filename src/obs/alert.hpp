// Online alerting over the streaming telemetry store.
//
// The SLO rules in obs/slo.hpp answer "did the run keep its promises" after
// the fact; operating a long-lived session needs the question answered
// *while it runs*.  Two detector families, both evaluated at the telemetry
// sampling tick on the simulated clock (so firings are byte-deterministic
// across same-seed runs):
//
//   * Burn-rate rules — SRE-style multi-window error-budget alerts.  A rule
//     names a "bad" counter family and either a "good" (total) family with
//     an objective ("99% of attempts succeed") or a flat event budget per
//     hour.  The burn rate is how many times faster than budget the errors
//     arrive; the rule fires when BOTH a long and a short window exceed the
//     threshold (the long window proves it is sustained, the short window
//     proves it is still happening) and resolves when the short window
//     recovers — the standard fast-burn page shape.
//
//   * Anomaly rules — an EWMA baseline with variance tracking feeds a
//     two-sided CUSUM; a sustained shift of the watched signal (a gauge, or
//     the windowed rate of a counter) beyond `cusum_h` sigmas fires.  The
//     baseline freezes while firing so the alert resolves when the signal
//     returns to the *pre-incident* level rather than chasing the fault.
//
// Firings and resolutions are recorded as `alert.fired` / `alert.resolved`
// flight-recorder events (category "alert"), which lands them in run
// manifests, postmortem timelines and the bench gate; correlate_alert()
// names the injected chaos fault a firing overlapped, the same attribution
// the per-file postmortems perform.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"

namespace esg::obs {

enum class AlertKind { burn_rate, anomaly };

const char* alert_kind_name(AlertKind kind);

struct BurnRateRule {
  std::string name;            // alert name ("gridftp-error-burn")
  std::string bad_metric;      // counter family of bad events
  Labels bad_labels;           // subset selector (empty = whole family)
  std::string good_metric;     // total family; empty = budget mode
  Labels good_labels;
  /// Ratio mode: promised fraction of good outcomes (0.99 = 1% budget).
  double objective = 0.99;
  /// Budget mode (good_metric empty): allowed bad events per hour.
  double budget_per_hour = 1.0;
  /// Fire when burn >= threshold on BOTH windows.
  double threshold = 2.0;
  common::SimDuration long_window = 60 * common::kSecond;
  common::SimDuration short_window = 15 * common::kSecond;
};

struct AnomalyRule {
  std::string name;
  std::string metric;          // series (or family, summed) to watch
  Labels labels;
  /// > 0: watch the windowed rate of a counter (delta/window seconds)
  /// instead of the raw value — "goodput fell off a cliff".
  common::SimDuration rate_window = 0;
  double ewma_alpha = 0.2;     // baseline adaptation rate
  double cusum_k = 0.5;        // slack, in sigmas
  double cusum_h = 5.0;        // decision threshold, in sigmas
  double min_sigma = 1e-9;     // sigma floor (flat baselines)
  int warmup_samples = 8;      // no verdicts until the baseline settles
};

/// One firing (and its resolution, once it happens).
struct AlertRecord {
  std::string rule;
  AlertKind kind = AlertKind::burn_rate;
  std::string metric;          // the watched series/family
  common::SimTime fired_at = 0;
  common::SimTime resolved_at = 0;  // meaningful when resolved
  bool resolved = false;
  double value = 0.0;          // burn rate / cusum stat at fire time
  double threshold = 0.0;
};

class AlertEngine {
 public:
  /// `recorder` may be null (no flight events); must outlive the engine.
  AlertEngine(const TimeSeriesStore& store, FlightRecorder* recorder);
  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  void add(BurnRateRule rule);
  void add(AnomalyRule rule);
  std::size_t rule_count() const { return burns_.size() + anomalies_.size(); }

  /// Evaluate every rule against the store at sim-time `now`.  Called from
  /// the telemetry sampling tick; safe to call ad hoc.
  void evaluate(common::SimTime now);

  /// Every firing so far, in fire order (unresolved ones flagged).
  const std::vector<AlertRecord>& history() const { return history_; }
  std::size_t firing_count() const;
  std::size_t fired_total() const { return history_.size(); }

  /// Live pane: currently-firing alerts plus the most recent resolutions.
  std::string render(common::SimTime now) const;

 private:
  struct BurnState {
    BurnRateRule rule;
    bool firing = false;
    std::size_t record = 0;  // index into history_ while firing
  };
  struct AnomalyState {
    AnomalyRule rule;
    double mean = 0.0;
    double var = 0.0;
    double pos = 0.0;  // one-sided CUSUM accumulators (in sigmas)
    double neg = 0.0;
    int samples = 0;
    bool firing = false;
    std::size_t record = 0;
  };

  double burn_rate(const BurnRateRule& rule, common::SimTime now,
                   common::SimDuration window) const;
  void fire(AlertKind kind, const std::string& rule,
            const std::string& metric, common::SimTime now, double value,
            double threshold, std::size_t* record);
  void resolve(AlertKind kind, common::SimTime now, std::size_t record);

  const TimeSeriesStore& store_;
  FlightRecorder* recorder_;
  std::vector<BurnState> burns_;
  std::vector<AnomalyState> anomalies_;
  std::vector<AlertRecord> history_;
};

/// Render an alert table from records (esg-report alerts, live pane).
std::string render_alerts(const std::vector<AlertRecord>& alerts);

/// The chaos fault best explaining a firing: the latest fault still active
/// at fired_at, else the latest one that ended within the recency window
/// before it (matching the per-file postmortem attribution).  Returns
/// nullptr when no injected fault plausibly explains the alert.
const FlightEvent* correlate_alert(const std::vector<FlightEvent>& events,
                                   const AlertRecord& alert);

}  // namespace esg::obs
