// Sim-time span tracing.
//
// A Tracer is bound to a simulation clock and records nested spans — named
// intervals of simulated time with parent/child structure and per-span
// attributes — into a bounded in-memory buffer.  Spans live on *tracks*
// (one per logical thread of activity: the request manager gives every
// file worker its own track), and within a track spans nest: a span begun
// while another is open becomes its child unless an explicit parent is
// given.  That matches how the Chrome trace_event viewer (about:tracing /
// Perfetto) renders them — tracks map to tids, nesting shows as stacked
// slices.
//
// Two usage styles:
//
//   * RAII for synchronous scopes:
//       auto sp = tracer.span("rm.rank_replicas", "rm", track);
//   * begin()/end() ids for async state machines that outlive any C++
//     scope (GridFTP operations, fluid transfers); Span is movable and can
//     be parked in the state struct, ending on destruction.
//
// When the buffer fills, new spans are dropped (counted, never silently):
// the begin() returns id 0 and every operation on id 0 is a no-op, so
// instrumented code needs no capacity checks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace esg::obs {

using SpanId = std::uint64_t;   // 0 = invalid / dropped
using TrackId = std::uint64_t;  // 0 = the default track

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  TrackId track = 0;
  std::string name;
  std::string category;
  common::SimTime start = 0;
  common::SimTime end = -1;  // -1: still open
  /// Set by closed_spans(): this record was still open at capture time and
  /// its `end` is the capture clock, not a real end() call.
  bool clamped = false;
  std::vector<std::pair<std::string, std::string>> attrs;

  bool open() const { return end < 0; }
  common::SimDuration duration() const { return open() ? 0 : end - start; }
};

struct InstantRecord {
  TrackId track = 0;
  std::string name;
  std::string category;
  common::SimTime at = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

/// Movable RAII handle; ends the span on destruction (once).
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { swap(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      swap(other);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void end();
  void set_attr(std::string key, std::string value);
  /// Begin a child span on the same track.
  Span child(std::string name, std::string category = {});

  SpanId id() const { return id_; }
  TrackId track() const { return track_; }
  explicit operator bool() const { return tracer_ != nullptr && id_ != 0; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanId id, TrackId track)
      : tracer_(tracer), id_(id), track_(track) {}
  void swap(Span& other) noexcept {
    std::swap(tracer_, other.tracer_);
    std::swap(id_, other.id_);
    std::swap(track_, other.track_);
  }

  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  TrackId track_ = 0;
};

class Tracer {
 public:
  /// `clock` supplies the simulated now; `max_spans` bounds the buffer.
  explicit Tracer(std::function<common::SimTime()> clock,
                  std::size_t max_spans = 1 << 17);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocate a named track (a tid in the Chrome trace).
  TrackId new_track(std::string name);

  /// RAII span; parent inferred from the track's innermost open span.
  Span span(std::string name, std::string category = {}, TrackId track = 0);

  /// Raw API for async owners.  parent == 0 infers from the open stack.
  SpanId begin(std::string name, std::string category = {}, TrackId track = 0,
               SpanId parent = 0);
  void end(SpanId id);
  void set_attr(SpanId id, std::string key, std::string value);

  /// Zero-duration marker event.
  void instant(std::string name, std::string category = {}, TrackId track = 0,
               std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Grow (or shrink) the span buffer.  Shrinking never discards already
  /// recorded spans; it only lowers the ceiling for new ones.
  void set_capacity(std::size_t max_spans);

  /// Called (outside the tracer lock) whenever a span or instant is
  /// dropped, with the running drop total — the simulation wires this to an
  /// `obs_trace_dropped` gauge so silent drops surface in every snapshot.
  void set_drop_hook(std::function<void(std::size_t)> hook);

  // ---- inspection / export ----
  std::vector<SpanRecord> spans() const;  // copy; includes open spans
  /// Copy with every still-open span clamped shut at the current clock
  /// (`clamped` set) — exporters and the profiler use this so truncated
  /// runs render with real durations instead of end = -1 / zero.
  std::vector<SpanRecord> closed_spans() const;
  std::vector<InstantRecord> instants() const;
  std::map<TrackId, std::string> tracks() const;
  std::size_t span_count() const;
  std::size_t dropped() const;
  std::size_t capacity() const { return max_spans_; }
  common::SimTime now() const { return clock_(); }

 private:
  std::function<common::SimTime()> clock_;
  std::size_t max_spans_;
  std::function<void(std::size_t)> drop_hook_;

  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;             // id = index + 1
  std::vector<InstantRecord> instants_;
  std::map<TrackId, std::string> track_names_;  // includes 0 ("main")
  std::map<TrackId, std::vector<SpanId>> open_; // per-track open-span stack
  TrackId next_track_ = 1;
  std::size_t dropped_ = 0;
};

}  // namespace esg::obs
