#include "obs/postmortem.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace esg::obs {

namespace {

std::string fmt_seconds(common::SimDuration d) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1fs", common::to_seconds(d));
  return buf;
}

std::string fmt_at(common::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "[%8.1fs]", common::to_seconds(t));
  return buf;
}

bool is_anomaly(const FlightEvent& e) {
  // Symptoms: anything that shows the file was not making clean forward
  // progress.  attempt.begin #1 is normal; later attempts arrive via
  // retry.scheduled so they are not double-counted here.
  return e.name == "attempt.timeout" || e.name == "slow_replica" ||
         e.name == "checksum.mismatch" || e.name == "corruption.refetch" ||
         e.name == "retry.scheduled" || e.name == "stage.retry" ||
         e.name == "file.failed";
}

bool is_fault_begin(const FlightEvent& e) {
  return e.category == "chaos" && e.name.size() > 6 &&
         e.name.compare(e.name.size() - 6, 6, ".begin") == 0;
}

bool is_fault_instant(const FlightEvent& e) {
  return e.category == "chaos" && e.name == "fault.corruption";
}

/// End time of a durable fault (matching ".end" with the same stem and
/// target), or -1 when it never lifted inside the recorded window.
common::SimTime fault_end(const std::vector<FlightEvent>& events,
                          const FlightEvent& begin) {
  const std::string stem = begin.name.substr(0, begin.name.size() - 6);
  for (const auto& e : events) {
    if (e.seq <= begin.seq) continue;
    if (e.category == "chaos" && e.target == begin.target &&
        e.name == stem + ".end") {
      return e.at;
    }
  }
  return -1;
}

}  // namespace

Postmortem build_postmortem(const std::vector<FlightEvent>& events,
                            const std::string& file) {
  Postmortem pm;
  pm.file = file;

  // ---- locate the file's lifecycle ----
  TrackId track = 0;
  const FlightEvent* queued = nullptr;
  const FlightEvent* terminal = nullptr;
  for (const auto& e : events) {
    if (e.name == "file.queued" && e.target == file) {
      queued = &e;
      track = e.track;
    }
    if ((e.name == "file.complete" || e.name == "file.failed") &&
        e.target == file) {
      terminal = &e;
    }
  }
  if (queued == nullptr) return pm;
  pm.found = true;
  pm.started = queued->at;
  pm.finished = terminal != nullptr ? terminal->at : pm.started;
  if (terminal != nullptr) {
    pm.failed = terminal->name == "file.failed";
    pm.status = pm.failed ? std::string(terminal->attr("status")) : "ok";
    pm.attempts = std::atoi(std::string(terminal->attr("attempts")).c_str());
    pm.replica_switches =
        std::atoi(std::string(terminal->attr("switches")).c_str());
  }

  // ---- the file's own events: same track (when known) or same target ----
  std::vector<const FlightEvent*> own;
  for (const auto& e : events) {
    const bool mine = (track != 0 && e.track == track) || e.target == file;
    if (!mine) continue;
    if (e.seq < queued->seq) continue;
    if (terminal != nullptr && e.seq > terminal->seq) continue;
    own.push_back(&e);
    if (e.name == "replica.selected" || e.name == "replica.switched") {
      pm.chosen_host = std::string(e.attr("host"));
    }
  }

  // ---- phase attribution: phase.begin events tile the lifetime ----
  const FlightEvent* open_phase = nullptr;
  for (const FlightEvent* e : own) {
    if (e->name != "phase.begin") continue;
    if (open_phase != nullptr) {
      pm.phases.push_back({std::string(open_phase->attr("phase")),
                           open_phase->at, e->at});
    } else if (e->at > pm.started) {
      pm.phases.push_back({"queued", pm.started, e->at});
    }
    open_phase = e;
  }
  if (open_phase != nullptr) {
    pm.phases.push_back(
        {std::string(open_phase->attr("phase")), open_phase->at, pm.finished});
  } else if (pm.finished > pm.started) {
    pm.phases.push_back({"run", pm.started, pm.finished});
  }

  // ---- first anomaly + root cause ----
  const FlightEvent* anomaly = nullptr;
  for (const FlightEvent* e : own) {
    if (is_anomaly(*e)) {
      anomaly = e;
      break;
    }
  }
  if (anomaly != nullptr) {
    pm.degraded = true;
    pm.first_anomaly = *anomaly;
    // Prefer the latest fault still active when the symptom struck; fall
    // back to the latest fault that lifted shortly before it (aftermath —
    // retries draining, breakers still open).  Anything older than the
    // recency window is noise, not cause: better to report no root cause
    // than a confident wrong one.
    constexpr common::SimDuration kRecentWindow = 120 * common::kSecond;
    const FlightEvent* active_cause = nullptr;
    const FlightEvent* recent_cause = nullptr;
    for (const auto& e : events) {
      if (e.at > anomaly->at) break;
      const bool durable = is_fault_begin(e);
      if (!durable && !is_fault_instant(e)) continue;
      common::SimTime over = e.at;  // when the fault stopped acting
      if (durable) {
        const common::SimTime end = fault_end(events, e);
        if (end < 0 || end >= anomaly->at) {
          active_cause = &e;
          continue;
        }
        over = end;
      }
      if (anomaly->at - over <= kRecentWindow) recent_cause = &e;
    }
    // A corruption injection stays armed until a payload consumes it, so a
    // checksum symptom matches the latest corruption event at any lag.
    if (anomaly->name == "checksum.mismatch" ||
        anomaly->name == "corruption.refetch") {
      for (const auto& e : events) {
        if (e.at > anomaly->at) break;
        if (is_fault_instant(e)) recent_cause = &e;
      }
      if (recent_cause != nullptr) active_cause = nullptr;
    }
    const FlightEvent* cause =
        active_cause != nullptr ? active_cause : recent_cause;
    if (cause != nullptr) {
      pm.has_root_cause = true;
      pm.root_cause = *cause;
      pm.anomaly_lag = anomaly->at - cause->at;
    }
  }
  if (pm.attempts > 1 || pm.replica_switches > 0) pm.degraded = true;

  // ---- correlated timeline: own events + environment events in-window ----
  std::vector<const FlightEvent*> merged = own;
  for (const auto& e : events) {
    if (e.at < pm.started || e.at > pm.finished) continue;
    const bool environment =
        e.category == "chaos" || e.category == "net" ||
        e.name.rfind("breaker.", 0) == 0 || e.name == "server.crash" ||
        e.name == "server.restart" || e.name == "crash" ||
        e.name == "restart";
    if (!environment) continue;
    const bool already = (track != 0 && e.track == track) || e.target == file;
    if (!already) merged.push_back(&e);
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlightEvent* a, const FlightEvent* b) {
              return a->seq < b->seq;
            });
  pm.timeline.reserve(merged.size());
  for (const FlightEvent* e : merged) pm.timeline.push_back(*e);
  return pm;
}

Postmortem build_postmortem(const FlightRecorder& recorder,
                            const std::string& file) {
  std::vector<FlightEvent> events(recorder.events().begin(),
                                  recorder.events().end());
  return build_postmortem(events, file);
}

std::vector<std::string> postmortem_files(
    const std::vector<FlightEvent>& events) {
  std::vector<std::string> out;
  for (const auto& e : events) {
    if (e.name != "file.queued") continue;
    if (std::find(out.begin(), out.end(), e.target) == out.end()) {
      out.push_back(e.target);
    }
  }
  return out;
}

std::vector<std::string> degraded_files(
    const std::vector<FlightEvent>& events) {
  std::vector<std::string> out;
  for (const auto& file : postmortem_files(events)) {
    const Postmortem pm = build_postmortem(events, file);
    if (pm.failed || pm.degraded) out.push_back(file);
  }
  return out;
}

std::string Postmortem::render() const {
  std::string out = "POSTMORTEM " + file;
  if (!found) return out + " — no flight-recorder events for this file\n";
  out += failed ? " — FAILED (" + status + ")"
                : (degraded ? " — ok, degraded" : " — ok, clean");
  out += "  [" + fmt_seconds(started) + " .. " + fmt_seconds(finished) +
         ", total " + fmt_seconds(total()) + "]\n";
  if (!chosen_host.empty()) {
    out += "  final replica: " + chosen_host;
    if (attempts > 0) out += ", " + std::to_string(attempts) + " attempt(s)";
    if (replica_switches > 0) {
      out += ", " + std::to_string(replica_switches) + " replica switch(es)";
    }
    out += "\n";
  }
  if (has_root_cause) {
    out += "  root cause: " + root_cause.name + " " + root_cause.target;
    const std::string_view mag = root_cause.attr("magnitude");
    if (!mag.empty()) out += " magnitude=" + std::string(mag);
    const std::string_view desc = root_cause.attr("description");
    if (!desc.empty()) out += " (\"" + std::string(desc) + "\")";
    out += " at " + fmt_at(root_cause.at) + "\n";
    out += "    first symptom: " + first_anomaly.name;
    if (!first_anomaly.attr("host").empty()) {
      out += " on " + std::string(first_anomaly.attr("host"));
    }
    out += " " + fmt_seconds(anomaly_lag) + " later\n";
  } else if (degraded || failed) {
    out += "  root cause: none recorded (no overlapping fault event)\n";
  }
  out += "  phases:";
  for (const auto& p : phases) {
    out += " " + p.phase + "=" + fmt_seconds(p.duration());
  }
  out += "  (sum " + fmt_seconds(total()) + ")\n";
  out += "  timeline (" + std::to_string(timeline.size()) + " events):\n";
  for (const auto& e : timeline) {
    out += "    " + fmt_at(e.at) + " " + e.category + " " + e.name;
    if (!e.target.empty()) out += " " + e.target;
    for (const auto& [k, v] : e.attrs) {
      out += " " + k + "=" + v;
    }
    out += "\n";
  }
  return out;
}

}  // namespace esg::obs
