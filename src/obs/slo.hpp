// SLO rules and the regression watchdog.
//
// Dashboards answer questions a human remembers to ask; at production scale
// the asking has to be mechanical (the Petascale replication postmortem in
// PAPERS.md makes exactly this point).  Two tools here:
//
//   * Declarative SLO rules evaluated against a MetricsSnapshot:
//       "rm_files_failed_total == 0"
//       "p99(rm_file_duration_seconds) < 300"
//       "rm_breaker_open_total{host=lbnl.host} <= 2"
//     A rule names a metric family (bare name = family total across label
//     sets, `{k=v,...}` = one series, `pNN(...)` = histogram quantile), a
//     comparison and a threshold.  evaluate_slos() returns per-rule
//     verdicts; esg-report exits nonzero when any rule fails.
//
//   * A run-diff / bench gate: diff_snapshots() and diff_manifests()
//     compare two runs series-by-series under a relative tolerance and
//     report every drift.  Manifest identity fields (seed, fault timeline
//     hash, flight-recorder digest) are compared exactly — two same-seed
//     runs must be identical, and the bench gate fails a build whose
//     numbers moved more than the tolerance vs the committed baseline.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace esg::obs {

enum class SloCmp { lt, le, gt, ge, eq, ne };

const char* slo_cmp_name(SloCmp cmp);

struct SloRule {
  std::string expr;        // original rule text, for reporting
  std::string metric;      // family name
  Labels labels;           // empty = sum over the whole family
  double quantile = -1.0;  // >= 0: evaluate this histogram quantile
  SloCmp cmp = SloCmp::le;
  double threshold = 0.0;
};

/// Parse "name op value", "name{k=v,...} op value" or "pNN(name) op value"
/// (op one of < <= > >= == !=).  "p99(...)" means quantile 0.99.
common::Result<SloRule> parse_slo_rule(std::string_view text);

struct SloCheck {
  SloRule rule;
  double observed = 0.0;
  bool series_found = false;
  bool pass = false;
};

struct SloReport {
  std::vector<SloCheck> checks;
  bool all_pass = true;
  std::string render() const;
};

SloReport evaluate_slos(const std::vector<SloRule>& rules,
                        const MetricsSnapshot& snapshot);

// ---- run diff / regression gate ----

struct DriftTolerance {
  /// Relative drift above this fraction flags a series (0 = exact).
  double relative = 0.2;
  /// Absolute slack applied before the relative test; absorbs noise around
  /// zero (a counter moving 0 -> 1 is real, 1e-12 -> 0 is not).
  double absolute = 1e-9;
  /// Series whose name contains any of these substrings are skipped
  /// (wall-clock families on a gate that only trusts sim-time numbers).
  std::vector<std::string> ignore;
};

struct DriftItem {
  std::string series;  // "name{k=v,...}" or an identity field
  double baseline = 0.0;
  double current = 0.0;
  double relative = 0.0;  // |current-baseline| / max(|baseline|,|current|)
  std::string note;       // "missing in current", "exact field differs", ...
};

struct DriftReport {
  std::vector<DriftItem> drifts;
  std::size_t series_compared = 0;
  bool clean() const { return drifts.empty(); }
  std::string render() const;
};

DriftReport diff_snapshots(const MetricsSnapshot& baseline,
                           const MetricsSnapshot& current,
                           const DriftTolerance& tolerance);

/// Snapshot diff plus exact comparison of the identity fields (seed,
/// topology, fault timeline hash, flight digest, event counts) and
/// tolerance comparison of the bench values.
DriftReport diff_manifests(const RunManifest& baseline,
                           const RunManifest& current,
                           const DriftTolerance& tolerance);

}  // namespace esg::obs
