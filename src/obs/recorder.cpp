#include "obs/recorder.hpp"

#include "common/bytebuf.hpp"
#include "obs/export.hpp"

namespace esg::obs {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
}  // namespace

std::string_view FlightEvent::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return {};
}

FlightRecorder::FlightRecorder(std::function<common::SimTime()> clock,
                               std::size_t capacity)
    : clock_(std::move(clock)),
      capacity_(capacity == 0 ? 1 : capacity),
      digest_(kFnvOffset) {}

void FlightRecorder::record(
    std::string category, std::string name, std::string target,
    std::vector<std::pair<std::string, std::string>> attrs, TrackId track) {
  FlightEvent e;
  e.seq = next_seq_++;
  e.at = clock_();
  e.track = track;
  e.category = std::move(category);
  e.name = std::move(name);
  e.target = std::move(target);
  e.attrs = std::move(attrs);

  digest_ = common::fnv1a64(&e.seq, sizeof(e.seq), digest_);
  digest_ = common::fnv1a64(&e.at, sizeof(e.at), digest_);
  digest_ = common::fnv1a64(&e.track, sizeof(e.track), digest_);
  digest_ = common::fnv1a64(e.category.data(), e.category.size(), digest_);
  digest_ = common::fnv1a64(e.name.data(), e.name.size(), digest_);
  digest_ = common::fnv1a64(e.target.data(), e.target.size(), digest_);
  for (const auto& [k, v] : e.attrs) {
    digest_ = common::fnv1a64(k.data(), k.size(), digest_);
    digest_ = common::fnv1a64(v.data(), v.size(), digest_);
  }

  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  ring_.push_back(std::move(e));
}

std::vector<const FlightEvent*> FlightRecorder::for_target(
    std::string_view target) const {
  std::vector<const FlightEvent*> out;
  for (const auto& e : ring_) {
    if (e.target == target) out.push_back(&e);
  }
  return out;
}

std::vector<const FlightEvent*> FlightRecorder::for_track(
    TrackId track) const {
  std::vector<const FlightEvent*> out;
  if (track == 0) return out;
  for (const auto& e : ring_) {
    if (e.track == track) out.push_back(&e);
  }
  return out;
}

std::vector<const FlightEvent*> FlightRecorder::in_window(
    common::SimTime from, common::SimTime to) const {
  std::vector<const FlightEvent*> out;
  for (const auto& e : ring_) {
    if (e.at >= from && e.at <= to) out.push_back(&e);
  }
  return out;
}

std::string to_json(const FlightEvent& e) {
  std::string out = "{\"seq\":" + std::to_string(e.seq) +
                    ",\"at_ns\":" + std::to_string(e.at) +
                    ",\"track\":" + std::to_string(e.track) + ",\"category\":\"" +
                    json_escape(e.category) + "\",\"name\":\"" +
                    json_escape(e.name) + "\",\"target\":\"" +
                    json_escape(e.target) + "\",\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : e.attrs) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out += "}}";
  return out;
}

}  // namespace esg::obs
