#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace esg::obs::json {

using common::Errc;
using common::Error;
using common::Result;

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  // Bounds nesting so a malformed document cannot blow the stack.
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  Error err(std::string message) const {
    return Error{Errc::protocol_error,
                 "json: " + std::move(message) + " at offset " +
                     std::to_string(pos)};
  }

  Result<Value> value() {
    skip_ws();
    if (done()) return err("unexpected end of input");
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return s.error();
      return Value(std::move(*s));
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  Result<Value> object() {
    if (++depth > kMaxDepth) return err("nesting too deep");
    ++pos;  // '{'
    Object members;
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos;
      --depth;
      return Value(std::move(members));
    }
    while (true) {
      skip_ws();
      if (done() || peek() != '"') return err("expected object key");
      auto key = string();
      if (!key) return key.error();
      skip_ws();
      if (done() || peek() != ':') return err("expected ':'");
      ++pos;
      auto v = value();
      if (!v) return v.error();
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (done()) return err("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        --depth;
        return Value(std::move(members));
      }
      return err("expected ',' or '}'");
    }
  }

  Result<Value> array() {
    if (++depth > kMaxDepth) return err("nesting too deep");
    ++pos;  // '['
    Array items;
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos;
      --depth;
      return Value(std::move(items));
    }
    while (true) {
      auto v = value();
      if (!v) return v.error();
      items.push_back(std::move(*v));
      skip_ws();
      if (done()) return err("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        --depth;
        return Value(std::move(items));
      }
      return err("expected ',' or ']'");
    }
  }

  Result<std::string> string() {
    ++pos;  // '"'
    std::string out;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return err("bad \\u escape");
            }
          }
          // Our writers only escape control characters; anything in the
          // Latin-1 range round-trips, higher code points degrade to '?'.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return err("unknown escape");
      }
    }
    return err("unterminated string");
  }

  Result<Value> boolean() {
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      return Value(true);
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      return Value(false);
    }
    return err("bad literal");
  }

  Result<Value> null() {
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      return Value();
    }
    return err("bad literal");
  }

  Result<Value> number() {
    const std::size_t start = pos;
    if (!done() && (peek() == '-' || peek() == '+')) ++pos;
    while (!done() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.' || peek() == 'e' || peek() == 'E' ||
                       peek() == '+' || peek() == '-')) {
      ++pos;
    }
    if (pos == start) return err("expected a value");
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return err("bad number");
    return Value(d);
  }
};

}  // namespace

Result<Value> parse(std::string_view text) {
  Parser p{text};
  auto v = p.value();
  if (!v) return v;
  p.skip_ws();
  if (!p.done()) return p.err("trailing garbage");
  return v;
}

}  // namespace esg::obs::json
