// Causal postmortems for file transfers.
//
// Table 1's striped run and Figure 8's 14-hour fault-tolerant transfer are
// postmortems a human read off monitoring output.  This engine does that
// read mechanically: given the flight-recorder event stream (live, or
// re-hydrated from a RunManifest), it reconstructs one file's story —
//
//   * per-phase time attribution: the lookup / find_replicas /
//     rank_replicas / stage / transfer slices tile the file's whole
//     lifetime, so the slice durations sum exactly to the rm.file span;
//   * a correlated timeline: the file's own lifecycle events joined (by
//     tracer track and by time window) with fault injections, breaker
//     transitions and link-state changes that overlapped it;
//   * root-cause attribution: the first anomaly the file suffered
//     (timeout, slow-replica abandon, checksum mismatch, stage retry, ...)
//     is matched to the chaos fault that was active when it struck —
//     "stream stalled 12 s after brownout(lbnl-uplink)".
//
// The engine only reads events; it works identically on a live simulation
// and on a manifest loaded months later by `esg-report postmortem`.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"

namespace esg::obs {

struct PhaseSlice {
  std::string phase;  // "rm.lookup", "hrm.stage", "rm.transfer", ...
  common::SimTime start = 0;
  common::SimTime end = 0;
  common::SimDuration duration() const { return end - start; }
};

struct Postmortem {
  std::string file;
  bool found = false;   // file.queued event located
  bool failed = false;
  bool degraded = false;  // retried, switched replica, or suffered anomalies
  std::string status;     // "ok" or the failure text
  common::SimTime started = 0;
  common::SimTime finished = 0;
  int attempts = 0;
  int replica_switches = 0;
  std::string chosen_host;

  /// Contiguous slices tiling [started, finished]; durations sum exactly
  /// to the file's whole-span duration.
  std::vector<PhaseSlice> phases;

  /// File events + overlapping fault/breaker/link events, time-ordered.
  std::vector<FlightEvent> timeline;

  bool has_root_cause = false;
  FlightEvent root_cause;     // the fault event held responsible
  FlightEvent first_anomaly;  // the symptom it explains
  /// first_anomaly.at - root_cause.at (how long until it bit).
  common::SimDuration anomaly_lag = 0;

  common::SimDuration total() const { return finished - started; }
  /// Multi-line human report.
  std::string render() const;
};

/// Build the postmortem for `file` from an event stream (manifest order).
Postmortem build_postmortem(const std::vector<FlightEvent>& events,
                            const std::string& file);
Postmortem build_postmortem(const FlightRecorder& recorder,
                            const std::string& file);
inline Postmortem build_postmortem(const RunManifest& manifest,
                                   const std::string& file) {
  return build_postmortem(manifest.events, file);
}

/// Every file with a file.queued event, in first-seen order.
std::vector<std::string> postmortem_files(
    const std::vector<FlightEvent>& events);
/// Files whose postmortem would be interesting: failed or degraded.
std::vector<std::string> degraded_files(
    const std::vector<FlightEvent>& events);

}  // namespace esg::obs
