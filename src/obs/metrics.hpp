// Metrics registry — the uniform instrumentation substrate for the grid
// stack (request manager, GridFTP channels, HRM staging, fluid network,
// NWS sensors).
//
// Three instrument kinds, Prometheus-flavoured:
//
//   * Counter   — monotonically increasing u64 (bytes moved, cache hits);
//   * Gauge     — instantaneous double (queue depth, link utilization);
//   * Histogram — fixed-boundary distribution (stage wait, forecast error).
//
// A series is (name, labels) where labels are a small sorted key/value set;
// `registry.counter("gridftp_channel_bytes_total", {{"server", host}})`
// returns a reference that stays valid for the registry's lifetime, so hot
// paths resolve the series once and then pay only a relaxed atomic op per
// update.  Registration takes a mutex; updates are lock-free — safe for the
// benchmark harness's per-thread simulations and checked under TSAN (see
// the `obs` ctest label).
//
// `snapshot(at)` captures every series at a simulated instant into a
// deterministic, sorted MetricsSnapshot that the exporters (obs/export.hpp)
// turn into Prometheus text or JSON; same-seed runs produce bit-identical
// snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace esg::obs {

/// Sorted key/value label set identifying one series of a metric family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical form: sorted by key (labels compare element-wise).
Labels normalize_labels(Labels labels);

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Quantile estimate over fixed-boundary histogram data: locates the bucket
/// holding rank p*count and interpolates linearly inside it (Prometheus
/// `histogram_quantile` semantics).  The first bucket's lower edge is 0 for
/// positive boundaries; ranks landing in the overflow bucket clamp to the
/// last boundary.  p <= 0 and p >= 1 clamp exactly to the lower/upper edge
/// of the lowest/highest non-empty bucket (no rank interpolation, so large
/// counts cannot round the extreme quantiles into a neighbouring bucket).
/// An empty histogram yields 0.
double histogram_quantile(const std::vector<double>& boundaries,
                          const std::vector<std::uint64_t>& buckets,
                          double p);

/// Fixed upper boundaries (ascending); bucket i counts observations
/// <= boundaries[i], with one overflow bucket past the last boundary.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void observe(double v);

  const std::vector<double>& boundaries() const { return boundaries_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket counts, size boundaries().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  /// Estimated p-quantile (see histogram_quantile below).
  double quantile(double p) const {
    return histogram_quantile(boundaries_, bucket_counts(), p);
  }

 private:
  std::vector<double> boundaries_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { counter, gauge, histogram };

/// One series captured at snapshot time.
struct SnapshotEntry {
  MetricKind kind = MetricKind::counter;
  std::string name;
  Labels labels;
  double value = 0.0;  // counter / gauge
  // Histogram payload:
  std::vector<double> boundaries;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate for a histogram entry (0 for other kinds).
  double quantile(double p) const {
    return histogram_quantile(boundaries, buckets, p);
  }
};

struct MetricsSnapshot {
  common::SimTime at = 0;
  /// Sorted by (name, labels, kind) — deterministic across same-seed runs.
  std::vector<SnapshotEntry> entries;

  const SnapshotEntry* find(std::string_view name,
                            const Labels& labels = {}) const;
  /// Counter/gauge value of a series, or `fallback` when absent.
  double value_or(std::string_view name, const Labels& labels,
                  double fallback = 0.0) const;
  /// Sum of counter/gauge values across every series of a family.
  double family_total(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime.  Labels need not be pre-sorted.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// `boundaries` apply on first registration of the series; later calls
  /// with the same (name, labels) return the existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> boundaries,
                       Labels labels = {});

  MetricsSnapshot snapshot(common::SimTime at) const;
  std::size_t series_count() const;

 private:
  using Key = std::pair<std::string, Labels>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// Conventional boundaries for simulated-seconds durations (tape waits,
/// stage latencies): 1 s .. 1 h.
std::vector<double> duration_boundaries();
/// Conventional boundaries for relative errors (NWS forecast error).
std::vector<double> relative_error_boundaries();

}  // namespace esg::obs
