// Critical-path profiler: per-request "time-where" analysis.
//
// The tracer records *what ran when* and the flight recorder records *what
// happened*; this module joins the two and answers the question every slow
// transfer raises: where did the time actually go?  For each root span
// (an `rm.file` request, or a `campaign.file` task) it decomposes the span's
// wall interval into **exclusive self-time categories**:
//
//   queue-wait     admitted but not yet started (concurrency limit)
//   breaker-wait   idle while every candidate replica's breaker was open
//   backoff        retry / stage-retry sleep windows
//   stage          HRM tape staging (mount, seek, read, stage retries' RPCs)
//   network        data bytes on the wire (net.tcp spans)
//   checksum       client-side verification pass over the landed payload
//   overhead       everything else: catalog lookup, replica ranking,
//                  control-plane RPCs (AUTH/RETR/connect), bookkeeping
//
// The decomposition reuses the postmortem tiling invariant: the seven
// categories *exactly* tile each root span — integer-nanosecond self times
// sum to the span duration, by construction, for every file.  The mechanism
// is an elementary-interval sweep: the root span is partitioned at every
// boundary contributed by a descendant span or a relevant flight event, and
// each elementary interval is attributed to the deepest span covering it
// (or, for uncovered gaps, classified from the event stream: backoff
// windows, breaker-open intervals, pre-first-phase queue wait).
//
// The same sweep yields each request's **critical path** — since a worker
// is a single logical thread, the chain of deepest spans *is* the path that
// bounded completion — and collapsed call stacks for flamegraph rendering
// (see flame.hpp).  Tail exemplars link the k slowest files per category
// back to their trace span ids, so a fat tail in the
// `rm_file_duration_seconds` / `campaign_file_seconds` histograms can be
// chased to concrete spans in the Chrome trace.
//
// Everything here is deterministic: same-seed runs produce byte-identical
// profiles (asserted by tests and the manifest differ).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace esg::obs {

enum class ProfileCategory : int {
  queue_wait = 0,
  breaker_wait,
  backoff,
  stage,
  network,
  checksum,
  overhead,
};

inline constexpr int kProfileCategories = 7;

/// Stable short name ("queue-wait", "stage", ...) used in manifests,
/// bench JSON, and rendered tables.
const char* profile_category_name(ProfileCategory c);
/// Inverse of profile_category_name; returns overhead for unknown names.
ProfileCategory profile_category_from_name(std::string_view name);

/// One step of a request's critical path: a maximal run of elementary
/// intervals attributed to the same deepest span (or the same kind of gap).
struct CriticalStep {
  std::string frame;         // deepest span name, or "(queued)", "(backoff)",
                             // "(breaker-wait)", "(overhead)" for gaps
  ProfileCategory category = ProfileCategory::overhead;
  common::SimTime start = 0;
  common::SimTime end = 0;
  SpanId span = 0;           // deepest covering span (the root itself for
                             // uncovered root-level gaps)

  common::SimDuration duration() const { return end - start; }
};

/// Per-file decomposition.  `self` exactly tiles [start, end].
struct FileProfile {
  std::string file;
  TrackId track = 0;
  SpanId span = 0;           // the root span id
  common::SimTime start = 0;
  common::SimTime end = 0;
  bool failed = false;
  bool staged = false;       // passed through an hrm.stage phase
  bool clamped = false;      // root span still open at capture; end = capture
  std::array<common::SimDuration, kProfileCategories> self{};
  std::vector<CriticalStep> critical_path;  // contiguous; tiles [start, end]

  common::SimDuration total() const { return end - start; }
  common::SimDuration category_sum() const;
  common::SimDuration self_time(ProfileCategory c) const {
    return self[static_cast<int>(c)];
  }
  /// Category with the largest self time (ties break toward the lower
  /// enum value, i.e. the earlier lifecycle stage).
  ProfileCategory dominant() const;
};

/// A collapsed call stack ("rm.file;rm.transfer;net.tcp") with its summed
/// exclusive self time across all files.
struct StackWeight {
  std::string stack;
  common::SimDuration self = 0;
};

/// One of the k slowest files for a category, linked to its trace span.
struct TailExemplar {
  ProfileCategory category = ProfileCategory::overhead;
  std::string file;
  TrackId track = 0;
  SpanId span = 0;
  common::SimDuration self = 0;   // time in `category`
  common::SimDuration total = 0;  // whole-request duration
};

struct ProfileOptions {
  /// Name of the root spans to profile ("rm.file" or "campaign.file").
  std::string root_span = "rm.file";
  /// Slowest files kept per category as tail exemplars.
  int exemplars_per_category = 3;
};

/// Aggregated time-where profile over every root span in a run.
struct TimeWhereProfile {
  std::string root_span;
  common::SimTime at = 0;          // capture time (open spans clamp here)
  std::uint64_t dropped_spans = 0; // tracer drops; > 0 taints the profile
  std::uint64_t clamped_spans = 0; // root spans clamped at capture
  /// Number of root spans decomposed.  Survives manifest condensation,
  /// where `files` keeps only exemplar-referenced rows.
  std::uint64_t files_profiled = 0;
  common::SimDuration total = 0;   // sum of per-file totals
  std::array<common::SimDuration, kProfileCategories> category_self{};
  std::vector<FileProfile> files;        // root-span start order
  std::vector<TailExemplar> exemplars;   // category-major, slowest first
  std::vector<StackWeight> stacks;       // lexicographic stack order

  double share(ProfileCategory c) const;
  const FileProfile* find(std::string_view file) const;
  /// The rendered time-where table (category, self seconds, share,
  /// slowest exemplar).
  std::string render() const;
};

/// Decompose every `options.root_span` span.  `spans` should come from
/// Tracer::closed_spans() (or a manifest); any still-open span is clamped
/// to `at`.  `events` is the flight-recorder stream (retained window).
TimeWhereProfile build_profile(const std::vector<SpanRecord>& spans,
                               const std::vector<FlightEvent>& events,
                               common::SimTime at,
                               const ProfileOptions& options = {});

/// Convenience: capture from a live tracer + recorder at tracer.now().
TimeWhereProfile build_profile(const Tracer& tracer,
                               const FlightRecorder& recorder,
                               const ProfileOptions& options = {});

/// Render one file's critical path as an indented step table.
std::string render_critical_path(const FileProfile& fp);

}  // namespace esg::obs
