#include "obs/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace esg::obs {

using common::Errc;
using common::Error;
using common::Result;

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string fmt_double(double v) {
  // Matches the exporters' fixed format so manifests stay diff-friendly.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

FlightEvent event_from_json(const json::Value& v) {
  FlightEvent e;
  e.seq = static_cast<std::uint64_t>(v.number_or("seq", 0));
  e.at = static_cast<common::SimTime>(v.number_or("at_ns", 0));
  e.track = static_cast<TrackId>(v.number_or("track", 0));
  e.category = v.string_or("category", "");
  e.name = v.string_or("name", "");
  e.target = v.string_or("target", "");
  if (const json::Value* attrs = v.find("attrs"); attrs != nullptr) {
    for (const auto& [k, av] : attrs->as_object()) {
      if (av.is_string()) e.attrs.emplace_back(k, av.as_string());
    }
  }
  return e;
}

MetricsSnapshot snapshot_from_json(const json::Value& v) {
  MetricsSnapshot snap;
  snap.at = static_cast<common::SimTime>(v.number_or("sim_time_ns", 0));
  if (const json::Value* metrics = v.find("metrics"); metrics != nullptr) {
    for (const auto& mv : metrics->as_array()) {
      SnapshotEntry e;
      e.name = mv.string_or("name", "");
      const std::string kind = mv.string_or("kind", "counter");
      e.kind = kind == "gauge"       ? MetricKind::gauge
               : kind == "histogram" ? MetricKind::histogram
                                     : MetricKind::counter;
      if (const json::Value* labels = mv.find("labels"); labels != nullptr) {
        for (const auto& [k, lv] : labels->as_object()) {
          if (lv.is_string()) e.labels.emplace_back(k, lv.as_string());
        }
      }
      if (e.kind == MetricKind::histogram) {
        if (const json::Value* b = mv.find("boundaries"); b != nullptr) {
          for (const auto& bv : b->as_array()) {
            e.boundaries.push_back(bv.as_number());
          }
        }
        if (const json::Value* b = mv.find("buckets"); b != nullptr) {
          for (const auto& bv : b->as_array()) {
            e.buckets.push_back(static_cast<std::uint64_t>(bv.as_number()));
          }
        }
        e.count = static_cast<std::uint64_t>(mv.number_or("count", 0));
        e.sum = mv.number_or("sum", 0);
      } else {
        e.value = mv.number_or("value", 0);
      }
      snap.entries.push_back(std::move(e));
    }
  }
  return snap;
}

std::string labels_to_json(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

Labels labels_from_json(const json::Value& v, const char* key) {
  Labels out;
  if (const json::Value* labels = v.find(key); labels != nullptr) {
    for (const auto& [k, lv] : labels->as_object()) {
      if (lv.is_string()) out.emplace_back(k, lv.as_string());
    }
  }
  return out;
}

std::string alert_to_json(const AlertRecord& a) {
  std::string out = "{\"rule\":\"" + json_escape(a.rule) + "\",\"kind\":\"" +
                    alert_kind_name(a.kind) + "\",\"metric\":\"" +
                    json_escape(a.metric) + "\",\"fired_at_ns\":" +
                    std::to_string(a.fired_at) + ",\"resolved\":" +
                    (a.resolved ? "true" : "false");
  if (a.resolved) {
    out += ",\"resolved_at_ns\":" + std::to_string(a.resolved_at);
  }
  out += ",\"value\":" + fmt_double(a.value) +
         ",\"threshold\":" + fmt_double(a.threshold) + "}";
  return out;
}

AlertRecord alert_from_json(const json::Value& v) {
  AlertRecord a;
  a.rule = v.string_or("rule", "");
  a.kind = v.string_or("kind", "burn_rate") == "anomaly" ? AlertKind::anomaly
                                                         : AlertKind::burn_rate;
  a.metric = v.string_or("metric", "");
  a.fired_at = static_cast<common::SimTime>(v.number_or("fired_at_ns", 0));
  if (const json::Value* r = v.find("resolved"); r != nullptr) {
    a.resolved = r->as_bool();
  }
  a.resolved_at =
      static_cast<common::SimTime>(v.number_or("resolved_at_ns", 0));
  a.value = v.number_or("value", 0);
  a.threshold = v.number_or("threshold", 0);
  return a;
}

std::string series_to_json(const SeriesSummary& s) {
  std::string out = "{\"name\":\"" + json_escape(s.name) +
                    "\",\"labels\":" + labels_to_json(s.labels) +
                    ",\"samples\":" + std::to_string(s.samples) +
                    ",\"min\":" + fmt_double(s.min) +
                    ",\"max\":" + fmt_double(s.max) +
                    ",\"sum\":" + fmt_double(s.sum) + ",\"points\":[";
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    const RollupPoint& p = s.points[i];
    if (i) out += ",";
    out += "{\"start_ns\":" + std::to_string(p.start) +
           ",\"min\":" + fmt_double(p.min) + ",\"max\":" + fmt_double(p.max) +
           ",\"sum\":" + fmt_double(p.sum) +
           ",\"count\":" + std::to_string(p.count) + "}";
  }
  out += "]}";
  return out;
}

SeriesSummary series_from_json(const json::Value& v) {
  SeriesSummary s;
  s.name = v.string_or("name", "");
  s.labels = labels_from_json(v, "labels");
  s.samples = static_cast<std::uint64_t>(v.number_or("samples", 0));
  s.min = v.number_or("min", 0);
  s.max = v.number_or("max", 0);
  s.sum = v.number_or("sum", 0);
  if (const json::Value* points = v.find("points"); points != nullptr) {
    for (const auto& pv : points->as_array()) {
      RollupPoint p;
      p.start = static_cast<common::SimTime>(pv.number_or("start_ns", 0));
      p.min = pv.number_or("min", 0);
      p.max = pv.number_or("max", 0);
      p.sum = pv.number_or("sum", 0);
      p.count = static_cast<std::uint64_t>(pv.number_or("count", 0));
      s.points.push_back(p);
    }
  }
  return s;
}

}  // namespace

void RunManifest::set_bench(std::string bench_name, double value) {
  for (auto& b : bench) {
    if (b.name == bench_name) {
      b.value = value;
      return;
    }
  }
  bench.push_back({std::move(bench_name), value});
}

double RunManifest::bench_or(std::string_view bench_name,
                             double fallback) const {
  for (const auto& b : bench) {
    if (b.name == bench_name) return b.value;
  }
  return fallback;
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "\"manifest\":\"" + json_escape(name) + "\",\n";
  out += "\"seed\":" + std::to_string(seed) + ",\n";
  out += "\"topology\":\"" + json_escape(topology) + "\",\n";
  out += "\"fault_timeline_hash\":\"" + hex64(fault_timeline_hash) + "\",\n";
  out += "\"flight_digest\":\"" + hex64(flight_digest) + "\",\n";
  out += "\"events_recorded\":" + std::to_string(events_recorded) + ",\n";
  out += "\"events_evicted\":" + std::to_string(events_evicted) + ",\n";
  out += "\"bench\":[";
  for (std::size_t i = 0; i < bench.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\":\"" + json_escape(bench[i].name) +
           "\",\"value\":" + fmt_double(bench[i].value) + "}";
  }
  out += "\n],\n\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += alert_to_json(alerts[i]);
  }
  out += "\n],\n\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += series_to_json(series[i]);
  }
  out += "\n],\n\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += obs::to_json(events[i]);
  }
  out += "\n],\n\"metrics\":" + obs::to_json(metrics) + "\n}\n";
  return out;
}

Result<RunManifest> RunManifest::from_json(std::string_view text) {
  auto parsed = json::parse(text);
  if (!parsed) return parsed.error();
  const json::Value& v = *parsed;
  if (!v.is_object() || v.find("manifest") == nullptr) {
    return Error{Errc::protocol_error, "not a run manifest (no \"manifest\")"};
  }
  RunManifest m;
  m.name = v.string_or("manifest", "");
  m.seed = static_cast<std::uint64_t>(v.number_or("seed", 0));
  m.topology = v.string_or("topology", "");
  m.fault_timeline_hash = parse_hex64(v.string_or("fault_timeline_hash", "0"));
  m.flight_digest = parse_hex64(v.string_or("flight_digest", "0"));
  m.events_recorded =
      static_cast<std::uint64_t>(v.number_or("events_recorded", 0));
  m.events_evicted =
      static_cast<std::uint64_t>(v.number_or("events_evicted", 0));
  if (const json::Value* bench = v.find("bench"); bench != nullptr) {
    for (const auto& bv : bench->as_array()) {
      m.bench.push_back(
          {bv.string_or("name", ""), bv.number_or("value", 0)});
    }
  }
  if (const json::Value* alerts = v.find("alerts"); alerts != nullptr) {
    for (const auto& av : alerts->as_array()) {
      m.alerts.push_back(alert_from_json(av));
    }
  }
  if (const json::Value* series = v.find("series"); series != nullptr) {
    for (const auto& sv : series->as_array()) {
      m.series.push_back(series_from_json(sv));
    }
  }
  if (const json::Value* events = v.find("events"); events != nullptr) {
    for (const auto& ev : events->as_array()) {
      m.events.push_back(event_from_json(ev));
    }
  }
  if (const json::Value* metrics = v.find("metrics"); metrics != nullptr) {
    m.metrics = snapshot_from_json(*metrics);
  }
  return m;
}

RunManifest capture_manifest(std::string name, std::uint64_t seed,
                             std::string topology,
                             std::uint64_t timeline_hash,
                             const FlightRecorder& recorder,
                             MetricsSnapshot snapshot) {
  RunManifest m;
  m.name = std::move(name);
  m.seed = seed;
  m.topology = std::move(topology);
  m.fault_timeline_hash = timeline_hash;
  m.flight_digest = recorder.digest();
  m.events_recorded = recorder.recorded();
  m.events_evicted = recorder.evicted();
  m.events.assign(recorder.events().begin(), recorder.events().end());
  m.metrics = std::move(snapshot);
  return m;
}

void attach_telemetry(RunManifest& manifest, const TimeSeriesStore& store,
                      const AlertEngine& alerts,
                      const std::vector<std::string>& include,
                      std::size_t max_points) {
  manifest.alerts = alerts.history();
  manifest.series.clear();
  store.for_each([&](const std::string& name, const Labels& labels,
                     const TimeSeries& s) {
    if (!include.empty()) {
      bool keep = false;
      for (const auto& needle : include) {
        if (name.find(needle) != std::string::npos) {
          keep = true;
          break;
        }
      }
      if (!keep) return;
    }
    SeriesSummary sum;
    sum.name = name;
    sum.labels = labels;
    sum.samples = s.samples();
    sum.min = s.life_min();
    sum.max = s.life_max();
    sum.sum = s.life_sum();
    // Coarse rollups give the longest horizon per point; keep the newest.
    std::vector<RollupPoint> points = s.coarse();
    if (points.size() > max_points) {
      points.erase(points.begin(),
                   points.end() - static_cast<std::ptrdiff_t>(max_points));
    }
    sum.points = std::move(points);
    manifest.series.push_back(std::move(sum));
  });
}

Result<RunManifest> load_manifest(const std::string& path) {
  auto text = read_file(path);
  if (!text) return text.error();
  return RunManifest::from_json(*text);
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return n == text.size();
}

Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{Errc::not_found, "cannot open " + path};
  }
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace esg::obs
