#include "obs/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace esg::obs {

using common::Errc;
using common::Error;
using common::Result;

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string fmt_double(double v) {
  // Matches the exporters' fixed format so manifests stay diff-friendly.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

FlightEvent event_from_json(const json::Value& v) {
  FlightEvent e;
  e.seq = static_cast<std::uint64_t>(v.number_or("seq", 0));
  e.at = static_cast<common::SimTime>(v.number_or("at_ns", 0));
  e.track = static_cast<TrackId>(v.number_or("track", 0));
  e.category = v.string_or("category", "");
  e.name = v.string_or("name", "");
  e.target = v.string_or("target", "");
  if (const json::Value* attrs = v.find("attrs"); attrs != nullptr) {
    for (const auto& [k, av] : attrs->as_object()) {
      if (av.is_string()) e.attrs.emplace_back(k, av.as_string());
    }
  }
  return e;
}

MetricsSnapshot snapshot_from_json(const json::Value& v) {
  MetricsSnapshot snap;
  snap.at = static_cast<common::SimTime>(v.number_or("sim_time_ns", 0));
  if (const json::Value* metrics = v.find("metrics"); metrics != nullptr) {
    for (const auto& mv : metrics->as_array()) {
      SnapshotEntry e;
      e.name = mv.string_or("name", "");
      const std::string kind = mv.string_or("kind", "counter");
      e.kind = kind == "gauge"       ? MetricKind::gauge
               : kind == "histogram" ? MetricKind::histogram
                                     : MetricKind::counter;
      if (const json::Value* labels = mv.find("labels"); labels != nullptr) {
        for (const auto& [k, lv] : labels->as_object()) {
          if (lv.is_string()) e.labels.emplace_back(k, lv.as_string());
        }
      }
      if (e.kind == MetricKind::histogram) {
        if (const json::Value* b = mv.find("boundaries"); b != nullptr) {
          for (const auto& bv : b->as_array()) {
            e.boundaries.push_back(bv.as_number());
          }
        }
        if (const json::Value* b = mv.find("buckets"); b != nullptr) {
          for (const auto& bv : b->as_array()) {
            e.buckets.push_back(static_cast<std::uint64_t>(bv.as_number()));
          }
        }
        e.count = static_cast<std::uint64_t>(mv.number_or("count", 0));
        e.sum = mv.number_or("sum", 0);
      } else {
        e.value = mv.number_or("value", 0);
      }
      snap.entries.push_back(std::move(e));
    }
  }
  return snap;
}

std::string labels_to_json(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

Labels labels_from_json(const json::Value& v, const char* key) {
  Labels out;
  if (const json::Value* labels = v.find(key); labels != nullptr) {
    for (const auto& [k, lv] : labels->as_object()) {
      if (lv.is_string()) out.emplace_back(k, lv.as_string());
    }
  }
  return out;
}

std::string alert_to_json(const AlertRecord& a) {
  std::string out = "{\"rule\":\"" + json_escape(a.rule) + "\",\"kind\":\"" +
                    alert_kind_name(a.kind) + "\",\"metric\":\"" +
                    json_escape(a.metric) + "\",\"fired_at_ns\":" +
                    std::to_string(a.fired_at) + ",\"resolved\":" +
                    (a.resolved ? "true" : "false");
  if (a.resolved) {
    out += ",\"resolved_at_ns\":" + std::to_string(a.resolved_at);
  }
  out += ",\"value\":" + fmt_double(a.value) +
         ",\"threshold\":" + fmt_double(a.threshold) + "}";
  return out;
}

AlertRecord alert_from_json(const json::Value& v) {
  AlertRecord a;
  a.rule = v.string_or("rule", "");
  a.kind = v.string_or("kind", "burn_rate") == "anomaly" ? AlertKind::anomaly
                                                         : AlertKind::burn_rate;
  a.metric = v.string_or("metric", "");
  a.fired_at = static_cast<common::SimTime>(v.number_or("fired_at_ns", 0));
  if (const json::Value* r = v.find("resolved"); r != nullptr) {
    a.resolved = r->as_bool();
  }
  a.resolved_at =
      static_cast<common::SimTime>(v.number_or("resolved_at_ns", 0));
  a.value = v.number_or("value", 0);
  a.threshold = v.number_or("threshold", 0);
  return a;
}

std::string series_to_json(const SeriesSummary& s) {
  std::string out = "{\"name\":\"" + json_escape(s.name) +
                    "\",\"labels\":" + labels_to_json(s.labels) +
                    ",\"samples\":" + std::to_string(s.samples) +
                    ",\"min\":" + fmt_double(s.min) +
                    ",\"max\":" + fmt_double(s.max) +
                    ",\"sum\":" + fmt_double(s.sum) + ",\"points\":[";
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    const RollupPoint& p = s.points[i];
    if (i) out += ",";
    out += "{\"start_ns\":" + std::to_string(p.start) +
           ",\"min\":" + fmt_double(p.min) + ",\"max\":" + fmt_double(p.max) +
           ",\"sum\":" + fmt_double(p.sum) +
           ",\"count\":" + std::to_string(p.count) + "}";
  }
  out += "]}";
  return out;
}

std::string file_profile_to_json(const FileProfile& fp) {
  std::string out = "{\"file\":\"" + json_escape(fp.file) +
                    "\",\"track\":" + std::to_string(fp.track) +
                    ",\"span\":" + std::to_string(fp.span) +
                    ",\"start_ns\":" + std::to_string(fp.start) +
                    ",\"end_ns\":" + std::to_string(fp.end) +
                    ",\"failed\":" + (fp.failed ? "true" : "false") +
                    ",\"staged\":" + (fp.staged ? "true" : "false") +
                    ",\"clamped\":" + (fp.clamped ? "true" : "false") +
                    ",\"dominant\":\"" +
                    profile_category_name(fp.dominant()) +
                    "\",\"self_ns\":[";
  for (int i = 0; i < kProfileCategories; ++i) {
    if (i) out += ",";
    out += std::to_string(fp.self[i]);
  }
  out += "],\"critical_path\":[";
  for (std::size_t i = 0; i < fp.critical_path.size(); ++i) {
    const CriticalStep& s = fp.critical_path[i];
    if (i) out += ",";
    out += "{\"frame\":\"" + json_escape(s.frame) + "\",\"category\":\"" +
           profile_category_name(s.category) +
           "\",\"start_ns\":" + std::to_string(s.start) +
           ",\"end_ns\":" + std::to_string(s.end) +
           ",\"span\":" + std::to_string(s.span) + "}";
  }
  out += "]}";
  return out;
}

FileProfile file_profile_from_json(const json::Value& v) {
  FileProfile fp;
  fp.file = v.string_or("file", "");
  fp.track = static_cast<TrackId>(v.number_or("track", 0));
  fp.span = static_cast<SpanId>(v.number_or("span", 0));
  fp.start = static_cast<common::SimTime>(v.number_or("start_ns", 0));
  fp.end = static_cast<common::SimTime>(v.number_or("end_ns", 0));
  if (const json::Value* b = v.find("failed")) fp.failed = b->as_bool();
  if (const json::Value* b = v.find("staged")) fp.staged = b->as_bool();
  if (const json::Value* b = v.find("clamped")) fp.clamped = b->as_bool();
  if (const json::Value* self = v.find("self_ns")) {
    const auto& arr = self->as_array();
    for (std::size_t i = 0;
         i < arr.size() && i < static_cast<std::size_t>(kProfileCategories);
         ++i) {
      fp.self[i] = static_cast<common::SimDuration>(arr[i].as_number());
    }
  }
  if (const json::Value* steps = v.find("critical_path")) {
    for (const auto& sv : steps->as_array()) {
      CriticalStep s;
      s.frame = sv.string_or("frame", "");
      s.category = profile_category_from_name(sv.string_or("category", ""));
      s.start = static_cast<common::SimTime>(sv.number_or("start_ns", 0));
      s.end = static_cast<common::SimTime>(sv.number_or("end_ns", 0));
      s.span = static_cast<SpanId>(sv.number_or("span", 0));
      fp.critical_path.push_back(std::move(s));
    }
  }
  return fp;
}

TimeWhereProfile profile_from_json(const json::Value& v) {
  TimeWhereProfile p;
  p.root_span = v.string_or("root", "");
  p.at = static_cast<common::SimTime>(v.number_or("at_ns", 0));
  p.files_profiled =
      static_cast<std::uint64_t>(v.number_or("files_profiled", 0));
  p.dropped_spans =
      static_cast<std::uint64_t>(v.number_or("dropped_spans", 0));
  p.clamped_spans =
      static_cast<std::uint64_t>(v.number_or("clamped_spans", 0));
  p.total = static_cast<common::SimDuration>(v.number_or("total_ns", 0));
  if (const json::Value* cats = v.find("categories")) {
    for (const auto& cv : cats->as_array()) {
      const ProfileCategory c =
          profile_category_from_name(cv.string_or("name", ""));
      p.category_self[static_cast<int>(c)] =
          static_cast<common::SimDuration>(cv.number_or("self_ns", 0));
    }
  }
  if (const json::Value* files = v.find("files")) {
    for (const auto& fv : files->as_array()) {
      p.files.push_back(file_profile_from_json(fv));
    }
  }
  if (const json::Value* exs = v.find("exemplars")) {
    for (const auto& ev : exs->as_array()) {
      TailExemplar ex;
      ex.category = profile_category_from_name(ev.string_or("category", ""));
      ex.file = ev.string_or("file", "");
      ex.track = static_cast<TrackId>(ev.number_or("track", 0));
      ex.span = static_cast<SpanId>(ev.number_or("span", 0));
      ex.self = static_cast<common::SimDuration>(ev.number_or("self_ns", 0));
      ex.total =
          static_cast<common::SimDuration>(ev.number_or("total_ns", 0));
      p.exemplars.push_back(std::move(ex));
    }
  }
  if (const json::Value* stacks = v.find("stacks")) {
    for (const auto& sv : stacks->as_array()) {
      StackWeight sw;
      sw.stack = sv.string_or("stack", "");
      sw.self = static_cast<common::SimDuration>(sv.number_or("self_ns", 0));
      p.stacks.push_back(std::move(sw));
    }
  }
  return p;
}

SeriesSummary series_from_json(const json::Value& v) {
  SeriesSummary s;
  s.name = v.string_or("name", "");
  s.labels = labels_from_json(v, "labels");
  s.samples = static_cast<std::uint64_t>(v.number_or("samples", 0));
  s.min = v.number_or("min", 0);
  s.max = v.number_or("max", 0);
  s.sum = v.number_or("sum", 0);
  if (const json::Value* points = v.find("points"); points != nullptr) {
    for (const auto& pv : points->as_array()) {
      RollupPoint p;
      p.start = static_cast<common::SimTime>(pv.number_or("start_ns", 0));
      p.min = pv.number_or("min", 0);
      p.max = pv.number_or("max", 0);
      p.sum = pv.number_or("sum", 0);
      p.count = static_cast<std::uint64_t>(pv.number_or("count", 0));
      s.points.push_back(p);
    }
  }
  return s;
}

}  // namespace

void RunManifest::set_bench(std::string bench_name, double value) {
  for (auto& b : bench) {
    if (b.name == bench_name) {
      b.value = value;
      return;
    }
  }
  bench.push_back({std::move(bench_name), value});
}

double RunManifest::bench_or(std::string_view bench_name,
                             double fallback) const {
  for (const auto& b : bench) {
    if (b.name == bench_name) return b.value;
  }
  return fallback;
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "\"manifest\":\"" + json_escape(name) + "\",\n";
  out += "\"seed\":" + std::to_string(seed) + ",\n";
  out += "\"topology\":\"" + json_escape(topology) + "\",\n";
  out += "\"fault_timeline_hash\":\"" + hex64(fault_timeline_hash) + "\",\n";
  out += "\"flight_digest\":\"" + hex64(flight_digest) + "\",\n";
  out += "\"events_recorded\":" + std::to_string(events_recorded) + ",\n";
  out += "\"events_evicted\":" + std::to_string(events_evicted) + ",\n";
  out += "\"bench\":[";
  for (std::size_t i = 0; i < bench.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += "{\"name\":\"" + json_escape(bench[i].name) +
           "\",\"value\":" + fmt_double(bench[i].value) + "}";
  }
  out += "\n],\n\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += alert_to_json(alerts[i]);
  }
  out += "\n],\n\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += series_to_json(series[i]);
  }
  out += "\n],\n";
  if (has_profile) {
    out += "\"profile\":" + profile_to_json(profile) + ",\n";
  }
  out += "\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += obs::to_json(events[i]);
  }
  out += "\n],\n\"metrics\":" + obs::to_json(metrics) + "\n}\n";
  return out;
}

Result<RunManifest> RunManifest::from_json(std::string_view text) {
  auto parsed = json::parse(text);
  if (!parsed) return parsed.error();
  const json::Value& v = *parsed;
  if (!v.is_object() || v.find("manifest") == nullptr) {
    return Error{Errc::protocol_error, "not a run manifest (no \"manifest\")"};
  }
  RunManifest m;
  m.name = v.string_or("manifest", "");
  m.seed = static_cast<std::uint64_t>(v.number_or("seed", 0));
  m.topology = v.string_or("topology", "");
  m.fault_timeline_hash = parse_hex64(v.string_or("fault_timeline_hash", "0"));
  m.flight_digest = parse_hex64(v.string_or("flight_digest", "0"));
  m.events_recorded =
      static_cast<std::uint64_t>(v.number_or("events_recorded", 0));
  m.events_evicted =
      static_cast<std::uint64_t>(v.number_or("events_evicted", 0));
  if (const json::Value* bench = v.find("bench"); bench != nullptr) {
    for (const auto& bv : bench->as_array()) {
      m.bench.push_back(
          {bv.string_or("name", ""), bv.number_or("value", 0)});
    }
  }
  if (const json::Value* alerts = v.find("alerts"); alerts != nullptr) {
    for (const auto& av : alerts->as_array()) {
      m.alerts.push_back(alert_from_json(av));
    }
  }
  if (const json::Value* series = v.find("series"); series != nullptr) {
    for (const auto& sv : series->as_array()) {
      m.series.push_back(series_from_json(sv));
    }
  }
  if (const json::Value* profile = v.find("profile"); profile != nullptr) {
    m.has_profile = true;
    m.profile = profile_from_json(*profile);
  }
  if (const json::Value* events = v.find("events"); events != nullptr) {
    for (const auto& ev : events->as_array()) {
      m.events.push_back(event_from_json(ev));
    }
  }
  if (const json::Value* metrics = v.find("metrics"); metrics != nullptr) {
    m.metrics = snapshot_from_json(*metrics);
  }
  return m;
}

RunManifest capture_manifest(std::string name, std::uint64_t seed,
                             std::string topology,
                             std::uint64_t timeline_hash,
                             const FlightRecorder& recorder,
                             MetricsSnapshot snapshot) {
  RunManifest m;
  m.name = std::move(name);
  m.seed = seed;
  m.topology = std::move(topology);
  m.fault_timeline_hash = timeline_hash;
  m.flight_digest = recorder.digest();
  m.events_recorded = recorder.recorded();
  m.events_evicted = recorder.evicted();
  m.events.assign(recorder.events().begin(), recorder.events().end());
  m.metrics = std::move(snapshot);
  return m;
}

void attach_telemetry(RunManifest& manifest, const TimeSeriesStore& store,
                      const AlertEngine& alerts,
                      const std::vector<std::string>& include,
                      std::size_t max_points) {
  manifest.alerts = alerts.history();
  manifest.series.clear();
  store.for_each([&](const std::string& name, const Labels& labels,
                     const TimeSeries& s) {
    if (!include.empty()) {
      bool keep = false;
      for (const auto& needle : include) {
        if (name.find(needle) != std::string::npos) {
          keep = true;
          break;
        }
      }
      if (!keep) return;
    }
    SeriesSummary sum;
    sum.name = name;
    sum.labels = labels;
    sum.samples = s.samples();
    sum.min = s.life_min();
    sum.max = s.life_max();
    sum.sum = s.life_sum();
    // Coarse rollups give the longest horizon per point; keep the newest.
    std::vector<RollupPoint> points = s.coarse();
    if (points.size() > max_points) {
      points.erase(points.begin(),
                   points.end() - static_cast<std::ptrdiff_t>(max_points));
    }
    sum.points = std::move(points);
    manifest.series.push_back(std::move(sum));
  });
}

std::string profile_to_json(const TimeWhereProfile& p) {
  std::string out = "{\"root\":\"" + json_escape(p.root_span) +
                    "\",\"at_ns\":" + std::to_string(p.at) +
                    ",\"files_profiled\":" + std::to_string(p.files_profiled) +
                    ",\"total_ns\":" + std::to_string(p.total) +
                    ",\"dropped_spans\":" + std::to_string(p.dropped_spans) +
                    ",\"clamped_spans\":" + std::to_string(p.clamped_spans) +
                    ",\"categories\":[";
  for (int i = 0; i < kProfileCategories; ++i) {
    const auto c = static_cast<ProfileCategory>(i);
    if (i) out += ",";
    out += "\n  {\"name\":\"" + std::string(profile_category_name(c)) +
           "\",\"self_ns\":" + std::to_string(p.category_self[i]) +
           ",\"share\":" + fmt_double(p.share(c)) + "}";
  }
  out += "\n ],\"exemplars\":[";
  for (std::size_t i = 0; i < p.exemplars.size(); ++i) {
    const TailExemplar& ex = p.exemplars[i];
    if (i) out += ",";
    out += "\n  {\"category\":\"" +
           std::string(profile_category_name(ex.category)) +
           "\",\"file\":\"" + json_escape(ex.file) +
           "\",\"track\":" + std::to_string(ex.track) +
           ",\"span\":" + std::to_string(ex.span) +
           ",\"self_ns\":" + std::to_string(ex.self) +
           ",\"total_ns\":" + std::to_string(ex.total) + "}";
  }
  out += "\n ],\"stacks\":[";
  for (std::size_t i = 0; i < p.stacks.size(); ++i) {
    if (i) out += ",";
    out += "\n  {\"stack\":\"" + json_escape(p.stacks[i].stack) +
           "\",\"self_ns\":" + std::to_string(p.stacks[i].self) + "}";
  }
  out += "\n ],\"files\":[";
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    if (i) out += ",";
    out += "\n  " + file_profile_to_json(p.files[i]);
  }
  out += "\n ]}";
  return out;
}

void attach_profile(RunManifest& manifest, const TimeWhereProfile& profile,
                    std::size_t max_files, std::size_t max_steps) {
  manifest.profile = profile;
  manifest.has_profile = true;
  TimeWhereProfile& p = manifest.profile;
  if (p.files.size() > max_files) {
    // Keep only exemplar-referenced rows; aggregates stay complete.
    std::vector<FileProfile> kept;
    for (const auto& fp : p.files) {
      bool referenced = false;
      for (const auto& ex : p.exemplars) {
        if (ex.span == fp.span) {
          referenced = true;
          break;
        }
      }
      if (referenced) kept.push_back(fp);
    }
    p.files = std::move(kept);
  }
  for (auto& fp : p.files) {
    if (fp.critical_path.size() <= max_steps) continue;
    CriticalStep elided;
    elided.frame =
        "(+" +
        std::to_string(fp.critical_path.size() - (max_steps - 1)) +
        " more steps)";
    elided.start = fp.critical_path[max_steps - 1].start;
    elided.end = fp.critical_path.back().end;
    elided.category = ProfileCategory::overhead;
    fp.critical_path.resize(max_steps - 1);
    fp.critical_path.push_back(std::move(elided));
  }
}

Result<RunManifest> load_manifest(const std::string& path) {
  auto text = read_file(path);
  if (!text) return text.error();
  return RunManifest::from_json(*text);
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return n == text.size();
}

Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{Errc::not_found, "cannot open " + path};
  }
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace esg::obs
