// Flamegraph export for time-where profiles.
//
// Emits the *collapsed stack* format understood by Brendan Gregg's
// flamegraph.pl and by speedscope's "Brendan Gregg" importer: one line per
// unique stack, frames joined by ';', followed by a space and an integer
// weight.  The profiler's weights are exclusive self-times in integer
// nanoseconds, so the flamegraph's widths are exact — the sum of all lines
// equals the profile's total time (the tiling invariant survives export).
//
//   rm.file;rm.transfer;gridftp.get;net.tcp 41250000000
//   rm.file;rm.transfer;(backoff) 6000000000
//
// Synthetic parenthesised leaf frames mark the gap categories that have no
// span of their own: (queued), (backoff), (breaker-wait), (staging),
// (overhead).  Output is sorted lexicographically by stack so same-seed
// runs export byte-identical flames.
#pragma once

#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace esg::obs {

/// Collapsed stacks for a whole profile (all files aggregated).
std::string to_collapsed_stacks(const TimeWhereProfile& profile);

/// Collapsed stacks from a raw weight list (manifest round-trip path).
std::string to_collapsed_stacks(const std::vector<StackWeight>& stacks);

/// Collapsed stacks for a single file, derived from its critical path
/// (each step becomes `root;frame weight`); lets `esg-report flame FILE`
/// zoom one request.
std::string to_collapsed_stacks(const FileProfile& fp,
                                const std::string& root_span);

}  // namespace esg::obs
