#include "obs/slo.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace esg::obs {

using common::Errc;
using common::Error;
using common::Result;

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + v;
  }
  return out + "}";
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool compare(double observed, SloCmp cmp, double threshold) {
  switch (cmp) {
    case SloCmp::lt: return observed < threshold;
    case SloCmp::le: return observed <= threshold;
    case SloCmp::gt: return observed > threshold;
    case SloCmp::ge: return observed >= threshold;
    case SloCmp::eq: return observed == threshold;
    case SloCmp::ne: return observed != threshold;
  }
  return false;
}

double relative_drift(double a, double b, double absolute) {
  const double diff = std::fabs(a - b);
  if (diff <= absolute) return 0.0;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return scale > 0.0 ? diff / scale : 0.0;
}

bool ignored(const std::string& name, const DriftTolerance& tolerance) {
  for (const auto& sub : tolerance.ignore) {
    if (name.find(sub) != std::string::npos) return true;
  }
  return false;
}

void compare_value(const std::string& key, double baseline, double current,
                   const DriftTolerance& tolerance, DriftReport& report) {
  ++report.series_compared;
  const double rel = relative_drift(baseline, current, tolerance.absolute);
  if (rel > tolerance.relative) {
    report.drifts.push_back({key, baseline, current, rel, ""});
  }
}

void compare_exact(const std::string& field, double baseline, double current,
                   DriftReport& report) {
  ++report.series_compared;
  if (baseline != current) {
    report.drifts.push_back(
        {field, baseline, current, 1.0, "identity field differs"});
  }
}

}  // namespace

const char* slo_cmp_name(SloCmp cmp) {
  switch (cmp) {
    case SloCmp::lt: return "<";
    case SloCmp::le: return "<=";
    case SloCmp::gt: return ">";
    case SloCmp::ge: return ">=";
    case SloCmp::eq: return "==";
    case SloCmp::ne: return "!=";
  }
  return "?";
}

Result<SloRule> parse_slo_rule(std::string_view text) {
  SloRule rule;
  rule.expr = std::string(trim(text));
  std::string_view rest = trim(text);

  // Comparison operator: first of < <= > >= == != outside the metric part.
  // Label selectors carry '=' inside {...}, so the scan skips braced spans.
  std::size_t op_pos = std::string_view::npos;
  int depth = 0;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const char c = rest[i];
    if (c == '{') ++depth;
    if (c == '}' && depth > 0) --depth;
    if (depth > 0) continue;
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      op_pos = i;
      break;
    }
  }
  if (op_pos == std::string_view::npos) {
    return Error{Errc::invalid_argument,
                 "slo rule has no comparison: " + rule.expr};
  }
  std::string_view metric_part = trim(rest.substr(0, op_pos));
  std::string_view op_part = rest.substr(op_pos);
  if (op_part.size() >= 2 && op_part[1] == '=') {
    switch (op_part[0]) {
      case '<': rule.cmp = SloCmp::le; break;
      case '>': rule.cmp = SloCmp::ge; break;
      case '=': rule.cmp = SloCmp::eq; break;
      case '!': rule.cmp = SloCmp::ne; break;
    }
    op_part.remove_prefix(2);
  } else if (op_part[0] == '<') {
    rule.cmp = SloCmp::lt;
    op_part.remove_prefix(1);
  } else if (op_part[0] == '>') {
    rule.cmp = SloCmp::gt;
    op_part.remove_prefix(1);
  } else {
    return Error{Errc::invalid_argument,
                 "bad comparison operator in: " + rule.expr};
  }
  const std::string threshold_text{trim(op_part)};
  char* end = nullptr;
  rule.threshold = std::strtod(threshold_text.c_str(), &end);
  if (threshold_text.empty() || end != threshold_text.c_str() + threshold_text.size()) {
    return Error{Errc::invalid_argument, "bad threshold in: " + rule.expr};
  }

  // Quantile wrapper: pNN(metric).
  if (metric_part.size() > 1 && metric_part[0] == 'p' &&
      metric_part.find('(') != std::string_view::npos &&
      metric_part.back() == ')') {
    const std::size_t open = metric_part.find('(');
    const std::string pct{metric_part.substr(1, open - 1)};
    char* pend = nullptr;
    const double percent = std::strtod(pct.c_str(), &pend);
    if (pend != pct.c_str() + pct.size() || percent < 0 || percent > 100) {
      return Error{Errc::invalid_argument, "bad quantile in: " + rule.expr};
    }
    rule.quantile = percent / 100.0;
    metric_part =
        trim(metric_part.substr(open + 1, metric_part.size() - open - 2));
  }

  // Label selector: metric{k=v,...}.
  if (const std::size_t brace = metric_part.find('{');
      brace != std::string_view::npos) {
    if (metric_part.back() != '}') {
      return Error{Errc::invalid_argument,
                   "unterminated label selector in: " + rule.expr};
    }
    std::string_view labels =
        metric_part.substr(brace + 1, metric_part.size() - brace - 2);
    while (!labels.empty()) {
      const std::size_t comma = labels.find(',');
      std::string_view pair = trim(labels.substr(0, comma));
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        return Error{Errc::invalid_argument,
                     "bad label selector in: " + rule.expr};
      }
      rule.labels.emplace_back(std::string(trim(pair.substr(0, eq))),
                               std::string(trim(pair.substr(eq + 1))));
      if (comma == std::string_view::npos) break;
      labels.remove_prefix(comma + 1);
    }
    metric_part = trim(metric_part.substr(0, brace));
  }
  rule.labels = normalize_labels(std::move(rule.labels));
  rule.metric = std::string(metric_part);
  if (rule.metric.empty()) {
    return Error{Errc::invalid_argument, "empty metric in: " + rule.expr};
  }
  return rule;
}

SloReport evaluate_slos(const std::vector<SloRule>& rules,
                        const MetricsSnapshot& snapshot) {
  SloReport report;
  for (const auto& rule : rules) {
    SloCheck check;
    check.rule = rule;
    if (rule.quantile >= 0.0) {
      // Histogram quantile; a bare family name merges every series'
      // buckets (boundaries are uniform within a family by construction).
      std::vector<double> boundaries;
      std::vector<std::uint64_t> buckets;
      for (const auto& e : snapshot.entries) {
        if (e.kind != MetricKind::histogram || e.name != rule.metric) continue;
        if (!rule.labels.empty() && e.labels != rule.labels) continue;
        check.series_found = true;
        if (boundaries.empty()) {
          boundaries = e.boundaries;
          buckets = e.buckets;
        } else if (boundaries == e.boundaries &&
                   buckets.size() == e.buckets.size()) {
          for (std::size_t i = 0; i < buckets.size(); ++i) {
            buckets[i] += e.buckets[i];
          }
        }
      }
      check.observed = histogram_quantile(boundaries, buckets, rule.quantile);
    } else if (rule.labels.empty()) {
      for (const auto& e : snapshot.entries) {
        if (e.name == rule.metric && e.kind != MetricKind::histogram) {
          check.series_found = true;
          check.observed += e.value;
        }
      }
    } else if (const SnapshotEntry* e =
                   snapshot.find(rule.metric, rule.labels);
               e != nullptr) {
      check.series_found = true;
      check.observed = e->value;
    }
    check.pass = compare(check.observed, rule.cmp, rule.threshold);
    report.all_pass = report.all_pass && check.pass;
    report.checks.push_back(std::move(check));
  }
  return report;
}

std::string SloReport::render() const {
  std::string out;
  for (const auto& c : checks) {
    out += c.pass ? "  PASS  " : "  FAIL  ";
    out += c.rule.expr + "  (observed " + fmt_double(c.observed);
    if (!c.series_found) out += ", series absent";
    out += ")\n";
  }
  out += all_pass ? "SLO: all rules pass\n" : "SLO: RULES FAILED\n";
  return out;
}

DriftReport diff_snapshots(const MetricsSnapshot& baseline,
                           const MetricsSnapshot& current,
                           const DriftTolerance& tolerance) {
  DriftReport report;
  // Both snapshots are sorted by (name, labels, kind): a single merge walk
  // pairs the series and exposes one-sided ones.
  auto key_less = [](const SnapshotEntry& a, const SnapshotEntry& b) {
    if (a.name != b.name) return a.name < b.name;
    if (a.labels != b.labels) return a.labels < b.labels;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  };
  std::size_t i = 0, j = 0;
  while (i < baseline.entries.size() || j < current.entries.size()) {
    const SnapshotEntry* b =
        i < baseline.entries.size() ? &baseline.entries[i] : nullptr;
    const SnapshotEntry* c =
        j < current.entries.size() ? &current.entries[j] : nullptr;
    if (b != nullptr && c != nullptr && !key_less(*b, *c) &&
        !key_less(*c, *b)) {
      ++i;
      ++j;
      if (ignored(b->name, tolerance)) continue;
      const std::string key = series_key(b->name, b->labels);
      if (b->kind == MetricKind::histogram) {
        compare_value(key + " count", static_cast<double>(b->count),
                      static_cast<double>(c->count), tolerance, report);
        compare_value(key + " sum", b->sum, c->sum, tolerance, report);
      } else {
        compare_value(key, b->value, c->value, tolerance, report);
      }
      continue;
    }
    if (c == nullptr || (b != nullptr && key_less(*b, *c))) {
      ++i;
      if (ignored(b->name, tolerance)) continue;
      ++report.series_compared;
      report.drifts.push_back({series_key(b->name, b->labels), b->value, 0.0,
                               1.0, "missing in current"});
    } else {
      ++j;
      if (ignored(c->name, tolerance)) continue;
      ++report.series_compared;
      report.drifts.push_back({series_key(c->name, c->labels), 0.0, c->value,
                               1.0, "missing in baseline"});
    }
  }
  return report;
}

DriftReport diff_manifests(const RunManifest& baseline,
                           const RunManifest& current,
                           const DriftTolerance& tolerance) {
  DriftReport report = diff_snapshots(baseline.metrics, current.metrics,
                                      tolerance);
  compare_exact("seed", static_cast<double>(baseline.seed),
                static_cast<double>(current.seed), report);
  compare_exact("events_recorded",
                static_cast<double>(baseline.events_recorded),
                static_cast<double>(current.events_recorded), report);
  // Hashes live outside double range: compare directly, report in hex.
  auto compare_hash = [&report](const char* field, std::uint64_t b,
                                std::uint64_t c) {
    ++report.series_compared;
    if (b == c) return;
    char note[80];
    std::snprintf(note, sizeof note, "%016llx -> %016llx",
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(c));
    report.drifts.push_back({field, 0.0, 0.0, 1.0, note});
  };
  compare_hash("fault_timeline_hash", baseline.fault_timeline_hash,
               current.fault_timeline_hash);
  compare_hash("flight_digest", baseline.flight_digest,
               current.flight_digest);
  ++report.series_compared;
  if (baseline.topology != current.topology) {
    report.drifts.push_back({"topology", 0.0, 0.0, 1.0,
                             "\"" + baseline.topology + "\" -> \"" +
                                 current.topology + "\""});
  }
  // Bench values under the same tolerance as metrics.
  auto has = [](const std::vector<BenchValue>& values,
                const std::string& name) {
    for (const auto& v : values) {
      if (v.name == name) return true;
    }
    return false;
  };
  for (const auto& b : baseline.bench) {
    if (ignored(b.name, tolerance)) continue;
    if (!has(current.bench, b.name)) {
      ++report.series_compared;
      report.drifts.push_back(
          {"bench:" + b.name, b.value, 0.0, 1.0, "missing in current"});
      continue;
    }
    compare_value("bench:" + b.name, b.value,
                  current.bench_or(b.name, 0.0), tolerance, report);
  }
  for (const auto& c : current.bench) {
    if (ignored(c.name, tolerance)) continue;
    if (!has(baseline.bench, c.name)) {
      ++report.series_compared;
      report.drifts.push_back(
          {"bench:" + c.name, 0.0, c.value, 1.0, "missing in baseline"});
    }
  }
  // Profile drift: per-category self-times under the same tolerance as
  // metrics, so a structural shift in where time goes (staging doubling,
  // backoff exploding) fails the gate even when totals stay flat.
  ++report.series_compared;
  if (baseline.has_profile != current.has_profile) {
    report.drifts.push_back({"profile", 0.0, 0.0, 1.0,
                             baseline.has_profile ? "missing in current"
                                                  : "missing in baseline"});
  } else if (baseline.has_profile) {
    compare_exact("profile:files_profiled",
                  static_cast<double>(baseline.profile.files_profiled),
                  static_cast<double>(current.profile.files_profiled),
                  report);
    for (int i = 0; i < kProfileCategories; ++i) {
      const std::string key =
          std::string("profile:") +
          profile_category_name(static_cast<ProfileCategory>(i));
      if (ignored(key, tolerance)) continue;
      compare_value(
          key, common::to_seconds(baseline.profile.category_self[i]),
          common::to_seconds(current.profile.category_self[i]), tolerance,
          report);
    }
  }
  // Alert timeline: exact, positional.  Which rule fired, in what order, at
  // which sim-times — any drift means the run's failure story changed, which
  // is precisely what the gate exists to catch.
  const std::size_t alert_count =
      std::max(baseline.alerts.size(), current.alerts.size());
  for (std::size_t i = 0; i < alert_count; ++i) {
    ++report.series_compared;
    const std::string key = "alert[" + std::to_string(i) + "]";
    if (i >= current.alerts.size()) {
      report.drifts.push_back({key + ":" + baseline.alerts[i].rule, 0.0, 0.0,
                               1.0, "missing in current"});
      continue;
    }
    if (i >= baseline.alerts.size()) {
      report.drifts.push_back({key + ":" + current.alerts[i].rule, 0.0, 0.0,
                               1.0, "missing in baseline"});
      continue;
    }
    const AlertRecord& b = baseline.alerts[i];
    const AlertRecord& c = current.alerts[i];
    if (b.rule != c.rule || b.kind != c.kind) {
      report.drifts.push_back(
          {key, 0.0, 0.0, 1.0, b.rule + " -> " + c.rule});
      continue;
    }
    if (b.fired_at != c.fired_at) {
      report.drifts.push_back({key + ":" + b.rule + " fired_at",
                               common::to_seconds(b.fired_at),
                               common::to_seconds(c.fired_at), 1.0,
                               "alert timeline differs"});
    }
    if (b.resolved != c.resolved ||
        (b.resolved && b.resolved_at != c.resolved_at)) {
      report.drifts.push_back({key + ":" + b.rule + " resolved_at",
                               b.resolved ? common::to_seconds(b.resolved_at)
                                          : -1.0,
                               c.resolved ? common::to_seconds(c.resolved_at)
                                          : -1.0,
                               1.0, "alert timeline differs"});
    }
  }
  return report;
}

std::string DriftReport::render() const {
  std::string out;
  for (const auto& d : drifts) {
    char line[256];
    std::snprintf(line, sizeof line, "  DRIFT %-48s %14g -> %-14g (%.1f%%)",
                  d.series.c_str(), d.baseline, d.current,
                  d.relative * 100.0);
    out += line;
    if (!d.note.empty()) out += "  [" + d.note + "]";
    out += "\n";
  }
  out += clean() ? "diff: clean (" + std::to_string(series_compared) +
                       " series compared)\n"
                 : "diff: " + std::to_string(drifts.size()) + " drift(s) in " +
                       std::to_string(series_compared) +
                       " series compared\n";
  return out;
}

}  // namespace esg::obs
