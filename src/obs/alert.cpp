#include "obs/alert.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace esg::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_at(common::SimTime t) {
  return common::format_time(t);
}

}  // namespace

const char* alert_kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::burn_rate: return "burn_rate";
    case AlertKind::anomaly: return "anomaly";
  }
  return "?";
}

AlertEngine::AlertEngine(const TimeSeriesStore& store,
                         FlightRecorder* recorder)
    : store_(store), recorder_(recorder) {}

void AlertEngine::add(BurnRateRule rule) {
  burns_.push_back({std::move(rule), false, 0});
}

void AlertEngine::add(AnomalyRule rule) {
  AnomalyState s;
  s.rule = std::move(rule);
  anomalies_.push_back(std::move(s));
}

double AlertEngine::burn_rate(const BurnRateRule& rule, common::SimTime now,
                              common::SimDuration window) const {
  const common::SimTime from = std::max<common::SimTime>(0, now - window);
  if (from >= now) return 0.0;
  const double bad =
      store_.family_delta(rule.bad_metric, rule.bad_labels, from, now);
  if (!rule.good_metric.empty()) {
    const double good =
        store_.family_delta(rule.good_metric, rule.good_labels, from, now);
    const double budget = 1.0 - rule.objective;
    if (budget <= 0.0) return bad > 0.0 ? 1e9 : 0.0;
    // No traffic in the window: errors against zero attempts burn at full
    // tilt, silence burns nothing.
    const double ratio = good > 0.0 ? bad / good : (bad > 0.0 ? 1.0 : 0.0);
    return ratio / budget;
  }
  if (rule.budget_per_hour <= 0.0) return bad > 0.0 ? 1e9 : 0.0;
  const double hours = common::to_seconds(now - from) / 3600.0;
  return (bad / hours) / rule.budget_per_hour;
}

void AlertEngine::fire(AlertKind kind, const std::string& rule,
                       const std::string& metric, common::SimTime now,
                       double value, double threshold, std::size_t* record) {
  AlertRecord r;
  r.rule = rule;
  r.kind = kind;
  r.metric = metric;
  r.fired_at = now;
  r.value = value;
  r.threshold = threshold;
  *record = history_.size();
  history_.push_back(std::move(r));
  if (recorder_ != nullptr) {
    recorder_->record("alert", "alert.fired", rule,
                      {{"kind", alert_kind_name(kind)},
                       {"metric", metric},
                       {"value", fmt_double(value)},
                       {"threshold", fmt_double(threshold)}});
  }
}

void AlertEngine::resolve(AlertKind kind, common::SimTime now,
                          std::size_t record) {
  AlertRecord& r = history_[record];
  r.resolved = true;
  r.resolved_at = now;
  if (recorder_ != nullptr) {
    recorder_->record("alert", "alert.resolved", r.rule,
                      {{"kind", alert_kind_name(kind)},
                       {"metric", r.metric},
                       {"active_seconds",
                        fmt_double(common::to_seconds(now - r.fired_at))}});
  }
}

void AlertEngine::evaluate(common::SimTime now) {
  for (BurnState& s : burns_) {
    const double burn_long = burn_rate(s.rule, now, s.rule.long_window);
    const double burn_short = burn_rate(s.rule, now, s.rule.short_window);
    if (!s.firing) {
      if (burn_long >= s.rule.threshold && burn_short >= s.rule.threshold) {
        s.firing = true;
        fire(AlertKind::burn_rate, s.rule.name, s.rule.bad_metric, now,
             std::max(burn_long, burn_short), s.rule.threshold, &s.record);
      }
    } else if (burn_short < s.rule.threshold) {
      s.firing = false;
      resolve(AlertKind::burn_rate, now, s.record);
    }
  }

  for (AnomalyState& s : anomalies_) {
    const AnomalyRule& rule = s.rule;
    double value = 0.0;
    if (rule.rate_window > 0) {
      bool found = false;
      store_.family_value(rule.metric, rule.labels, now, &found);
      if (!found) continue;  // series not born yet — no baseline to learn
      const common::SimTime from =
          std::max<common::SimTime>(0, now - rule.rate_window);
      if (from >= now) continue;
      value = store_.family_delta(rule.metric, rule.labels, from, now) /
              common::to_seconds(now - from);
    } else {
      bool found = false;
      value = store_.family_value(rule.metric, rule.labels, now, &found);
      if (!found) continue;
    }

    if (s.samples < rule.warmup_samples) {
      // Baseline learning: plain EWMA of mean and variance.
      if (s.samples == 0) {
        s.mean = value;
        s.var = 0.0;
      } else {
        const double d = value - s.mean;
        s.mean += rule.ewma_alpha * d;
        s.var = (1.0 - rule.ewma_alpha) * (s.var + rule.ewma_alpha * d * d);
      }
      ++s.samples;
      continue;
    }

    const double sigma = std::max(std::sqrt(s.var), rule.min_sigma);
    const double z = (value - s.mean) / sigma;
    // Saturate the accumulators so a long incident still resolves in a
    // bounded number of quiet samples.
    const double cap = 2.0 * rule.cusum_h;
    s.pos = std::clamp(s.pos + z - rule.cusum_k, 0.0, cap);
    s.neg = std::clamp(s.neg - z - rule.cusum_k, 0.0, cap);
    const double stat = std::max(s.pos, s.neg);

    if (!s.firing) {
      // Keep adapting the baseline only while healthy; freezing it during
      // an incident lets the alert resolve at the *old* normal.
      const double d = value - s.mean;
      s.mean += rule.ewma_alpha * d;
      s.var = (1.0 - rule.ewma_alpha) * (s.var + rule.ewma_alpha * d * d);
      ++s.samples;
      if (stat >= rule.cusum_h) {
        s.firing = true;
        fire(AlertKind::anomaly, rule.name, rule.metric, now, stat,
             rule.cusum_h, &s.record);
      }
    } else if (stat < rule.cusum_h / 2.0) {
      s.firing = false;
      s.pos = s.neg = 0.0;
      resolve(AlertKind::anomaly, now, s.record);
    }
  }
}

std::size_t AlertEngine::firing_count() const {
  std::size_t n = 0;
  for (const auto& r : history_) {
    if (!r.resolved) ++n;
  }
  return n;
}

std::string AlertEngine::render(common::SimTime now) const {
  std::string out = "-- alerts ";
  out += "(" + std::to_string(firing_count()) + " firing, " +
         std::to_string(history_.size()) + " fired) --\n";
  for (const auto& r : history_) {
    if (r.resolved) continue;
    out += "  FIRING   " + std::string(alert_kind_name(r.kind)) + "  " +
           r.rule + "  on " + r.metric + "  since " + fmt_at(r.fired_at) +
           " (" + common::format_time(now - r.fired_at) + " ago, " +
           fmt_double(r.value) + " vs " + fmt_double(r.threshold) + ")\n";
  }
  // The most recent resolutions give the pane short-term memory.
  int shown = 0;
  for (auto it = history_.rbegin(); it != history_.rend() && shown < 3; ++it) {
    if (!it->resolved) continue;
    out += "  resolved " + std::string(alert_kind_name(it->kind)) + "  " +
           it->rule + "  " + fmt_at(it->fired_at) + " -> " +
           fmt_at(it->resolved_at) + "\n";
    ++shown;
  }
  return out;
}

std::string render_alerts(const std::vector<AlertRecord>& alerts) {
  if (alerts.empty()) return "no alerts fired\n";
  std::string out;
  for (const auto& r : alerts) {
    out += "  " + std::string(r.resolved ? "resolved" : "FIRING  ") + "  " +
           std::string(alert_kind_name(r.kind)) + "  " + r.rule + "  on " +
           r.metric + "  fired " + fmt_at(r.fired_at);
    if (r.resolved) {
      out += "  resolved " + fmt_at(r.resolved_at) + " (active " +
             common::format_time(r.resolved_at - r.fired_at) + ")";
    }
    out += "  value " + fmt_double(r.value) + " vs " +
           fmt_double(r.threshold) + "\n";
  }
  return out;
}

const FlightEvent* correlate_alert(const std::vector<FlightEvent>& events,
                                   const AlertRecord& alert) {
  constexpr common::SimDuration kRecentWindow = 120 * common::kSecond;
  auto is_begin = [](const FlightEvent& e) {
    return e.category == "chaos" && e.name.rfind("fault.", 0) == 0 &&
           e.name.size() > 6 &&
           e.name.compare(e.name.size() - 6, 6, ".begin") == 0;
  };
  auto is_instant = [](const FlightEvent& e) {
    return e.category == "chaos" && e.name == "fault.corruption";
  };
  auto fault_end = [&events](const FlightEvent& begin) -> common::SimTime {
    const std::string end_name =
        begin.name.substr(0, begin.name.size() - 6) + ".end";
    for (const auto& e : events) {
      if (e.at < begin.at || e.seq <= begin.seq) continue;
      if (e.name == end_name && e.target == begin.target) return e.at;
    }
    return -1;
  };
  // A corruption injection stays armed until a payload consumes it (the
  // k-th checksum.mismatch consumes the k-th injection — the same FIFO the
  // postmortem attribution relies on), so the fault is "over" at
  // consumption time, not injection time: a failure burn fired minutes
  // after the injection still names the corruption that caused it.
  std::vector<common::SimTime> consumed;
  for (const auto& e : events) {
    if (e.name == "checksum.mismatch") consumed.push_back(e.at);
  }
  std::size_t armed = 0;
  const FlightEvent* active = nullptr;
  const FlightEvent* recent = nullptr;
  for (const auto& e : events) {
    if (e.at > alert.fired_at) break;
    const bool durable = is_begin(e);
    if (!durable && !is_instant(e)) continue;
    common::SimTime over = e.at;
    if (durable) {
      const common::SimTime end = fault_end(e);
      if (end < 0 || end >= alert.fired_at) {
        active = &e;
        continue;
      }
      over = end;
    } else {
      const std::size_t k = armed++;
      if (k < consumed.size() && consumed[k] >= e.at &&
          consumed[k] <= alert.fired_at) {
        over = consumed[k];
      }
    }
    if (alert.fired_at - over <= kRecentWindow) recent = &e;
  }
  return active != nullptr ? active : recent;
}

}  // namespace esg::obs
