#include "rpc/orb.hpp"

#include <utility>

namespace esg::rpc {

using common::Errc;
using common::Error;
using common::Result;

Orb::Orb(net::Network& network) : net_(network) {}

void Orb::register_service(const net::Host& host, const std::string& service,
                           Handler handler) {
  services_[key(host, service)] = ServiceEntry{std::move(handler), false};
}

void Orb::unregister_service(const net::Host& host,
                             const std::string& service) {
  services_.erase(key(host, service));
}

void Orb::set_service_down(const net::Host& host, const std::string& service,
                           bool down) {
  auto it = services_.find(key(host, service));
  if (it != services_.end()) it->second.down = down;
}

bool Orb::service_available(const net::Host& host,
                            const std::string& service) const {
  auto it = services_.find(key(host, service));
  return it != services_.end() && !it->second.down && !host.down();
}

void Orb::call(const net::Host& from, const net::Host& to,
               const std::string& service, const std::string& method,
               Payload request, ResponseCallback on_reply,
               common::SimDuration timeout) {
  // `settled` makes the first of {reply, timeout} win; the loser is a no-op
  // and the timeout event is cancelled so it cannot hold the event queue
  // open after the call resolves.
  auto settled = std::make_shared<bool>(false);
  auto timeout_handle = std::make_shared<sim::EventHandle>();
  auto deliver = std::make_shared<ResponseCallback>(std::move(on_reply));
  auto finish = [settled, deliver, timeout_handle](Result<Payload> result) {
    if (*settled) return;
    *settled = true;
    timeout_handle->cancel();
    (*deliver)(std::move(result));
  };

  *timeout_handle =
      net_.simulation().schedule_after(timeout, [finish, service, method] {
        finish(Error{Errc::timed_out, service + "." + method + " timed out"});
      });

  const auto request_size =
      static_cast<common::Bytes>(request.size()) + kEnvelopeBytes;
  net_.send_message(
      from, to, request_size,
      [this, &from, &to, service, method, request = std::move(request),
       finish](bool ok) mutable {
        if (!ok) return;  // lost request; the timeout fires eventually
        auto it = services_.find(key(to, service));
        const net::Host* origin = &from;
        const net::Host* server = &to;
        if (it == services_.end()) {
          // Unknown service: an ICMP-style refusal travels back promptly.
          net_.send_message(*server, *origin, kEnvelopeBytes,
                            [finish, service](bool back_ok) {
                              if (!back_ok) return;
                              finish(Error{Errc::unavailable,
                                           "no such service: " + service});
                            });
          return;
        }
        if (it->second.down || server->down()) {
          return;  // service hung: caller's timeout fires
        }
        // Dispatch.  The handler replies whenever it is ready.
        it->second.handler(
            method, std::move(request),
            [this, origin, server, finish](Result<Payload> result) {
              const common::Bytes size =
                  (result.ok() ? static_cast<common::Bytes>(result->size())
                               : 0) +
                  kEnvelopeBytes;
              net_.send_message(*server, *origin, size,
                                [finish, result = std::move(result)](
                                    bool back_ok) mutable {
                                  if (!back_ok) return;
                                  finish(std::move(result));
                                });
            });
      });
}

}  // namespace esg::rpc
