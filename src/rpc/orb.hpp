// Minimal request/response RPC over the emulated network.
//
// Stands in for the paper's two wire protocols: the CORBA interface CDAT
// uses to call the request manager, and the LDAP protocol in front of the
// replica catalog, the metadata catalog, and MDS.  Only the semantics that
// affect the experiments are modeled: messages pay path latency and
// serialization time, calls into down hosts or stopped services time out,
// and handlers may defer their reply (the HRM answers a stage request only
// when the tape drive finishes).
//
// Payloads are flat byte vectors produced with common::ByteWriter; each
// service defines its own method schemas on top.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytebuf.hpp"
#include "common/result.hpp"
#include "net/topology.hpp"

namespace esg::rpc {

using Payload = std::vector<std::uint8_t>;

/// Handlers call `reply` exactly once, immediately or later.
using Reply = std::function<void(common::Result<Payload>)>;
using Handler =
    std::function<void(const std::string& method, Payload request, Reply reply)>;

using ResponseCallback = std::function<void(common::Result<Payload>)>;

class Orb {
 public:
  explicit Orb(net::Network& network);

  /// Register `service` on `host`.  One handler per (host, service).
  void register_service(const net::Host& host, const std::string& service,
                        Handler handler);

  void unregister_service(const net::Host& host, const std::string& service);

  /// Service-level failure injection ("DNS problems" in Figure 8 terms):
  /// the host is reachable but this service stops answering.
  void set_service_down(const net::Host& host, const std::string& service,
                        bool down);

  bool service_available(const net::Host& host,
                         const std::string& service) const;

  /// Invoke `service.method` on `to` from `from`.  `on_reply` fires exactly
  /// once with the response payload, `unavailable` (no such service),
  /// or `timed_out` (lost request, lost reply, or handler never answered
  /// within `timeout`).
  void call(const net::Host& from, const net::Host& to,
            const std::string& service, const std::string& method,
            Payload request, ResponseCallback on_reply,
            common::SimDuration timeout = 30 * common::kSecond);

  net::Network& network() { return net_; }

 private:
  struct ServiceEntry {
    Handler handler;
    bool down = false;
  };

  static std::string key(const net::Host& host, const std::string& service) {
    return host.name() + "/" + service;
  }

  net::Network& net_;
  std::map<std::string, ServiceEntry> services_;
  static constexpr common::Bytes kEnvelopeBytes = 96;  // framing overhead
};

}  // namespace esg::rpc
