// Campaign catalog: the input to a fleet-scale replication campaign.
//
// The paper's challenge problem is moving *collections* — months of CO2
// model output — between ESG sites, not single files.  A CampaignCatalog
// is the flat, planner-friendly view of that workload: every logical file
// with its size, the replica URLs it can be fetched from, the dataset it
// belongs to (the fairness unit), and the site it must land at.
//
// Catalogs come from two places:
//   * synthetic_catalog() — a deterministic seeded generator used by the
//     campaign bench to build 100k-file workloads without a live catalog;
//   * load_catalog_from_replica() — an async loader that walks a live
//     replica::ReplicaCatalog collection (paper §6.2) and derives replica
//     URLs from its registered locations.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "gridftp/url.hpp"
#include "replica/catalog.hpp"

namespace esg::campaign {

struct CampaignFile {
  std::string dataset;    // fairness unit (e.g. "run07/atmos")
  std::string name;       // logical name, unique within the campaign
  common::Bytes size = 0;
  /// Replica URLs, preferred-first; the driver's ReliableGet round-robins
  /// over these under breaker guidance.
  std::vector<gridftp::FtpUrl> sources;
  /// Site (destination endpoint key) this file must be replicated to.
  std::string destination_site;
};

struct CampaignCatalog {
  std::string name;
  std::vector<CampaignFile> files;

  common::Bytes total_bytes() const;
  /// Sorted unique destination sites / datasets referenced by the files.
  std::vector<std::string> destination_sites() const;
  std::vector<std::string> datasets() const;
  /// Order-sensitive FNV-1a fingerprint over every entry; a manifest
  /// records it so a resume against a different catalog is refused.
  std::uint64_t fingerprint() const;
};

/// Deterministic synthetic workload: same spec ⇒ same catalog bytes.
struct SyntheticCatalogSpec {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  int datasets = 8;
  int files = 1000;
  common::Bytes min_file_size = 4 * common::kMiB;
  common::Bytes max_file_size = 16 * common::kMiB;
  /// Source servers; every file gets one URL per source (full replication
  /// at each source site, the common ESG mirror layout).
  struct Source {
    std::string host;
    std::string path;
  };
  std::vector<Source> sources;
  /// Files are dealt to destinations round-robin.
  std::vector<std::string> destination_sites;
};

CampaignCatalog synthetic_catalog(const SyntheticCatalogSpec& spec);

/// Build a catalog from a live replica catalog: every logical file of
/// `collection` (dataset = collection name), sources derived from each
/// registered location that holds the file, destinations dealt round-robin
/// over `destination_sites`.
void load_catalog_from_replica(
    replica::ReplicaCatalog& catalog, const std::string& collection,
    std::vector<std::string> destination_sites,
    std::function<void(common::Result<CampaignCatalog>)> done);

}  // namespace esg::campaign
