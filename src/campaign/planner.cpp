#include "campaign/planner.hpp"

#include <algorithm>
#include <map>

namespace esg::campaign {

std::size_t CampaignPlan::total_tasks() const {
  std::size_t n = 0;
  for (const auto& s : sites) n += s.queue.size();
  return n;
}

std::size_t CampaignPlan::total_resumed() const {
  std::size_t n = 0;
  for (const auto& s : sites) n += s.resumed;
  return n;
}

common::Bytes CampaignPlan::total_bytes() const {
  common::Bytes n = 0;
  for (const auto& s : sites) n += s.bytes;
  return n;
}

CampaignPlan plan_campaign(const CampaignCatalog& catalog,
                           const CampaignManifest* resume_from) {
  // site → dataset → file indices (catalog order within a dataset).
  // std::map keeps both levels sorted, which fixes the interleave order.
  std::map<std::string, std::map<std::string, std::vector<std::uint32_t>>>
      grouped;
  std::map<std::string, std::size_t> resumed;
  for (std::uint32_t i = 0; i < catalog.files.size(); ++i) {
    const CampaignFile& f = catalog.files[i];
    if (resume_from != nullptr &&
        resume_from->is_complete(f.name, f.destination_site)) {
      ++resumed[f.destination_site];
      continue;
    }
    grouped[f.destination_site][f.dataset].push_back(i);
  }
  // Make sure fully-resumed sites still appear in the plan.
  for (const auto& [site, n] : resumed) grouped[site];

  CampaignPlan plan;
  for (auto& [site, datasets] : grouped) {
    SitePlan sp;
    sp.site = site;
    if (auto it = resumed.find(site); it != resumed.end()) {
      sp.resumed = it->second;
    }
    std::size_t remaining = 0;
    for (const auto& [ds, idx] : datasets) remaining += idx.size();
    sp.queue.reserve(remaining);
    // Round-robin: one file per dataset per lap until all are dealt.
    std::size_t lap = 0;
    while (remaining > 0) {
      for (const auto& [ds, idx] : datasets) {
        if (lap < idx.size()) {
          sp.queue.push_back(idx[lap]);
          sp.bytes += catalog.files[idx[lap]].size;
          --remaining;
        }
      }
      ++lap;
    }
    plan.sites.push_back(std::move(sp));
  }
  return plan;
}

}  // namespace esg::campaign
