// Campaign planner: turn a catalog (minus already-completed work) into
// per-destination-site transfer queues.
//
// Each file has exactly one destination site, so a 100k-file campaign is
// 100k tasks sharded across the sites' queues.  Within a queue the planner
// interleaves datasets round-robin — one file from each dataset in turn —
// so no dataset monopolizes a site's transfer slots and every dataset makes
// steady progress (the fairness the ESG users asked of the request manager,
// lifted to fleet scale).  Planning is pure and deterministic: same catalog
// + same manifest ⇒ same plan.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/catalog.hpp"
#include "campaign/manifest.hpp"

namespace esg::campaign {

struct SitePlan {
  std::string site;
  /// Indices into CampaignCatalog::files, dataset-interleaved.
  std::vector<std::uint32_t> queue;
  common::Bytes bytes = 0;
  /// Files skipped at plan time because the manifest already has them.
  std::size_t resumed = 0;
};

struct CampaignPlan {
  std::vector<SitePlan> sites;  // sorted by site name

  std::size_t total_tasks() const;
  std::size_t total_resumed() const;
  common::Bytes total_bytes() const;
};

/// `resume_from` (optional) marks (file, site) pairs already complete; they
/// are counted as resumed and excluded from the queues.
CampaignPlan plan_campaign(const CampaignCatalog& catalog,
                           const CampaignManifest* resume_from = nullptr);

}  // namespace esg::campaign
