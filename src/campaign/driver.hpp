// Campaign driver: execute a CampaignPlan against the grid.
//
// One driver owns a whole campaign.  Per destination site it keeps a
// transfer queue (dataset-interleaved by the planner) and a configurable
// number of concurrent worker slots; each slot runs a gridftp::ReliableGet
// against the file's replica list, steered by a shared per-source-host
// circuit-breaker registry (rm::ReplicaHealthRegistry) exactly as the
// request manager wires it.  Completions are verified against the landed
// local copy's checksum, folded into the dataset-level checksum pipeline,
// and recorded in the CampaignManifest — the durable resume point.  The
// driver checkpoints the manifest periodically (and on abort), so a crashed
// or killed campaign restarts from its manifest, skips everything already
// landed, and converges to the same integrity report as an uninterrupted
// run.
//
// Observability: campaign_* metrics (queue depth, active transfers, files /
// bytes / retries / failures) and flight-recorder events (campaign.begin,
// task.failed, checkpoint, campaign.end) make fleet-scale runs explorable
// with the same esg-report tooling as single transfers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/catalog.hpp"
#include "campaign/manifest.hpp"
#include "campaign/planner.hpp"
#include "common/retry.hpp"
#include "gridftp/reliability.hpp"
#include "rm/health.hpp"

namespace esg::campaign {

/// A destination site's landing endpoint: a GridFTP client co-located at
/// the site.  Files land in the client's local namespace under
/// `local_prefix + "/" + file`.
struct SiteEndpoint {
  std::string site;
  gridftp::GridFtpClient* client = nullptr;
  std::string local_prefix = "replica";
};

struct CampaignOptions {
  /// Concurrent transfers per destination site.
  int per_site_concurrency = 4;
  gridftp::TransferOptions transfer;
  /// Retry shape for each file (feeds gridftp::ReliabilityOptions).
  common::RetryPolicy retry;
  /// Replica-switch threshold (0 = disabled), per ReliabilityOptions.
  common::Rate min_rate = 0.0;
  rm::BreakerConfig breaker;
  /// Checkpoint the manifest to this path every `checkpoint_every`
  /// completions ("" / 0 = no checkpointing).
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  /// Open a `campaign.file` trace span per task (queued at run(), ended at
  /// completion) and route each transfer's gridftp/net spans onto a
  /// per-task track, so build_profile() can decompose campaigns exactly
  /// like rm requests.  Off by default: a full 100k-file campaign should
  /// opt in (and raise Tracer::set_capacity) rather than silently drop.
  bool trace_tasks = false;
};

class CampaignDriver {
 public:
  /// `manifest` is empty for a fresh campaign or loaded from disk to
  /// resume; its completed set is excluded from the plan.
  CampaignDriver(sim::Simulation& sim, CampaignCatalog catalog,
                 std::vector<SiteEndpoint> endpoints, CampaignOptions options,
                 CampaignManifest manifest = {});

  CampaignDriver(const CampaignDriver&) = delete;
  CampaignDriver& operator=(const CampaignDriver&) = delete;

  /// Start all site queues; `done` fires once every task has completed or
  /// permanently failed (immediately if the plan is empty).
  void run(std::function<void(const IntegrityReport&)> done);

  /// Kill the campaign mid-run: abort in-flight transfers, freeze the
  /// queues, checkpoint the manifest if a checkpoint path is set.  The
  /// completion callback does NOT fire — this simulates a crashed driver,
  /// which is resumed by constructing a new one from the saved manifest.
  void abort();

  bool finished() const { return finished_; }
  const CampaignPlan& plan() const { return plan_; }
  const CampaignCatalog& catalog() const { return catalog_; }
  const CampaignManifest& manifest() const { return manifest_; }
  rm::ReplicaHealthRegistry& health() { return health_; }
  IntegrityReport report() const;

 private:
  struct SiteQueue {
    SiteEndpoint endpoint;
    std::vector<std::uint32_t> queue;
    std::size_t next = 0;
    int active = 0;
    obs::Gauge* depth = nullptr;
    obs::Gauge* active_gauge = nullptr;
  };

  void pump(SiteQueue& sq);
  void start_task(SiteQueue& sq, std::uint32_t file_index);
  void task_finished(SiteQueue& sq, std::uint32_t file_index,
                     gridftp::ReliableResult result);
  void maybe_checkpoint();
  void finish();

  sim::Simulation& sim_;
  CampaignCatalog catalog_;
  CampaignOptions options_;
  CampaignManifest manifest_;
  CampaignPlan plan_;
  rm::ReplicaHealthRegistry health_;
  std::vector<std::unique_ptr<SiteQueue>> sites_;
  std::map<std::uint32_t, std::shared_ptr<gridftp::ReliableGet>> active_;
  struct TaskTrace {
    obs::TrackId track = 0;
    obs::SpanId span = 0;  // the campaign.file root span
  };
  std::map<std::uint32_t, TaskTrace> traces_;  // only when trace_tasks
  std::function<void(const IntegrityReport&)> done_;
  std::size_t outstanding_ = 0;  // tasks not yet completed/failed
  std::size_t completions_since_checkpoint_ = 0;
  bool started_ = false;
  bool aborted_ = false;
  bool finished_ = false;
};

}  // namespace esg::campaign
