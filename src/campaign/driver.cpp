#include "campaign/driver.hpp"

#include <algorithm>

#include "storage/storage.hpp"

namespace esg::campaign {

using common::Errc;
using common::Error;

CampaignDriver::CampaignDriver(sim::Simulation& sim, CampaignCatalog catalog,
                               std::vector<SiteEndpoint> endpoints,
                               CampaignOptions options,
                               CampaignManifest manifest)
    : sim_(sim),
      catalog_(std::move(catalog)),
      options_(std::move(options)),
      manifest_(std::move(manifest)),
      health_(sim, options_.breaker) {
  if (manifest_.campaign.empty()) manifest_.campaign = catalog_.name;
  manifest_.catalog_fingerprint = catalog_.fingerprint();
  plan_ = plan_campaign(catalog_, &manifest_);
  std::sort(endpoints.begin(), endpoints.end(),
            [](const SiteEndpoint& a, const SiteEndpoint& b) {
              return a.site < b.site;
            });
  for (const SitePlan& sp : plan_.sites) {
    auto it = std::find_if(
        endpoints.begin(), endpoints.end(),
        [&](const SiteEndpoint& e) { return e.site == sp.site; });
    if (it == endpoints.end()) {
      // No landing endpoint for this site: everything queued there is a
      // permanent failure — the planner's report must say so, not hang.
      for (std::uint32_t idx : sp.queue) {
        const CampaignFile& f = catalog_.files[idx];
        manifest_.record_failure(
            {f.dataset, f.name, sp.site, "no endpoint for site", 0});
      }
      continue;
    }
    auto sq = std::make_unique<SiteQueue>();
    sq->endpoint = *it;
    sq->queue = sp.queue;
    sq->depth = &sim_.metrics().gauge("campaign_queue_depth",
                                      {{"site", sp.site}});
    sq->active_gauge = &sim_.metrics().gauge("campaign_active_transfers",
                                             {{"site", sp.site}});
    sq->depth->set(static_cast<double>(sq->queue.size()));
    sq->active_gauge->set(0.0);
    outstanding_ += sq->queue.size();
    sites_.push_back(std::move(sq));
  }
}

IntegrityReport CampaignDriver::report() const {
  return manifest_.report(catalog_.files.size(), plan_.total_resumed());
}

void CampaignDriver::run(std::function<void(const IntegrityReport&)> done) {
  done_ = std::move(done);
  started_ = true;
  sim_.flight_recorder().record(
      "campaign", "campaign.begin", catalog_.name,
      {{"tasks", std::to_string(plan_.total_tasks())},
       {"resumed", std::to_string(plan_.total_resumed())},
       {"bytes", std::to_string(plan_.total_bytes())},
       {"sites", std::to_string(sites_.size())}});
  sim_.metrics()
      .counter("campaign_files_resumed_total")
      .add(plan_.total_resumed());
  if (options_.trace_tasks) {
    // Every queued task opens its root span now, before any transfer is
    // admitted: the stretch between here and the first gridftp span is the
    // task's queue wait, and the profiler bills it as such.
    for (auto& sq : sites_) {
      for (std::size_t i = sq->next; i < sq->queue.size(); ++i) {
        const std::uint32_t idx = sq->queue[i];
        const CampaignFile& f = catalog_.files[idx];
        TaskTrace trace;
        trace.track = sim_.tracer().new_track("campaign " +
                                              sq->endpoint.site + "/" +
                                              f.name);
        trace.span =
            sim_.tracer().begin("campaign.file", "campaign", trace.track);
        sim_.tracer().set_attr(trace.span, "file", f.name);
        sim_.tracer().set_attr(trace.span, "dataset", f.dataset);
        sim_.tracer().set_attr(trace.span, "site", sq->endpoint.site);
        traces_[idx] = trace;
      }
    }
  }
  if (outstanding_ == 0) {
    // Nothing to do (fully resumed or empty): complete asynchronously so
    // callers never see the callback before run() returns.
    sim_.schedule_after(0, [this] { finish(); });
    return;
  }
  for (auto& sq : sites_) pump(*sq);
}

void CampaignDriver::abort() {
  if (finished_ || aborted_) return;
  aborted_ = true;
  sim_.flight_recorder().record(
      "campaign", "campaign.aborted", catalog_.name,
      {{"completed", std::to_string(manifest_.completed_count())},
       {"in_flight", std::to_string(active_.size())}});
  auto active = std::move(active_);
  active_.clear();
  for (auto& [idx, get] : active) get->abort();
  if (!options_.checkpoint_path.empty()) {
    manifest_.save(options_.checkpoint_path);
  }
}

void CampaignDriver::pump(SiteQueue& sq) {
  if (aborted_ || finished_) return;
  while (sq.active < options_.per_site_concurrency &&
         sq.next < sq.queue.size()) {
    const std::uint32_t idx = sq.queue[sq.next++];
    ++sq.active;
    start_task(sq, idx);
  }
  sq.depth->set(static_cast<double>(sq.queue.size() - sq.next));
  sq.active_gauge->set(static_cast<double>(sq.active));
}

void CampaignDriver::start_task(SiteQueue& sq, std::uint32_t file_index) {
  const CampaignFile& f = catalog_.files[file_index];
  sim_.metrics()
      .counter("campaign_tasks_started_total", {{"site", sq.endpoint.site}})
      .add();
  if (f.sources.empty()) {
    // Defer so the completion path never runs inside pump()'s loop.
    sim_.schedule_after(0, [this, &sq, file_index] {
      gridftp::ReliableResult r;
      r.status = Error{Errc::not_found, "no replicas registered"};
      task_finished(sq, file_index, std::move(r));
    });
    return;
  }
  gridftp::ReliabilityOptions rel;
  static_cast<common::RetryPolicy&>(rel) = options_.retry;
  rel.min_rate = options_.min_rate;
  rel.replica_allowed = [this](const std::string& host) {
    return health_.allow(host);
  };
  rel.on_attempt_result = [this](const std::string& host, bool ok) {
    ok ? health_.record_success(host) : health_.record_failure(host);
  };
  const std::string local_name = sq.endpoint.local_prefix + "/" + f.name;
  gridftp::TransferOptions transfer = options_.transfer;
  if (auto it = traces_.find(file_index); it != traces_.end()) {
    transfer.obs_track = it->second.track;
  }
  auto get = gridftp::ReliableGet::start(
      *sq.endpoint.client, f.sources, local_name, transfer, rel,
      nullptr, [this, &sq, file_index](gridftp::ReliableResult r) {
        task_finished(sq, file_index, std::move(r));
      });
  active_[file_index] = std::move(get);
}

void CampaignDriver::task_finished(SiteQueue& sq, std::uint32_t file_index,
                                   gridftp::ReliableResult result) {
  active_.erase(file_index);
  if (auto it = traces_.find(file_index); it != traces_.end()) {
    sim_.tracer().set_attr(it->second.span, "status",
                           result.status.ok()
                               ? "ok"
                               : result.status.error().to_string());
    sim_.tracer().set_attr(it->second.span, "bytes",
                           std::to_string(result.total_bytes));
    sim_.tracer().end(it->second.span);
    traces_.erase(it);
  }
  if (aborted_ || finished_) return;
  --sq.active;
  --outstanding_;
  const CampaignFile& f = catalog_.files[file_index];
  if (result.attempts > 1) {
    sim_.metrics()
        .counter("campaign_retries_total")
        .add(static_cast<std::uint64_t>(result.attempts - 1));
  }
  if (result.status.ok()) {
    CompletedTransfer t;
    t.dataset = f.dataset;
    t.file = f.name;
    t.site = sq.endpoint.site;
    t.bytes = result.total_bytes;
    t.attempts = std::max(1, result.attempts);
    t.finished_at = result.finished;
    // Dataset checksum pipeline: hash the landed copy, not the transfer —
    // what matters is what is actually on disk at the destination.
    const std::string local_name = sq.endpoint.local_prefix + "/" + f.name;
    if (auto file = sq.endpoint.client->local_storage().get(local_name);
        file.ok()) {
      t.checksum = storage::file_checksum(file.value());
    }
    manifest_.record(std::move(t));
    sim_.metrics()
        .histogram("campaign_file_seconds", obs::duration_boundaries(),
                   {{"site", sq.endpoint.site}})
        .observe(common::to_seconds(result.finished - result.started));
    sim_.metrics()
        .counter("campaign_files_completed_total",
                 {{"site", sq.endpoint.site}})
        .add();
    sim_.metrics()
        .counter("campaign_bytes_moved_total", {{"site", sq.endpoint.site}})
        .add(result.total_bytes);
    ++completions_since_checkpoint_;
    maybe_checkpoint();
  } else {
    manifest_.record_failure({f.dataset, f.name, sq.endpoint.site,
                              result.status.error().to_string(),
                              result.attempts});
    sim_.metrics()
        .counter("campaign_failures_total", {{"site", sq.endpoint.site}})
        .add();
    sim_.flight_recorder().record(
        "campaign", "task.failed", f.name,
        {{"site", sq.endpoint.site},
         {"attempts", std::to_string(result.attempts)},
         {"error", result.status.error().to_string()}});
  }
  if (outstanding_ == 0) {
    pump(sq);  // refresh gauges
    finish();
    return;
  }
  pump(sq);
}

void CampaignDriver::maybe_checkpoint() {
  if (options_.checkpoint_path.empty() || options_.checkpoint_every == 0 ||
      completions_since_checkpoint_ < options_.checkpoint_every) {
    return;
  }
  completions_since_checkpoint_ = 0;
  manifest_.save(options_.checkpoint_path);
  sim_.metrics().counter("campaign_checkpoints_total").add();
  sim_.flight_recorder().record(
      "campaign", "checkpoint", catalog_.name,
      {{"completed", std::to_string(manifest_.completed_count())}});
}

void CampaignDriver::finish() {
  if (finished_ || aborted_) return;
  finished_ = true;
  if (!options_.checkpoint_path.empty()) {
    manifest_.save(options_.checkpoint_path);
  }
  const IntegrityReport r = report();
  sim_.flight_recorder().record(
      "campaign", "campaign.end", catalog_.name,
      {{"moved", std::to_string(r.files_moved)},
       {"resumed", std::to_string(r.files_resumed)},
       {"failed", std::to_string(r.files_failed)},
       {"bytes", std::to_string(r.bytes_moved)},
       {"retries", std::to_string(r.retries)}});
  if (done_) done_(r);
}

}  // namespace esg::campaign
