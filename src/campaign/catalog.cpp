#include "campaign/catalog.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "common/bytebuf.hpp"
#include "common/rng.hpp"

namespace esg::campaign {

using common::Bytes;

Bytes CampaignCatalog::total_bytes() const {
  Bytes total = 0;
  for (const auto& f : files) total += f.size;
  return total;
}

namespace {
std::vector<std::string> sorted_unique(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}
}  // namespace

std::vector<std::string> CampaignCatalog::destination_sites() const {
  std::vector<std::string> v;
  v.reserve(files.size());
  for (const auto& f : files) v.push_back(f.destination_site);
  return sorted_unique(std::move(v));
}

std::vector<std::string> CampaignCatalog::datasets() const {
  std::vector<std::string> v;
  v.reserve(files.size());
  for (const auto& f : files) v.push_back(f.dataset);
  return sorted_unique(std::move(v));
}

std::uint64_t CampaignCatalog::fingerprint() const {
  std::string buf = name;
  for (const auto& f : files) {
    buf += '\n';
    buf += f.dataset;
    buf += '\0';
    buf += f.name;
    buf += '\0';
    buf += std::to_string(f.size);
    buf += '\0';
    buf += f.destination_site;
    for (const auto& s : f.sources) {
      buf += '\0';
      buf += s.host;
      buf += '/';
      buf += s.path;
    }
  }
  return common::fnv1a64(buf);
}

CampaignCatalog synthetic_catalog(const SyntheticCatalogSpec& spec) {
  common::Rng rng{spec.seed};
  CampaignCatalog catalog;
  catalog.name = spec.name;
  catalog.files.reserve(static_cast<std::size_t>(spec.files));
  const int datasets = std::max(1, spec.datasets);
  for (int i = 0; i < spec.files; ++i) {
    CampaignFile f;
    f.dataset = "ds" + std::to_string(i % datasets);
    f.name = f.dataset + "/file." + std::to_string(i / datasets) + ".ncx";
    const double span =
        static_cast<double>(spec.max_file_size - spec.min_file_size);
    f.size = spec.min_file_size +
             static_cast<Bytes>(span > 0 ? rng.uniform() * span : 0);
    for (const auto& src : spec.sources) {
      f.sources.push_back(gridftp::FtpUrl{
          src.host, src.path.empty() ? f.name : src.path + "/" + f.name});
    }
    if (!spec.destination_sites.empty()) {
      f.destination_site = spec.destination_sites
          [static_cast<std::size_t>(i) % spec.destination_sites.size()];
    }
    catalog.files.push_back(std::move(f));
  }
  return catalog;
}

namespace {

// Async state for the replica-catalog walk: list locations, list files,
// then look up each file's size.  Lives until the final callback fires.
struct ReplicaLoad : std::enable_shared_from_this<ReplicaLoad> {
  replica::ReplicaCatalog& rc;
  std::string collection;
  std::vector<std::string> destinations;
  std::function<void(common::Result<CampaignCatalog>)> done;
  std::vector<replica::LocationInfo> locations;
  std::vector<std::string> names;
  CampaignCatalog out;
  std::size_t next = 0;

  ReplicaLoad(replica::ReplicaCatalog& c, std::string coll,
              std::vector<std::string> dests,
              std::function<void(common::Result<CampaignCatalog>)> d)
      : rc(c), collection(std::move(coll)), destinations(std::move(dests)),
        done(std::move(d)) {}

  void start() {
    out.name = collection;
    auto self = shared_from_this();
    rc.list_locations(collection, [self](auto r) {
      if (!r.ok()) return self->done(r.error());
      self->locations = std::move(r.value());
      self->rc.list_files(self->collection, [self](auto r2) {
        if (!r2.ok()) return self->done(r2.error());
        self->names = std::move(r2.value());
        std::sort(self->names.begin(), self->names.end());
        self->next_file();
      });
    });
  }

  void next_file() {
    if (next >= names.size()) return done(std::move(out));
    const std::string name = names[next];
    auto self = shared_from_this();
    rc.lookup_logical_file(collection, name, [self, name](auto r) {
      CampaignFile f;
      f.dataset = self->collection;
      f.name = name;
      if (r.ok()) f.size = r.value().size;
      for (const auto& loc : self->locations) {
        if (std::find(loc.files.begin(), loc.files.end(), name) !=
            loc.files.end()) {
          f.sources.push_back(loc.url_for(name));
        }
      }
      if (!self->destinations.empty()) {
        f.destination_site =
            self->destinations[self->next % self->destinations.size()];
      }
      self->out.files.push_back(std::move(f));
      ++self->next;
      self->next_file();
    });
  }
};

}  // namespace

void load_catalog_from_replica(
    replica::ReplicaCatalog& catalog, const std::string& collection,
    std::vector<std::string> destination_sites,
    std::function<void(common::Result<CampaignCatalog>)> done) {
  auto load = std::make_shared<ReplicaLoad>(
      catalog, collection, std::move(destination_sites), std::move(done));
  load->start();
}

}  // namespace esg::campaign
