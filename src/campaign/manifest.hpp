// Campaign manifest: durable record of a replication campaign's progress.
//
// The run manifest (obs/manifest.hpp) pins down what a *simulation run* was;
// the campaign manifest pins down what a *campaign* has accomplished so far
// — which files landed where, with what checksum, at what cost.  It is the
// resume point: a half-finished campaign reloaded from its manifest skips
// every completed (file, site) pair, transfers nothing twice, and converges
// to the same integrity report an uninterrupted run produces.
//
// Determinism contract: two same-seed runs serialize byte-identical
// manifests, and the integrity fingerprint — FNV-1a over the sorted
// completed set (dataset, file, site, bytes, checksum) — is invariant
// under interruption/resume because it excludes timings and attempt counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace esg::campaign {

struct CompletedTransfer {
  std::string dataset;
  std::string file;
  std::string site;  // destination
  common::Bytes bytes = 0;
  std::uint64_t checksum = 0;  // landed payload fnv1a64
  int attempts = 1;
  common::SimTime finished_at = 0;
};

struct PermanentFailure {
  std::string dataset;
  std::string file;
  std::string site;
  std::string error;
  int attempts = 0;
};

/// End-of-run accounting.  `fingerprint()` and `dataset_checksums` are
/// content-only (resume-invariant); the counters tell the operational story
/// of this particular run sequence (retries, resumed files, ...).
struct IntegrityReport {
  std::uint64_t catalog_fingerprint = 0;
  std::uint64_t files_planned = 0;
  std::uint64_t files_moved = 0;    // completed over the campaign's lifetime
  std::uint64_t files_resumed = 0;  // already complete when this run planned
  std::uint64_t files_failed = 0;   // permanent failures
  common::Bytes bytes_moved = 0;
  std::uint64_t retries = 0;  // attempts beyond the first, incl. failures
  /// Dataset-level checksum pipeline: per dataset, fnv1a64 folded over the
  /// (file, site, checksum) triples in sorted order — order-invariant, so
  /// interrupted and uninterrupted campaigns agree.  Sorted by dataset.
  std::vector<std::pair<std::string, std::uint64_t>> dataset_checksums;
  /// Content fingerprint over the sorted completed set.
  std::uint64_t fingerprint = 0;
};

class CampaignManifest {
 public:
  std::string campaign;
  std::uint64_t seed = 0;
  std::uint64_t catalog_fingerprint = 0;
  std::vector<CompletedTransfer> completed;  // completion order
  std::vector<PermanentFailure> failed;

  bool is_complete(const std::string& file, const std::string& site) const;
  /// Record a completion (keeps the lookup index in step).  Duplicate
  /// (file, site) records are ignored — resume safety.
  void record(CompletedTransfer t);
  void record_failure(PermanentFailure f);

  std::size_t completed_count() const { return completed.size(); }

  /// Recompute the report from the records (plus `files_planned` /
  /// `files_resumed` supplied by the driver, which knows the plan).
  IntegrityReport report(std::uint64_t files_planned,
                         std::uint64_t files_resumed) const;

  /// Deterministic serialization: same records ⇒ identical bytes.
  std::string to_json() const;
  static common::Result<CampaignManifest> from_json(std::string_view text);

  bool save(const std::string& path) const;
  static common::Result<CampaignManifest> load(const std::string& path);

 private:
  // (site '\n' file) → index into completed.
  std::map<std::string, std::size_t> index_;
};

}  // namespace esg::campaign
