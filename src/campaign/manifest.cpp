#include "campaign/manifest.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/bytebuf.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"

namespace esg::campaign {

using common::Errc;
using common::Error;
using common::Result;

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string key_of(const std::string& site, const std::string& file) {
  return site + '\n' + file;
}

}  // namespace

bool CampaignManifest::is_complete(const std::string& file,
                                   const std::string& site) const {
  return index_.count(key_of(site, file)) != 0;
}

void CampaignManifest::record(CompletedTransfer t) {
  auto [it, inserted] = index_.emplace(key_of(t.site, t.file),
                                       completed.size());
  if (!inserted) return;  // already recorded (resume overlap)
  completed.push_back(std::move(t));
}

void CampaignManifest::record_failure(PermanentFailure f) {
  failed.push_back(std::move(f));
}

IntegrityReport CampaignManifest::report(std::uint64_t files_planned,
                                         std::uint64_t files_resumed) const {
  IntegrityReport r;
  r.catalog_fingerprint = catalog_fingerprint;
  r.files_planned = files_planned;
  r.files_resumed = files_resumed;
  r.files_moved = completed.size();
  r.files_failed = failed.size();
  for (const auto& t : completed) {
    r.bytes_moved += t.bytes;
    r.retries += static_cast<std::uint64_t>(std::max(0, t.attempts - 1));
  }
  for (const auto& f : failed) {
    r.retries += static_cast<std::uint64_t>(std::max(0, f.attempts - 1));
  }
  // Content view, sorted so the fold is order-invariant: an interrupted
  // campaign records the same completions in a different order but must
  // produce the same dataset checksums and fingerprint.
  std::vector<const CompletedTransfer*> sorted;
  sorted.reserve(completed.size());
  for (const auto& t : completed) sorted.push_back(&t);
  std::sort(sorted.begin(), sorted.end(),
            [](const CompletedTransfer* a, const CompletedTransfer* b) {
              if (a->dataset != b->dataset) return a->dataset < b->dataset;
              if (a->file != b->file) return a->file < b->file;
              return a->site < b->site;
            });
  std::string all;
  std::string ds_buf;
  const std::string* current = nullptr;
  auto flush = [&] {
    if (current != nullptr) {
      r.dataset_checksums.emplace_back(*current, common::fnv1a64(ds_buf));
    }
    ds_buf.clear();
  };
  for (const CompletedTransfer* t : sorted) {
    if (current == nullptr || t->dataset != *current) {
      flush();
      current = &t->dataset;
    }
    const std::string line = t->dataset + '\0' + t->file + '\0' + t->site +
                             '\0' + std::to_string(t->bytes) + '\0' +
                             hex64(t->checksum) + '\n';
    ds_buf += line;
    all += line;
  }
  flush();
  r.fingerprint = common::fnv1a64(all);
  return r;
}

std::string CampaignManifest::to_json() const {
  std::string out = "{\n";
  out += "\"campaign\":\"" + obs::json_escape(campaign) + "\",\n";
  out += "\"seed\":" + u64(seed) + ",\n";
  out += "\"catalog_fingerprint\":\"" + hex64(catalog_fingerprint) + "\",\n";
  out += "\"completed\":[";
  for (std::size_t i = 0; i < completed.size(); ++i) {
    const auto& t = completed[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"dataset\":\"" + obs::json_escape(t.dataset) + "\",\"file\":\"" +
           obs::json_escape(t.file) + "\",\"site\":\"" +
           obs::json_escape(t.site) + "\",\"bytes\":" + u64(t.bytes) +
           ",\"checksum\":\"" + hex64(t.checksum) +
           "\",\"attempts\":" + std::to_string(t.attempts) +
           ",\"finished_at_ns\":" + u64(static_cast<std::uint64_t>(
                                        t.finished_at)) +
           "}";
  }
  out += "\n],\n\"failed\":[";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    const auto& f = failed[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"dataset\":\"" + obs::json_escape(f.dataset) + "\",\"file\":\"" +
           obs::json_escape(f.file) + "\",\"site\":\"" +
           obs::json_escape(f.site) + "\",\"error\":\"" +
           obs::json_escape(f.error) +
           "\",\"attempts\":" + std::to_string(f.attempts) + "}";
  }
  out += "\n]\n}\n";
  return out;
}

Result<CampaignManifest> CampaignManifest::from_json(std::string_view text) {
  auto parsed = obs::json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const obs::json::Value& v = parsed.value();
  if (!v.is_object()) {
    return Error{Errc::invalid_argument, "campaign manifest: not an object"};
  }
  CampaignManifest m;
  m.campaign = v.string_or("campaign", "");
  m.seed = static_cast<std::uint64_t>(v.number_or("seed", 0));
  m.catalog_fingerprint =
      parse_hex64(v.string_or("catalog_fingerprint", "0"));
  if (const auto* arr = v.find("completed"); arr != nullptr) {
    for (const auto& e : arr->as_array()) {
      CompletedTransfer t;
      t.dataset = e.string_or("dataset", "");
      t.file = e.string_or("file", "");
      t.site = e.string_or("site", "");
      t.bytes = static_cast<common::Bytes>(e.number_or("bytes", 0));
      t.checksum = parse_hex64(e.string_or("checksum", "0"));
      t.attempts = static_cast<int>(e.number_or("attempts", 1));
      t.finished_at =
          static_cast<common::SimTime>(e.number_or("finished_at_ns", 0));
      m.record(std::move(t));
    }
  }
  if (const auto* arr = v.find("failed"); arr != nullptr) {
    for (const auto& e : arr->as_array()) {
      PermanentFailure f;
      f.dataset = e.string_or("dataset", "");
      f.file = e.string_or("file", "");
      f.site = e.string_or("site", "");
      f.error = e.string_or("error", "");
      f.attempts = static_cast<int>(e.number_or("attempts", 0));
      m.record_failure(std::move(f));
    }
  }
  return m;
}

bool CampaignManifest::save(const std::string& path) const {
  return obs::write_file(path, to_json());
}

Result<CampaignManifest> CampaignManifest::load(const std::string& path) {
  auto text = obs::read_file(path);
  if (!text.ok()) return text.error();
  return from_json(text.value());
}

}  // namespace esg::campaign
