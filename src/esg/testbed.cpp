#include "esg/testbed.hpp"

#include "climate/subset.hpp"

namespace esg::esg {

using common::Errc;
using common::Error;
using common::Status;
using common::kMillisecond;
using common::kSecond;

EsgTestbed::EsgTestbed(TestbedConfig config) : config_(config) {
  build_topology();
  build_services();
}

void EsgTestbed::build_topology() {
  for (const char* site :
       {"dcc", "la", "berkeley", "llnl", "isi", "sdsc", "anl", "ncar"}) {
    net_.add_site(site);
  }
  // SC'2000-era connectivity (Fig 7): HSCC Dallas->LA, NTON LA->Berkeley,
  // OC-12 spurs, Abilene to the midwest with light loss.
  net_.add_link({.name = "hscc", .site_a = "dcc", .site_b = "la",
                 .capacity = common::gbps(2.5),
                 .latency = 10 * kMillisecond});
  net_.add_link({.name = "nton", .site_a = "la", .site_b = "berkeley",
                 .capacity = common::gbps(2.5), .latency = 8 * kMillisecond});
  net_.add_link({.name = "isi-uplink", .site_a = "isi", .site_b = "la",
                 .capacity = common::gbps(1), .latency = kMillisecond});
  net_.add_link({.name = "sdsc-uplink", .site_a = "sdsc", .site_b = "la",
                 .capacity = common::mbps(622), .latency = 3 * kMillisecond});
  net_.add_link({.name = "llnl-uplink", .site_a = "llnl",
                 .site_b = "berkeley", .capacity = common::mbps(622),
                 .latency = 2 * kMillisecond});
  net_.add_link({.name = "abilene", .site_a = "dcc", .site_b = "anl",
                 .capacity = common::mbps(622), .latency = 25 * kMillisecond,
                 .loss = config_.abilene_loss});
  net_.add_link({.name = "anl-ncar", .site_a = "anl", .site_b = "ncar",
                 .capacity = common::mbps(622), .latency = 15 * kMillisecond});

  client_host_ = net_.add_host({.name = "vcdat.dcc.org", .site = "dcc",
                                .nic_rate = common::gbps(1),
                                .cpu_rate = common::gbps(1),
                                .disk_rate = common::mbps(800)});
  catalog_host_ = net_.add_host({.name = "ldap.mcs.anl.gov", .site = "anl"});
  metadata_host_ = net_.add_host({.name = "cdms.llnl.gov", .site = "llnl"});
  mds_host_ = net_.add_host({.name = "mds.isi.edu", .site = "isi"});
}

gridftp::GridFtpServer* EsgTestbed::add_data_server(
    const std::string& host_name, const std::string& site) {
  auto* host = net_.add_host({.name = host_name, .site = site,
                              .nic_rate = common::gbps(1),
                              .cpu_rate = common::mbps(750),
                              .disk_rate = common::mbps(500)});
  security::GridMapFile gridmap;
  gridmap.add("/O=Grid/CN=esg-user", "esg");
  auto server = std::make_unique<gridftp::GridFtpServer>(
      orb_, *host, std::make_shared<storage::HostStorage>(), ca_,
      std::move(gridmap));
  // ESG-II server-side processing: extraction/subsetting local to the data
  // (paper §9, future work — implemented here).
  server->register_eret_module(
      climate::kNcxSubsetModule,
      [](const storage::FileObject& f, const std::string& p) {
        return climate::ncx_subset_module(f, p);
      });
  auto* ptr = server.get();
  registry_.add(ptr);
  servers_[host_name] = std::move(server);
  data_hosts_.push_back(host_name);
  return ptr;
}

void EsgTestbed::build_services() {
  add_data_server("pdsf.lbl.gov", "berkeley");
  auto* clipper = add_data_server("clipper.lbl.gov", "berkeley");
  add_data_server("sprite.llnl.gov", "llnl");
  add_data_server("jupiter.isi.edu", "isi");
  add_data_server("srb.sdsc.edu", "sdsc");
  add_data_server("pitcairn.mcs.anl.gov", "anl");
  add_data_server("dataportal.ncar.edu", "ncar");

  catalog_backing_ = std::make_shared<directory::DirectoryServer>();
  catalog_service_ = std::make_unique<directory::DirectoryService>(
      orb_, *catalog_host_, catalog_backing_);
  metadata_backing_ = std::make_shared<directory::DirectoryServer>();
  metadata_service_ = std::make_unique<directory::DirectoryService>(
      orb_, *metadata_host_, metadata_backing_);
  mds_service_ = std::make_unique<mds::MdsService>(orb_, *mds_host_);

  hrm_ = std::make_unique<hrm::HrmService>(
      orb_, clipper->host(), clipper->storage_ptr(), config_.hrm);

  security::CredentialWallet wallet;
  wallet.set_identity(
      ca_.issue("/O=Grid/CN=esg-user", 0, 100000 * common::kHour));
  ftp_client_ = std::make_unique<gridftp::GridFtpClient>(
      orb_, *client_host_, std::make_shared<storage::HostStorage>(),
      std::move(wallet), registry_);

  monitor_.bind_registry(&sim_.metrics());
  rm_ = std::make_unique<rm::RequestManager>(
      orb_, *client_host_, make_replica_catalog(), make_mds_client(),
      *ftp_client_, &monitor_);

  model_ = std::make_unique<climate::ClimateModel>(
      climate::ModelConfig{config_.grid, config_.seed, 1995});
}

gridftp::GridFtpServer* EsgTestbed::server(const std::string& host_name) {
  auto it = servers_.find(host_name);
  return it == servers_.end() ? nullptr : it->second.get();
}

replica::ReplicaCatalog EsgTestbed::make_replica_catalog() {
  return replica::ReplicaCatalog(
      directory::DirectoryClient(orb_, *client_host_, *catalog_host_), "esg");
}

metadata::MetadataCatalog EsgTestbed::make_metadata_catalog() {
  return metadata::MetadataCatalog(
      directory::DirectoryClient(orb_, *client_host_, *metadata_host_));
}

mds::MdsClient EsgTestbed::make_mds_client() {
  return mds::MdsClient(orb_, *client_host_, *mds_host_);
}

bool EsgTestbed::run_until_flag(const bool& flag,
                                common::SimDuration limit) {
  const auto deadline = sim_.now() + limit;
  while (!flag && sim_.now() < deadline && sim_.pending_events() > 0) {
    sim_.run_while_pending([&] { return flag || sim_.now() >= deadline; });
    if (flag) break;
    if (sim_.pending_events() == 0) break;
  }
  return flag;
}

Status EsgTestbed::publish_dataset(const DatasetSpec& spec) {
  if (spec.replica_hosts.empty()) {
    return Error{Errc::invalid_argument, "dataset needs a primary replica"};
  }
  const std::string collection =
      spec.collection.empty() ? spec.name : spec.collection;

  metadata::DatasetInfo info;
  info.name = spec.name;
  info.model = "esg-synthetic-v1";
  info.institution = "LLNL/PCMDI";
  info.collection = collection;
  info.start_month = spec.start_month;
  info.n_months = spec.n_months;
  info.months_per_file = spec.months_per_file;
  for (const auto& v : climate::ClimateModel::variables()) {
    info.variables.push_back(metadata::VariableDesc{
        v, climate::ClimateModel::units_of(v), "synthetic " + v});
  }

  // Generate chunk files and place content bytes per the replica layout.
  std::vector<std::pair<std::string, common::Bytes>> files;
  std::map<std::string, std::vector<std::string>> files_at_host;
  const auto n_hosts = spec.replica_hosts.size();
  for (int c = 0; c < info.chunk_count(); ++c) {
    const int m0 = spec.start_month + c * spec.months_per_file;
    const int count = std::min(spec.months_per_file,
                               spec.start_month + spec.n_months - m0);
    auto bytes = model_->write_chunk(m0, count);
    const std::string filename = info.file_name(c);
    files.emplace_back(filename, static_cast<common::Bytes>(bytes->size()));

    std::vector<std::string> holders;
    if (spec.layout == ReplicaLayout::full_copies || n_hosts <= 1) {
      holders = spec.replica_hosts;
    } else {
      // Two holders per chunk so every file still has a replica choice.
      const auto uc = static_cast<std::size_t>(c);
      holders.push_back(spec.replica_hosts[uc % n_hosts]);
      holders.push_back(spec.replica_hosts[(uc + 1) % n_hosts]);
    }
    for (const auto& host : holders) {
      auto* srv = server(host);
      if (srv == nullptr) {
        return Error{Errc::not_found, "unknown replica host " + host};
      }
      auto st = srv->storage().put(storage::FileObject::with_content(
          collection + "/" + filename, bytes));
      if (!st.ok()) return st;
      files_at_host[host].push_back(filename);
    }
    if (spec.archive_on_tape) {
      hrm_->archive(storage::FileObject::with_content(
          "archive/" + collection + "/" + filename, bytes));
    }
  }

  // Register in both catalogs.
  auto rc = make_replica_catalog();
  auto mc = make_metadata_catalog();
  bool failed = false;
  Status failure = common::ok_status();
  int remaining = 0;
  bool all_issued = false;
  auto step = [&](Status st) {
    if (!st.ok() && !failed) {
      failed = true;
      failure = st;
    }
    --remaining;
  };

  ++remaining;
  rc.create_catalog(step);
  ++remaining;
  rc.create_collection(collection, step);
  for (const auto& [filename, size] : files) {
    ++remaining;
    rc.register_logical_file(collection, {filename, size}, step);
  }
  for (std::size_t i = 0; i < spec.replica_hosts.size(); ++i) {
    replica::LocationInfo loc;
    loc.name = spec.replica_hosts[i];
    loc.hostname = spec.replica_hosts[i];
    loc.path = collection;
    loc.files = files_at_host[spec.replica_hosts[i]];  // partial if scattered
    ++remaining;
    rc.register_location(collection, loc, step);
  }
  if (spec.archive_on_tape) {
    replica::LocationInfo tape_loc;
    tape_loc.name = "lbnl-hpss";
    tape_loc.hostname = "clipper.lbl.gov";
    tape_loc.path = "archive/" + collection;
    tape_loc.storage_type = "mss";
    for (const auto& [filename, size] : files) {
      tape_loc.files.push_back(filename);
    }
    ++remaining;
    rc.register_location(collection, tape_loc, step);
  }
  ++remaining;
  mc.publish_dataset(info, step);
  all_issued = true;
  (void)all_issued;

  // Drive the simulation until all registrations acknowledge.
  sim_.run_while_pending([&] { return remaining == 0 || failed; });
  if (failed) return failure;
  if (remaining != 0) {
    return Error{Errc::internal, "catalog registration stalled"};
  }
  return common::ok_status();
}

void EsgTestbed::start_sensors(int rounds) {
  if (sensors_.empty()) {
    std::uint64_t seed = config_.seed;
    for (const auto& host_name : data_hosts_) {
      auto* src = net_.find_host(host_name);
      auto publisher = std::make_shared<mds::MdsClient>(orb_, *src, *mds_host_);
      sensor_publishers_.push_back(publisher);
      nws::SensorConfig cfg;
      cfg.period = config_.sensor_period;
      cfg.seed = ++seed;
      sensors_.push_back(std::make_unique<nws::NwsSensor>(
          net_, *src, *client_host_, cfg,
          [this, publisher](const std::string& s, const std::string& d,
                            common::Rate bw, common::SimDuration lat,
                            const nws::Measurement& m) {
            mds::NetworkRecord rec;
            rec.src_host = s;
            rec.dst_host = d;
            rec.bandwidth = bw;
            rec.latency = lat;
            rec.updated = sim_.now();
            rec.probe_failed = m.probe_failed;
            publisher->publish_network(rec, [](Status) {});
          }));
    }
  }
  if (rounds > 0) {
    sim_.run_until(sim_.now() + rounds * config_.sensor_period + kSecond);
  }
}

void EsgTestbed::stop_sensors() {
  for (auto& s : sensors_) s->stop();
}

}  // namespace esg::esg
