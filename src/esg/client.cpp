#include "esg/client.hpp"

#include <algorithm>

namespace esg::esg {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;

EsgClient::EsgClient(EsgTestbed& testbed)
    : testbed_(testbed), metadata_(testbed.make_metadata_catalog()) {}

Result<climate::Field> EsgClient::assemble(const AnalysisRequest& request,
                                           const rm::RequestResult& transfer) {
  climate::Field out;
  bool first = true;
  // transfer.files preserves submission order == ascending month order.
  for (const auto& outcome : transfer.files) {
    auto file = testbed_.ftp_client().local_storage().get(outcome.local_name);
    if (!file) return file.error();
    if (!file->content) {
      return Error{Errc::internal,
                   "fetched file has no content: " + outcome.local_name};
    }
    auto reader = ncformat::NcxReader::open(file->content);
    if (!reader) return reader.error();
    auto nlat = reader->dimension_size("lat");
    auto nlon = reader->dimension_size("lon");
    auto ntime = reader->dimension_size("time");
    if (!nlat || !nlon || !ntime) {
      return Error{Errc::protocol_error, "bad chunk dims"};
    }
    const auto& gattrs = reader->global_attrs();
    const int month0 =
        gattrs.count("month0") ? std::atoi(gattrs.at("month0").c_str()) : 0;

    // Clip this file's coverage to the request window.
    const int lo = std::max(month0, request.month_start);
    const int hi = std::min(month0 + static_cast<int>(*ntime),
                            request.month_end);
    if (lo >= hi) continue;
    const auto t0 = static_cast<std::uint32_t>(lo - month0);
    const auto tc = static_cast<std::uint32_t>(hi - lo);
    auto slab = reader->read_slab(request.variable, {t0, 0, 0},
                                  {tc, *nlat, *nlon});
    if (!slab) return slab.error();

    climate::GridSpec grid{static_cast<int>(*nlat), static_cast<int>(*nlon)};
    climate::Field chunk(grid, static_cast<int>(tc), request.variable,
                         climate::ClimateModel::units_of(request.variable));
    chunk.data() = std::move(*slab);
    if (first) {
      out = std::move(chunk);
      first = false;
    } else {
      if (auto st = out.append_time(chunk); !st.ok()) return st.error();
    }
  }
  if (first) {
    return Error{Errc::not_found, "no months assembled"};
  }
  return out;
}

void EsgClient::analyze(const AnalysisRequest& request,
                        std::function<void(AnalysisResult)> done) {
  auto done_shared =
      std::make_shared<std::function<void(AnalysisResult)>>(std::move(done));
  // Step 1: CDMS translation — attributes to logical file names.
  metadata_.files_for(
      request.dataset, request.variable, request.month_start,
      request.month_end,
      [this, request, done_shared](
          Result<std::vector<metadata::LogicalFileRef>> refs) {
        if (!refs) {
          AnalysisResult r;
          r.status = Status(refs.error());
          return (*done_shared)(std::move(r));
        }
        // Step 2: hand the logical files to the request manager — whole
        // chunks, or per-chunk server-side subsets in ESG-II mode.
        std::vector<rm::FileRequest> wanted;
        wanted.reserve(refs->size());
        for (const auto& ref : *refs) {
          rm::FileRequest fr{ref.collection, ref.filename, "", ""};
          if (request.server_side_subset) {
            climate::SubsetSpec spec;
            spec.variable = request.variable;
            spec.months = std::make_pair(
                std::max(ref.start_month, request.month_start),
                std::min(ref.end_month, request.month_end));
            spec.lat = request.lat_box;
            spec.lon = request.lon_box;
            fr.eret_module = climate::kNcxSubsetModule;
            fr.eret_params = spec.to_params();
          }
          wanted.push_back(std::move(fr));
        }
        testbed_.request_manager().submit(
            std::move(wanted), request.rm_options,
            [this, request, done_shared](rm::RequestResult rr) {
              AnalysisResult result;
              result.transfer = std::move(rr);
              if (!result.transfer.status.ok()) {
                result.status = result.transfer.status;
                return (*done_shared)(std::move(result));
              }
              // Step 3: client-side analysis, as the paper's CDAT does.
              auto field = assemble(request, result.transfer);
              if (!field) {
                result.status = Status(field.error());
                return (*done_shared)(std::move(result));
              }
              result.field = std::move(*field);
              result.mean = climate::time_mean(result.field);
              result.stats = climate::field_stats(result.mean);
              (*done_shared)(std::move(result));
            });
      });
}

AnalysisResult EsgClient::analyze_blocking(const AnalysisRequest& request) {
  AnalysisResult result;
  bool finished = false;
  analyze(request, [&](AnalysisResult r) {
    result = std::move(r);
    finished = true;
  });
  testbed_.run_until_flag(finished);
  if (!finished) {
    result.status = Error{Errc::timed_out, "analysis did not complete"};
  }
  return result;
}

}  // namespace esg::esg
