// The CDAT-shaped client facade (paper §3): attribute-based selection,
// translation to logical files, transfer via the request manager, then
// client-side analysis and rendering.
//
// With `server_side_subset` the client requests the ESG-II style
// extraction (paper §9 future work): each chunk is subset at the server —
// one variable, the needed months, optionally a lat/lon box — so only the
// region of interest crosses the wide-area network.
#pragma once

#include <functional>
#include <optional>

#include "climate/analysis.hpp"
#include "climate/render.hpp"
#include "climate/subset.hpp"
#include "esg/testbed.hpp"
#include "ncformat/ncx.hpp"

namespace esg::esg {

struct AnalysisRequest {
  std::string dataset;
  std::string variable;
  int month_start = 0;
  int month_end = 0;  // exclusive
  rm::RequestOptions rm_options;

  /// ESG-II mode: subset at the data (variable + months + optional box)
  /// before transfer instead of moving whole chunk files.
  bool server_side_subset = false;
  std::optional<std::pair<double, double>> lat_box;  // degrees, [lo, hi]
  std::optional<std::pair<double, double>> lon_box;
};

struct AnalysisResult {
  common::Status status = common::ok_status();
  climate::Field field;       // the requested months, concatenated
  climate::Field mean;        // time mean over the request window
  climate::FieldStats stats;  // of the mean field
  rm::RequestResult transfer; // what the request manager did
};

class EsgClient {
 public:
  explicit EsgClient(EsgTestbed& testbed);

  /// Full pipeline, asynchronous: metadata query -> RM transfer -> ncx
  /// assembly -> time mean + stats.
  void analyze(const AnalysisRequest& request,
               std::function<void(AnalysisResult)> done);

  /// Convenience: run the simulation until the analysis completes.
  AnalysisResult analyze_blocking(const AnalysisRequest& request);

  metadata::MetadataCatalog& metadata() { return metadata_; }

 private:
  /// Assemble the requested month range from the fetched local files,
  /// using each file's own coordinates/coverage (works for whole chunks
  /// and server-side subsets alike).
  common::Result<climate::Field> assemble(const AnalysisRequest& request,
                                          const rm::RequestResult& transfer);

  EsgTestbed& testbed_;
  metadata::MetadataCatalog metadata_;
};

}  // namespace esg::esg
