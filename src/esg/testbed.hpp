// The Earth System Grid testbed — the emulator's rendition of Fig 1/Fig 7.
//
// Sites and hosts:
//   dcc       vcdat.dcc.org          the scientist's desktop (VCDAT + RM)
//   berkeley  pdsf.lbl.gov           disk replica server
//             clipper.lbl.gov        HPSS + HRM-fronted mass storage
//   llnl      sprite.llnl.gov        PCMDI data server (primary copies)
//             cdms.llnl.gov          CDMS metadata catalog (LDAP)
//   isi       jupiter.isi.edu        disk replica server
//             mds.isi.edu            MDS information service
//   sdsc      srb.sdsc.edu           disk replica server
//   anl       pitcairn.mcs.anl.gov   disk replica server
//             ldap.mcs.anl.gov       Globus replica catalog (LDAP)
//   ncar      dataportal.ncar.edu    disk replica server
//
// WAN links mirror the SC'2000 connectivity: HSCC from Dallas to the LA
// area, NTON up the coast at OC-48, OC-12 spurs, and an Abilene path to
// ANL/NCAR with light loss (the Fig 8 "commodity internet" flavor).
//
// The testbed wires every service of the prototype: GridFTP servers with
// GSI, the replica catalog, the CDMS metadata catalog, MDS, NWS sensors
// publishing into MDS, the HRM in front of a tape library, and the request
// manager + Fig 4 monitor on the client host.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "climate/model.hpp"
#include "directory/service.hpp"
#include "gridftp/client.hpp"
#include "hrm/hrm.hpp"
#include "mds/mds.hpp"
#include "metadata/catalog.hpp"
#include "nws/sensor.hpp"
#include "replica/catalog.hpp"
#include "rm/request_manager.hpp"

namespace esg::esg {

struct TestbedConfig {
  std::uint64_t seed = 2001;
  climate::GridSpec grid{36, 72};
  common::SimDuration sensor_period = 60 * common::kSecond;
  hrm::HrmConfig hrm;
  /// Loss on the Abilene path (drives the parallel-stream benefit there).
  double abilene_loss = 5e-5;
};

/// How a dataset's chunk files are placed across the replica hosts.
enum class ReplicaLayout {
  /// Every host holds every chunk (complete copies).
  full_copies,
  /// Chunk c lives at hosts c % N and (c+1) % N — every location is a
  /// *partial* collection (Fig 6's jupiter.isi.edu case) and a multi-chunk
  /// request draws from several sites concurrently (paper §4: "maximize
  /// the number of different sites from which files are obtained").
  scattered,
};

/// Which sites replicate a dataset and whether it is archived on tape.
struct DatasetSpec {
  std::string name = "pcmdi-ocean-r1";
  std::string collection;  // defaults to the dataset name
  int start_month = 36;    // January 1998 for base_year 1995
  int n_months = 24;
  int months_per_file = 6;
  /// Hosts holding disk replicas; the first is the primary (complete) copy
  /// under full_copies.
  std::vector<std::string> replica_hosts = {"sprite.llnl.gov",
                                            "pdsf.lbl.gov"};
  ReplicaLayout layout = ReplicaLayout::full_copies;
  /// Also archive every chunk on the clipper.lbl.gov tape system and
  /// register an "mss" location for it.
  bool archive_on_tape = false;
};

class EsgTestbed {
 public:
  explicit EsgTestbed(TestbedConfig config = {});

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return net_; }
  rpc::Orb& orb() { return orb_; }

  net::Host* client_host() { return client_host_; }
  gridftp::GridFtpClient& ftp_client() { return *ftp_client_; }
  rm::RequestManager& request_manager() { return *rm_; }
  rm::TransferMonitor& monitor() { return monitor_; }
  hrm::HrmService& hrm() { return *hrm_; }
  climate::ClimateModel& model() { return *model_; }
  gridftp::GridFtpServer* server(const std::string& host_name);
  const std::vector<std::string>& data_hosts() const { return data_hosts_; }

  replica::ReplicaCatalog make_replica_catalog();
  metadata::MetadataCatalog make_metadata_catalog();
  mds::MdsClient make_mds_client();

  /// Generate the dataset with the synthetic model, place content at the
  /// replica hosts, and register everything in both catalogs.  Drives the
  /// simulation until registration completes.
  common::Status publish_dataset(const DatasetSpec& spec);

  /// Start NWS sensors (every data host -> client) and run the simulation
  /// for `rounds` periods so forecasts are warm.
  void start_sensors(int rounds = 3);
  void stop_sensors();

  /// Drive the simulation until `flag` turns true or `limit` elapses.
  bool run_until_flag(const bool& flag,
                      common::SimDuration limit = 4 * common::kHour);

 private:
  void build_topology();
  void build_services();
  gridftp::GridFtpServer* add_data_server(const std::string& host_name,
                                          const std::string& site);

  TestbedConfig config_;
  sim::Simulation sim_;
  net::Network net_{sim_};
  rpc::Orb orb_{net_};
  security::CertificateAuthority ca_{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry_;
  rm::TransferMonitor monitor_;

  net::Host* client_host_ = nullptr;
  net::Host* catalog_host_ = nullptr;
  net::Host* metadata_host_ = nullptr;
  net::Host* mds_host_ = nullptr;

  std::map<std::string, std::unique_ptr<gridftp::GridFtpServer>> servers_;
  std::vector<std::string> data_hosts_;
  std::shared_ptr<directory::DirectoryServer> catalog_backing_;
  std::unique_ptr<directory::DirectoryService> catalog_service_;
  std::shared_ptr<directory::DirectoryServer> metadata_backing_;
  std::unique_ptr<directory::DirectoryService> metadata_service_;
  std::unique_ptr<mds::MdsService> mds_service_;
  std::unique_ptr<hrm::HrmService> hrm_;
  std::unique_ptr<gridftp::GridFtpClient> ftp_client_;
  std::unique_ptr<rm::RequestManager> rm_;
  std::unique_ptr<climate::ClimateModel> model_;
  std::vector<std::unique_ptr<nws::NwsSensor>> sensors_;
  std::vector<std::shared_ptr<mds::MdsClient>> sensor_publishers_;
};

}  // namespace esg::esg
