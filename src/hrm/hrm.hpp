// Hierarchical Resource Manager (paper §4: "HRM is a component that sits in
// front of the MSS (in this case an HPSS system at LBNL) and stages files
// from the MSS to its local disk cache.  After this action is complete, the
// RM uses GridFTP to move the file securely over the wide-area network.").
//
// The HRM owns a tape library and a pinned-LRU disk cache that mirrors into
// the host's GridFTP-served namespace: once STAGE replies, the file is
// fetchable with an ordinary GridFTP GET from the same host.  RELEASE drops
// the pin so the cache may evict.  Duplicate concurrent STAGEs of one file
// coalesce onto a single tape read.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/orb.hpp"
#include "storage/storage.hpp"
#include "storage/tape.hpp"

namespace esg::hrm {

struct HrmConfig {
  common::Bytes cache_capacity = 100 * common::kGB;
  storage::TapeConfig tape;
};

class HrmService {
 public:
  /// `served_storage` is the namespace the co-located GridFTP server reads;
  /// staged files appear there and evicted files vanish from it.
  HrmService(rpc::Orb& orb, const net::Host& host,
             std::shared_ptr<storage::HostStorage> served_storage,
             HrmConfig config);
  ~HrmService();

  storage::TapeLibrary& tape() { return *tape_; }
  storage::DiskCache& cache() { return cache_; }
  const net::Host& host() const { return host_; }

  /// Archive a file onto tape (dataset publication path).
  void archive(storage::FileObject file) { tape_->store(std::move(file)); }

  /// Crash the HRM process: the stage-queue state (waiter lists) is lost —
  /// every pending stage fails with unavailable — and the "hrm" service
  /// stops answering until restart().  The tape library and disk cache
  /// (hardware / on-disk state) survive.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

  // Local (non-RPC) API, used in-process and by the service handlers.
  void stage(const std::string& name,
             std::function<void(common::Result<common::Bytes>)> done);
  common::Status release(const std::string& name);
  /// "cached", "staging", "archived", or "absent".
  std::string status(const std::string& name) const;

 private:
  void dispatch(const std::string& method, rpc::Payload request,
                rpc::Reply reply);
  void finish_stage(const std::string& name,
                    common::Result<storage::FileObject> staged);

  rpc::Orb& orb_;
  const net::Host& host_;
  std::shared_ptr<storage::HostStorage> served_;
  std::unique_ptr<storage::TapeLibrary> tape_;
  storage::DiskCache cache_;
  // Waiters per in-flight stage (coalescing).
  std::map<std::string,
           std::vector<std::function<void(common::Result<common::Bytes>)>>>
      staging_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  bool crashed_ = false;
  // Registry mirrors (owned by the simulation's MetricsRegistry).
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Histogram* stage_wait_ = nullptr;  // hrm_stage_wait_seconds
  obs::Gauge* tape_depth_ = nullptr;      // hrm_tape_queue_depth
};

/// RPC client for a remote HRM.
class HrmClient {
 public:
  HrmClient(rpc::Orb& orb, const net::Host& from, const net::Host& hrm_host);

  /// Ask the HRM to stage a file; the reply arrives when it is on disk and
  /// pinned.  `timeout` must cover queueing + mount + read.
  void stage(const std::string& name,
             std::function<void(common::Result<common::Bytes>)> done,
             common::SimDuration timeout = 30 * common::kMinute);

  /// As above, but records an `hrm.stage.rpc` span on the caller's trace
  /// track covering the whole RPC (tape mount + seek + read on a miss) —
  /// the profiler's stage category is measured from these spans.
  void stage(const std::string& name, obs::TrackId track,
             std::function<void(common::Result<common::Bytes>)> done,
             common::SimDuration timeout = 30 * common::kMinute);

  void release(const std::string& name,
               std::function<void(common::Status)> done);

  void status(const std::string& name,
              std::function<void(common::Result<std::string>)> done);

 private:
  rpc::Orb& orb_;
  const net::Host& from_;
  const net::Host& hrm_;
};

}  // namespace esg::hrm
