#include "hrm/hrm.hpp"

#include "common/bytebuf.hpp"

namespace esg::hrm {

using common::ByteReader;
using common::ByteWriter;
using common::Bytes;
using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using rpc::Payload;

HrmService::HrmService(rpc::Orb& orb, const net::Host& host,
                       std::shared_ptr<storage::HostStorage> served_storage,
                       HrmConfig config)
    : orb_(orb),
      host_(host),
      served_(std::move(served_storage)),
      tape_(std::make_unique<storage::TapeLibrary>(orb.network().simulation(),
                                                   config.tape)),
      cache_(config.cache_capacity) {
  auto& metrics = orb_.network().simulation().metrics();
  metric_hits_ = &metrics.counter("hrm_cache_hits_total");
  metric_misses_ = &metrics.counter("hrm_cache_misses_total");
  stage_wait_ = &metrics.histogram("hrm_stage_wait_seconds",
                                   obs::duration_boundaries());
  tape_depth_ = &metrics.gauge("hrm_tape_queue_depth");
  cache_.set_eviction_hook([this](const storage::FileObject& evicted) {
    (void)served_->remove(evicted.name);
  });
  orb_.register_service(
      host_, "hrm",
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        dispatch(method, std::move(request), std::move(reply));
      });
}

HrmService::~HrmService() { orb_.unregister_service(host_, "hrm"); }

void HrmService::crash() {
  if (crashed_) return;
  crashed_ = true;
  orb_.network().simulation().flight_recorder().record(
      "hrm", "crash", host_.name(),
      {{"stages_lost", std::to_string(staging_.size())}});
  orb_.set_service_down(host_, "hrm", true);
  // The stage queue lived in process memory: every caller waiting on a
  // STAGE loses its request.  Tape reads already dispatched to drives
  // complete into the cache, but nobody is left to be told.
  auto lost = std::move(staging_);
  staging_.clear();
  for (auto& [name, waiters] : lost) {
    for (auto& w : waiters) {
      w(Error{Errc::unavailable, "hrm crashed during stage of " + name});
    }
  }
  tape_depth_->set(static_cast<double>(tape_->queue_depth()));
}

void HrmService::restart() {
  if (!crashed_) return;
  crashed_ = false;
  orb_.network().simulation().flight_recorder().record("hrm", "restart",
                                                       host_.name());
  orb_.set_service_down(host_, "hrm", false);
}

void HrmService::stage(const std::string& name,
                       std::function<void(Result<Bytes>)> done) {
  if (cache_.contains(name)) {
    ++cache_hits_;
    metric_hits_->add();
    (void)cache_.pin(name);
    auto size = cache_.get(name);
    const Bytes bytes = size ? size->size : 0;
    orb_.network().simulation().schedule_after(
        common::kMillisecond, [done = std::move(done), bytes] { done(bytes); });
    return;
  }
  ++cache_misses_;
  metric_misses_->add();
  // Each waiter's stage wait runs from its own request to the tape reply.
  const common::SimTime t0 = orb_.network().simulation().now();
  auto timed = [this, t0, done = std::move(done)](Result<Bytes> r) mutable {
    stage_wait_->observe(
        common::to_seconds(orb_.network().simulation().now() - t0));
    done(std::move(r));
  };
  auto it = staging_.find(name);
  if (it != staging_.end()) {
    // Coalesce onto the in-flight tape read.
    it->second.push_back(std::move(timed));
    return;
  }
  staging_[name].push_back(std::move(timed));
  orb_.network().simulation().flight_recorder().record(
      "hrm", "stage.dispatched", name, {{"host", host_.name()}});
  tape_->stage(name, [this, name](Result<storage::FileObject> staged) {
    finish_stage(name, std::move(staged));
  });
  tape_depth_->set(static_cast<double>(tape_->queue_depth()));
}

void HrmService::finish_stage(const std::string& name,
                              Result<storage::FileObject> staged) {
  auto waiters = std::move(staging_[name]);
  staging_.erase(name);
  tape_depth_->set(static_cast<double>(tape_->queue_depth()));
  orb_.network().simulation().flight_recorder().record(
      "hrm", staged ? "stage.complete" : "stage.failed", name,
      {{"host", host_.name()}});
  if (!staged) {
    for (auto& w : waiters) w(staged.error());
    return;
  }
  const Bytes size = staged->size;
  // Land in the cache and mirror into the GridFTP-served namespace.  A
  // cache too small even after eviction is an operational error.
  if (auto st = cache_.put(*staged); !st.ok()) {
    for (auto& w : waiters) w(st.error());
    return;
  }
  (void)served_->put(std::move(*staged));
  // One pin per waiter, matching the RELEASE each caller owes.
  for (auto& w : waiters) {
    (void)cache_.pin(name);
    w(size);
  }
}

Status HrmService::release(const std::string& name) {
  return cache_.unpin(name);
}

std::string HrmService::status(const std::string& name) const {
  if (cache_.contains(name)) return "cached";
  if (staging_.count(name)) return "staging";
  if (tape_->contains(name)) return "archived";
  return "absent";
}

void HrmService::dispatch(const std::string& method, Payload request,
                          rpc::Reply reply) {
  ByteReader r(request);
  auto name = r.str();
  if (!name) {
    return reply(Error{Errc::protocol_error, "bad HRM request"});
  }
  if (method == "STAGE") {
    stage(*name, [reply = std::move(reply)](Result<Bytes> staged) {
      if (!staged) return reply(staged.error());
      ByteWriter w;
      w.i64(*staged);
      reply(w.take());
    });
    return;
  }
  if (method == "RELEASE") {
    if (auto st = release(*name); !st.ok()) return reply(st.error());
    return reply(Payload{});
  }
  if (method == "STATUS") {
    ByteWriter w;
    w.str(status(*name));
    return reply(w.take());
  }
  reply(Error{Errc::protocol_error, "unknown HRM method: " + method});
}

HrmClient::HrmClient(rpc::Orb& orb, const net::Host& from,
                     const net::Host& hrm_host)
    : orb_(orb), from_(from), hrm_(hrm_host) {}

void HrmClient::stage(const std::string& name,
                      std::function<void(Result<Bytes>)> done,
                      common::SimDuration timeout) {
  stage(name, obs::TrackId{0}, std::move(done), timeout);
}

void HrmClient::stage(const std::string& name, obs::TrackId track,
                      std::function<void(Result<Bytes>)> done,
                      common::SimDuration timeout) {
  auto& sim = orb_.network().simulation();
  // Raw span ids (copyable) rather than the RAII handle: the callback must
  // fit in std::function, which requires a copyable closure.
  obs::SpanId span = 0;
  if (track != 0) {
    span = sim.tracer().begin("hrm.stage.rpc", "hrm", track);
    sim.tracer().set_attr(span, "path", name);
  }
  ByteWriter w;
  w.str(name);
  orb_.call(from_, hrm_, "hrm", "STAGE", w.take(),
            [done = std::move(done), span, &sim](Result<Payload> r) {
              if (span != 0) {
                sim.tracer().set_attr(span, "status",
                                      r ? "ok" : r.error().to_string());
                sim.tracer().end(span);
              }
              if (!r) return done(r.error());
              ByteReader reader(*r);
              auto size = reader.i64();
              if (!size) return done(size.error());
              done(*size);
            },
            timeout);
}

void HrmClient::release(const std::string& name,
                        std::function<void(Status)> done) {
  ByteWriter w;
  w.str(name);
  orb_.call(from_, hrm_, "hrm", "RELEASE", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              done(r.ok() ? common::ok_status() : Status(r.error()));
            });
}

void HrmClient::status(const std::string& name,
                       std::function<void(Result<std::string>)> done) {
  ByteWriter w;
  w.str(name);
  orb_.call(from_, hrm_, "hrm", "STATUS", w.take(),
            [done = std::move(done)](Result<Payload> r) {
              if (!r) return done(r.error());
              ByteReader reader(*r);
              done(reader.str());
            });
}

}  // namespace esg::hrm
