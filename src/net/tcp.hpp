// TCP behaviour model layered on the fluid network.
//
// The paper's transfer results hinge on three TCP effects, all reproduced
// here as per-stream rate caps:
//
//  * Window limit: a stream can never exceed buffer/RTT — the paper's
//    buffer-sizing formula ("Buffer size = Bandwidth * Latency"; they chose
//    1 MB for 10–20 ms RTTs and 200–500 Mb/s targets).
//  * Loss limit: on lossy paths steady-state TCP throughput follows the
//    Mathis relation MSS/(RTT*sqrt(2p/3)); this is why multiple parallel
//    streams raise aggregate bandwidth on the commodity-internet path of
//    Figure 8 long before the link saturates.
//  * Slow start: a fresh connection ramps its cap from ~10 MSS/RTT, doubling
//    each RTT — the cost that data-channel caching (added after SC'2000)
//    avoids, together with re-authentication.
//
// A TcpTransfer bundles N parallel streams draining one shared byte pool
// (GridFTP extended block mode).  A watchdog declares the transfer dead when
// no bytes arrive for `dead_interval`, which is how outages surface to the
// GridFTP reliability plugin.
#pragma once

#include <functional>
#include <memory>

#include "common/result.hpp"
#include "common/units.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"

namespace esg::net {

struct TcpOptions {
  int streams = 1;
  Bytes buffer_size = 256 * common::kKiB;
  Bytes mss = 1460;
  bool slow_start = true;          // false when reusing a cached data channel
  SimDuration connect_delay = 0;   // control-channel setup paid up front
  SimDuration dead_interval = 30 * common::kSecond;
  bool include_disks = true;       // NWS probes bypass storage
  /// Trace track this transfer's "net.tcp" span is recorded on — callers
  /// (GridFTP ops, the request manager) pass their own track so the span
  /// nests under theirs in the exported Chrome trace.
  obs::TrackId obs_track = 0;
};

struct TcpCallbacks {
  /// Delta bytes delivered, invoked at network-event granularity.
  std::function<void(Bytes delta, SimTime now)> on_progress;
  /// Terminal outcome: ok, timed_out (stall watchdog), or unavailable
  /// (path down at connect time).  Fires exactly once.
  std::function<void(common::Status)> on_complete;
};

class TcpTransfer {
 public:
  /// Starts immediately (after `connect_delay`).  `size` < 0 runs until
  /// cancelled.
  TcpTransfer(Network& network, const Host& src, const Host& dst, Bytes size,
              TcpOptions options, TcpCallbacks callbacks);
  ~TcpTransfer();

  TcpTransfer(const TcpTransfer&) = delete;
  TcpTransfer& operator=(const TcpTransfer&) = delete;

  /// Stop without firing on_complete.  Returns bytes delivered.
  Bytes cancel();

  bool active() const { return state_ == State::connecting || state_ == State::running; }
  bool finished() const { return state_ == State::done || state_ == State::failed; }

  Bytes delivered() const;
  Rate rate() const;

  SimDuration round_trip() const { return rtt_; }
  double path_loss() const { return loss_; }
  /// The per-stream steady-state cap this transfer is operating under.
  Rate stream_cap() const { return target_cap_; }

  /// Mathis steady-state throughput cap; unlimited when loss == 0.
  static Rate mathis_cap(Bytes mss, SimDuration rtt, double loss);
  /// Socket-buffer window cap: buffer/RTT.
  static Rate window_cap(Bytes buffer, SimDuration rtt);

 private:
  enum class State { connecting, running, done, failed, cancelled };

  void begin();
  void apply_cap(Rate cap);
  void finish(common::Status status);

  Network& net_;
  const Host& src_;
  const Host& dst_;
  Bytes size_;
  TcpOptions options_;
  TcpCallbacks callbacks_;

  State state_ = State::connecting;
  SimDuration rtt_ = 0;
  double loss_ = 0.0;
  Rate target_cap_ = kUnlimitedRate;
  Rate current_cap_ = 0.0;
  TransferId transfer_id_ = 0;
  Bytes delivered_snapshot_ = 0;  // final count once no longer active
  SimTime last_progress_ = 0;
  sim::EventHandle connect_event_;
  sim::EventHandle ramp_event_;
  sim::EventHandle watchdog_event_;
  obs::Span span_;
};

}  // namespace esg::net
