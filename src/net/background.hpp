// Deterministic cross-traffic generator.
//
// The SC'2000 exhibit-floor network carried heavy competing traffic; the
// gap between the paper's 1.55 Gb/s peak and 512.9 Mb/s one-hour sustained
// rate is largely contention.  BackgroundTraffic occupies part of a
// resource's capacity with a seeded sinusoid-plus-noise load so experiments
// see realistic variation yet replay identically.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace esg::net {

struct BackgroundConfig {
  Rate mean = 0.0;                 // average occupied capacity
  Rate amplitude = 0.0;            // sinusoid swing around the mean
  SimDuration period = 10 * common::kMinute;
  double noise_frac = 0.1;         // gaussian noise, fraction of mean
  SimDuration update_interval = 5 * common::kSecond;
  std::uint64_t seed = 42;
};

class BackgroundTraffic {
 public:
  BackgroundTraffic(Network& network, Resource* resource,
                    BackgroundConfig config);
  ~BackgroundTraffic();

  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  void stop();

  /// The load function itself (exposed for tests).
  Rate load_at(SimTime t, double noise) const;

 private:
  Network& net_;
  Resource* resource_;
  BackgroundConfig config_;
  common::Rng rng_;
  double phase_;
  sim::EventHandle tick_;
};

}  // namespace esg::net
