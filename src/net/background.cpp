#include "net/background.hpp"

#include <algorithm>
#include <cmath>

namespace esg::net {

BackgroundTraffic::BackgroundTraffic(Network& network, Resource* resource,
                                     BackgroundConfig config)
    : net_(network),
      resource_(resource),
      config_(config),
      rng_(config.seed),
      phase_(0.0) {
  phase_ = rng_.uniform(0.0, 2.0 * 3.14159265358979323846);
  const auto apply = [this] {
    const double noise = rng_.normal();
    net_.fluid().set_background(resource_,
                                load_at(net_.simulation().now(), noise));
  };
  apply();
  tick_ = net_.simulation().schedule_every(config_.update_interval, [apply] {
    apply();
    return true;
  });
}

BackgroundTraffic::~BackgroundTraffic() { stop(); }

void BackgroundTraffic::stop() { tick_.cancel(); }

Rate BackgroundTraffic::load_at(SimTime t, double noise) const {
  const double omega =
      2.0 * 3.14159265358979323846 / common::to_seconds(config_.period);
  const double s = std::sin(omega * common::to_seconds(t) + phase_);
  const double value = config_.mean + config_.amplitude * s +
                       config_.noise_frac * config_.mean * noise;
  return std::max(0.0, value);
}

}  // namespace esg::net
