#include "net/fluid_reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace esg::net {

namespace {
constexpr double kRateEps = 1e-6;  // must match net/fluid.cpp
}  // namespace

void reference_waterfill(std::vector<ReferenceFlow>& flows) {
  struct Entry {
    ReferenceFlow* flow;
    bool frozen = false;
  };
  std::vector<Entry> entries;
  entries.reserve(flows.size());
  for (auto& f : flows) {
    f.rate = 0.0;
    entries.push_back(Entry{&f});
  }
  if (entries.empty()) return;

  std::map<const Resource*, double> usage;
  std::map<const Resource*, int> unfrozen_count;
  for (auto& e : entries) {
    for (const Resource* r : e.flow->path) {
      usage.emplace(r, 0.0);
      ++unfrozen_count[r];
    }
  }

  std::size_t unfrozen = entries.size();
  while (unfrozen > 0) {
    // The largest uniform rate increase every unfrozen flow can take.
    double delta = std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      if (e.frozen) continue;
      delta = std::min(delta, e.flow->cap - e.flow->rate);
    }
    for (const auto& [r, n] : unfrozen_count) {
      if (n <= 0) continue;
      const double room = r->effective_capacity() - usage[r];
      delta = std::min(delta, room / n);
    }
    if (!std::isfinite(delta)) {
      // No cap and no resource constrains these flows; freeze at cap.
      for (auto& e : entries) {
        if (!e.frozen) {
          e.flow->rate = e.flow->cap;
          e.frozen = true;
        }
      }
      break;
    }
    delta = std::max(0.0, delta);
    if (delta > 0.0) {
      for (auto& e : entries) {
        if (e.frozen) continue;
        e.flow->rate += delta;
        for (const Resource* r : e.flow->path) usage[r] += delta;
      }
    }
    // Freeze flows at their cap or crossing a saturated resource.
    bool any_frozen = false;
    for (auto& e : entries) {
      if (e.frozen) continue;
      bool freeze = e.flow->rate >= e.flow->cap - kRateEps;
      if (!freeze) {
        for (const Resource* r : e.flow->path) {
          if (usage[r] >= r->effective_capacity() - kRateEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        e.frozen = true;
        any_frozen = true;
        --unfrozen;
        for (const Resource* r : e.flow->path) --unfrozen_count[r];
      }
    }
    if (!any_frozen) break;  // numerical safety: guarantee progress
  }
}

}  // namespace esg::net
