#include "net/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esg::net {

namespace {
// Rates are bytes/second up to a few 1e8; one byte/s of slack is noise.
constexpr double kRateEps = 1e-6;
constexpr double kByteEps = 0.5;  // "done" when less than half a byte remains
}  // namespace

FluidNetwork::FluidNetwork(sim::Simulation& simulation,
                           SimDuration poll_interval)
    : sim_(simulation), poll_interval_(poll_interval) {
  last_integration_ = sim_.now();
}

FluidNetwork::~FluidNetwork() {
  next_event_.cancel();
  poll_event_.cancel();
}

Resource* FluidNetwork::add_resource(std::string name, Rate capacity) {
  auto res = std::make_unique<Resource>(name, capacity);
  Resource* ptr = res.get();
  ptr->util_gauge_ = &sim_.metrics().gauge("net_resource_utilization",
                                           {{"resource", ptr->name()}});
  auto [it, inserted] = resources_.emplace(std::move(name), std::move(res));
  assert(inserted && "duplicate resource name");
  (void)it;
  return ptr;
}

Resource* FluidNetwork::find_resource(const std::string& name) {
  auto it = resources_.find(name);
  return it == resources_.end() ? nullptr : it->second.get();
}

void FluidNetwork::set_down(Resource* resource, bool down) {
  assert(resource != nullptr);
  if (resource->down_ == down) return;
  resource->down_ = down;
  touch();
}

void FluidNetwork::set_background(Resource* resource, Rate load) {
  assert(resource != nullptr);
  resource->background_ = std::max(0.0, load);
  touch();
}

void FluidNetwork::set_capacity(Resource* resource, Rate capacity) {
  assert(resource != nullptr);
  resource->nominal_ = std::max(0.0, capacity);
  touch();
}

TransferId FluidNetwork::start_transfer(std::vector<FlowSpec> flows,
                                        Bytes total,
                                        TransferCallbacks callbacks) {
  assert(!flows.empty());
  Transfer t;
  t.id = next_id_++;
  t.total = total < 0 ? -1.0 : static_cast<double>(total);
  t.callbacks = std::move(callbacks);
  t.flows.reserve(flows.size());
  for (auto& spec : flows) {
    Flow f;
    f.path = std::move(spec.path);
    f.cap = spec.cap;
    t.flows.push_back(std::move(f));
  }
  const TransferId id = t.id;
  transfers_.emplace(id, std::move(t));
  touch();
  // A zero-byte transfer may already have completed inside touch().
  if (!transfers_.empty()) ensure_polling();
  return id;
}

Bytes FluidNetwork::cancel_transfer(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return 0;
  // Account bytes up to this instant before dropping the transfer.
  integrate_to_now();
  const auto delivered = static_cast<Bytes>(it->second.delivered + kByteEps);
  transfers_.erase(it);
  touch();
  return delivered;
}

void FluidNetwork::set_flow_cap(TransferId id, std::size_t flow_index,
                                Rate cap) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  assert(flow_index < it->second.flows.size());
  it->second.flows[flow_index].cap = cap;
  touch();
}

void FluidNetwork::add_flow(TransferId id, FlowSpec flow) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Flow f;
  f.path = std::move(flow.path);
  f.cap = flow.cap;
  it->second.flows.push_back(std::move(f));
  touch();
}

bool FluidNetwork::transfer_active(TransferId id) const {
  return transfers_.count(id) > 0;
}

Bytes FluidNetwork::transferred(TransferId id) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return 0;
  // Include bytes accrued since the last integration point.
  const double dt = common::to_seconds(sim_.now() - last_integration_);
  double v = it->second.delivered + it->second.rate() * dt;
  if (it->second.total >= 0.0) v = std::min(v, it->second.total);
  return static_cast<Bytes>(v + kByteEps);
}

Bytes FluidNetwork::flow_transferred(TransferId id,
                                     std::size_t flow_index) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || flow_index >= it->second.flows.size()) return 0;
  const auto& f = it->second.flows[flow_index];
  const double dt = common::to_seconds(sim_.now() - last_integration_);
  return static_cast<Bytes>(f.delivered + f.rate * dt + kByteEps);
}

Rate FluidNetwork::current_rate(TransferId id) const {
  auto it = transfers_.find(id);
  return it == transfers_.end() ? 0.0 : it->second.rate();
}

Rate FluidNetwork::flow_rate(TransferId id, std::size_t flow_index) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || flow_index >= it->second.flows.size()) return 0.0;
  return it->second.flows[flow_index].rate;
}

void FluidNetwork::update() { touch(); }

void FluidNetwork::integrate_to_now() {
  const SimTime now = sim_.now();
  if (now <= last_integration_) return;
  const double dt = common::to_seconds(now - last_integration_);
  last_integration_ = now;
  for (auto& [id, t] : transfers_) {
    double earned = 0.0;
    for (auto& f : t.flows) {
      const double d = f.rate * dt;
      f.delivered += d;
      earned += d;
    }
    if (earned <= 0.0) continue;
    // Never drain past the pool: clamp (floating error at completion).
    if (t.total >= 0.0 && t.delivered + earned > t.total) {
      earned = t.total - t.delivered;
    }
    t.delivered += earned;
  }
}

void FluidNetwork::reallocate() {
  // Progressive filling (water-filling) with per-flow caps.  Every flow ends
  // either frozen at its cap or crossing a saturated resource — the classic
  // max-min optimality condition, asserted by the property tests.
  struct Entry {
    Flow* flow;
    bool frozen = false;
  };
  std::vector<Entry> entries;
  for (auto& [id, t] : transfers_) {
    for (auto& f : t.flows) {
      f.rate = 0.0;
      entries.push_back(Entry{&f});
    }
  }
  if (entries.empty()) {
    publish_utilization({});
    return;
  }

  std::map<const Resource*, double> usage;
  std::map<const Resource*, int> unfrozen_count;
  for (auto& e : entries) {
    for (const Resource* r : e.flow->path) {
      usage.emplace(r, 0.0);
      ++unfrozen_count[r];
    }
  }

  std::size_t unfrozen = entries.size();
  while (unfrozen > 0) {
    // The largest uniform rate increase every unfrozen flow can take.
    double delta = std::numeric_limits<double>::infinity();
    for (const auto& e : entries) {
      if (e.frozen) continue;
      delta = std::min(delta, e.flow->cap - e.flow->rate);
    }
    for (const auto& [r, n] : unfrozen_count) {
      if (n <= 0) continue;
      const double room = r->effective_capacity() - usage[r];
      delta = std::min(delta, room / n);
    }
    if (!std::isfinite(delta)) {
      // No cap and no resource constrains these flows; they are idle paths
      // in tests.  Freeze at an arbitrarily large rate.
      delta = 0.0;
      for (auto& e : entries) {
        if (!e.frozen) {
          e.flow->rate = e.flow->cap;  // cap is infinite here; harmless
          e.frozen = true;
        }
      }
      break;
    }
    delta = std::max(0.0, delta);
    if (delta > 0.0) {
      for (auto& e : entries) {
        if (e.frozen) continue;
        e.flow->rate += delta;
        for (const Resource* r : e.flow->path) usage[r] += delta;
      }
    }
    // Freeze flows at their cap or crossing a saturated resource.
    bool any_frozen = false;
    for (auto& e : entries) {
      if (e.frozen) continue;
      bool freeze = e.flow->rate >= e.flow->cap - kRateEps;
      if (!freeze) {
        for (const Resource* r : e.flow->path) {
          if (usage[r] >= r->effective_capacity() - kRateEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        e.frozen = true;
        any_frozen = true;
        --unfrozen;
        for (const Resource* r : e.flow->path) --unfrozen_count[r];
      }
    }
    if (!any_frozen) break;  // numerical safety: guarantee progress
  }
  publish_utilization(usage);
}

void FluidNetwork::publish_utilization(
    const std::map<const Resource*, double>& usage) {
  for (auto& [name, res] : resources_) {
    const auto it = usage.find(res.get());
    const double used =
        res->background_ + (it == usage.end() ? 0.0 : it->second);
    const double util =
        res->nominal_ > 0.0 ? std::min(1.0, used / res->nominal_) : 0.0;
    res->utilization_ = util;
    res->util_gauge_->set(util);
  }
}

void FluidNetwork::schedule_next_event() {
  next_event_.cancel();
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, t] : transfers_) {
    const double rem = t.remaining();
    if (!std::isfinite(rem)) continue;
    const Rate rate = t.rate();
    if (rate <= kRateEps) continue;
    earliest = std::min(earliest, rem / rate);
  }
  if (!std::isfinite(earliest)) return;
  const auto delay = static_cast<SimDuration>(
      std::ceil(earliest * static_cast<double>(common::kSecond)));
  next_event_ = sim_.schedule_after(std::max<SimDuration>(0, delay),
                                    [this] { touch(); });
}

void FluidNetwork::touch() {
  if (in_touch_) {
    dirty_ = true;
    return;
  }
  in_touch_ = true;
  do {
    dirty_ = false;
    integrate_to_now();

    // Surface progress and collect completions before reallocating, since
    // completion callbacks typically start follow-on transfers.
    std::vector<TransferId> completed;
    std::vector<std::function<void()>> notify;
    for (auto& [id, t] : transfers_) {
      const double delta = t.delivered - t.reported;
      if (delta >= 1.0 && t.callbacks.on_progress) {
        const auto whole = static_cast<Bytes>(delta);
        t.reported += static_cast<double>(whole);
        // Defer: user callbacks must not see a half-updated network.
        auto cb = t.callbacks.on_progress;
        const SimTime now = sim_.now();
        notify.push_back([cb, whole, now] { cb(whole, now); });
      }
      if (t.total >= 0.0 && t.remaining() <= kByteEps) {
        completed.push_back(id);
        if (t.callbacks.on_complete) notify.push_back(t.callbacks.on_complete);
      }
    }
    for (TransferId id : completed) transfers_.erase(id);
    for (auto& fn : notify) fn();  // may re-enter touch(); sets dirty_

    reallocate();
    schedule_next_event();
  } while (dirty_);
  in_touch_ = false;
  if (transfers_.empty()) poll_event_.cancel();
}

void FluidNetwork::ensure_polling() {
  if (poll_interval_ <= 0 || poll_event_.pending()) return;
  poll_event_ = sim_.schedule_every(poll_interval_, [this] {
    if (transfers_.empty()) return false;  // stop ticking when idle
    touch();
    return true;
  });
}

}  // namespace esg::net
