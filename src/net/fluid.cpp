#include "net/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esg::net {

namespace {
// Rates are bytes/second up to a few 1e8; one byte/s of slack is noise.
constexpr double kRateEps = 1e-6;
constexpr double kByteEps = 0.5;  // "done" when less than half a byte remains
}  // namespace

FluidNetwork::FluidNetwork(sim::Simulation& simulation,
                           SimDuration poll_interval)
    : sim_(simulation), poll_interval_(poll_interval) {
  last_integration_ = sim_.now();
}

FluidNetwork::~FluidNetwork() {
  next_event_.cancel();
  poll_event_.cancel();
}

Resource* FluidNetwork::add_resource(std::string name, Rate capacity) {
  auto res = std::make_unique<Resource>(name, capacity);
  Resource* ptr = res.get();
  ptr->id_ = static_cast<std::uint32_t>(resources_by_id_.size());
  ptr->util_gauge_ = &sim_.metrics().gauge("net_resource_utilization",
                                           {{"resource", ptr->name()}});
  auto [it, inserted] = resources_.emplace(std::move(name), std::move(res));
  assert(inserted && "duplicate resource name");
  (void)it;
  resources_by_id_.push_back(ptr);
  return ptr;
}

Resource* FluidNetwork::find_resource(const std::string& name) {
  auto it = resources_.find(name);
  return it == resources_.end() ? nullptr : it->second.get();
}

void FluidNetwork::on_mutation() {
  rates_dirty_ = true;
  if (batch_depth_ == 0) touch();
}

void FluidNetwork::set_down(Resource* resource, bool down) {
  assert(resource != nullptr);
  if (resource->down_ == down) return;
  resource->down_ = down;
  on_mutation();
}

void FluidNetwork::set_background(Resource* resource, Rate load) {
  assert(resource != nullptr);
  const Rate clamped = std::max(0.0, load);
  if (resource->background_ == clamped) return;
  resource->background_ = clamped;
  on_mutation();
}

void FluidNetwork::set_capacity(Resource* resource, Rate capacity) {
  assert(resource != nullptr);
  const Rate clamped = std::max(0.0, capacity);
  if (resource->nominal_ == clamped) return;
  resource->nominal_ = clamped;
  on_mutation();
}

TransferId FluidNetwork::start_transfer(std::vector<FlowSpec> flows,
                                        Bytes total,
                                        TransferCallbacks callbacks) {
  assert(!flows.empty());
  Transfer t;
  t.id = next_id_++;
  t.total = total < 0 ? -1.0 : static_cast<double>(total);
  t.callbacks = std::move(callbacks);
  t.flows.reserve(flows.size());
  for (auto& spec : flows) {
    Flow f;
    f.path.reserve(spec.path.size());
    for (const Resource* r : spec.path) f.path.push_back(r->id());
    f.cap = spec.cap;
    t.flows.push_back(std::move(f));
  }
  const TransferId id = t.id;
  transfers_.emplace(id, std::move(t));
  on_mutation();
  // A zero-byte transfer may already have completed inside touch().
  if (!transfers_.empty()) ensure_polling();
  return id;
}

Bytes FluidNetwork::cancel_transfer(TransferId id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return 0;
  // Account bytes up to this instant before dropping the transfer.
  integrate_to_now();
  const auto delivered = static_cast<Bytes>(it->second.delivered + kByteEps);
  transfers_.erase(it);
  on_mutation();
  return delivered;
}

void FluidNetwork::set_flow_cap(TransferId id, std::size_t flow_index,
                                Rate cap) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  assert(flow_index < it->second.flows.size());
  if (it->second.flows[flow_index].cap == cap) return;
  it->second.flows[flow_index].cap = cap;
  on_mutation();
}

void FluidNetwork::set_transfer_cap(TransferId id, Rate cap) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  bool changed = false;
  for (auto& f : it->second.flows) {
    if (f.cap != cap) {
      f.cap = cap;
      changed = true;
    }
  }
  if (changed) on_mutation();
}

void FluidNetwork::add_flow(TransferId id, FlowSpec flow) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Flow f;
  f.path.reserve(flow.path.size());
  for (const Resource* r : flow.path) f.path.push_back(r->id());
  f.cap = flow.cap;
  it->second.flows.push_back(std::move(f));
  on_mutation();
}

bool FluidNetwork::transfer_active(TransferId id) const {
  return transfers_.count(id) > 0;
}

Bytes FluidNetwork::transferred(TransferId id) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return 0;
  // Include bytes accrued since the last integration point.
  const double dt = common::to_seconds(sim_.now() - last_integration_);
  double v = it->second.delivered + it->second.cached_rate * dt;
  if (it->second.total >= 0.0) v = std::min(v, it->second.total);
  return static_cast<Bytes>(v + kByteEps);
}

Bytes FluidNetwork::flow_transferred(TransferId id,
                                     std::size_t flow_index) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || flow_index >= it->second.flows.size()) return 0;
  const auto& f = it->second.flows[flow_index];
  const double dt = common::to_seconds(sim_.now() - last_integration_);
  double v = f.delivered + f.rate * dt;
  // A single flow can never carry more than the pool holds; float accrual
  // at completion would otherwise over-report (the pool itself clamps).
  if (it->second.total >= 0.0) v = std::min(v, it->second.total);
  return static_cast<Bytes>(v + kByteEps);
}

Rate FluidNetwork::current_rate(TransferId id) const {
  auto it = transfers_.find(id);
  return it == transfers_.end() ? 0.0 : it->second.cached_rate;
}

Rate FluidNetwork::flow_rate(TransferId id, std::size_t flow_index) const {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || flow_index >= it->second.flows.size()) return 0.0;
  return it->second.flows[flow_index].rate;
}

void FluidNetwork::update() { touch(); }

void FluidNetwork::integrate_to_now() {
  const SimTime now = sim_.now();
  if (now <= last_integration_) return;
  const double dt = common::to_seconds(now - last_integration_);
  last_integration_ = now;
  for (auto& [id, t] : transfers_) {
    if (t.cached_rate <= 0.0) continue;
    double earned = 0.0;
    for (auto& f : t.flows) {
      if (f.rate <= 0.0) continue;
      const double d = f.rate * dt;
      f.delivered += d;
      earned += d;
    }
    if (earned <= 0.0) continue;
    // Never drain past the pool: clamp (floating error at completion).
    if (t.total >= 0.0 && t.delivered + earned > t.total) {
      earned = t.total - t.delivered;
    }
    t.delivered += earned;
  }
}

void FluidNetwork::reallocate() {
  // Progressive filling (water-filling) with per-flow caps.  Every flow ends
  // either frozen at its cap or crossing a saturated resource — the classic
  // max-min optimality condition, asserted by the property tests against
  // the retained reference implementation (net/fluid_reference.hpp).
  //
  // All per-resource state lives in flat vectors indexed by dense resource
  // id; only ids actually crossed by a flow (touched_scratch_) are visited
  // in the inner loop.
  ++reallocations_;
  const std::size_t n_res = resources_by_id_.size();
  usage_scratch_.resize(n_res);
  cap_scratch_.resize(n_res);
  unfrozen_scratch_.resize(n_res);
  touched_mark_.resize(n_res, 0);
  touched_scratch_.clear();

  entries_scratch_.clear();
  for (auto& [id, t] : transfers_) {
    for (auto& f : t.flows) {
      f.rate = 0.0;
      entries_scratch_.push_back(SolverEntry{&f, false});
    }
  }

  if (!entries_scratch_.empty()) {
    for (const auto& e : entries_scratch_) {
      for (const std::uint32_t rid : e.flow->path) {
        if (!touched_mark_[rid]) {
          touched_mark_[rid] = 1;
          touched_scratch_.push_back(rid);
          usage_scratch_[rid] = 0.0;
          unfrozen_scratch_[rid] = 0;
          cap_scratch_[rid] = resources_by_id_[rid]->effective_capacity();
        }
        ++unfrozen_scratch_[rid];
      }
    }

    std::size_t unfrozen = entries_scratch_.size();
    while (unfrozen > 0) {
      // The largest uniform rate increase every unfrozen flow can take.
      double delta = std::numeric_limits<double>::infinity();
      for (const auto& e : entries_scratch_) {
        if (e.frozen) continue;
        delta = std::min(delta, e.flow->cap - e.flow->rate);
      }
      for (const std::uint32_t rid : touched_scratch_) {
        const int n = unfrozen_scratch_[rid];
        if (n <= 0) continue;
        const double room = cap_scratch_[rid] - usage_scratch_[rid];
        delta = std::min(delta, room / n);
      }
      if (!std::isfinite(delta)) {
        // No cap and no resource constrains these flows; they are idle paths
        // in tests.  Freeze at an arbitrarily large rate.
        for (auto& e : entries_scratch_) {
          if (!e.frozen) {
            e.flow->rate = e.flow->cap;  // cap is infinite here; harmless
            e.frozen = true;
          }
        }
        break;
      }
      delta = std::max(0.0, delta);
      if (delta > 0.0) {
        for (auto& e : entries_scratch_) {
          if (e.frozen) continue;
          e.flow->rate += delta;
          for (const std::uint32_t rid : e.flow->path) {
            usage_scratch_[rid] += delta;
          }
        }
      }
      // Freeze flows at their cap or crossing a saturated resource.
      bool any_frozen = false;
      for (auto& e : entries_scratch_) {
        if (e.frozen) continue;
        bool freeze = e.flow->rate >= e.flow->cap - kRateEps;
        if (!freeze) {
          for (const std::uint32_t rid : e.flow->path) {
            if (usage_scratch_[rid] >= cap_scratch_[rid] - kRateEps) {
              freeze = true;
              break;
            }
          }
        }
        if (freeze) {
          e.frozen = true;
          any_frozen = true;
          --unfrozen;
          for (const std::uint32_t rid : e.flow->path) {
            --unfrozen_scratch_[rid];
          }
        }
      }
      if (!any_frozen) break;  // numerical safety: guarantee progress
    }
  }

  // Refresh the per-transfer aggregate cache the rest of the network (rate
  // queries, completion prediction, byte integration) reads.
  for (auto& [id, t] : transfers_) {
    Rate sum = 0.0;
    for (const auto& f : t.flows) sum += f.rate;
    t.cached_rate = sum;
  }

  publish_utilization();
  for (const std::uint32_t rid : touched_scratch_) touched_mark_[rid] = 0;
}

void FluidNetwork::publish_utilization() {
  // Runs only after a solve; touched_mark_/usage_scratch_ still hold the
  // foreground usage.  Gauges are written only when the value moved so
  // steady-state reallocations do not churn the metrics registry.
  for (Resource* res : resources_by_id_) {
    const double foreground =
        touched_mark_[res->id_] ? usage_scratch_[res->id_] : 0.0;
    const double used = res->background_ + foreground;
    const double util =
        res->nominal_ > 0.0 ? std::min(1.0, used / res->nominal_) : 0.0;
    if (util == res->utilization_) continue;
    res->utilization_ = util;
    res->util_gauge_->set(util);
    ++util_gauge_updates_;
  }
}

void FluidNetwork::schedule_next_event() {
  next_event_.cancel();
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, t] : transfers_) {
    const double rem = t.remaining();
    if (!std::isfinite(rem)) continue;
    if (t.cached_rate <= kRateEps) continue;
    earliest = std::min(earliest, rem / t.cached_rate);
  }
  if (!std::isfinite(earliest)) return;
  const auto delay = static_cast<SimDuration>(
      std::ceil(earliest * static_cast<double>(common::kSecond)));
  next_event_ = sim_.schedule_after(std::max<SimDuration>(0, delay),
                                    [this] { touch(); });
}

void FluidNetwork::touch() {
  if (in_touch_) {
    dirty_ = true;
    return;
  }
  in_touch_ = true;
  ++touches_;
  do {
    dirty_ = false;
    integrate_to_now();

    // Surface progress and collect completions before reallocating, since
    // completion callbacks typically start follow-on transfers.
    completed_scratch_.clear();
    notify_scratch_.clear();
    for (auto& [id, t] : transfers_) {
      const double delta = t.delivered - t.reported;
      if (delta >= 1.0 && t.callbacks.on_progress) {
        const auto whole = static_cast<Bytes>(delta);
        t.reported += static_cast<double>(whole);
        // Defer: user callbacks must not see a half-updated network.
        auto cb = t.callbacks.on_progress;
        const SimTime now = sim_.now();
        notify_scratch_.push_back([cb, whole, now] { cb(whole, now); });
      }
      if (t.total >= 0.0 && t.remaining() <= kByteEps) {
        completed_scratch_.push_back(id);
        if (t.callbacks.on_complete) {
          notify_scratch_.push_back(t.callbacks.on_complete);
        }
      }
    }
    if (!completed_scratch_.empty()) rates_dirty_ = true;
    for (TransferId id : completed_scratch_) transfers_.erase(id);
    for (auto& fn : notify_scratch_) fn();  // may re-enter touch(); sets dirty_

    // The incremental fast path: when no flow set, cap, capacity or
    // background changed, current rates — and the already-scheduled
    // next-completion event — are still exact.  Poll ticks and
    // pure-progress touches stop here without running the solver.
    if (rates_dirty_) {
      rates_dirty_ = false;
      reallocate();
      schedule_next_event();
    }
  } while (dirty_);
  in_touch_ = false;
  if (transfers_.empty()) poll_event_.cancel();
}

void FluidNetwork::ensure_polling() {
  if (poll_interval_ <= 0 || poll_event_.pending()) return;
  poll_event_ = sim_.schedule_every(poll_interval_, [this] {
    if (transfers_.empty()) return false;  // stop ticking when idle
    touch();
    return true;
  });
}

}  // namespace esg::net
