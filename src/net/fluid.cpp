#include "net/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esg::net {

namespace {
// Rates are bytes/second up to a few 1e8; one byte/s of slack is noise.
constexpr double kRateEps = 1e-6;
constexpr double kByteEps = 0.5;  // "done" when less than half a byte remains
}  // namespace

FluidNetwork::FluidNetwork(sim::Simulation& simulation,
                           SimDuration poll_interval)
    : sim_(simulation), poll_interval_(poll_interval) {
  observed_integration_ = sim_.now();
  components_gauge_ = &sim_.metrics().gauge("net_components");
  solve_size_gauge_ = &sim_.metrics().gauge("net_component_solve_size");
  components_gauge_->set(0.0);
}

FluidNetwork::~FluidNetwork() {
  next_event_.cancel();
  poll_event_.cancel();
  for (auto& t : transfer_pool_) t.completion.cancel();
}

Resource* FluidNetwork::add_resource(std::string name, Rate capacity) {
  auto res = std::make_unique<Resource>(name, capacity);
  Resource* ptr = res.get();
  ptr->id_ = static_cast<std::uint32_t>(resources_by_id_.size());
  ptr->util_gauge_ = &sim_.metrics().gauge("net_resource_utilization",
                                           {{"resource", ptr->name()}});
  auto [it, inserted] = resources_.emplace(std::move(name), std::move(res));
  assert(inserted && "duplicate resource name");
  (void)it;
  resources_by_id_.push_back(ptr);
  res_comp_.push_back(kNone);
  foreground_.push_back(0.0);
  // Per-resource solver scratch grows here, never during a solve.
  usage_scratch_.push_back(0.0);
  cap_scratch_.push_back(0.0);
  unfrozen_scratch_.push_back(0);
  res_mark_.push_back(0);
  return ptr;
}

Resource* FluidNetwork::find_resource(const std::string& name) {
  auto it = resources_.find(name);
  return it == resources_.end() ? nullptr : it->second.get();
}

void FluidNetwork::on_mutation() {
  rates_dirty_ = true;
  if (batch_depth_ == 0) touch();
}

void FluidNetwork::mark_dirty(std::uint32_t cid) {
  Component& c = comp_pool_[cid];
  if (!c.dirty) {
    c.dirty = true;
    dirty_comps_.push_back(cid);
  }
}

void FluidNetwork::set_down(Resource* resource, bool down) {
  assert(resource != nullptr);
  if (resource->down_ == down) return;
  resource->down_ = down;
  if (res_comp_[resource->id_] != kNone) {
    mark_dirty(res_comp_[resource->id_]);
  } else {
    pending_res_.push_back(resource);
  }
  on_mutation();
}

void FluidNetwork::set_background(Resource* resource, Rate load) {
  assert(resource != nullptr);
  const Rate clamped = std::max(0.0, load);
  if (resource->background_ == clamped) return;
  resource->background_ = clamped;
  if (res_comp_[resource->id_] != kNone) {
    mark_dirty(res_comp_[resource->id_]);
  } else {
    pending_res_.push_back(resource);
  }
  on_mutation();
}

void FluidNetwork::set_capacity(Resource* resource, Rate capacity) {
  assert(resource != nullptr);
  const Rate clamped = std::max(0.0, capacity);
  if (resource->nominal_ == clamped) return;
  resource->nominal_ = clamped;
  if (res_comp_[resource->id_] != kNone) {
    mark_dirty(res_comp_[resource->id_]);
  } else {
    pending_res_.push_back(resource);
  }
  on_mutation();
}

// ---- arenas ----

std::uint32_t FluidNetwork::path_alloc(std::uint32_t len) {
  if (len == 0) return 0;
  auto it = path_free_.find(len);
  if (it != path_free_.end() && !it->second.empty()) {
    const std::uint32_t begin = it->second.back();
    it->second.pop_back();
    return begin;
  }
  const auto begin = static_cast<std::uint32_t>(path_pool_.size());
  path_pool_.resize(path_pool_.size() + len);
  return begin;
}

std::uint32_t FluidNetwork::alloc_flow(const FlowSpec& spec) {
  std::uint32_t fslot;
  if (!flow_free_.empty()) {
    fslot = flow_free_.back();
    flow_free_.pop_back();
  } else {
    fslot = static_cast<std::uint32_t>(flow_pool_.size());
    flow_pool_.emplace_back();
  }
  Flow& f = flow_pool_[fslot];
  f = Flow{};
  f.cap = spec.cap;
  f.path_len = static_cast<std::uint32_t>(spec.path.size());
  f.path_begin = path_alloc(f.path_len);
  for (std::uint32_t k = 0; k < f.path_len; ++k) {
    path_pool_[f.path_begin + k] = spec.path[k]->id();
  }
  return fslot;
}

void FluidNetwork::free_flow(std::uint32_t fslot) {
  Flow& f = flow_pool_[fslot];
  if (f.path_len > 0) path_free_[f.path_len].push_back(f.path_begin);
  f = Flow{};
  flow_free_.push_back(fslot);
}

std::uint32_t FluidNetwork::alloc_comp() {
  std::uint32_t cid;
  if (!comp_free_.empty()) {
    cid = comp_free_.back();
    comp_free_.pop_back();
  } else {
    cid = static_cast<std::uint32_t>(comp_pool_.size());
    comp_pool_.emplace_back();
    comp_mark_.push_back(0);
  }
  Component& c = comp_pool_[cid];
  c.flows.clear();
  c.resources.clear();
  c.live = true;
  c.dirty = false;
  c.needs_rebuild = false;
  ++live_components_;
  components_gauge_->set(static_cast<double>(live_components_));
  return cid;
}

void FluidNetwork::free_comp(std::uint32_t cid) {
  Component& c = comp_pool_[cid];
  c.flows.clear();
  c.resources.clear();
  c.live = false;
  c.dirty = false;
  c.needs_rebuild = false;
  comp_free_.push_back(cid);
  --live_components_;
  components_gauge_->set(static_cast<double>(live_components_));
}

void FluidNetwork::assign_flow_component(std::uint32_t fslot) {
  Flow& f = flow_pool_[fslot];
  // Collect the distinct components the path touches.
  ++mark_epoch_;
  merge_scratch_.clear();
  std::uint32_t target = kNone;
  for (std::uint32_t k = 0; k < f.path_len; ++k) {
    const std::uint32_t cid = res_comp_[path_pool_[f.path_begin + k]];
    if (cid == kNone || comp_mark_[cid] == mark_epoch_) continue;
    comp_mark_[cid] = mark_epoch_;
    merge_scratch_.push_back(cid);
    if (target == kNone ||
        comp_pool_[cid].flows.size() > comp_pool_[target].flows.size()) {
      target = cid;
    }
  }
  if (target == kNone) target = alloc_comp();
  // Absorb every other bridged component into the largest one.
  for (const std::uint32_t cid : merge_scratch_) {
    if (cid == target) continue;
    Component& from = comp_pool_[cid];
    Component& into = comp_pool_[target];
    for (const std::uint32_t fs : from.flows) {
      flow_pool_[fs].comp = target;
      flow_pool_[fs].index_in_comp =
          static_cast<std::uint32_t>(into.flows.size());
      into.flows.push_back(fs);
    }
    for (const std::uint32_t rid : from.resources) {
      res_comp_[rid] = target;
      into.resources.push_back(rid);
    }
    free_comp(cid);
  }
  Component& c = comp_pool_[target];
  f.comp = target;
  f.index_in_comp = static_cast<std::uint32_t>(c.flows.size());
  c.flows.push_back(fslot);
  for (std::uint32_t k = 0; k < f.path_len; ++k) {
    const std::uint32_t rid = path_pool_[f.path_begin + k];
    if (res_comp_[rid] == kNone) {
      res_comp_[rid] = target;
      c.resources.push_back(rid);
    }
  }
  mark_dirty(target);
}

void FluidNetwork::remove_flow(std::uint32_t fslot) {
  Flow& f = flow_pool_[fslot];
  const std::uint32_t cid = f.comp;
  Component& c = comp_pool_[cid];
  // Swap-remove from the component's flow list.
  const std::uint32_t pos = f.index_in_comp;
  const std::uint32_t last = c.flows.back();
  c.flows[pos] = last;
  flow_pool_[last].index_in_comp = pos;
  c.flows.pop_back();
  if (c.flows.empty()) {
    // Last flow gone: orphan the resources and retire the component.
    for (const std::uint32_t rid : c.resources) {
      res_comp_[rid] = kNone;
      foreground_[rid] = 0.0;
      update_resource_gauge(resources_by_id_[rid]);
    }
    // A pending dirty entry for this slot is skipped by the solve loop.
    free_comp(cid);
  } else {
    mark_dirty(cid);
    c.needs_rebuild = true;
  }
  free_flow(fslot);
}

void FluidNetwork::rebuild_component(std::uint32_t cid,
                                     std::vector<std::uint32_t>& worklist) {
  // A flow removal may have disconnected the component.  Re-derive its
  // connectivity with a resource-keyed union-find scoped to this component;
  // group 1 keeps the slot, every further group gets a fresh (dirty) one.
  ++rebuilds_;
  ++mark_epoch_;
  uf_parent_.resize(res_comp_.size());
  Component& c = comp_pool_[cid];
  c.needs_rebuild = false;

  auto find_root = [&](std::uint32_t rid) {
    std::uint32_t root = rid;
    while (uf_parent_[root] != root) root = uf_parent_[root];
    while (uf_parent_[rid] != root) {
      const std::uint32_t up = uf_parent_[rid];
      uf_parent_[rid] = root;
      rid = up;
    }
    return root;
  };

  for (const std::uint32_t fslot : c.flows) {
    const Flow& f = flow_pool_[fslot];
    std::uint32_t first = kNone;
    for (std::uint32_t k = 0; k < f.path_len; ++k) {
      const std::uint32_t rid = path_pool_[f.path_begin + k];
      if (res_mark_[rid] != mark_epoch_) {
        res_mark_[rid] = mark_epoch_;
        uf_parent_[rid] = rid;
      }
      if (first == kNone) {
        first = rid;
      } else {
        uf_parent_[find_root(rid)] = find_root(first);
      }
    }
  }

  // Partition the flows by root.  Empty-path flows (no resources) each form
  // their own group.
  group_scratch_.clear();  // (root, component) pairs
  auto comp_for_root = [&](std::uint32_t root) {
    for (const auto& [r, id] : group_scratch_) {
      if (r == root) return id;
    }
    std::uint32_t id;
    if (group_scratch_.empty()) {
      id = cid;  // first group reuses the slot
      // Clearing here is safe: flows/resources were snapshotted below.
    } else {
      id = alloc_comp();
      comp_pool_[id].dirty = true;  // solved by the caller's worklist
      worklist.push_back(id);
    }
    group_scratch_.emplace_back(root, id);
    return id;
  };

  // Snapshot the member lists, then redistribute.
  std::vector<std::uint32_t>& old_flows = transfer_scratch_;  // reuse scratch
  old_flows.assign(c.flows.begin(), c.flows.end());
  std::vector<std::uint32_t> old_resources;
  old_resources.swap(c.resources);
  c.flows.clear();

  for (const std::uint32_t fslot : old_flows) {
    Flow& f = flow_pool_[fslot];
    std::uint32_t target;
    if (f.path_len == 0) {
      // Detached flow: isolate it (cannot share a component with anything).
      target = group_scratch_.empty() ? cid : alloc_comp();
      if (target != cid) {
        comp_pool_[target].dirty = true;
        worklist.push_back(target);
        group_scratch_.emplace_back(kNone, target);  // occupy group 1 marker
      } else {
        group_scratch_.emplace_back(kNone, target);
      }
    } else {
      target = comp_for_root(find_root(path_pool_[f.path_begin]));
    }
    Component& tc = comp_pool_[target];
    f.comp = target;
    f.index_in_comp = static_cast<std::uint32_t>(tc.flows.size());
    tc.flows.push_back(fslot);
  }

  for (const std::uint32_t rid : old_resources) {
    if (res_mark_[rid] != mark_epoch_) {
      // No remaining flow crosses it: orphan.
      res_comp_[rid] = kNone;
      foreground_[rid] = 0.0;
      update_resource_gauge(resources_by_id_[rid]);
      continue;
    }
    const std::uint32_t target = comp_for_root(find_root(rid));
    res_comp_[rid] = target;
    comp_pool_[target].resources.push_back(rid);
  }
}

// ---- transfers ----

TransferId FluidNetwork::start_transfer(std::vector<FlowSpec> flows,
                                        Bytes total,
                                        TransferCallbacks callbacks) {
  assert(!flows.empty());
  std::uint32_t tslot;
  if (!transfer_free_.empty()) {
    tslot = transfer_free_.back();
    transfer_free_.pop_back();
  } else {
    tslot = static_cast<std::uint32_t>(transfer_pool_.size());
    transfer_pool_.emplace_back();
    transfer_mark_.push_back(0);
  }
  Transfer& t = transfer_pool_[tslot];
  t.id = next_id_++;
  t.total = total < 0 ? -1.0 : static_cast<double>(total);
  t.delivered = 0.0;
  t.reported = 0.0;
  t.cached_rate = 0.0;
  t.last_integrated = sim_.now();
  t.callbacks = std::move(callbacks);
  t.observed = static_cast<bool>(t.callbacks.on_progress) ||
               static_cast<bool>(t.callbacks.on_complete);
  t.flows.clear();
  t.flows.reserve(flows.size());
  for (const auto& spec : flows) {
    const std::uint32_t fslot = alloc_flow(spec);
    flow_pool_[fslot].transfer = tslot;
    t.flows.push_back(fslot);
    assign_flow_component(fslot);
  }
  const TransferId id = t.id;
  index_.emplace(id, tslot);
  if (t.observed) observed_.emplace(id, tslot);
  on_mutation();
  // A zero-byte transfer may already have completed inside touch().
  if (!index_.empty()) ensure_polling();
  return id;
}

Bytes FluidNetwork::cancel_transfer(TransferId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return 0;
  const std::uint32_t tslot = it->second;
  Transfer& t = transfer_pool_[tslot];
  // Account bytes up to this instant before dropping the transfer.
  if (t.observed) {
    integrate_observed();
  } else {
    integrate_transfer(tslot);
  }
  const auto delivered = static_cast<Bytes>(t.delivered + kByteEps);
  erase_transfer_slot(tslot);
  on_mutation();
  return delivered;
}

void FluidNetwork::erase_transfer_slot(std::uint32_t tslot) {
  Transfer& t = transfer_pool_[tslot];
  t.completion.cancel();
  for (const std::uint32_t fslot : t.flows) remove_flow(fslot);
  observed_.erase(t.id);
  index_.erase(t.id);
  t = Transfer{};
  transfer_free_.push_back(tslot);
}

void FluidNetwork::set_flow_cap(TransferId id, std::size_t flow_index,
                                Rate cap) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Transfer& t = transfer_pool_[it->second];
  assert(flow_index < t.flows.size());
  Flow& f = flow_pool_[t.flows[flow_index]];
  if (f.cap == cap) return;
  f.cap = cap;
  mark_dirty(f.comp);
  on_mutation();
}

void FluidNetwork::set_transfer_cap(TransferId id, Rate cap) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Transfer& t = transfer_pool_[it->second];
  bool changed = false;
  for (const std::uint32_t fslot : t.flows) {
    Flow& f = flow_pool_[fslot];
    if (f.cap != cap) {
      f.cap = cap;
      mark_dirty(f.comp);
      changed = true;
    }
  }
  if (changed) on_mutation();
}

void FluidNetwork::add_flow(TransferId id, FlowSpec flow) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  const std::uint32_t tslot = it->second;
  const std::uint32_t fslot = alloc_flow(flow);
  flow_pool_[fslot].transfer = tslot;
  transfer_pool_[tslot].flows.push_back(fslot);
  assign_flow_component(fslot);
  on_mutation();
}

bool FluidNetwork::transfer_active(TransferId id) const {
  return index_.count(id) > 0;
}

Bytes FluidNetwork::transferred(TransferId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return 0;
  const Transfer& t = transfer_pool_[it->second];
  // Include bytes accrued since the transfer's last integration point.
  const SimTime since = t.observed ? observed_integration_ : t.last_integrated;
  const double dt = common::to_seconds(sim_.now() - since);
  double v = t.delivered + t.cached_rate * dt;
  if (t.total >= 0.0) v = std::min(v, t.total);
  return static_cast<Bytes>(v + kByteEps);
}

Bytes FluidNetwork::flow_transferred(TransferId id,
                                     std::size_t flow_index) const {
  auto it = index_.find(id);
  if (it == index_.end()) return 0;
  const Transfer& t = transfer_pool_[it->second];
  if (flow_index >= t.flows.size()) return 0;
  const Flow& f = flow_pool_[t.flows[flow_index]];
  const SimTime since = t.observed ? observed_integration_ : t.last_integrated;
  const double dt = common::to_seconds(sim_.now() - since);
  double v = f.delivered + f.rate * dt;
  // A single flow can never carry more than the pool holds; float accrual
  // at completion would otherwise over-report (the pool itself clamps).
  if (t.total >= 0.0) v = std::min(v, t.total);
  return static_cast<Bytes>(v + kByteEps);
}

Rate FluidNetwork::current_rate(TransferId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? 0.0 : transfer_pool_[it->second].cached_rate;
}

Rate FluidNetwork::flow_rate(TransferId id, std::size_t flow_index) const {
  auto it = index_.find(id);
  if (it == index_.end()) return 0.0;
  const Transfer& t = transfer_pool_[it->second];
  if (flow_index >= t.flows.size()) return 0.0;
  return flow_pool_[t.flows[flow_index]].rate;
}

bool FluidNetwork::same_component(const Resource* a, const Resource* b) const {
  if (a == nullptr || b == nullptr) return false;
  const std::uint32_t ca = res_comp_[a->id()];
  return ca != kNone && ca == res_comp_[b->id()];
}

void FluidNetwork::update() { touch(); }

// ---- integration ----

void FluidNetwork::integrate_transfer_span(Transfer& t, double dt) {
  if (t.cached_rate <= 0.0) return;
  double earned = 0.0;
  for (const std::uint32_t fslot : t.flows) {
    Flow& f = flow_pool_[fslot];
    if (f.rate <= 0.0) continue;
    const double d = f.rate * dt;
    f.delivered += d;
    earned += d;
  }
  if (earned <= 0.0) return;
  // Never drain past the pool: clamp (floating error at completion).
  if (t.total >= 0.0 && t.delivered + earned > t.total) {
    earned = t.total - t.delivered;
  }
  t.delivered += earned;
}

void FluidNetwork::integrate_observed() {
  const SimTime now = sim_.now();
  if (now <= observed_integration_) return;
  const double dt = common::to_seconds(now - observed_integration_);
  observed_integration_ = now;
  for (const auto& [id, tslot] : observed_) {
    integrate_transfer_span(transfer_pool_[tslot], dt);
  }
}

void FluidNetwork::integrate_transfer(std::uint32_t tslot) {
  Transfer& t = transfer_pool_[tslot];
  const SimTime now = sim_.now();
  if (now <= t.last_integrated) return;
  const double dt = common::to_seconds(now - t.last_integrated);
  t.last_integrated = now;
  integrate_transfer_span(t, dt);
}

// ---- solving ----

void FluidNetwork::update_resource_gauge(Resource* res) {
  const double used = res->background_ + foreground_[res->id_];
  const double util =
      res->nominal_ > 0.0 ? std::min(1.0, used / res->nominal_) : 0.0;
  if (util == res->utilization_) return;
  res->utilization_ = util;
  res->util_gauge_->set(util);
  ++util_gauge_updates_;
}

void FluidNetwork::solve_component(std::uint32_t cid) {
  // Progressive filling (water-filling) with per-flow caps, restricted to
  // one connected component.  Every flow ends either frozen at its cap or
  // crossing a saturated resource — the classic max-min optimality
  // condition, asserted by the property tests against the retained
  // reference implementation (net/fluid_reference.hpp).  The arithmetic is
  // iteration-order independent within a round, so a single-component world
  // reproduces the pre-partitioned global solver bit-for-bit.
  Component& c = comp_pool_[cid];

  // Integrate the component's headless transfers at their outgoing rates
  // before those rates change (observed transfers were already integrated
  // by the touch's shared pass).
  ++mark_epoch_;
  transfer_scratch_.clear();
  for (const std::uint32_t fslot : c.flows) {
    const std::uint32_t tslot = flow_pool_[fslot].transfer;
    if (transfer_mark_[tslot] == mark_epoch_) continue;
    transfer_mark_[tslot] = mark_epoch_;
    transfer_scratch_.push_back(tslot);
    if (!transfer_pool_[tslot].observed) integrate_transfer(tslot);
  }

  entries_scratch_.clear();
  for (const std::uint32_t fslot : c.flows) {
    flow_pool_[fslot].rate = 0.0;
    entries_scratch_.push_back(SolverEntry{fslot, false});
  }
  for (const std::uint32_t rid : c.resources) {
    usage_scratch_[rid] = 0.0;
    unfrozen_scratch_[rid] = 0;
    cap_scratch_[rid] = resources_by_id_[rid]->effective_capacity();
  }
  for (const auto& e : entries_scratch_) {
    const Flow& f = flow_pool_[e.fslot];
    for (std::uint32_t k = 0; k < f.path_len; ++k) {
      ++unfrozen_scratch_[path_pool_[f.path_begin + k]];
    }
  }

  std::size_t unfrozen = entries_scratch_.size();
  while (unfrozen > 0) {
    // The largest uniform rate increase every unfrozen flow can take.
    double delta = std::numeric_limits<double>::infinity();
    for (const auto& e : entries_scratch_) {
      if (e.frozen) continue;
      const Flow& f = flow_pool_[e.fslot];
      delta = std::min(delta, f.cap - f.rate);
    }
    for (const std::uint32_t rid : c.resources) {
      const int n = unfrozen_scratch_[rid];
      if (n <= 0) continue;
      const double room = cap_scratch_[rid] - usage_scratch_[rid];
      delta = std::min(delta, room / n);
    }
    if (!std::isfinite(delta)) {
      // No cap and no resource constrains these flows; they are idle paths
      // in tests.  Freeze at an arbitrarily large rate.
      for (auto& e : entries_scratch_) {
        if (!e.frozen) {
          Flow& f = flow_pool_[e.fslot];
          f.rate = f.cap;  // cap is infinite here; harmless
          e.frozen = true;
        }
      }
      break;
    }
    delta = std::max(0.0, delta);
    if (delta > 0.0) {
      for (auto& e : entries_scratch_) {
        if (e.frozen) continue;
        Flow& f = flow_pool_[e.fslot];
        f.rate += delta;
        for (std::uint32_t k = 0; k < f.path_len; ++k) {
          usage_scratch_[path_pool_[f.path_begin + k]] += delta;
        }
      }
    }
    // Freeze flows at their cap or crossing a saturated resource.
    bool any_frozen = false;
    for (auto& e : entries_scratch_) {
      if (e.frozen) continue;
      Flow& f = flow_pool_[e.fslot];
      bool freeze = f.rate >= f.cap - kRateEps;
      if (!freeze) {
        for (std::uint32_t k = 0; k < f.path_len; ++k) {
          const std::uint32_t rid = path_pool_[f.path_begin + k];
          if (usage_scratch_[rid] >= cap_scratch_[rid] - kRateEps) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        e.frozen = true;
        any_frozen = true;
        --unfrozen;
        for (std::uint32_t k = 0; k < f.path_len; ++k) {
          --unfrozen_scratch_[path_pool_[f.path_begin + k]];
        }
      }
    }
    if (!any_frozen) break;  // numerical safety: guarantee progress
  }

  // Publish the component's foreground usage (write-on-change gauges).
  for (const std::uint32_t rid : c.resources) {
    foreground_[rid] = usage_scratch_[rid];
    update_resource_gauge(resources_by_id_[rid]);
  }

  // Refresh the per-transfer aggregate cache the rest of the network (rate
  // queries, completion prediction, byte integration) reads, and keep the
  // headless completion events honest.
  for (const std::uint32_t tslot : transfer_scratch_) {
    Transfer& t = transfer_pool_[tslot];
    const Rate before = t.cached_rate;
    Rate sum = 0.0;
    for (const std::uint32_t fslot : t.flows) sum += flow_pool_[fslot].rate;
    t.cached_rate = sum;
    if (t.observed || t.total < 0.0) continue;
    if (t.remaining() <= kByteEps) {
      // Already drained (zero-byte transfers, completion races): finish it
      // within this touch rather than waiting for an event.
      due_headless_.emplace_back(tslot, t.id);
      dirty_ = true;
    } else if (t.cached_rate != before || !t.completion.pending()) {
      schedule_headless_completion(tslot);
    }
  }

  ++component_solves_;
  flows_solved_total_ += c.flows.size();
  last_solve_flows_ = c.flows.size();
  max_solve_flows_ = std::max(max_solve_flows_, c.flows.size());
  solve_size_gauge_->set(static_cast<double>(c.flows.size()));
}

void FluidNetwork::solve_dirty_components() {
  std::swap(dirty_comps_, dirty_scratch_);
  dirty_comps_.clear();
  // Index loop: rebuild splits append their new components to the worklist.
  for (std::size_t i = 0; i < dirty_scratch_.size(); ++i) {
    const std::uint32_t cid = dirty_scratch_[i];
    if (!comp_pool_[cid].live || !comp_pool_[cid].dirty) continue;  // merged away
    if (comp_pool_[cid].needs_rebuild) {
      rebuild_component(cid, dirty_scratch_);
    }
    solve_component(cid);
    comp_pool_[cid].dirty = false;
  }
  dirty_scratch_.clear();
  // Resources with no flows whose background/capacity/down state changed:
  // the legacy solver refreshed every gauge after each solve, so mirror
  // that for the ones no component covers.
  for (Resource* res : pending_res_) update_resource_gauge(res);
  pending_res_.clear();
}

// ---- events ----

void FluidNetwork::schedule_next_event() {
  // Shared completion event over the observed set, recomputed after every
  // solve with the legacy formula so observed timelines replay unchanged.
  next_event_.cancel();
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [id, tslot] : observed_) {
    const Transfer& t = transfer_pool_[tslot];
    const double rem = t.remaining();
    if (!std::isfinite(rem)) continue;
    if (t.cached_rate <= kRateEps) continue;
    earliest = std::min(earliest, rem / t.cached_rate);
  }
  if (!std::isfinite(earliest)) return;
  const auto delay = static_cast<SimDuration>(
      std::ceil(earliest * static_cast<double>(common::kSecond)));
  next_event_ = sim_.schedule_after(std::max<SimDuration>(0, delay),
                                    [this] { touch(); });
}

void FluidNetwork::schedule_headless_completion(std::uint32_t tslot) {
  Transfer& t = transfer_pool_[tslot];
  t.completion.cancel();
  if (t.cached_rate <= kRateEps) return;
  const double rem = t.remaining();
  const auto delay = static_cast<SimDuration>(
      std::ceil(rem / t.cached_rate * static_cast<double>(common::kSecond)));
  const TransferId id = t.id;
  t.completion = sim_.schedule_after(
      std::max<SimDuration>(0, delay),
      [this, tslot, id] { on_headless_due(tslot, id); });
}

void FluidNetwork::on_headless_due(std::uint32_t tslot, TransferId id) {
  if (tslot >= transfer_pool_.size() || transfer_pool_[tslot].id != id) return;
  due_headless_.emplace_back(tslot, id);
  touch();
}

void FluidNetwork::touch() {
  if (in_touch_) {
    dirty_ = true;
    return;
  }
  in_touch_ = true;
  ++touches_;
  do {
    dirty_ = false;
    integrate_observed();

    // Surface progress and collect completions before reallocating, since
    // completion callbacks typically start follow-on transfers.
    completed_scratch_.clear();
    notify_scratch_.clear();
    for (const auto& [id, tslot] : observed_) {
      Transfer& t = transfer_pool_[tslot];
      const double delta = t.delivered - t.reported;
      if (delta >= 1.0 && t.callbacks.on_progress) {
        const auto whole = static_cast<Bytes>(delta);
        t.reported += static_cast<double>(whole);
        // Defer: user callbacks must not see a half-updated network.
        auto cb = t.callbacks.on_progress;
        const SimTime now = sim_.now();
        notify_scratch_.push_back([cb, whole, now] { cb(whole, now); });
      }
      if (t.total >= 0.0 && t.remaining() <= kByteEps) {
        completed_scratch_.push_back(id);
        if (t.callbacks.on_complete) {
          notify_scratch_.push_back(t.callbacks.on_complete);
        }
      }
    }
    if (!completed_scratch_.empty()) rates_dirty_ = true;
    for (const TransferId id : completed_scratch_) {
      erase_transfer_slot(index_.at(id));
    }
    // Headless transfers whose predicted completion arrived.
    if (!due_headless_.empty()) {
      std::swap(due_headless_, due_scratch_);
      due_headless_.clear();
      for (const auto& [tslot, id] : due_scratch_) {
        if (tslot >= transfer_pool_.size() || transfer_pool_[tslot].id != id) {
          continue;  // already gone (cancelled or duplicate notification)
        }
        integrate_transfer(tslot);
        Transfer& t = transfer_pool_[tslot];
        if (t.remaining() <= kByteEps) {
          rates_dirty_ = true;
          erase_transfer_slot(tslot);
        } else if (t.cached_rate > kRateEps) {
          schedule_headless_completion(tslot);  // stale prediction: re-arm
        }
      }
      due_scratch_.clear();
    }
    for (auto& fn : notify_scratch_) fn();  // may re-enter touch(); sets dirty_

    // The incremental fast path: when no flow set, cap, capacity or
    // background changed, current rates — and the already-scheduled
    // completion events — are still exact.  Poll ticks and pure-progress
    // touches stop here without running the solver.
    if (rates_dirty_) {
      rates_dirty_ = false;
      ++reallocations_;
      solve_dirty_components();
      schedule_next_event();
    }
  } while (dirty_);
  in_touch_ = false;
  if (index_.empty()) poll_event_.cancel();
}

void FluidNetwork::ensure_polling() {
  if (poll_interval_ <= 0 || poll_event_.pending()) return;
  poll_event_ = sim_.schedule_every(poll_interval_, [this] {
    if (index_.empty()) return false;  // stop ticking when idle
    touch();
    return true;
  });
}

}  // namespace esg::net
