// Multi-site topology: sites joined by WAN links, hosts attached to sites.
//
// Mirrors the paper's Fig 1 / Fig 7 testbed: clusters of workstations at the
// Dallas convention center, LBNL, ANL, ISI, NCAR, SDSC and LLNL, joined by
// SciNET / NTON / HSCC / Abilene segments.  Each host contributes three
// capacitated resources to the data path — its disk array, its NIC, and its
// CPU (the paper's GbE hosts were interrupt-limited at 100% CPU) — and each
// link contributes one resource per direction (full duplex).
//
// Routing is static shortest-latency (Dijkstra, deterministic tie-breaks);
// outages do not reroute, they stall flows until GridFTP's restart logic
// kicks in — exactly the behaviour the paper reports in Figure 8.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "net/fluid.hpp"
#include "sim/simulation.hpp"

namespace esg::net {

class Network;

struct LinkConfig {
  std::string name;
  std::string site_a;
  std::string site_b;
  Rate capacity = common::gbps(1);
  SimDuration latency = 5 * common::kMillisecond;  // one-way
  double loss = 0.0;  // packet loss probability (drives the Mathis cap)
};

class Link {
 public:
  const std::string& name() const { return name_; }
  const std::string& site_a() const { return site_a_; }
  const std::string& site_b() const { return site_b_; }
  SimDuration latency() const { return latency_; }
  double loss() const { return loss_; }
  /// Configured (healthy) values, kept so chaos injection can restore a
  /// link after a brownout or loss spike ends.
  Rate nominal_capacity() const { return nominal_capacity_; }
  double nominal_loss() const { return nominal_loss_; }
  Resource* forward() const { return forward_; }   // a -> b direction
  Resource* backward() const { return backward_; } // b -> a direction

 private:
  friend class Network;
  std::string name_, site_a_, site_b_;
  SimDuration latency_ = 0;
  double loss_ = 0.0;
  Rate nominal_capacity_ = 0.0;
  double nominal_loss_ = 0.0;
  Resource* forward_ = nullptr;
  Resource* backward_ = nullptr;
};

struct HostConfig {
  std::string name;
  std::string site;
  Rate nic_rate = common::gbps(1);
  /// Interrupt-limited byte-processing ceiling; interrupt coalescing and
  /// jumbo frames raise it (paper §7 discussion).
  Rate cpu_rate = common::mbps(700);
  /// Aggregate disk bandwidth (the paper used software RAID to keep disk
  /// off the critical path at SC'2000, but hit disk limits in Fig 8).
  Rate disk_rate = common::mbps(400);
};

class Host {
 public:
  const std::string& name() const { return name_; }
  const std::string& site() const { return site_; }
  Resource* nic() const { return nic_; }
  Resource* cpu() const { return cpu_; }
  Resource* disk() const { return disk_; }
  bool down() const { return down_; }

 private:
  friend class Network;
  std::string name_, site_;
  Resource* nic_ = nullptr;
  Resource* cpu_ = nullptr;
  Resource* disk_ = nullptr;
  bool down_ = false;
};

/// End-to-end path description consumed by the TCP model.
struct PathInfo {
  std::vector<const Resource*> resources;  // ordered src -> dst
  SimDuration latency = 0;                 // one-way propagation
  double loss = 0.0;                       // end-to-end loss probability
  bool up = true;                          // false if any hop is down
};

class Network {
 public:
  explicit Network(sim::Simulation& simulation);

  sim::Simulation& simulation() { return sim_; }
  FluidNetwork& fluid() { return fluid_; }

  void add_site(const std::string& name);
  Link* add_link(const LinkConfig& config);
  Host* add_host(const HostConfig& config);

  Host* find_host(const std::string& name);
  Link* find_link(const std::string& name);
  bool has_site(const std::string& name) const { return sites_.count(name) > 0; }

  /// Full data path between two hosts.  `include_disks` is off for paths
  /// that never touch storage (NWS probe traffic, control channels).
  PathInfo path(const Host& src, const Host& dst,
                bool include_disks = true) const;

  /// Round-trip time between two hosts (propagation only).
  SimDuration rtt(const Host& a, const Host& b) const;

  /// Take a whole host down/up (power-failure injection): its NIC passes no
  /// bytes and services on it stop answering.
  void set_host_down(Host& host, bool down);

  /// Take a WAN link down/up in both directions.
  void set_link_down(Link& link, bool down);

  /// Brownout injection: degrade a link to `fraction` of its nominal
  /// capacity in both directions (0 = as good as down, 1 = restore).  Flows
  /// in progress re-share the reduced capacity immediately.
  void set_link_brownout(Link& link, double fraction);

  /// Loss-spike injection: change a link's packet-loss probability.  The
  /// Mathis cap is computed at connection setup, so spikes throttle
  /// transfers that *start* during the spike — established flows ride it
  /// out, exactly like real long-lived TCP under transient loss.
  void set_link_loss(Link& link, double loss);

  /// Apply an outage by name: matches a link name or a host name.
  /// Unknown targets are ignored (they may be service-level targets).
  void apply_outage(const std::string& target, bool down);

  /// Control-plane message: invokes `deliver(true)` after the one-way
  /// latency plus serialization, or `deliver(false)` after a timeout if the
  /// path is down at send time (lost datagram model).
  void send_message(const Host& from, const Host& to, Bytes size,
                    std::function<void(bool ok)> deliver);

  std::vector<std::string> host_names() const;

 private:
  struct Route {
    std::vector<const Link*> links;  // in order from site_a side
    std::vector<bool> forward;       // per link: traversed a->b?
    SimDuration latency = 0;
    double loss = 0.0;
  };

  const Route* route_between(const std::string& site_a,
                             const std::string& site_b) const;
  Route compute_route(const std::string& from, const std::string& to) const;

  sim::Simulation& sim_;
  FluidNetwork fluid_;
  std::map<std::string, bool> sites_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::map<std::string, std::unique_ptr<Link>> links_;
  mutable std::map<std::pair<std::string, std::string>, Route> route_cache_;

  // Intra-host / intra-site hop costs.
  static constexpr SimDuration kLocalLatency = 50 * common::kMicrosecond;
  static constexpr SimDuration kLanLatency = 200 * common::kMicrosecond;
  static constexpr SimDuration kMessageOverhead = 100 * common::kMicrosecond;
  static constexpr SimDuration kLostMessageTimeout = 5 * common::kSecond;
  static constexpr Rate kControlRate = common::mbps(100);
};

}  // namespace esg::net
