#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>
#include <queue>
#include <set>

namespace esg::net {

Network::Network(sim::Simulation& simulation)
    : sim_(simulation), fluid_(simulation) {}

void Network::add_site(const std::string& name) { sites_.emplace(name, true); }

Link* Network::add_link(const LinkConfig& config) {
  assert(sites_.count(config.site_a) && "unknown site");
  assert(sites_.count(config.site_b) && "unknown site");
  auto link = std::make_unique<Link>();
  link->name_ = config.name;
  link->site_a_ = config.site_a;
  link->site_b_ = config.site_b;
  link->latency_ = config.latency;
  link->loss_ = config.loss;
  link->nominal_capacity_ = config.capacity;
  link->nominal_loss_ = config.loss;
  link->forward_ = fluid_.add_resource("link:" + config.name + ":fwd",
                                       config.capacity);
  link->backward_ = fluid_.add_resource("link:" + config.name + ":bwd",
                                        config.capacity);
  Link* ptr = link.get();
  auto [it, inserted] = links_.emplace(config.name, std::move(link));
  assert(inserted && "duplicate link name");
  (void)it;
  route_cache_.clear();
  return ptr;
}

Host* Network::add_host(const HostConfig& config) {
  assert(sites_.count(config.site) && "unknown site");
  auto host = std::make_unique<Host>();
  host->name_ = config.name;
  host->site_ = config.site;
  host->nic_ = fluid_.add_resource("host:" + config.name + ":nic",
                                   config.nic_rate);
  host->cpu_ = fluid_.add_resource("host:" + config.name + ":cpu",
                                   config.cpu_rate);
  host->disk_ = fluid_.add_resource("host:" + config.name + ":disk",
                                    config.disk_rate);
  Host* ptr = host.get();
  auto [it, inserted] = hosts_.emplace(config.name, std::move(host));
  assert(inserted && "duplicate host name");
  (void)it;
  return ptr;
}

Host* Network::find_host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Link* Network::find_link(const std::string& name) {
  auto it = links_.find(name);
  return it == links_.end() ? nullptr : it->second.get();
}

Network::Route Network::compute_route(const std::string& from,
                                      const std::string& to) const {
  // Dijkstra over sites, minimizing latency with deterministic tie-breaks
  // (hop count, then lexical link name).
  struct NodeState {
    SimDuration dist = std::numeric_limits<SimDuration>::max();
    int hops = 0;
    const Link* via = nullptr;
    std::string prev;
    bool done = false;
  };
  std::map<std::string, NodeState> state;
  for (const auto& [name, unused] : sites_) state[name];
  (void)state;

  state[from].dist = 0;
  using QueueItem = std::tuple<SimDuration, int, std::string>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.emplace(0, 0, from);
  while (!pq.empty()) {
    auto [dist, hops, site] = pq.top();
    pq.pop();
    auto& st = state[site];
    if (st.done) continue;
    st.done = true;
    if (site == to) break;
    // Deterministic edge order: links_ is an ordered map by name.
    for (const auto& [lname, link] : links_) {
      std::string other;
      if (link->site_a_ == site) {
        other = link->site_b_;
      } else if (link->site_b_ == site) {
        other = link->site_a_;
      } else {
        continue;
      }
      auto& ost = state[other];
      const SimDuration nd = dist + link->latency_;
      const int nh = hops + 1;
      if (nd < ost.dist || (nd == ost.dist && nh < ost.hops)) {
        ost.dist = nd;
        ost.hops = nh;
        ost.via = link.get();
        ost.prev = site;
        pq.emplace(nd, nh, other);
      }
    }
  }

  Route route;
  if (state[to].dist == std::numeric_limits<SimDuration>::max()) {
    return route;  // unreachable: empty route with zero latency
  }
  // Walk predecessors back to `from`.
  std::string cursor = to;
  while (cursor != from) {
    const auto& st = state[cursor];
    route.links.push_back(st.via);
    route.forward.push_back(st.via->site_b_ == cursor);
    route.latency += st.via->latency_;
    cursor = st.prev;
  }
  std::reverse(route.links.begin(), route.links.end());
  std::reverse(route.forward.begin(), route.forward.end());
  double pass = 1.0;
  for (const Link* l : route.links) pass *= 1.0 - l->loss_;
  route.loss = 1.0 - pass;
  return route;
}

const Network::Route* Network::route_between(const std::string& site_a,
                                             const std::string& site_b) const {
  const auto key = std::make_pair(site_a, site_b);
  auto it = route_cache_.find(key);
  if (it == route_cache_.end()) {
    it = route_cache_.emplace(key, compute_route(site_a, site_b)).first;
  }
  return &it->second;
}

PathInfo Network::path(const Host& src, const Host& dst,
                       bool include_disks) const {
  PathInfo info;
  if (&src == &dst) {
    // Local copy: disk-to-disk on one host.
    if (include_disks) info.resources.push_back(src.disk_);
    info.resources.push_back(src.cpu_);
    info.latency = kLocalLatency;
    info.up = !src.down_;
    return info;
  }
  if (include_disks) info.resources.push_back(src.disk_);
  info.resources.push_back(src.cpu_);
  info.resources.push_back(src.nic_);
  if (src.site_ == dst.site_) {
    info.latency = kLanLatency;
  } else {
    const Route* route = route_between(src.site_, dst.site_);
    if (route->links.empty()) {
      info.up = false;  // unreachable
      return info;
    }
    for (std::size_t i = 0; i < route->links.size(); ++i) {
      const Link* l = route->links[i];
      info.resources.push_back(route->forward[i] ? l->forward_ : l->backward_);
    }
    info.latency = route->latency + kLanLatency;
    info.loss = route->loss;
  }
  info.resources.push_back(dst.nic_);
  info.resources.push_back(dst.cpu_);
  if (include_disks) info.resources.push_back(dst.disk_);
  info.up = !src.down_ && !dst.down_;
  for (const Resource* r : info.resources) {
    if (r->down()) info.up = false;
  }
  return info;
}

SimDuration Network::rtt(const Host& a, const Host& b) const {
  return 2 * path(a, b, /*include_disks=*/false).latency;
}

void Network::set_host_down(Host& host, bool down) {
  host.down_ = down;
  fluid_.set_down(host.nic_, down);
  sim_.flight_recorder().record("net", down ? "host.down" : "host.up",
                                host.name());
}

void Network::set_link_down(Link& link, bool down) {
  fluid_.batch([&] {
    fluid_.set_down(link.forward_, down);
    fluid_.set_down(link.backward_, down);
  });
  sim_.flight_recorder().record("net", down ? "link.down" : "link.up",
                                link.name());
}

void Network::set_link_brownout(Link& link, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const Rate capacity = link.nominal_capacity_ * fraction;
  fluid_.batch([&] {
    fluid_.set_capacity(link.forward_, capacity);
    fluid_.set_capacity(link.backward_, capacity);
  });
  char frac[32];
  std::snprintf(frac, sizeof frac, "%g", fraction);
  sim_.flight_recorder().record(
      "net", fraction < 1.0 ? "link.brownout" : "link.restored", link.name(),
      {{"fraction", frac}});
}

void Network::set_link_loss(Link& link, double loss) {
  link.loss_ = std::clamp(loss, 0.0, 1.0);
  // Routes cache the folded end-to-end loss; recompute lazily.
  route_cache_.clear();
  char rate[32];
  std::snprintf(rate, sizeof rate, "%g", link.loss_);
  sim_.flight_recorder().record(
      "net", link.loss_ > 0.0 ? "link.loss" : "link.loss_cleared", link.name(),
      {{"loss", rate}});
}

void Network::apply_outage(const std::string& target, bool down) {
  if (Link* link = find_link(target)) {
    set_link_down(*link, down);
    return;
  }
  if (Host* host = find_host(target)) {
    set_host_down(*host, down);
  }
}

void Network::send_message(const Host& from, const Host& to, Bytes size,
                           std::function<void(bool ok)> deliver) {
  const PathInfo info = path(from, to, /*include_disks=*/false);
  if (!info.up) {
    sim_.schedule_after(kLostMessageTimeout,
                        [deliver = std::move(deliver)] { deliver(false); });
    return;
  }
  const auto serialize = static_cast<SimDuration>(
      static_cast<double>(size) / kControlRate *
      static_cast<double>(common::kSecond));
  sim_.schedule_after(info.latency + serialize + kMessageOverhead,
                      [deliver = std::move(deliver)] { deliver(true); });
}

std::vector<std::string> Network::host_names() const {
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& [name, unused] : hosts_) out.push_back(name);
  return out;
}

}  // namespace esg::net
