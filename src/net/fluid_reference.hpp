// Reference max-min water-filling solver.
//
// This is the pre-dense FluidNetwork::reallocate() kept verbatim: pointer
// paths, std::map bookkeeping, state rebuilt from scratch on every call.  It
// exists for two reasons:
//
//  * Correctness oracle — tests/fluid_scale_test.cpp asserts the dense
//    incremental solver in net/fluid.cpp produces identical rate vectors on
//    randomized topologies, including mid-transfer cap changes, resource
//    down/up and flow additions.
//  * Performance baseline — bench/bench_fluid_scale.cpp times this
//    implementation against the dense solver on the same flow population,
//    so the speedup is measured inside one binary rather than across
//    commits.
//
// Do not optimise this file; its value is being the old algorithm.
#pragma once

#include <vector>

#include "net/fluid.hpp"

namespace esg::net {

/// One flow as the reference solver sees it: a pointer path over live
/// resources (whose effective_capacity() is read at solve time) and a cap.
struct ReferenceFlow {
  std::vector<const Resource*> path;
  Rate cap = kUnlimitedRate;
  Rate rate = 0.0;  // output
};

/// Assign max-min fair rates with per-flow caps by progressive filling.
/// Exactly the seed FluidNetwork solver: every flow ends either frozen at
/// its cap or crossing a saturated resource.
void reference_waterfill(std::vector<ReferenceFlow>& flows);

}  // namespace esg::net
