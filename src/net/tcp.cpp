#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esg::net {

using common::Errc;
using common::Error;
using common::Status;

Rate TcpTransfer::mathis_cap(Bytes mss, SimDuration rtt, double loss) {
  if (loss <= 0.0) return kUnlimitedRate;
  const double rtt_s = common::to_seconds(rtt);
  if (rtt_s <= 0.0) return kUnlimitedRate;
  return static_cast<double>(mss) / rtt_s * std::sqrt(1.5 / loss);
}

Rate TcpTransfer::window_cap(Bytes buffer, SimDuration rtt) {
  const double rtt_s = common::to_seconds(rtt);
  if (rtt_s <= 0.0) return kUnlimitedRate;
  return static_cast<double>(buffer) / rtt_s;
}

TcpTransfer::TcpTransfer(Network& network, const Host& src, const Host& dst,
                         Bytes size, TcpOptions options,
                         TcpCallbacks callbacks)
    : net_(network),
      src_(src),
      dst_(dst),
      size_(size),
      options_(options),
      callbacks_(std::move(callbacks)) {
  assert(options_.streams >= 1);
  const PathInfo info = net_.path(src_, dst_, options_.include_disks);
  rtt_ = 2 * info.latency;
  loss_ = info.loss;
  target_cap_ = std::min(window_cap(options_.buffer_size, rtt_),
                         mathis_cap(options_.mss, rtt_, loss_));
  last_progress_ = net_.simulation().now();
  span_ = net_.simulation().tracer().span("net.tcp", "net",
                                          options_.obs_track);
  span_.set_attr("src", src_.name());
  span_.set_attr("dst", dst_.name());
  span_.set_attr("streams", std::to_string(options_.streams));

  if (!info.up) {
    // Connection attempt into an outage: fail after the dead interval, the
    // same way a real connect() would time out.
    connect_event_ = net_.simulation().schedule_after(
        options_.dead_interval,
        [this] { finish(Error{Errc::unavailable, "path down at connect"}); });
    return;
  }
  connect_event_ = net_.simulation().schedule_after(
      options_.connect_delay, [this] { begin(); });
}

TcpTransfer::~TcpTransfer() { cancel(); }

void TcpTransfer::begin() {
  state_ = State::running;
  const PathInfo info = net_.path(src_, dst_, options_.include_disks);

  // Initial cap: slow start begins around 10 MSS per RTT; a warm (cached)
  // channel starts at the full window immediately.
  const Rate initial =
      options_.slow_start
          ? std::min(target_cap_,
                     window_cap(10 * options_.mss, std::max<SimDuration>(
                                                       rtt_, common::kMillisecond)))
          : target_cap_;
  current_cap_ = initial;

  std::vector<FlowSpec> flows(static_cast<std::size_t>(options_.streams),
                              FlowSpec{info.resources, initial});
  TransferCallbacks cbs;
  cbs.on_progress = [this](Bytes delta, SimTime now) {
    last_progress_ = now;
    if (callbacks_.on_progress) callbacks_.on_progress(delta, now);
  };
  cbs.on_complete = [this] {
    delivered_snapshot_ = size_;
    transfer_id_ = 0;
    finish(Status{});
  };
  transfer_id_ = net_.fluid().start_transfer(std::move(flows), size_,
                                             std::move(cbs));

  // Slow-start ramp: double every RTT until the steady-state cap.
  if (options_.slow_start && current_cap_ < target_cap_) {
    const SimDuration step = std::max<SimDuration>(rtt_, common::kMillisecond);
    ramp_event_ = net_.simulation().schedule_every(step, [this] {
      if (state_ != State::running) return false;
      apply_cap(std::min(target_cap_, current_cap_ * 2.0));
      return current_cap_ < target_cap_;
    });
  }

  // Stall watchdog.
  if (options_.dead_interval > 0) {
    const SimDuration check = std::max<SimDuration>(
        options_.dead_interval / 4, common::kMillisecond);
    watchdog_event_ = net_.simulation().schedule_every(check, [this] {
      if (state_ != State::running) return false;
      const SimTime now = net_.simulation().now();
      if (now - last_progress_ >= options_.dead_interval) {
        finish(Error{Errc::timed_out, "no progress on data channel"});
        return false;
      }
      return true;
    });
  }
}

void TcpTransfer::apply_cap(Rate cap) {
  current_cap_ = cap;
  if (transfer_id_ == 0) return;
  // One reallocation for the whole stream group, not one per stream.
  net_.fluid().set_transfer_cap(transfer_id_, cap);
}

Bytes TcpTransfer::delivered() const {
  if (transfer_id_ != 0 && net_.fluid().transfer_active(transfer_id_)) {
    return net_.fluid().transferred(transfer_id_);
  }
  return delivered_snapshot_;
}

Rate TcpTransfer::rate() const {
  if (transfer_id_ != 0) return net_.fluid().current_rate(transfer_id_);
  return 0.0;
}

Bytes TcpTransfer::cancel() {
  connect_event_.cancel();
  ramp_event_.cancel();
  watchdog_event_.cancel();
  if (transfer_id_ != 0) {
    delivered_snapshot_ = net_.fluid().cancel_transfer(transfer_id_);
    transfer_id_ = 0;
  }
  if (state_ == State::connecting || state_ == State::running) {
    state_ = State::cancelled;
    span_.set_attr("status", "cancelled");
  }
  span_.end();
  // Terminal: release the callbacks so anything they capture (often the
  // owning transfer op, via shared_ptr) is not pinned by this object.
  callbacks_.on_progress = nullptr;
  callbacks_.on_complete = nullptr;
  return delivered_snapshot_;
}

void TcpTransfer::finish(Status status) {
  if (state_ == State::done || state_ == State::failed ||
      state_ == State::cancelled) {
    return;
  }
  connect_event_.cancel();
  ramp_event_.cancel();
  watchdog_event_.cancel();
  if (transfer_id_ != 0) {
    delivered_snapshot_ = net_.fluid().cancel_transfer(transfer_id_);
    transfer_id_ = 0;
  }
  state_ = status.ok() ? State::done : State::failed;
  span_.set_attr("status", status.ok() ? "ok"
                                       : status.error().to_string());
  span_.end();
  callbacks_.on_progress = nullptr;
  if (callbacks_.on_complete) {
    // The callback may destroy this object; move it out first.
    auto cb = std::move(callbacks_.on_complete);
    callbacks_.on_complete = nullptr;
    cb(std::move(status));
  }
}

}  // namespace esg::net
