// Fluid-flow network model.
//
// This is the substrate that stands in for the paper's SC'2000 testbed
// (SciNET / NTON / HSCC, Fig 7).  Everything that can limit a transfer is a
// capacitated Resource: a WAN segment, a NIC, a host CPU (the paper observed
// GbE hosts pegged at 100% CPU servicing interrupts), or a disk (the Fig 8
// plateau sits below the NIC rate because of disk bandwidth).  A Transfer is
// a group of Flows (one per TCP stream) that drain a shared byte pool — this
// models GridFTP's extended block mode, where any stream may carry any block
// of the file.
//
// Rates are assigned by progressive filling (max-min fairness with per-flow
// caps): every flow is either limited by its own cap (TCP window / loss
// model, see net/tcp.hpp) or crosses at least one saturated resource.
// Between rate changes flows progress linearly, so the simulator only needs
// events at mutations and at exactly-predicted completions, plus an optional
// periodic poll that gives the bandwidth samplers their 100 ms resolution
// (Table 1 reports a peak over 0.1 s).
//
// The solver is built for thousands of concurrent flows:
//
//  * Dense indexing — resources are interned to small integer ids at
//    add_resource() time; flow paths are id arrays and all per-resource
//    solver state lives in flat vectors reused across invocations, so the
//    inner water-filling loop never touches a std::map.
//  * Incremental reallocation — a rates-dirty flag tracks whether any
//    flow/cap/capacity/background changed since the last solve.  Poll ticks
//    and pure-progress touches integrate byte counts and fire progress
//    callbacks without re-running the solver or rescheduling the (still
//    valid) next-completion event.
//  * Coalesced bookkeeping — each transfer caches its aggregate rate
//    (refreshed by the solver), utilization gauges are written only when a
//    value changes, and batch()/set_transfer_cap() fold multi-mutation
//    updates into one solve.
//
// The pre-dense solver is retained verbatim in net/fluid_reference.hpp; the
// property tests assert rate-vector equivalence and bench_fluid_scale tracks
// the speedup.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace esg::net {

using common::Bytes;
using common::Rate;
using common::SimDuration;
using common::SimTime;

inline constexpr Rate kUnlimitedRate = std::numeric_limits<Rate>::infinity();
inline constexpr Bytes kUnboundedBytes = -1;

/// A capacitated element of the data path.  Capacity is in bytes/second.
class Resource {
 public:
  Resource(std::string name, Rate capacity)
      : name_(std::move(name)), nominal_(capacity) {}

  const std::string& name() const { return name_; }
  /// Dense index assigned at add_resource() time; stable for the network's
  /// lifetime and contiguous from 0.
  std::uint32_t id() const { return id_; }
  Rate nominal_capacity() const { return nominal_; }
  bool down() const { return down_; }
  Rate background_load() const { return background_; }

  /// Capacity available to foreground flows right now.
  Rate effective_capacity() const {
    if (down_) return 0.0;
    return std::max(0.0, nominal_ - background_);
  }

  /// Fraction of nominal capacity in use (foreground + background) as of
  /// the last rate allocation; mirrored into the simulation's
  /// `net_resource_utilization{resource=...}` gauge.
  double utilization() const { return utilization_; }

 private:
  friend class FluidNetwork;
  std::string name_;
  std::uint32_t id_ = 0;
  Rate nominal_;
  Rate background_ = 0.0;  // consumed by modeled cross-traffic
  bool down_ = false;      // failure injection
  double utilization_ = 0.0;
  obs::Gauge* util_gauge_ = nullptr;  // owned by the sim's registry
};

/// One TCP stream's path and its self-imposed rate cap.
struct FlowSpec {
  std::vector<const Resource*> path;
  Rate cap = kUnlimitedRate;
};

struct TransferCallbacks {
  /// Called whenever bytes are integrated (at every network event and poll
  /// tick): delta bytes since the previous call.
  std::function<void(Bytes delta, SimTime now)> on_progress;
  /// Called exactly once when the transfer's byte pool drains.
  std::function<void()> on_complete;
};

using TransferId = std::uint64_t;

class FluidNetwork {
 public:
  explicit FluidNetwork(sim::Simulation& simulation,
                        SimDuration poll_interval = 100 * common::kMillisecond);
  ~FluidNetwork();

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  // ---- resources ----

  /// Create a resource; the returned pointer is stable for the network's
  /// lifetime.  Names must be unique.
  Resource* add_resource(std::string name, Rate capacity);

  Resource* find_resource(const std::string& name);

  /// Failure injection: a down resource passes zero bytes.
  void set_down(Resource* resource, bool down);

  /// Modeled cross-traffic occupying part of a resource's capacity.
  void set_background(Resource* resource, Rate load);

  /// Change a resource's nominal capacity (e.g. link upgrade experiments).
  void set_capacity(Resource* resource, Rate capacity);

  // ---- transfers ----

  /// Begin a transfer of `total` bytes (kUnboundedBytes = run until
  /// cancelled) carried by `flows`.  Returns an id used for later control.
  TransferId start_transfer(std::vector<FlowSpec> flows, Bytes total,
                            TransferCallbacks callbacks);

  /// Stop a transfer; no further callbacks fire.  Returns bytes delivered.
  Bytes cancel_transfer(TransferId id);

  /// Adjust one member flow's cap (slow-start ramp, AIMD backoff).
  void set_flow_cap(TransferId id, std::size_t flow_index, Rate cap);

  /// Set every member flow's cap at once — one reallocation instead of one
  /// per stream (the TCP slow-start ramp caps all streams together).
  void set_transfer_cap(TransferId id, Rate cap);

  /// Add another member flow to a running transfer (parallelism changes).
  void add_flow(TransferId id, FlowSpec flow);

  /// Coalesce several mutations into a single reallocation:
  /// `fluid.batch([&]{ set_down(a, true); set_down(b, true); });`
  /// Nested batches solve once at the outermost end.
  template <typename F>
  void batch(F&& f) {
    ++batch_depth_;
    f();
    --batch_depth_;
    if (batch_depth_ == 0 && rates_dirty_) touch();
  }

  bool transfer_active(TransferId id) const;
  Bytes transferred(TransferId id) const;
  /// Bytes carried by one member flow (per-stripe restart markers); clamped
  /// to the transfer's pool like transferred().
  Bytes flow_transferred(TransferId id, std::size_t flow_index) const;
  /// Current aggregate rate of the transfer (post-allocation).
  Rate current_rate(TransferId id) const;
  /// Current rate of one member flow.
  Rate flow_rate(TransferId id, std::size_t flow_index) const;

  std::size_t active_transfers() const { return transfers_.size(); }

  /// Force integration + reallocation-if-dirty now (tests use this).
  void update();

  // ---- introspection (tests + bench_fluid_scale) ----

  /// How many times the water-filling solver has run.  Steady-state poll
  /// ticks must not advance this.
  std::uint64_t reallocations() const { return reallocations_; }
  /// How many touches (integration passes) have run.
  std::uint64_t touches() const { return touches_; }
  /// How many utilization gauge writes actually happened (value changes).
  std::uint64_t util_gauge_updates() const { return util_gauge_updates_; }

 private:
  struct Flow {
    std::vector<std::uint32_t> path;  // dense resource ids
    Rate cap = kUnlimitedRate;
    Rate rate = 0.0;
    double delivered = 0.0;  // bytes carried by this flow
  };

  struct Transfer {
    TransferId id = 0;
    std::vector<Flow> flows;
    double total = -1.0;      // <0: unbounded
    double delivered = 0.0;   // bytes drained from the pool
    double reported = 0.0;    // bytes already surfaced via on_progress
    Rate cached_rate = 0.0;   // aggregate flow rate, refreshed by the solver
    TransferCallbacks callbacks;

    double remaining() const {
      return total < 0 ? std::numeric_limits<double>::infinity()
                       : total - delivered;
    }
  };

  void integrate_to_now();
  void reallocate();
  void publish_utilization();  // reads the solver's usage scratch
  void schedule_next_event();
  void touch();  // integrate, run completions, reallocate-if-dirty, reschedule
  void ensure_polling();
  /// Record a rate-affecting change; solves immediately unless inside
  /// batch() or a touch already in flight.
  void on_mutation();

  sim::Simulation& sim_;
  SimDuration poll_interval_;
  std::map<std::string, std::unique_ptr<Resource>> resources_;
  std::vector<Resource*> resources_by_id_;  // dense id -> resource
  std::map<TransferId, Transfer> transfers_;
  TransferId next_id_ = 1;
  SimTime last_integration_ = 0;
  sim::EventHandle next_event_;
  sim::EventHandle poll_event_;
  bool in_touch_ = false;
  bool dirty_ = false;        // re-run the touch loop (re-entrant mutation)
  bool rates_dirty_ = false;  // some flow/cap/capacity/background changed
  int batch_depth_ = 0;
  std::uint64_t reallocations_ = 0;
  std::uint64_t touches_ = 0;
  std::uint64_t util_gauge_updates_ = 0;

  // Solver scratch, reused across reallocations (indexed by resource id).
  struct SolverEntry {
    Flow* flow;
    bool frozen = false;
  };
  std::vector<SolverEntry> entries_scratch_;
  std::vector<double> usage_scratch_;
  std::vector<double> cap_scratch_;
  std::vector<int> unfrozen_scratch_;
  std::vector<std::uint32_t> touched_scratch_;  // ids used by any flow
  std::vector<std::uint8_t> touched_mark_;      // 0/1 per id, cleared on exit
  // Touch scratch (safe to reuse: touch never runs re-entrantly).
  std::vector<TransferId> completed_scratch_;
  std::vector<std::function<void()>> notify_scratch_;
};

}  // namespace esg::net
