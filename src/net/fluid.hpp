// Fluid-flow network model.
//
// This is the substrate that stands in for the paper's SC'2000 testbed
// (SciNET / NTON / HSCC, Fig 7).  Everything that can limit a transfer is a
// capacitated Resource: a WAN segment, a NIC, a host CPU (the paper observed
// GbE hosts pegged at 100% CPU servicing interrupts), or a disk (the Fig 8
// plateau sits below the NIC rate because of disk bandwidth).  A Transfer is
// a group of Flows (one per TCP stream) that drain a shared byte pool — this
// models GridFTP's extended block mode, where any stream may carry any block
// of the file.
//
// Rates are assigned by progressive filling (max-min fairness with per-flow
// caps): every flow is either limited by its own cap (TCP window / loss
// model, see net/tcp.hpp) or crosses at least one saturated resource.
// Between rate changes flows progress linearly, so the simulator only needs
// events at mutations and at exactly-predicted completions, plus an optional
// periodic poll that gives the bandwidth samplers their 100 ms resolution
// (Table 1 reports a peak over 0.1 s).
//
// The solver is built for a hundred thousand concurrent flows:
//
//  * Component partitioning — the flow/resource bipartite graph is kept
//    decomposed into connected components.  A mutation dirties only the
//    component it lands in, and a solve walks only that component's flows,
//    so the cost of a cap change on one island of the network is bounded by
//    the island's size, not the fleet's.  Components merge eagerly when a
//    new flow bridges them and split lazily (union-find rebuild at the next
//    solve) when a flow removal disconnects them.
//  * Flat arena storage — flows live in one contiguous pool, their paths in
//    one shared id array (offset + length per flow), transfers in a slotted
//    pool; a component re-solve walks contiguous memory and performs zero
//    heap allocations in steady state.
//  * Observed vs headless transfers — a transfer with callbacks ("observed")
//    keeps the exact legacy timeline: integrated at every touch, progress
//    surfaced at every poll tick, one shared next-completion event over the
//    observed set.  A callback-free transfer ("headless") is integrated
//    lazily against its own clock and completes through a per-transfer event
//    in the simulation's calendar queue, so a million idle flows cost
//    nothing per touch.  You pay per touch only for what you watch.
//  * Incremental reallocation — a rates-dirty flag plus per-component dirty
//    flags track whether any flow/cap/capacity/background changed since the
//    last solve.  Poll ticks and pure-progress touches integrate byte
//    counts and fire progress callbacks without re-running the solver.
//  * Coalesced bookkeeping — each transfer caches its aggregate rate
//    (refreshed by the solver), utilization gauges are written only when a
//    value changes, and batch()/set_transfer_cap() fold multi-mutation
//    updates into one solve.
//
// Within one component the water-filling arithmetic is iteration-order
// independent, so a single-component world produces bit-identical rates to
// the pre-partitioned global solver — the flight-recorder digests of the
// checked-in bench baselines replay unchanged.  The pre-dense solver is
// retained verbatim in net/fluid_reference.hpp; the property tests assert
// rate-vector equivalence and bench_fluid_scale tracks the speedup.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace esg::net {

using common::Bytes;
using common::Rate;
using common::SimDuration;
using common::SimTime;

inline constexpr Rate kUnlimitedRate = std::numeric_limits<Rate>::infinity();
inline constexpr Bytes kUnboundedBytes = -1;

/// A capacitated element of the data path.  Capacity is in bytes/second.
class Resource {
 public:
  Resource(std::string name, Rate capacity)
      : name_(std::move(name)), nominal_(capacity) {}

  const std::string& name() const { return name_; }
  /// Dense index assigned at add_resource() time; stable for the network's
  /// lifetime and contiguous from 0.
  std::uint32_t id() const { return id_; }
  Rate nominal_capacity() const { return nominal_; }
  bool down() const { return down_; }
  Rate background_load() const { return background_; }

  /// Capacity available to foreground flows right now.
  Rate effective_capacity() const {
    if (down_) return 0.0;
    return std::max(0.0, nominal_ - background_);
  }

  /// Fraction of nominal capacity in use (foreground + background) as of
  /// the last rate allocation; mirrored into the simulation's
  /// `net_resource_utilization{resource=...}` gauge.
  double utilization() const { return utilization_; }

 private:
  friend class FluidNetwork;
  std::string name_;
  std::uint32_t id_ = 0;
  Rate nominal_;
  Rate background_ = 0.0;  // consumed by modeled cross-traffic
  bool down_ = false;      // failure injection
  double utilization_ = 0.0;
  obs::Gauge* util_gauge_ = nullptr;  // owned by the sim's registry
};

/// One TCP stream's path and its self-imposed rate cap.
struct FlowSpec {
  std::vector<const Resource*> path;
  Rate cap = kUnlimitedRate;
};

struct TransferCallbacks {
  /// Called whenever bytes are integrated (at every network event and poll
  /// tick): delta bytes since the previous call.
  std::function<void(Bytes delta, SimTime now)> on_progress;
  /// Called exactly once when the transfer's byte pool drains.
  std::function<void()> on_complete;
};

using TransferId = std::uint64_t;

class FluidNetwork {
 public:
  explicit FluidNetwork(sim::Simulation& simulation,
                        SimDuration poll_interval = 100 * common::kMillisecond);
  ~FluidNetwork();

  FluidNetwork(const FluidNetwork&) = delete;
  FluidNetwork& operator=(const FluidNetwork&) = delete;

  // ---- resources ----

  /// Create a resource; the returned pointer is stable for the network's
  /// lifetime.  Names must be unique.
  Resource* add_resource(std::string name, Rate capacity);

  Resource* find_resource(const std::string& name);

  /// Failure injection: a down resource passes zero bytes.
  void set_down(Resource* resource, bool down);

  /// Modeled cross-traffic occupying part of a resource's capacity.
  void set_background(Resource* resource, Rate load);

  /// Change a resource's nominal capacity (e.g. link upgrade experiments).
  void set_capacity(Resource* resource, Rate capacity);

  // ---- transfers ----

  /// Begin a transfer of `total` bytes (kUnboundedBytes = run until
  /// cancelled) carried by `flows`.  Returns an id used for later control.
  TransferId start_transfer(std::vector<FlowSpec> flows, Bytes total,
                            TransferCallbacks callbacks);

  /// Stop a transfer; no further callbacks fire.  Returns bytes delivered.
  Bytes cancel_transfer(TransferId id);

  /// Adjust one member flow's cap (slow-start ramp, AIMD backoff).
  void set_flow_cap(TransferId id, std::size_t flow_index, Rate cap);

  /// Set every member flow's cap at once — one reallocation instead of one
  /// per stream (the TCP slow-start ramp caps all streams together).
  void set_transfer_cap(TransferId id, Rate cap);

  /// Add another member flow to a running transfer (parallelism changes).
  void add_flow(TransferId id, FlowSpec flow);

  /// Coalesce several mutations into a single reallocation:
  /// `fluid.batch([&]{ set_down(a, true); set_down(b, true); });`
  /// Nested batches solve once at the outermost end.
  template <typename F>
  void batch(F&& f) {
    ++batch_depth_;
    f();
    --batch_depth_;
    if (batch_depth_ == 0 && rates_dirty_) touch();
  }

  bool transfer_active(TransferId id) const;
  Bytes transferred(TransferId id) const;
  /// Bytes carried by one member flow (per-stripe restart markers); clamped
  /// to the transfer's pool like transferred().
  Bytes flow_transferred(TransferId id, std::size_t flow_index) const;
  /// Current aggregate rate of the transfer (post-allocation).
  Rate current_rate(TransferId id) const;
  /// Current rate of one member flow.
  Rate flow_rate(TransferId id, std::size_t flow_index) const;

  std::size_t active_transfers() const { return index_.size(); }

  /// Force integration + reallocation-if-dirty now (tests use this).
  void update();

  // ---- introspection (tests + bench_fluid_scale) ----

  /// How many touches triggered the solver.  Steady-state poll ticks must
  /// not advance this.
  std::uint64_t reallocations() const { return reallocations_; }
  /// How many touches (integration passes) have run.
  std::uint64_t touches() const { return touches_; }
  /// How many utilization gauge writes actually happened (value changes).
  std::uint64_t util_gauge_updates() const { return util_gauge_updates_; }

  /// Connected components currently live over the flow/resource graph
  /// (mirrored into the `net_components` gauge).
  std::size_t components() const { return live_components_; }
  /// Individual component solves (one touch may solve several components).
  std::uint64_t component_solves() const { return component_solves_; }
  /// Total flows walked by all component solves — the real work metric.
  /// An isolated mutation advances this by the touched component's size,
  /// not the network's flow count.
  std::uint64_t flows_solved_total() const { return flows_solved_total_; }
  /// Flow count of the most recent component solve.
  std::size_t last_solve_flows() const { return last_solve_flows_; }
  /// Largest component solved since the last reset_solve_stats().
  std::size_t max_solve_flows() const { return max_solve_flows_; }
  void reset_solve_stats() {
    last_solve_flows_ = 0;
    max_solve_flows_ = 0;
  }
  /// Lazy union-find rebuilds triggered by flow removals.
  std::uint64_t component_rebuilds() const { return rebuilds_; }
  /// Whether two resources currently sit in the same connected component
  /// (false when either carries no flow).
  bool same_component(const Resource* a, const Resource* b) const;

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  // ---- flat arenas ----

  struct Flow {
    std::uint32_t path_begin = 0;  // offset into path_pool_
    std::uint32_t path_len = 0;
    std::uint32_t transfer = kNone;       // transfer pool slot
    std::uint32_t comp = kNone;           // owning component
    std::uint32_t index_in_comp = kNone;  // position in comp's flow list
    Rate cap = kUnlimitedRate;
    Rate rate = 0.0;
    double delivered = 0.0;  // bytes carried by this flow
  };

  struct Transfer {
    TransferId id = 0;  // 0 = free slot
    std::vector<std::uint32_t> flows;  // flow pool slots
    double total = -1.0;      // <0: unbounded
    double delivered = 0.0;   // bytes drained from the pool
    double reported = 0.0;    // bytes already surfaced via on_progress
    Rate cached_rate = 0.0;   // aggregate flow rate, refreshed by the solver
    SimTime last_integrated = 0;  // headless: private integration clock
    bool observed = false;        // has progress/completion callbacks
    TransferCallbacks callbacks;
    sim::EventHandle completion;  // headless bounded: own completion event

    double remaining() const {
      return total < 0 ? std::numeric_limits<double>::infinity()
                       : total - delivered;
    }
  };

  /// One connected component of the flow/resource bipartite graph.
  struct Component {
    std::vector<std::uint32_t> flows;      // flow pool slots
    std::vector<std::uint32_t> resources;  // distinct resource ids
    bool live = false;
    bool dirty = false;          // needs a re-solve
    bool needs_rebuild = false;  // a flow was removed: may have split
  };

  // ---- internals ----

  std::uint32_t alloc_flow(const FlowSpec& spec);
  void free_flow(std::uint32_t fslot);
  std::uint32_t path_alloc(std::uint32_t len);
  std::uint32_t alloc_comp();
  void free_comp(std::uint32_t cid);
  void mark_dirty(std::uint32_t cid);
  /// Attach a freshly created flow to the component structure, merging every
  /// component its path bridges (smaller absorbed into largest).
  void assign_flow_component(std::uint32_t fslot);
  /// Detach a flow on removal; flags the component for a lazy rebuild.
  void remove_flow(std::uint32_t fslot);
  /// Union-find re-derivation of one rebuild-flagged component; appends any
  /// split-off components (already dirty) to `worklist`.
  void rebuild_component(std::uint32_t cid, std::vector<std::uint32_t>& worklist);

  void integrate_observed();
  void integrate_transfer(std::uint32_t tslot);
  void integrate_transfer_span(Transfer& t, double dt);
  void solve_dirty_components();
  void solve_component(std::uint32_t cid);
  void update_resource_gauge(Resource* res);
  void schedule_next_event();  // observed transfers' shared completion event
  void schedule_headless_completion(std::uint32_t tslot);
  void on_headless_due(std::uint32_t tslot, TransferId id);
  void erase_transfer_slot(std::uint32_t tslot);
  void touch();  // integrate, run completions, reallocate-if-dirty, reschedule
  void ensure_polling();
  /// Record a rate-affecting change; solves immediately unless inside
  /// batch() or a touch already in flight.
  void on_mutation();

  sim::Simulation& sim_;
  SimDuration poll_interval_;
  std::map<std::string, std::unique_ptr<Resource>> resources_;
  std::vector<Resource*> resources_by_id_;  // dense id -> resource

  // Arenas.
  std::vector<Flow> flow_pool_;
  std::vector<std::uint32_t> flow_free_;
  std::vector<std::uint32_t> path_pool_;  // concatenated resource-id paths
  std::map<std::uint32_t, std::vector<std::uint32_t>> path_free_;  // by length
  std::vector<Transfer> transfer_pool_;
  std::vector<std::uint32_t> transfer_free_;
  std::vector<Component> comp_pool_;
  std::vector<std::uint32_t> comp_free_;

  // Indexes.
  std::map<TransferId, std::uint32_t> index_;     // all transfers, id order
  std::map<TransferId, std::uint32_t> observed_;  // callback-carrying subset
  std::vector<std::uint32_t> res_comp_;     // resource id -> component
  std::vector<double> foreground_;          // resource id -> allocated rate
  std::vector<std::uint32_t> dirty_comps_;
  std::size_t live_components_ = 0;

  TransferId next_id_ = 1;
  SimTime observed_integration_ = 0;  // shared clock of the observed set
  sim::EventHandle next_event_;
  sim::EventHandle poll_event_;
  bool in_touch_ = false;
  bool dirty_ = false;        // re-run the touch loop (re-entrant mutation)
  bool rates_dirty_ = false;  // some flow/cap/capacity/background changed
  int batch_depth_ = 0;
  std::uint64_t reallocations_ = 0;
  std::uint64_t touches_ = 0;
  std::uint64_t util_gauge_updates_ = 0;
  std::uint64_t component_solves_ = 0;
  std::uint64_t flows_solved_total_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::size_t last_solve_flows_ = 0;
  std::size_t max_solve_flows_ = 0;
  obs::Gauge* components_gauge_ = nullptr;  // net_components
  obs::Gauge* solve_size_gauge_ = nullptr;  // net_component_solve_size

  // Solver scratch, reused across solves (indexed by resource id where
  // applicable) — steady-state solves never allocate.
  struct SolverEntry {
    std::uint32_t fslot;
    bool frozen = false;
  };
  std::vector<SolverEntry> entries_scratch_;
  std::vector<double> usage_scratch_;
  std::vector<double> cap_scratch_;
  std::vector<int> unfrozen_scratch_;
  // Epoch-marked scratch (avoids O(pool) clears per solve).
  std::vector<std::uint64_t> transfer_mark_;
  std::vector<std::uint64_t> comp_mark_;
  std::vector<std::uint64_t> res_mark_;
  std::uint64_t mark_epoch_ = 0;
  std::vector<std::uint32_t> transfer_scratch_;  // distinct transfers of a comp
  std::vector<std::uint32_t> merge_scratch_;     // distinct comps of a path
  std::vector<std::uint32_t> uf_parent_;         // rebuild union-find, by rid
  std::vector<std::uint32_t> dirty_scratch_;     // solve worklist
  std::vector<std::pair<std::uint32_t, std::uint32_t>> group_scratch_;
  std::vector<Resource*> pending_res_;  // flowless resources with gauge edits
  // Touch scratch (safe to reuse: touch never runs re-entrantly).
  std::vector<TransferId> completed_scratch_;
  std::vector<std::function<void()>> notify_scratch_;
  std::vector<std::pair<std::uint32_t, TransferId>> due_headless_;
  std::vector<std::pair<std::uint32_t, TransferId>> due_scratch_;
};

}  // namespace esg::net
