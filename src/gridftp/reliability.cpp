#include "gridftp/reliability.hpp"

#include <cassert>

namespace esg::gridftp {

using common::Errc;
using common::Error;
using common::Status;

std::shared_ptr<ReliableGet> ReliableGet::start(
    GridFtpClient& client, std::vector<FtpUrl> replicas,
    std::string local_name, TransferOptions options,
    ReliabilityOptions reliability, ProgressCallback progress,
    std::function<void(ReliableResult)> done) {
  assert(!replicas.empty());
  auto self = std::shared_ptr<ReliableGet>(new ReliableGet(
      client, std::move(replicas), std::move(local_name), options, reliability,
      std::move(progress), std::move(done)));
  self->self_ = self;
  self->result_.started = client.simulation().now();
  self->attempt();
  return self;
}

ReliableGet::ReliableGet(GridFtpClient& client, std::vector<FtpUrl> replicas,
                         std::string local_name, TransferOptions options,
                         ReliabilityOptions reliability,
                         ProgressCallback progress,
                         std::function<void(ReliableResult)> done)
    : client_(client),
      replicas_(std::move(replicas)),
      local_name_(std::move(local_name)),
      options_(options),
      reliability_(reliability),
      progress_(std::move(progress)),
      done_(std::move(done)) {}

void ReliableGet::abort() {
  if (finished_) return;
  if (handle_) handle_->abort();
  finish(Error{Errc::aborted, "reliable get aborted"});
}

void ReliableGet::attempt() {
  if (finished_) return;
  if (reliability_.past_deadline(result_.started,
                                 client_.simulation().now())) {
    return finish(Error{Errc::timed_out,
                        "deadline exceeded after " +
                            std::to_string(result_.attempts) + " attempts"});
  }
  if (reliability_.out_of_attempts(result_.attempts)) {
    return finish(Error{Errc::timed_out,
                        "gave up after " +
                            std::to_string(result_.attempts) + " attempts"});
  }
  ++result_.attempts;
  if (result_.attempts > 1) {
    client_.simulation().metrics().counter("gridftp_retries_total").add();
    if (offset_ > 0) {
      // Resuming from a restart marker rather than from byte zero.
      client_.simulation().metrics().counter("gridftp_restarts_total").add();
    }
  }
  select_replica();

  TransferOptions opts = options_;
  opts.restart_offset = offset_;
  client_.simulation().tracer().instant(
      "gridftp.attempt", "gridftp", options_.obs_track,
      {{"replica", current_replica().host},
       {"attempt", std::to_string(result_.attempts)},
       {"restart_offset", std::to_string(offset_)}});
  client_.simulation().flight_recorder().record(
      "gridftp", "attempt.begin", local_name_,
      {{"host", current_replica().host},
       {"attempt", std::to_string(result_.attempts)},
       {"restart_offset", std::to_string(offset_)}},
      options_.obs_track);

  auto self = shared_from_this();
  handle_ = client_.get(
      current_replica(), local_name_, opts,
      [self](Bytes delta, Bytes total, SimTime now) {
        if (self->finished_) return;
        self->offset_ = total;
        if (self->progress_) self->progress_(delta, total, now);
      },
      [self](TransferResult r) { self->attempt_finished(std::move(r)); });
  window_start_bytes_ = offset_;
  arm_rate_monitor();
  arm_attempt_timer();
}

void ReliableGet::select_replica() {
  if (!reliability_.replica_allowed) return;
  for (std::size_t probe = 0; probe < replicas_.size(); ++probe) {
    const std::size_t idx = (replica_index_ + probe) % replicas_.size();
    if (reliability_.replica_allowed(replicas_[idx].host)) {
      if (probe > 0) {
        client_.simulation()
            .metrics()
            .counter("gridftp_breaker_skips_total")
            .add(probe);
      }
      replica_index_ += probe;
      return;
    }
  }
  // Every candidate's breaker refused.  Proceed with the round-robin choice
  // as a last resort — stalling forever would be worse than probing.
}

void ReliableGet::rotate_replica() {
  ++replica_index_;
  if (replicas_.size() > 1) {
    ++result_.replica_switches;
    client_.simulation()
        .metrics()
        .counter("gridftp_replica_switches_total")
        .add();
  }
}

void ReliableGet::schedule_retry() {
  if (finished_) return;
  const SimTime now = client_.simulation().now();
  if (reliability_.past_deadline(result_.started, now)) {
    // No budget left to sleep on: give up now instead of backing off past
    // the overall deadline.
    return finish(Error{Errc::timed_out,
                        "deadline exceeded after " +
                            std::to_string(result_.attempts) + " attempts"});
  }
  // Truncated to the remaining deadline budget, so the last retry fires at
  // the deadline itself (where attempt() fails it) rather than overshooting
  // by up to max_backoff.
  const SimDuration delay = reliability_.backoff_within_deadline(
      result_.attempts, result_.started, now, client_.simulation().rng());
  client_.simulation()
      .metrics()
      .histogram("gridftp_retry_backoff_seconds", obs::duration_boundaries())
      .observe(common::to_seconds(delay));
  client_.simulation().flight_recorder().record(
      "gridftp", "retry.scheduled", local_name_,
      {{"after_attempt", std::to_string(result_.attempts)},
       {"backoff_s", std::to_string(common::to_seconds(delay))},
       {"backoff_ns", std::to_string(delay)}},
      options_.obs_track);
  auto self = shared_from_this();
  client_.simulation().schedule_after(delay, [self] { self->attempt(); });
}

void ReliableGet::report_outcome(bool ok) {
  if (reliability_.on_attempt_result) {
    reliability_.on_attempt_result(current_replica().host, ok);
  }
}

void ReliableGet::arm_attempt_timer() {
  attempt_timer_.cancel();
  if (reliability_.attempt_timeout <= 0) return;
  auto self = shared_from_this();
  attempt_timer_ = client_.simulation().schedule_after(
      reliability_.attempt_timeout, [self] {
        if (self->finished_ || !self->handle_ || !self->handle_->active()) {
          return;
        }
        self->client_.simulation()
            .metrics()
            .counter("gridftp_attempt_timeouts_total")
            .add();
        self->client_.simulation().flight_recorder().record(
            "gridftp", "attempt.timeout", self->local_name_,
            {{"host", self->current_replica().host},
             {"attempt", std::to_string(self->result_.attempts)}},
            self->options_.obs_track);
        self->handle_->abort();
        self->report_outcome(false);
        self->rotate_replica();
        self->schedule_retry();
      });
}

void ReliableGet::arm_rate_monitor() {
  monitor_.cancel();
  if (reliability_.min_rate <= 0.0) return;
  auto self = shared_from_this();
  monitor_ = client_.simulation().schedule_every(
      reliability_.eval_window, [self] {
        if (self->finished_ || !self->handle_ || !self->handle_->active()) {
          return false;
        }
        const Bytes window_bytes = self->offset_ - self->window_start_bytes_;
        self->window_start_bytes_ = self->offset_;
        const Rate achieved =
            static_cast<double>(window_bytes) /
            common::to_seconds(self->reliability_.eval_window);
        if (achieved < self->reliability_.min_rate) {
          // Too slow: abandon this replica and move to the next, resuming
          // from the restart marker immediately (no backoff — the replica
          // is alive, just underperforming; paper §7 semantics).  Slowness
          // still counts against the replica's health.
          self->client_.simulation().flight_recorder().record(
              "gridftp", "slow_replica", self->local_name_,
              {{"host", self->current_replica().host},
               {"achieved_Bps", std::to_string(achieved)}},
              self->options_.obs_track);
          self->handle_->abort();
          self->report_outcome(false);
          self->rotate_replica();
          self->attempt();
          return false;
        }
        return true;
      });
}

void ReliableGet::attempt_finished(TransferResult r) {
  if (finished_) return;
  monitor_.cancel();
  attempt_timer_.cancel();
  result_.total_bytes = offset_;
  if (r.status.ok()) {
    report_outcome(true);
    // The server's completion reply is authoritative for the byte count;
    // progress-delta integerization can run a few bytes short.
    offset_ = std::max(offset_, r.file_size);
    return finish(common::ok_status());
  }
  report_outcome(false);
  if (r.status.error().code == Errc::io_error) {
    // Integrity failure: the landed bytes cannot be trusted, so drop the
    // restart marker and re-fetch the file whole from the next replica.
    offset_ = 0;
    client_.simulation()
        .metrics()
        .counter("gridftp_corruption_refetches_total")
        .add();
    client_.simulation().flight_recorder().record(
        "gridftp", "corruption.refetch", local_name_,
        {{"host", current_replica().host}}, options_.obs_track);
  }
  // Failed attempt: advance to the next replica (round-robin) and retry
  // from the marker after an exponential backoff.  The client has already
  // dropped its session if the server looked dead, so re-authentication
  // happens naturally on the retry.
  rotate_replica();
  schedule_retry();
}

void ReliableGet::finish(Status status) {
  if (finished_) return;
  finished_ = true;
  monitor_.cancel();
  attempt_timer_.cancel();
  result_.status = std::move(status);
  result_.finished = client_.simulation().now();
  result_.total_bytes = offset_;
  progress_ = nullptr;  // may capture the owner; the op no longer needs it
  auto done = std::move(done_);
  auto self = std::move(self_);  // drop keep-alive after the callback returns
  if (done) done(std::move(result_));
}

}  // namespace esg::gridftp
