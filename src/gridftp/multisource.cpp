#include "gridftp/multisource.hpp"

#include <algorithm>

#include "gridftp/server.hpp"

namespace esg::gridftp {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;

namespace {

struct MultiSourceState : std::enable_shared_from_this<MultiSourceState> {
  GridFtpClient* client = nullptr;
  std::vector<FtpUrl> replicas;
  std::string local_name;
  MultiSourceOptions options;
  std::function<void(MultiSourceResult)> done;

  MultiSourceResult result;
  std::vector<std::pair<Bytes, Bytes>> ranges;  // (offset, length)
  std::size_t outstanding = 0;
  bool failed = false;

  std::string range_local_name(std::size_t r) const {
    return local_name + "#range" + std::to_string(r);
  }

  void start() {
    result.started = client->simulation().now();
    // The size decides the split; ask the first replica.
    auto self = shared_from_this();
    client->size_of(replicas.front(), options.transfer,
                    [self](Result<Bytes> size) {
                      if (!size) return self->finish(Status(size.error()));
                      self->result.file_size = *size;
                      self->split_and_fetch();
                    });
  }

  void split_and_fetch() {
    std::size_t sources = replicas.size();
    if (options.max_sources > 0) {
      sources = std::min(sources, options.max_sources);
    }
    sources = std::max<std::size_t>(1, std::min<std::size_t>(
        sources, static_cast<std::size_t>(
                     std::max<Bytes>(1, result.file_size / (256 * 1024)))));
    result.sources = static_cast<int>(sources);

    const Bytes chunk = (result.file_size + static_cast<Bytes>(sources) - 1) /
                        static_cast<Bytes>(sources);
    for (std::size_t r = 0; r < sources; ++r) {
      const Bytes offset = static_cast<Bytes>(r) * chunk;
      const Bytes length =
          std::min(chunk, result.file_size - offset);
      if (length <= 0) break;
      ranges.emplace_back(offset, length);
    }
    outstanding = ranges.size();

    auto self = shared_from_this();
    for (std::size_t r = 0; r < ranges.size(); ++r) {
      // Each range pulls from "its" replica first, with the rest as
      // failover alternates (rotated so ranges spread across sources).
      std::vector<FtpUrl> order;
      for (std::size_t k = 0; k < replicas.size(); ++k) {
        order.push_back(replicas[(r + k) % replicas.size()]);
      }
      TransferOptions opts = options.transfer;
      opts.eret_module = GridFtpServer::kPartialModule;
      opts.eret_params = std::to_string(ranges[r].first) + ":" +
                         std::to_string(ranges[r].second);
      ReliableGet::start(*client, std::move(order), range_local_name(r),
                         opts, options.reliability, nullptr,
                         [self](ReliableResult rr) {
                           self->range_finished(rr);
                         });
    }
  }

  void range_finished(const ReliableResult& rr) {
    result.total_attempts += rr.attempts;
    if (!rr.status.ok() && !failed) {
      failed = true;
      result.status = rr.status;
    }
    if (--outstanding > 0) return;
    if (failed) return finish(result.status);
    assemble();
  }

  void assemble() {
    // Concatenate ranges in order; bit-exact when content travelled.
    Bytes total = 0;
    bool have_content = true;
    std::vector<storage::FileObject> parts;
    for (std::size_t r = 0; r < ranges.size(); ++r) {
      auto f = client->local_storage().get(range_local_name(r));
      if (!f) return finish(Status(f.error()));
      total += f->size;
      have_content = have_content && f->content != nullptr;
      parts.push_back(std::move(*f));
    }
    storage::FileObject out;
    out.name = local_name;
    out.size = result.file_size;
    if (have_content) {
      auto data = std::make_shared<std::vector<std::uint8_t>>();
      data->reserve(static_cast<std::size_t>(total));
      for (const auto& p : parts) {
        data->insert(data->end(), p.content->begin(), p.content->end());
      }
      out.content = std::move(data);
      out.size = static_cast<Bytes>(out.content->size());
    }
    (void)client->local_storage().put(std::move(out));
    for (std::size_t r = 0; r < ranges.size(); ++r) {
      (void)client->local_storage().remove(range_local_name(r));
    }
    result.bytes_transferred = total;
    finish(common::ok_status());
  }

  void finish(Status status) {
    result.status = std::move(status);
    result.finished = client->simulation().now();
    done(std::move(result));
  }
};

}  // namespace

void multi_source_get(GridFtpClient& client, std::vector<FtpUrl> replicas,
                      const std::string& local_name,
                      const MultiSourceOptions& options,
                      std::function<void(MultiSourceResult)> done) {
  auto state = std::make_shared<MultiSourceState>();
  state->client = &client;
  state->replicas = std::move(replicas);
  state->local_name = local_name;
  state->options = options;
  state->done = std::move(done);
  if (state->replicas.empty()) {
    client.simulation().schedule_after(0, [state] {
      state->finish(Error{Errc::invalid_argument, "no replicas given"});
    });
    return;
  }
  state->start();
}

}  // namespace esg::gridftp
