#include "gridftp/client.hpp"

#include <algorithm>
#include <cassert>

#include "gridftp/wire.hpp"

namespace esg::gridftp {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using rpc::Payload;

// Per-operation state machine.  Kept alive by the shared_ptr captured in
// every pending callback; abort() quiesces it.
struct GridFtpClient::Op : TransferHandle,
                           std::enable_shared_from_this<GridFtpClient::Op> {
  enum class Kind { get, put, third_party };

  GridFtpClient* client = nullptr;
  Kind kind = Kind::get;
  const net::Host* src_host = nullptr;
  const net::Host* dst_host = nullptr;
  std::string src_path;    // remote source path (get / third_party)
  std::string local_name;  // local file (get: sink, put: source)
  std::string dst_path;    // remote destination path (put / third_party)
  TransferOptions options;
  ProgressCallback progress;
  CompletionCallback done_cb;

  TransferResult result;
  std::unique_ptr<net::TcpTransfer> tcp;
  std::uint64_t ticket = 0;
  std::uint64_t expected_checksum = 0;
  bool have_checksum = false;
  Bytes effective_size = 0;
  Bytes attempt_bytes = 0;
  bool warm = false;
  bool finished = false;
  bool aborted_ = false;
  bool verify_started = false;   // checksum pass scheduled (one-shot)
  obs::Span span;                              // whole op (RETR -> done)
  obs::SpanId verify_span = 0;                 // gridftp.checksum child
  obs::Counter* channel_bytes = nullptr;       // per-server byte counter

  // ---- TransferHandle ----
  void abort() override {
    if (finished || aborted_) return;
    aborted_ = true;
    if (tcp) attempt_bytes = tcp->cancel();
    finished = true;
    sim().tracer().end(verify_span);  // no-op unless mid-verification
    span.set_attr("status", "aborted");
    span.end();
    // No completion will ever be delivered; drop the callbacks so their
    // captures (typically the retry layer, which in turn holds this op)
    // don't form a reference cycle.
    done_cb = nullptr;
    progress = nullptr;
  }
  Bytes delivered() const override {
    if (tcp && tcp->active()) return tcp->delivered();
    return attempt_bytes;
  }
  bool active() const override { return !finished; }

  sim::Simulation& sim() { return client->orb_.network().simulation(); }

  void fail(Error error) {
    if (finished) return;
    finished = true;
    if (tcp) attempt_bytes = std::max(attempt_bytes, tcp->cancel());
    sim().tracer().end(verify_span);
    result.status = Status(std::move(error));
    result.bytes_transferred = attempt_bytes;
    result.finished = sim().now();
    ++client->stats_.transfers_failed;
    client->metric_failed_->add();
    span.set_attr("status", result.status.error().to_string());
    span.end();
    // A dead server invalidates both the session and the warm channel.
    const net::Host* peer = kind == Kind::put ? dst_host : src_host;
    if (peer != nullptr) {
      const std::string key = peer->name();
      if (result.status.error().code == Errc::timed_out ||
          result.status.error().code == Errc::unavailable) {
        client->sessions_.erase(key);
      }
      client->warm_channels_.erase(key);
    }
    // Terminal: move the completion out and drop both callbacks so the op
    // doesn't keep its owner alive through their captures.
    auto done = std::move(done_cb);
    done_cb = nullptr;
    progress = nullptr;
    if (done) done(std::move(result));
  }

  void succeed() {
    if (finished) return;
    // End-to-end integrity: compare the landed payload against the checksum
    // the server announced at RETR time.  Covers the whole data path —
    // injection anywhere between RETR and landing fails the transfer.
    if (kind == Kind::get && options.verify_checksum && have_checksum) {
      // The verification pass walks the landed payload, which is real work:
      // model it as size / checksum_rate of sim time under its own child
      // span, then re-enter to do the compare.  An abort or failure during
      // the window wins (finished flips and the re-entry returns above).
      if (!verify_started && options.checksum_rate > 0) {
        verify_started = true;
        const common::SimDuration cost = static_cast<common::SimDuration>(
            static_cast<double>(std::max<Bytes>(effective_size, 0)) /
            options.checksum_rate * static_cast<double>(common::kSecond));
        if (cost > 0) {
          verify_span = sim().tracer().begin("gridftp.checksum", "gridftp",
                                             options.obs_track, span.id());
          auto self = shared_from_this();
          sim().schedule_after(cost, [self] { self->succeed(); });
          return;
        }
      }
      sim().tracer().end(verify_span);
      verify_span = 0;
      auto landed = client->storage_->get(local_name);
      const std::uint64_t actual =
          landed ? storage::file_checksum(*landed) : ~expected_checksum;
      if (actual != expected_checksum) {
        sim().metrics().counter("gridftp_checksum_failures_total").add();
        sim().flight_recorder().record(
            "gridftp", "checksum.mismatch", local_name,
            {{"host", src_host != nullptr ? src_host->name() : std::string()}},
            options.obs_track);
        span.set_attr("checksum", "mismatch");
        return fail(Error{Errc::io_error,
                          "checksum mismatch on " + local_name});
      }
      sim().metrics().counter("gridftp_checksums_verified_total").add();
      result.checksum_verified = true;
    }
    finished = true;
    result.status = common::ok_status();
    result.bytes_transferred = attempt_bytes;
    result.file_size = effective_size;
    result.finished = sim().now();
    ++client->stats_.transfers_completed;
    client->stats_.bytes_received += attempt_bytes;
    client->metric_completed_->add();
    span.set_attr("status", "ok");
    span.set_attr("bytes", std::to_string(attempt_bytes));
    span.end();
    client->warm_channels_[server_key()] =
        WarmChannel{sim().now(), options.parallelism};
    auto done = std::move(done_cb);
    done_cb = nullptr;
    progress = nullptr;
    if (done) done(std::move(result));
  }

  /// The host whose control/data channels we cache for this op.
  std::string server_key() const {
    return kind == Kind::put ? dst_host->name() : src_host->name();
  }

  void start() {
    result.started = sim().now();
    ++client->stats_.transfers_started;
    client->metric_started_->add();
    const char* name = kind == Kind::get   ? "gridftp.get"
                       : kind == Kind::put ? "gridftp.put"
                                           : "gridftp.3pc";
    span = sim().tracer().span(name, "gridftp", options.obs_track);
    span.set_attr("server", server_key());
    span.set_attr("path", kind == Kind::put ? dst_path : src_path);
    const net::Host& control_peer =
        kind == Kind::put ? *dst_host : *src_host;
    auto self = shared_from_this();
    client->ensure_session(
        control_peer, options, [self](Result<std::uint64_t> session) {
          if (self->finished) return;
          if (!session) return self->fail(session.error());
          self->after_session(*session);
        });
  }

  void after_session(std::uint64_t session) {
    auto self = shared_from_this();
    switch (kind) {
      case Kind::get:
      case Kind::third_party: {
        // RETR exchange on the source server.
        ByteWriter w;
        w.u64(session);
        w.str(src_path);
        w.str(options.eret_module);
        w.str(options.eret_params);
        w.boolean(options.large_file_support);
        client->orb_.call(
            client->local_, *src_host, "gridftp", "RETR", w.take(),
            [self](Result<Payload> r) {
              if (self->finished) return;
              if (!r) return self->fail(r.error());
              ByteReader reader(*r);
              auto ticket = reader.u64();
              auto size = reader.i64();
              if (!ticket || !size) {
                return self->fail(Error{Errc::protocol_error, "bad RETR reply"});
              }
              self->ticket = *ticket;
              self->effective_size = *size;
              // Checksum announcement (optional: older servers omit it).
              if (auto checksum = reader.u64()) {
                self->expected_checksum = *checksum;
                self->have_checksum = true;
              }
              if (self->kind == Kind::third_party) {
                self->issue_stor();
              } else {
                self->begin_data_phase();
              }
            },
            self->options.stall_timeout);
        break;
      }
      case Kind::put: {
        auto file = client->storage_->get(local_name);
        if (!file) return fail(file.error());
        effective_size = file->size;
        ByteWriter w;
        w.u64(session);
        w.str(dst_path);
        client->orb_.call(
            client->local_, *dst_host, "gridftp", "STOR", w.take(),
            [self](Result<Payload> r) {
              if (self->finished) return;
              if (!r) return self->fail(r.error());
              self->begin_data_phase();
            },
            self->options.stall_timeout);
        break;
      }
    }
  }

  /// Third-party only: after RETR on the source, issue STOR on the sink.
  void issue_stor() {
    auto self = shared_from_this();
    // The destination needs its own authenticated session.
    client->ensure_session(
        *dst_host, options, [self](Result<std::uint64_t> session) {
          if (self->finished) return;
          if (!session) return self->fail(session.error());
          ByteWriter w;
          w.u64(*session);
          w.str(self->dst_path);
          self->client->orb_.call(
              self->client->local_, *self->dst_host, "gridftp", "STOR",
              w.take(),
              [self](Result<Payload> r) {
                if (self->finished) return;
                if (!r) return self->fail(r.error());
                self->begin_data_phase();
              },
              self->options.stall_timeout);
        });
  }

  void begin_data_phase() {
    const Bytes remaining =
        std::max<Bytes>(0, effective_size - options.restart_offset);
    if (remaining == 0) {
      if (!attach_content()) return fail_lost_ticket();
      return succeed();
    }

    warm = options.use_channel_cache &&
           client->channel_is_warm(server_key(), options.parallelism);
    if (warm) {
      ++client->stats_.channels_reused;
      client->metric_channels_reused_->add();
    } else {
      ++client->stats_.data_channel_setups;
      client->metric_channel_setups_->add();
    }
    span.set_attr("warm_channel", warm ? "true" : "false");
    channel_bytes = &sim().metrics().counter("gridftp_channel_bytes_total",
                                             {{"server", server_key()}});

    // For a fresh GET, materialize the growing local file so size polling
    // (the request manager's monitor) observes arrival.
    if (kind == Kind::get) {
      if (!client->storage_->exists(local_name)) {
        (void)client->storage_->put(
            storage::FileObject::synthetic(local_name, 0));
      }
      (void)client->storage_->resize(local_name, options.restart_offset);
    }

    // SBUF auto-negotiation: buffer = bandwidth-delay product for the
    // target rate at the observed RTT, clamped to sane socket sizes.
    Bytes buffer = options.buffer_size;
    if (buffer == 0) {
      const SimDuration rtt =
          client->orb_.network().rtt(*src_host, *dst_host);
      buffer = static_cast<Bytes>(options.auto_buffer_target *
                                  common::to_seconds(rtt));
      buffer = std::clamp<Bytes>(buffer, 64 * common::kKiB,
                                 8 * common::kMiB);
    }

    net::TcpOptions tcp_opts;
    tcp_opts.streams = options.parallelism;
    tcp_opts.buffer_size = buffer;
    tcp_opts.slow_start = !warm;
    tcp_opts.dead_interval = options.stall_timeout;
    tcp_opts.connect_delay =
        warm ? 0 : client->orb_.network().rtt(*src_host, *dst_host);
    tcp_opts.obs_track = options.obs_track;

    auto self = shared_from_this();
    net::TcpCallbacks cbs;
    cbs.on_progress = [self](Bytes delta, SimTime now) {
      if (self->finished) return;
      self->attempt_bytes += delta;
      if (self->channel_bytes) self->channel_bytes->add(delta);
      const Bytes total = self->options.restart_offset + self->attempt_bytes;
      if (self->kind == Kind::get) {
        (void)self->client->storage_->resize(self->local_name, total);
      }
      if (self->progress) self->progress(delta, total, now);
    };
    cbs.on_complete = [self](Status st) {
      if (self->finished) return;
      if (!st.ok()) return self->fail(st.error());
      if (!self->attach_content()) return self->fail_lost_ticket();
      self->succeed();
    };
    tcp = std::make_unique<net::TcpTransfer>(client->orb_.network(),
                                             *src_host, *dst_host, remaining,
                                             tcp_opts, std::move(cbs));
  }

  /// The server restarted between RETR and data completion: its ticket
  /// table died with it, so the bytes that arrived are unattributable.
  void fail_lost_ticket() {
    fail(Error{Errc::unavailable, "transfer ticket lost (server restarted)"});
  }

  /// Emulator data plane: materialize the transferred file at the sink.
  /// Returns false when the source server lost the ticket (crash/restart
  /// mid-transfer); true otherwise, including when no emulated server is
  /// wired into the registry (content simply stays synthetic).
  bool attach_content() {
    storage::FileObject file;
    if (kind == Kind::put) {
      auto local = client->storage_->get(local_name);
      if (!local) return true;
      file = std::move(*local);
      file.name = dst_path;
      if (GridFtpServer* dst = client->registry_.find(dst_host->name())) {
        (void)dst->storage().put(std::move(file));
      }
      return true;
    }
    GridFtpServer* src = client->registry_.find(src_host->name());
    if (src == nullptr) return true;
    auto resolved = src->resolve_ticket(ticket);
    if (!resolved) return false;
    file = std::move(*resolved);
    if (kind == Kind::get) {
      file.name = local_name;
      if (client->corrupt_next_gets_ > 0) {
        --client->corrupt_next_gets_;
        storage::corrupt_file(file, ticket);
        sim().metrics().counter("gridftp_corruptions_injected_total").add();
      }
      (void)client->storage_->put(std::move(file));
    } else {  // third_party
      file.name = dst_path;
      if (GridFtpServer* dst = client->registry_.find(dst_host->name())) {
        (void)dst->storage().put(std::move(file));
      }
    }
    return true;
  }
};

GridFtpClient::GridFtpClient(rpc::Orb& orb, const net::Host& local_host,
                             std::shared_ptr<storage::HostStorage> local_storage,
                             security::CredentialWallet wallet,
                             const ServerRegistry& registry)
    : orb_(orb),
      local_(local_host),
      storage_(std::move(local_storage)),
      wallet_(std::move(wallet)),
      registry_(registry) {
  auto& metrics = orb_.network().simulation().metrics();
  metric_started_ = &metrics.counter("gridftp_transfers_started_total");
  metric_completed_ = &metrics.counter("gridftp_transfers_completed_total");
  metric_failed_ = &metrics.counter("gridftp_transfers_failed_total");
  metric_auth_ = &metrics.counter("gridftp_auth_handshakes_total");
  metric_channel_setups_ = &metrics.counter("gridftp_data_channel_setups_total");
  metric_channels_reused_ = &metrics.counter("gridftp_channels_reused_total");
}

void GridFtpClient::ensure_session(
    const net::Host& server, const TransferOptions& options,
    std::function<void(Result<std::uint64_t>)> done) {
  auto it = sessions_.find(server.name());
  if (it != sessions_.end() && options.use_channel_cache) {
    // Warm control channel: answer on the next event tick.
    const auto id = it->second.id;
    orb_.network().simulation().schedule_after(
        0, [done = std::move(done), id] { done(id); });
    return;
  }
  if (!wallet_.has_identity()) {
    orb_.network().simulation().schedule_after(
        0, [done = std::move(done)] {
          done(Error{Errc::auth_failed, "client has no credential"});
        });
    return;
  }

  ++stats_.auth_handshakes;
  metric_auth_->add();
  const SimDuration rtt = orb_.network().rtt(local_, server);
  // 1 RTT TCP connect, then the AUTH RPC (1 RTT), then the remaining GSI
  // rounds modeled as a post-reply delay.
  const SimDuration extra_rounds =
      security::handshake_cost(rtt, options.delegate_proxy) - rtt;
  ByteWriter w;
  w.boolean(options.delegate_proxy);
  gridftp_write_chain(w, wallet_.chain());
  auto payload = w.take();

  orb_.network().simulation().schedule_after(
      rtt, [this, &server, payload = std::move(payload), extra_rounds,
            done = std::move(done), timeout = options.stall_timeout]() mutable {
        orb_.call(
            local_, server, "gridftp", "AUTH", std::move(payload),
            [this, &server, extra_rounds,
             done = std::move(done)](Result<Payload> r) {
              if (!r) return done(r.error());
              ByteReader reader(*r);
              auto id = reader.u64();
              if (!id) return done(Error{Errc::protocol_error, "bad AUTH reply"});
              const auto session = *id;
              orb_.network().simulation().schedule_after(
                  std::max<SimDuration>(0, extra_rounds),
                  [this, &server, session, done = std::move(done)] {
                    sessions_[server.name()] =
                        Session{session, orb_.network().simulation().now()};
                    done(session);
                  });
            },
            timeout);
      });
}

bool GridFtpClient::channel_is_warm(const std::string& server,
                                    int streams) const {
  auto it = warm_channels_.find(server);
  if (it == warm_channels_.end()) return false;
  const auto now = orb_.network().simulation().now();
  return now - it->second.last_used <= channel_idle_timeout_ &&
         it->second.streams >= streams;
}

void GridFtpClient::invalidate_channels(const std::string& server_host) {
  sessions_.erase(server_host);
  warm_channels_.erase(server_host);
}

std::shared_ptr<TransferHandle> GridFtpClient::get(
    const FtpUrl& src, const std::string& local_name,
    const TransferOptions& options, ProgressCallback progress,
    CompletionCallback done) {
  auto op = std::make_shared<Op>();
  op->client = this;
  op->kind = Op::Kind::get;
  op->src_host = orb_.network().find_host(src.host);
  op->dst_host = &local_;
  op->src_path = src.path;
  op->local_name = local_name;
  op->options = options;
  op->progress = std::move(progress);
  op->done_cb = std::move(done);
  if (op->src_host == nullptr) {
    orb_.network().simulation().schedule_after(0, [op, src] {
      op->fail(Error{Errc::not_found, "unknown host: " + src.host});
    });
    return op;
  }
  op->start();
  return op;
}

std::shared_ptr<TransferHandle> GridFtpClient::put(
    const std::string& local_name, const FtpUrl& dst,
    const TransferOptions& options, CompletionCallback done) {
  auto op = std::make_shared<Op>();
  op->client = this;
  op->kind = Op::Kind::put;
  op->src_host = &local_;
  op->dst_host = orb_.network().find_host(dst.host);
  op->local_name = local_name;
  op->dst_path = dst.path;
  op->options = options;
  op->done_cb = std::move(done);
  if (op->dst_host == nullptr) {
    orb_.network().simulation().schedule_after(0, [op, dst] {
      op->fail(Error{Errc::not_found, "unknown host: " + dst.host});
    });
    return op;
  }
  op->start();
  return op;
}

void GridFtpClient::size_of(const FtpUrl& url, const TransferOptions& options,
                            std::function<void(Result<Bytes>)> done) {
  net::Host* server = orb_.network().find_host(url.host);
  if (server == nullptr) {
    orb_.network().simulation().schedule_after(
        0, [done = std::move(done), url] {
          done(Error{Errc::not_found, "unknown host: " + url.host});
        });
    return;
  }
  ensure_session(
      *server, options,
      [this, server, path = url.path, timeout = options.stall_timeout,
       done = std::move(done)](Result<std::uint64_t> session) mutable {
        if (!session) return done(session.error());
        ByteWriter w;
        w.u64(*session);
        w.str(path);
        orb_.call(local_, *server, "gridftp", "SIZE", w.take(),
                  [done = std::move(done)](Result<Payload> r) {
                    if (!r) return done(r.error());
                    ByteReader reader(*r);
                    auto size = reader.i64();
                    if (!size) return done(size.error());
                    done(*size);
                  },
                  timeout);
      });
}

std::shared_ptr<TransferHandle> GridFtpClient::third_party_copy(
    const FtpUrl& src, const FtpUrl& dst, const TransferOptions& options,
    CompletionCallback done) {
  auto op = std::make_shared<Op>();
  op->client = this;
  op->kind = Op::Kind::third_party;
  op->src_host = orb_.network().find_host(src.host);
  op->dst_host = orb_.network().find_host(dst.host);
  op->src_path = src.path;
  op->dst_path = dst.path;
  op->options = options;
  op->done_cb = std::move(done);
  if (op->src_host == nullptr || op->dst_host == nullptr) {
    orb_.network().simulation().schedule_after(0, [op] {
      op->fail(Error{Errc::not_found, "unknown transfer endpoint"});
    });
    return op;
  }
  op->start();
  return op;
}

}  // namespace esg::gridftp
