// GridFTP client: GET / PUT / third-party copy with parallel streams,
// restart markers, GSI sessions, and data-channel caching.
//
// Control-channel cost model per cold GET (matching the paper's account of
// why rebuilding connections between consecutive transfers caused the
// Figure 8 dips):
//
//   TCP connect            1 RTT
//   GSI mutual auth        kAuthRounds RTTs (+1 if delegating)
//   RETR exchange          1 RTT
//   data-channel setup     1 RTT, then TCP slow start from a cold window
//
// With channel caching enabled and a warm channel available, only the RETR
// exchange is paid and the data channel starts at full window — the
// post-SC'2000 improvement the paper describes.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "gridftp/server.hpp"
#include "gridftp/types.hpp"
#include "gridftp/url.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"

namespace esg::gridftp {

/// Process-local data plane: lets the receiving side of an emulated
/// transfer resolve tickets (and thus attach real file content).
class ServerRegistry {
 public:
  void add(GridFtpServer* server) { servers_[server->host().name()] = server; }
  void remove(const std::string& host_name) { servers_.erase(host_name); }
  GridFtpServer* find(const std::string& host_name) const {
    auto it = servers_.find(host_name);
    return it == servers_.end() ? nullptr : it->second;
  }

 private:
  std::map<std::string, GridFtpServer*> servers_;
};

/// Handle to an in-flight operation; aborting is how the reliability plugin
/// abandons a slow replica.
class TransferHandle {
 public:
  virtual ~TransferHandle() = default;
  virtual void abort() = 0;
  virtual Bytes delivered() const = 0;
  virtual bool active() const = 0;
};

class GridFtpClient {
 public:
  GridFtpClient(rpc::Orb& orb, const net::Host& local_host,
                std::shared_ptr<storage::HostStorage> local_storage,
                security::CredentialWallet wallet,
                const ServerRegistry& registry);

  /// Fetch `src` into the local namespace as `local_name`.  The local file
  /// grows as bytes arrive (the request manager's monitor polls its size).
  /// On failure the result carries bytes_transferred so the caller can
  /// restart from a marker.
  std::shared_ptr<TransferHandle> get(const FtpUrl& src,
                                      const std::string& local_name,
                                      const TransferOptions& options,
                                      ProgressCallback progress,
                                      CompletionCallback done);

  /// Store a local file at `dst`.
  std::shared_ptr<TransferHandle> put(const std::string& local_name,
                                      const FtpUrl& dst,
                                      const TransferOptions& options,
                                      CompletionCallback done);

  /// Third-party copy: this client controls a transfer whose data flows
  /// directly between two remote servers (paper §6.1).
  std::shared_ptr<TransferHandle> third_party_copy(
      const FtpUrl& src, const FtpUrl& dst, const TransferOptions& options,
      CompletionCallback done);

  /// SIZE query (establishes a session if needed).
  void size_of(const FtpUrl& url, const TransferOptions& options,
               std::function<void(common::Result<Bytes>)> done);

  /// Drop the cached session + data channel for a server (e.g. after its
  /// credentials rotate).  Harmless if absent.
  void invalidate_channels(const std::string& server_host);

  /// Fault injection: corrupt the payload of the next `transfers` GETs as
  /// they land, so checksum verification (and its recovery path) can be
  /// exercised deterministically.
  void inject_corruption(int transfers = 1) { corrupt_next_gets_ += transfers; }

  const ClientStats& stats() const { return stats_; }
  const net::Host& local_host() const { return local_; }
  storage::HostStorage& local_storage() { return *storage_; }
  sim::Simulation& simulation() { return orb_.network().simulation(); }
  rpc::Orb& orb() { return orb_; }

  /// Warm channels older than this are treated as cold.
  void set_channel_idle_timeout(SimDuration d) { channel_idle_timeout_ = d; }

 private:
  struct Session {
    std::uint64_t id = 0;
    SimTime established = 0;
  };
  struct WarmChannel {
    SimTime last_used = 0;
    int streams = 0;
  };
  struct Op;  // per-operation state machine

  void ensure_session(const net::Host& server, const TransferOptions& options,
                      std::function<void(common::Result<std::uint64_t>)> done);
  bool channel_is_warm(const std::string& server, int streams) const;

  rpc::Orb& orb_;
  const net::Host& local_;
  std::shared_ptr<storage::HostStorage> storage_;
  security::CredentialWallet wallet_;
  const ServerRegistry& registry_;
  std::map<std::string, Session> sessions_;
  std::map<std::string, WarmChannel> warm_channels_;
  SimDuration channel_idle_timeout_ = 60 * common::kSecond;
  int corrupt_next_gets_ = 0;
  ClientStats stats_;
  // ClientStats mirrored into the simulation's metrics registry so snapshots
  // and the Prometheus dump see the same numbers the ablations read.
  obs::Counter* metric_started_ = nullptr;
  obs::Counter* metric_completed_ = nullptr;
  obs::Counter* metric_failed_ = nullptr;
  obs::Counter* metric_auth_ = nullptr;
  obs::Counter* metric_channel_setups_ = nullptr;
  obs::Counter* metric_channels_reused_ = nullptr;
};

}  // namespace esg::gridftp
