#include "gridftp/server.hpp"

#include <algorithm>
#include <vector>

namespace esg::gridftp {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using rpc::Payload;

namespace {

// Serialize a certificate chain shipped in AUTH.
void write_chain(ByteWriter& w,
                 const std::vector<security::Certificate>& chain) {
  w.u32(static_cast<std::uint32_t>(chain.size()));
  for (const auto& c : chain) {
    w.str(c.subject);
    w.str(c.issuer);
    w.i64(c.not_before);
    w.i64(c.not_after);
    w.u64(c.public_tag);
    w.u64(c.signature);
    w.boolean(c.is_proxy);
  }
}

Result<std::vector<security::Certificate>> read_chain(ByteReader& r) {
  auto count = r.u32();
  if (!count) return count.error();
  std::vector<security::Certificate> chain;
  chain.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    security::Certificate c;
    auto subject = r.str();
    auto issuer = r.str();
    auto nb = r.i64();
    auto na = r.i64();
    auto pub = r.u64();
    auto sig = r.u64();
    auto proxy = r.boolean();
    if (!subject || !issuer || !nb || !na || !pub || !sig || !proxy) {
      return Error{Errc::protocol_error, "bad certificate encoding"};
    }
    c.subject = std::move(*subject);
    c.issuer = std::move(*issuer);
    c.not_before = *nb;
    c.not_after = *na;
    c.public_tag = *pub;
    c.signature = *sig;
    c.is_proxy = *proxy;
    chain.push_back(std::move(c));
  }
  return chain;
}

}  // namespace

// Exposed for the client (same translation unit family).
void gridftp_write_chain(ByteWriter& w,
                         const std::vector<security::Certificate>& chain) {
  write_chain(w, chain);
}

GridFtpServer::GridFtpServer(rpc::Orb& orb, const net::Host& host,
                             std::shared_ptr<storage::HostStorage> storage,
                             const security::CertificateAuthority& ca,
                             security::GridMapFile gridmap)
    : orb_(orb),
      host_(host),
      storage_(std::move(storage)),
      ca_(ca),
      gridmap_(std::move(gridmap)) {
  orb_.register_service(
      host_, "gridftp",
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        dispatch(method, std::move(request), std::move(reply));
      });
  // Partial-file retrieval ships by default (paper §6.1).
  register_eret_module(
      kPartialModule,
      [](const storage::FileObject& file,
         const std::string& params) -> Result<storage::FileObject> {
        // params: "<offset>:<length>"
        const auto colon = params.find(':');
        if (colon == std::string::npos) {
          return Error{Errc::invalid_argument,
                       "partial params must be offset:length"};
        }
        const Bytes offset = std::strtoll(params.c_str(), nullptr, 10);
        const Bytes length =
            std::strtoll(params.c_str() + colon + 1, nullptr, 10);
        if (offset < 0 || length < 0 || offset > file.size) {
          return Error{Errc::invalid_argument, "partial range out of bounds"};
        }
        const Bytes effective = std::min(length, file.size - offset);
        storage::FileObject out;
        out.name = file.name + "#" + params;
        out.size = effective;
        if (file.content) {
          auto slice = std::make_shared<std::vector<std::uint8_t>>(
              file.content->begin() + offset,
              file.content->begin() + offset + effective);
          out.content = std::move(slice);
        }
        return out;
      });
}

GridFtpServer::~GridFtpServer() { orb_.unregister_service(host_, "gridftp"); }

void GridFtpServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  orb_.network().simulation().flight_recorder().record("gridftp",
                                                       "server.crash",
                                                       host_.name());
  // Process state dies with the process: sessions must be re-established
  // and unresolved RETR/STOR tickets are gone (clients holding one see the
  // transfer fail as "ticket lost").
  sessions_.clear();
  tickets_.clear();
  orb_.set_service_down(host_, "gridftp", true);
  // The whole box reboots: take the NIC down too so in-flight data
  // connections stall instead of completing against a dead server.
  orb_.network().apply_outage(host_.name(), true);
}

void GridFtpServer::restart() {
  if (!crashed_) return;
  crashed_ = false;
  orb_.network().simulation().flight_recorder().record("gridftp",
                                                       "server.restart",
                                                       host_.name());
  orb_.network().apply_outage(host_.name(), false);
  orb_.set_service_down(host_, "gridftp", false);
}

void GridFtpServer::register_eret_module(const std::string& name,
                                         EretModule module) {
  eret_modules_[name] = std::move(module);
}

Result<storage::FileObject> GridFtpServer::resolve_ticket(
    std::uint64_t ticket) {
  auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return Error{Errc::not_found, "unknown transfer ticket"};
  }
  storage::FileObject file = it->second;
  tickets_.erase(it);
  return file;
}

bool GridFtpServer::session_valid(std::uint64_t session) const {
  return sessions_.count(session) > 0;
}

void GridFtpServer::dispatch(const std::string& method, Payload request,
                             rpc::Reply reply) {
  ByteReader r(request);
  if (method == "AUTH") return handle_auth(r, std::move(reply));
  if (method == "SIZE") return handle_size(r, std::move(reply));
  if (method == "RETR") return handle_retr(r, std::move(reply));
  if (method == "STOR") return handle_stor(r, std::move(reply));
  reply(Error{Errc::protocol_error, "500 unknown command: " + method});
}

void GridFtpServer::handle_auth(ByteReader& r, rpc::Reply reply) {
  auto delegate = r.boolean();
  if (!delegate) return reply(Error{Errc::protocol_error, "bad AUTH"});
  auto chain = read_chain(r);
  if (!chain) return reply(chain.error());

  const auto now = orb_.network().simulation().now();
  if (auto st = ca_.verify_chain(*chain, now); !st.ok()) {
    return reply(st.error());
  }
  auto user = gridmap_.map(chain->front().subject);
  if (!user) return reply(user.error());

  const std::uint64_t session = next_session_++;
  sessions_[session] = *user;
  ++sessions_established_;

  ByteWriter w;
  w.u64(session);
  w.str(*user);
  reply(w.take());
}

void GridFtpServer::handle_size(ByteReader& r, rpc::Reply reply) {
  auto session = r.u64();
  auto path = r.str();
  if (!session || !path) return reply(Error{Errc::protocol_error, "bad SIZE"});
  if (!session_valid(*session)) {
    return reply(Error{Errc::auth_failed, "530 not logged in"});
  }
  auto size = storage_->size_of(*path);
  if (!size) return reply(size.error());
  ByteWriter w;
  w.i64(*size);
  reply(w.take());
}

void GridFtpServer::handle_retr(ByteReader& r, rpc::Reply reply) {
  auto session = r.u64();
  auto path = r.str();
  auto module = r.str();
  auto params = r.str();
  auto large_ok = r.boolean();
  if (!session || !path || !module || !params || !large_ok) {
    return reply(Error{Errc::protocol_error, "bad RETR"});
  }
  if (!session_valid(*session)) {
    return reply(Error{Errc::auth_failed, "530 not logged in"});
  }
  auto file = storage_->get(*path);
  if (!file) return reply(file.error());

  storage::FileObject effective = std::move(*file);
  if (!module->empty()) {
    auto it = eret_modules_.find(*module);
    if (it == eret_modules_.end()) {
      return reply(Error{Errc::invalid_argument,
                         "501 no such ERET module: " + *module});
    }
    auto processed = it->second(effective, *params);
    if (!processed) return reply(processed.error());
    effective = std::move(*processed);
  }
  // Pre-64-bit servers refuse files beyond 2^31 bytes (the limitation the
  // paper hit at SC'2000).
  if (!*large_ok && effective.size > (common::Bytes{1} << 31)) {
    return reply(Error{Errc::invalid_argument,
                       "552 file exceeds 32-bit size limit"});
  }

  const std::uint64_t ticket = next_ticket_++;
  tickets_[ticket] = effective;
  ByteWriter w;
  w.u64(ticket);
  w.i64(effective.size);
  // Announce the payload checksum so the receiver can verify end to end.
  w.u64(storage::file_checksum(effective));
  reply(w.take());
}

void GridFtpServer::handle_stor(ByteReader& r, rpc::Reply reply) {
  auto session = r.u64();
  auto path = r.str();
  if (!session || !path) return reply(Error{Errc::protocol_error, "bad STOR"});
  if (!session_valid(*session)) {
    return reply(Error{Errc::auth_failed, "530 not logged in"});
  }
  // Make room check is deferred to completion; just acknowledge.
  ByteWriter w;
  w.u64(next_ticket_++);
  reply(w.take());
}

}  // namespace esg::gridftp
