#include "gridftp/striped_volume.hpp"

#include <algorithm>

namespace esg::gridftp {

using common::ByteReader;
using common::ByteWriter;
using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using rpc::Payload;

StripedVolume::StripedVolume(rpc::Orb& orb, const net::Host& frontend,
                             std::vector<GridFtpServer*> nodes,
                             StripedVolumeConfig config)
    : orb_(orb),
      frontend_(frontend),
      nodes_(std::move(nodes)),
      config_(config) {
  orb_.register_service(
      frontend_, "gridftp-striped",
      [this](const std::string& method, Payload request, rpc::Reply reply) {
        handle(method, std::move(request), std::move(reply));
      });
}

StripedVolume::~StripedVolume() {
  orb_.unregister_service(frontend_, "gridftp-striped");
}

Status StripedVolume::store(const storage::FileObject& file) {
  if (nodes_.empty()) {
    return Error{Errc::invalid_argument, "striped volume has no nodes"};
  }
  const Bytes bs = config_.block_size;
  const auto n = static_cast<Bytes>(nodes_.size());
  StripeLayout layout;
  layout.file_size = file.size;
  layout.block_size = bs;

  // Byte count per node: blocks laid out round-robin.
  const Bytes full_blocks = file.size / bs;
  const Bytes tail = file.size % bs;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const auto idx = static_cast<Bytes>(k);
    // Node k receives blocks idx, idx+n, idx+2n, ...; the final partial
    // block (the tail) lands on node (full_blocks % n).
    const Bytes blocks_here =
        full_blocks / n + ((full_blocks % n) > idx ? 1 : 0);
    Bytes bytes_here = blocks_here * bs;
    if (idx == full_blocks % n && tail > 0) bytes_here += tail;
    layout.extents.push_back(StripeLayout::NodeExtent{
        nodes_[k]->host().name(),
        config_.stripe_dir + "/" + file.name + ".stripe" + std::to_string(k),
        bytes_here});
  }

  // Materialize stripe files (with content slices when available).
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    storage::FileObject stripe;
    stripe.name = layout.extents[k].path;
    stripe.size = layout.extents[k].bytes;
    if (file.content) {
      auto data = std::make_shared<std::vector<std::uint8_t>>();
      data->reserve(static_cast<std::size_t>(stripe.size));
      for (Bytes block = static_cast<Bytes>(k); block * bs < file.size;
           block += n) {
        const Bytes lo = block * bs;
        const Bytes hi = std::min(lo + bs, file.size);
        data->insert(data->end(), file.content->begin() + lo,
                     file.content->begin() + hi);
      }
      stripe.content = std::move(data);
      stripe.size = static_cast<Bytes>(stripe.content->size());
    }
    if (auto st = nodes_[k]->storage().put(std::move(stripe)); !st.ok()) {
      return st;
    }
  }
  layouts_[file.name] = std::move(layout);
  return common::ok_status();
}

Result<StripeLayout> StripedVolume::layout_of(const std::string& name) const {
  auto it = layouts_.find(name);
  if (it == layouts_.end()) {
    return Error{Errc::not_found, "not on striped volume: " + name};
  }
  return it->second;
}

void StripedVolume::encode_layout(ByteWriter& w, const StripeLayout& layout) {
  w.i64(layout.file_size);
  w.i64(layout.block_size);
  w.u32(static_cast<std::uint32_t>(layout.extents.size()));
  for (const auto& e : layout.extents) {
    w.str(e.host);
    w.str(e.path);
    w.i64(e.bytes);
  }
}

Result<StripeLayout> StripedVolume::decode_layout(ByteReader& r) {
  StripeLayout layout;
  auto size = r.i64();
  auto bs = r.i64();
  auto count = r.u32();
  if (!size || !bs || !count) {
    return Error{Errc::protocol_error, "bad stripe layout"};
  }
  layout.file_size = *size;
  layout.block_size = *bs;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto host = r.str();
    auto path = r.str();
    auto bytes = r.i64();
    if (!host || !path || !bytes) {
      return Error{Errc::protocol_error, "bad stripe extent"};
    }
    layout.extents.push_back(
        StripeLayout::NodeExtent{std::move(*host), std::move(*path), *bytes});
  }
  return layout;
}

void StripedVolume::handle(const std::string& method, Payload request,
                           rpc::Reply reply) {
  if (method != "STAT-STRIPES") {
    return reply(Error{Errc::protocol_error,
                       "unknown striped-volume method: " + method});
  }
  ByteReader r(request);
  auto name = r.str();
  if (!name) return reply(Error{Errc::protocol_error, "bad STAT-STRIPES"});
  auto layout = layout_of(*name);
  if (!layout) return reply(layout.error());
  ByteWriter w;
  encode_layout(w, *layout);
  reply(w.take());
}

namespace {

// Reassemble the original byte order from round-robin stripe contents.
std::shared_ptr<const std::vector<std::uint8_t>> reassemble(
    const StripeLayout& layout,
    const std::vector<storage::FileObject>& stripes) {
  for (const auto& s : stripes) {
    if (!s.content) return nullptr;  // synthetic stripes: sizes only
  }
  auto out = std::make_shared<std::vector<std::uint8_t>>();
  out->reserve(static_cast<std::size_t>(layout.file_size));
  const Bytes bs = layout.block_size;
  const auto n = static_cast<Bytes>(stripes.size());
  std::vector<Bytes> cursor(stripes.size(), 0);
  for (Bytes lo = 0; lo < layout.file_size; lo += bs) {
    const auto node = static_cast<std::size_t>((lo / bs) % n);
    const Bytes len = std::min(bs, layout.file_size - lo);
    const auto& src = *stripes[node].content;
    out->insert(out->end(), src.begin() + cursor[node],
                src.begin() + cursor[node] + len);
    cursor[node] += len;
  }
  return out;
}

struct StripedGetState : std::enable_shared_from_this<StripedGetState> {
  GridFtpClient* client = nullptr;
  std::string local_name;
  StripeLayout layout;
  StripedGetResult result;
  std::size_t outstanding = 0;
  bool failed = false;
  std::function<void(StripedGetResult)> done;

  void stripe_finished(const gridftp::ReliableResult& r) {
    result.total_attempts += r.attempts;
    if (!r.status.ok() && !failed) {
      failed = true;
      result.status = r.status;
    }
    if (--outstanding > 0) return;
    finish();
  }

  void finish() {
    result.finished = client->simulation().now();
    if (failed) return done(std::move(result));
    // Collect the stripe files and build the final local file.
    std::vector<storage::FileObject> stripes;
    Bytes total = 0;
    for (const auto& e : layout.extents) {
      auto f = client->local_storage().get(stripe_local_name(e.path));
      if (!f) {
        result.status = f.error();
        return done(std::move(result));
      }
      total += f->size;
      stripes.push_back(std::move(*f));
    }
    storage::FileObject out;
    out.name = local_name;
    out.size = layout.file_size;
    out.content = reassemble(layout, stripes);
    if (out.content) {
      out.size = static_cast<Bytes>(out.content->size());
    }
    (void)client->local_storage().put(std::move(out));
    // Stripe temporaries are no longer needed.
    for (const auto& e : layout.extents) {
      (void)client->local_storage().remove(stripe_local_name(e.path));
    }
    result.bytes_transferred = total;
    done(std::move(result));
  }

  std::string stripe_local_name(const std::string& stripe_path) const {
    return local_name + "#" + std::to_string(common::fnv1a64(stripe_path));
  }
};

}  // namespace

void striped_volume_get(GridFtpClient& client, const net::Host& frontend,
                        const std::string& name, const std::string& local_name,
                        const TransferOptions& options,
                        const ReliabilityOptions& reliability,
                        std::function<void(StripedGetResult)> done) {
  ByteWriter w;
  w.str(name);
  auto state = std::make_shared<StripedGetState>();
  state->client = &client;
  state->local_name = local_name;
  state->done = std::move(done);
  state->result.started = client.simulation().now();

  client.orb().call(
      client.local_host(), frontend, "gridftp-striped", "STAT-STRIPES",
      w.take(),
      [state, options, reliability](Result<Payload> r) {
        if (!r) {
          state->result.status = Status(r.error());
          state->result.finished = state->client->simulation().now();
          return state->done(std::move(state->result));
        }
        ByteReader reader(*r);
        auto layout = StripedVolume::decode_layout(reader);
        if (!layout) {
          state->result.status = Status(layout.error());
          state->result.finished = state->client->simulation().now();
          return state->done(std::move(state->result));
        }
        state->layout = std::move(*layout);
        state->result.stripes =
            static_cast<int>(state->layout.extents.size());
        state->outstanding = state->layout.extents.size();
        // One reliable GET per stripe node, each with its own parallelism —
        // "striping combined with parallelism".
        for (const auto& extent : state->layout.extents) {
          ReliableGet::start(
              *state->client, {FtpUrl{extent.host, extent.path}},
              state->stripe_local_name(extent.path), options, reliability,
              nullptr, [state](ReliableResult rr) {
                state->stripe_finished(rr);
              });
        }
      },
      options.stall_timeout);
}

}  // namespace esg::gridftp
