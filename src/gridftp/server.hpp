// GridFTP server.
//
// One server fronts one host's storage.  The control channel is served over
// the RPC layer as service "gridftp" with FTP-verb-shaped methods:
//
//   AUTH  — GSI mutual authentication: the client ships its certificate
//           chain; the server verifies it against the CA and maps the
//           subject through the grid-mapfile.  Extra authentication rounds
//           are modeled as server-side delay (see security/gsi.hpp).
//   SIZE  — file size query.
//   RETR  — validates a session + path, applies any ERET server-side
//           processing module, and returns the effective transfer size plus
//           a ticket; the emulator's data plane then moves the bytes.
//   STOR  — validates a session + destination; returns a ticket.
//
// Server-side processing (paper §6.1): named plugins transform a file
// before transmission.  Partial-file retrieval is registered by default,
// exactly as the paper says.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "gridftp/types.hpp"
#include "rpc/orb.hpp"
#include "security/gsi.hpp"
#include "storage/storage.hpp"

namespace esg::gridftp {

/// A server-side processing module: transforms the stored file into what is
/// actually sent (e.g. a subset).  `params` is module-defined.
using EretModule = std::function<common::Result<storage::FileObject>(
    const storage::FileObject& file, const std::string& params)>;

class GridFtpServer {
 public:
  GridFtpServer(rpc::Orb& orb, const net::Host& host,
                std::shared_ptr<storage::HostStorage> storage,
                const security::CertificateAuthority& ca,
                security::GridMapFile gridmap);
  ~GridFtpServer();

  const net::Host& host() const { return host_; }
  storage::HostStorage& storage() { return *storage_; }
  std::shared_ptr<storage::HostStorage> storage_ptr() { return storage_; }

  /// Register a server-side processing module.
  void register_eret_module(const std::string& name, EretModule module);

  /// The emulator's data plane: resolve a RETR ticket to the (possibly
  /// ERET-processed) file object so the receiving side can attach content.
  common::Result<storage::FileObject> resolve_ticket(std::uint64_t ticket);

  /// Crash the server process: all sessions and outstanding transfer
  /// tickets are lost and the host's NIC goes dark, so in-flight data
  /// connections stall until the client's timeout fires.  restart() brings
  /// the service back with empty state — clients must re-authenticate.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  /// Sessions established since construction (auth cost accounting).
  std::uint64_t sessions_established() const { return sessions_established_; }

  /// Default partial-file module name, registered automatically.
  static constexpr const char* kPartialModule = "partial";

 private:
  void dispatch(const std::string& method, rpc::Payload request,
                rpc::Reply reply);
  void handle_auth(common::ByteReader& r, rpc::Reply reply);
  void handle_size(common::ByteReader& r, rpc::Reply reply);
  void handle_retr(common::ByteReader& r, rpc::Reply reply);
  void handle_stor(common::ByteReader& r, rpc::Reply reply);
  bool session_valid(std::uint64_t session) const;

  rpc::Orb& orb_;
  const net::Host& host_;
  std::shared_ptr<storage::HostStorage> storage_;
  const security::CertificateAuthority& ca_;
  security::GridMapFile gridmap_;
  std::map<std::string, EretModule> eret_modules_;
  std::map<std::uint64_t, std::string> sessions_;       // id -> local user
  std::map<std::uint64_t, storage::FileObject> tickets_; // RETR tickets
  std::uint64_t next_session_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t sessions_established_ = 0;
  bool crashed_ = false;
};

}  // namespace esg::gridftp
