#include "gridftp/striped.hpp"

#include <algorithm>

namespace esg::gridftp {

StripedTransfer::StripedTransfer(GridFtpClient& client,
                                 std::vector<StripeEndpoint> stripes,
                                 TransferOptions options,
                                 std::function<void(StripedResult)> done,
                                 ProgressCallback progress)
    : client_(client), stripes_(std::move(stripes)), done_(std::move(done)) {
  result_.stripes.resize(stripes_.size());
  outstanding_ = stripes_.size();
  handles_.reserve(stripes_.size());
  client_.simulation().flight_recorder().record(
      "gridftp", "striped.begin",
      stripes_.empty() ? std::string() : stripes_.front().dest_path,
      {{"stripes", std::to_string(stripes_.size())}});
  for (std::size_t i = 0; i < stripes_.size(); ++i) {
    const auto& s = stripes_[i];
    auto handle = client_.third_party_copy(
        s.source, FtpUrl{s.dest_host, s.dest_path}, options,
        [this, i](TransferResult r) { stripe_done(i, std::move(r)); });
    handles_.push_back(std::move(handle));
    (void)progress;  // per-stripe progress not surfaced; use delivered()
  }
}

void StripedTransfer::abort() {
  if (finished_) return;
  finished_ = true;
  for (auto& h : handles_) h->abort();
}

Bytes StripedTransfer::delivered() const {
  Bytes sum = result_.total_bytes;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    if (handles_[i] && handles_[i]->active()) sum += handles_[i]->delivered();
  }
  return sum;
}

void StripedTransfer::stripe_done(std::size_t index, TransferResult result) {
  if (finished_) return;
  client_.simulation()
      .metrics()
      .counter("gridftp_stripe_bytes_total",
               {{"stripe", std::to_string(index)}})
      .add(static_cast<std::uint64_t>(
          std::max<Bytes>(0, result.bytes_transferred)));
  result_.total_bytes += result.bytes_transferred;
  result_.started = result_.started == 0
                        ? result.started
                        : std::min(result_.started, result.started);
  result_.finished = std::max(result_.finished, result.finished);
  const bool failed = !result.status.ok();
  if (failed && result_.status.ok()) {
    result_.status = result.status;
  }
  client_.simulation().flight_recorder().record(
      "gridftp", failed ? "stripe.failed" : "stripe.done",
      stripes_[index].dest_path,
      {{"stripe", std::to_string(index)},
       {"bytes", std::to_string(result.bytes_transferred)}});
  result_.stripes[index] = std::move(result);
  --outstanding_;
  if (failed) {
    // First failure wins: abort the remaining stripes and report.
    for (auto& h : handles_) {
      if (h && h->active()) h->abort();
    }
    finished_ = true;
    if (done_) done_(std::move(result_));
    return;
  }
  if (outstanding_ == 0) {
    finished_ = true;
    if (done_) done_(std::move(result_));
  }
}

}  // namespace esg::gridftp
