// Server-side striping (paper §6.1).
//
// "Striped data transfer that increases parallelism by allowing data to be
// striped across multiple hosts.  Striping can be combined with parallelism
// to have multiple TCP streams between each pair of hosts."
//
// A StripedVolume is a front-end host plus N stripe nodes.  A stored file
// is cut into fixed-size blocks laid out round-robin across the nodes; each
// node keeps its blocks concatenated as one stripe file served by its
// ordinary GridFTP server.  The front-end answers a SPAS-style layout query
// ("STAT-STRIPES"): the list of (node, stripe path, bytes) a client needs.
//
// striped_volume_get() then runs one GridFTP GET per node concurrently —
// each with its own TCP parallelism — restarts each stripe independently
// from byte markers via the reliability plugin, and reassembles the blocks
// into the local file (bit-exact when content is attached).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gridftp/client.hpp"
#include "gridftp/reliability.hpp"

namespace esg::gridftp {

struct StripedVolumeConfig {
  Bytes block_size = 4 * common::kMB;
  std::string stripe_dir = ".stripes";  // node-local path prefix
};

/// Layout of one file across the volume's nodes.
struct StripeLayout {
  Bytes file_size = 0;
  Bytes block_size = 0;
  /// Per node: the stripe file's path and its total byte count.
  struct NodeExtent {
    std::string host;
    std::string path;
    Bytes bytes = 0;
  };
  std::vector<NodeExtent> extents;
};

class StripedVolume {
 public:
  /// `frontend` answers layout queries; `nodes` hold the stripes.
  StripedVolume(rpc::Orb& orb, const net::Host& frontend,
                std::vector<GridFtpServer*> nodes,
                StripedVolumeConfig config = {});
  ~StripedVolume();

  /// Cut `file` into blocks and place the per-node stripe files.  Content,
  /// when present, is split bit-exactly.
  common::Status store(const storage::FileObject& file);

  common::Result<StripeLayout> layout_of(const std::string& name) const;

  const net::Host& frontend() const { return frontend_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Wire encoding of a layout (shared with the client side).
  static void encode_layout(common::ByteWriter& w, const StripeLayout& layout);
  static common::Result<StripeLayout> decode_layout(common::ByteReader& r);

 private:
  void handle(const std::string& method, rpc::Payload request,
              rpc::Reply reply);

  rpc::Orb& orb_;
  const net::Host& frontend_;
  std::vector<GridFtpServer*> nodes_;
  StripedVolumeConfig config_;
  std::map<std::string, StripeLayout> layouts_;
};

struct StripedGetResult {
  common::Status status = common::ok_status();
  Bytes bytes_transferred = 0;
  SimTime started = 0;
  SimTime finished = 0;
  int stripes = 0;
  int total_attempts = 0;  // across all stripes (restarts included)
};

/// Fetch a striped file: layout query at the front-end, one reliable GET
/// per node (options.parallelism streams each), block reassembly at the
/// client.  The local file appears in `client`'s storage under
/// `local_name`.
void striped_volume_get(GridFtpClient& client, const net::Host& frontend,
                        const std::string& name, const std::string& local_name,
                        const TransferOptions& options,
                        const ReliabilityOptions& reliability,
                        std::function<void(StripedGetResult)> done);

}  // namespace esg::gridftp
