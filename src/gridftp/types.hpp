// Shared GridFTP types: transfer options, results, and statistics.
#pragma once

#include <functional>
#include <string>

#include "common/result.hpp"
#include "common/units.hpp"
#include "obs/trace.hpp"

namespace esg::gridftp {

using common::Bytes;
using common::Rate;
using common::SimDuration;
using common::SimTime;

/// Options for a single GET/PUT/third-party operation.  These correspond to
/// the protocol features the paper lists in §6.1: OPTS RETR Parallelism=n,
/// SBUF (buffer negotiation), REST (restart markers), ERET (server-side
/// processing with partial-file retrieval as the default module), and the
/// post-SC'2000 data-channel caching and 64-bit extensions.
struct TransferOptions {
  int parallelism = 1;                    // TCP streams per host pair
  /// Socket buffer.  0 requests automatic negotiation (SBUF): the client
  /// sizes the window from the measured control-channel RTT and a target
  /// per-stream rate — the bandwidth-delay rule the paper's §7 derives.
  Bytes buffer_size = common::kMiB;       // the paper chose 1 MB at SC'2000
  /// Target per-stream rate for auto-negotiation (paper: expected
  /// 200-500 Mb/s for the whole pipe).
  Rate auto_buffer_target = common::mbps(300);
  bool use_channel_cache = true;          // reuse warm control+data channels
  Bytes restart_offset = 0;               // REST marker: skip this many bytes
  SimDuration stall_timeout = 30 * common::kSecond;
  bool delegate_proxy = false;            // delegation round during auth
  bool large_file_support = true;         // 64-bit sizes (post-SC'2000)
  std::string eret_module;                // "" = plain RETR
  std::string eret_params;
  /// Verify the landed payload against the server's announced fnv1a64
  /// checksum (GET only).  A mismatch fails the transfer with io_error so
  /// the reliability layer can re-fetch from another replica.
  bool verify_checksum = true;
  /// Bytes/second the client hashes during verification — the pass walks
  /// the whole landed payload, so it costs size / checksum_rate of sim
  /// time under a `gridftp.checksum` span (the profiler's checksum
  /// category).  1 GB/s ≈ a single-core software hash over a fast local
  /// disk.  <= 0 makes verification instantaneous (pre-profiler
  /// behaviour).
  Rate checksum_rate = 1e9;
  /// Trace track the operation's spans land on (see obs/trace.hpp); the
  /// request manager sets this to the per-file worker track so GridFTP and
  /// network spans nest under the worker's in the exported Chrome trace.
  obs::TrackId obs_track = 0;
};

struct TransferResult {
  common::Status status = common::ok_status();
  Bytes bytes_transferred = 0;  // bytes moved by THIS attempt
  Bytes file_size = 0;          // effective size after any ERET processing
  SimTime started = 0;
  SimTime finished = 0;
  /// True when the landed file's checksum matched the server's (GET with
  /// verify_checksum against a checksum-announcing server).
  bool checksum_verified = false;

  Rate average_rate() const {
    const double secs = common::to_seconds(finished - started);
    return secs > 0 ? static_cast<double>(bytes_transferred) / secs : 0.0;
  }
};

using ProgressCallback =
    std::function<void(Bytes delta, Bytes total_so_far, SimTime now)>;
using CompletionCallback = std::function<void(TransferResult)>;

/// Client-side instrumentation, exercised by the channel-caching ablation.
struct ClientStats {
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t auth_handshakes = 0;
  std::uint64_t data_channel_setups = 0;
  std::uint64_t channels_reused = 0;
  Bytes bytes_received = 0;
};

}  // namespace esg::gridftp
