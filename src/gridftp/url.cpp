#include "gridftp/url.hpp"

#include "common/strings.hpp"

namespace esg::gridftp {

using common::Errc;
using common::Error;
using common::Result;

Result<FtpUrl> FtpUrl::parse(const std::string& text) {
  static const std::string kScheme = "gsiftp://";
  if (!common::starts_with(text, kScheme)) {
    return Error{Errc::invalid_argument, "not a gsiftp URL: " + text};
  }
  const std::string rest = text.substr(kScheme.size());
  const auto slash = rest.find('/');
  if (slash == std::string::npos || slash == 0 || slash == rest.size() - 1) {
    return Error{Errc::invalid_argument, "malformed gsiftp URL: " + text};
  }
  return FtpUrl{rest.substr(0, slash), rest.substr(slash + 1)};
}

}  // namespace esg::gridftp
