// Multi-source single-file fetch.
//
// Two §6.1 features compose into something the paper never spells out but
// its architecture makes trivial: "partial file retrieval is included by
// default" (the ERET module) plus a replica catalog listing several copies
// of the same logical file.  multi_source_get() splits one file into byte
// ranges, fetches each range from a *different replica* concurrently (with
// per-range parallelism and restart), and reassembles — aggregating the
// bandwidth of all replica sites for a single file, the same way the
// request manager aggregates across files.
#pragma once

#include <functional>
#include <vector>

#include "gridftp/reliability.hpp"

namespace esg::gridftp {

struct MultiSourceResult {
  common::Status status = common::ok_status();
  Bytes file_size = 0;
  Bytes bytes_transferred = 0;
  int sources = 0;
  int total_attempts = 0;
  SimTime started = 0;
  SimTime finished = 0;
};

struct MultiSourceOptions {
  TransferOptions transfer;        // per-range options (parallelism etc.)
  ReliabilityOptions reliability;  // per-range restart/retry
  /// Upper bound on concurrent source replicas (0 = use all given).
  std::size_t max_sources = 0;
};

/// Fetch `replicas.front()`'s file by pulling one contiguous byte range per
/// replica concurrently.  All replicas must hold the same bytes.  The
/// assembled file lands in `client`'s storage as `local_name` (content is
/// reassembled bit-exactly when available).
void multi_source_get(GridFtpClient& client, std::vector<FtpUrl> replicas,
                      const std::string& local_name,
                      const MultiSourceOptions& options,
                      std::function<void(MultiSourceResult)> done);

}  // namespace esg::gridftp
