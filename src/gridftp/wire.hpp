// Wire helpers shared between the GridFTP client and server.
#pragma once

#include <vector>

#include "common/bytebuf.hpp"
#include "security/gsi.hpp"

namespace esg::gridftp {

/// Serialize a certificate chain into an AUTH payload (defined server.cpp).
void gridftp_write_chain(common::ByteWriter& w,
                         const std::vector<security::Certificate>& chain);

}  // namespace esg::gridftp
