// gsiftp:// URL handling.
//
// Replica catalog location entries map logical files to URLs of the form
// "gsiftp://<host>/<path>" (Fig 6 of the paper); the request manager hands
// these to GridFTP.
#pragma once

#include <string>

#include "common/result.hpp"

namespace esg::gridftp {

struct FtpUrl {
  std::string host;
  std::string path;  // no leading slash

  static common::Result<FtpUrl> parse(const std::string& text);
  std::string to_string() const { return "gsiftp://" + host + "/" + path; }

  bool operator==(const FtpUrl& other) const {
    return host == other.host && path == other.path;
  }
};

}  // namespace esg::gridftp
