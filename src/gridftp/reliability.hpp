// GridFTP reliability plugin.
//
// Paper §7: "A reliability plug-in was written that monitored performance
// and if data transfer rates dropped below a certain, user configurable,
// point, an alternate replica would be selected", and GridFTP's restart
// support meant "the interrupted transfers continued as soon as the network
// was restored" — that is Figure 8's story.
//
// ReliableGet wraps GridFtpClient::get with:
//   * restart markers: each retry resumes at the byte count already landed;
//   * a rate monitor: if the average rate over `eval_window` falls below
//     `min_rate`, the current attempt is abandoned and the next replica
//     (round-robin over the candidate list) is tried;
//   * bounded retries governed by a common::RetryPolicy (exponential
//     backoff with cap and seeded jitter, per-attempt timeout, deadline);
//   * circuit-breaker hooks: replica selection consults `replica_allowed`
//     and every attempt outcome is reported through `on_attempt_result`,
//     so a health registry (rm/health.hpp) can steer traffic away from
//     servers that keep failing;
//   * integrity recovery: a checksum mismatch (io_error) drops the restart
//     marker — corrupt bytes are not resumed over — and re-fetches whole
//     from the next replica.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "gridftp/client.hpp"

namespace esg::gridftp {

/// Retry knobs (max_attempts, retry_backoff, backoff_multiplier, jitter,
/// attempt_timeout, deadline) are inherited from common::RetryPolicy.
struct ReliabilityOptions : common::RetryPolicy {
  /// Switch replicas when the recent rate drops below this (0 = disabled).
  Rate min_rate = 0.0;
  SimDuration eval_window = 10 * common::kSecond;
  /// Circuit breaker: consulted (per attempt) before picking a replica;
  /// refused hosts are skipped unless every candidate is refused, in which
  /// case the round-robin choice proceeds as a last resort.  Unset = allow.
  std::function<bool(const std::string& host)> replica_allowed;
  /// Health feedback: called with each attempt's host and outcome (slow
  /// replicas abandoned by the rate monitor count as failures).
  std::function<void(const std::string& host, bool ok)> on_attempt_result;
};

struct ReliableResult {
  common::Status status = common::ok_status();
  Bytes total_bytes = 0;      // bytes landed across all attempts
  int attempts = 0;
  int replica_switches = 0;
  SimTime started = 0;
  SimTime finished = 0;
};

class ReliableGet : public std::enable_shared_from_this<ReliableGet> {
 public:
  /// Factory: the object keeps itself alive until completion.
  static std::shared_ptr<ReliableGet> start(
      GridFtpClient& client, std::vector<FtpUrl> replicas,
      std::string local_name, TransferOptions options,
      ReliabilityOptions reliability, ProgressCallback progress,
      std::function<void(ReliableResult)> done);

  void abort();
  bool active() const { return !finished_; }
  Bytes delivered() const { return offset_; }
  /// URL currently being fetched from.
  const FtpUrl& current_replica() const {
    return replicas_[replica_index_ % replicas_.size()];
  }

 private:
  ReliableGet(GridFtpClient& client, std::vector<FtpUrl> replicas,
              std::string local_name, TransferOptions options,
              ReliabilityOptions reliability, ProgressCallback progress,
              std::function<void(ReliableResult)> done);

  void attempt();
  void attempt_finished(TransferResult r);
  void select_replica();
  void rotate_replica();
  void schedule_retry();
  void report_outcome(bool ok);
  void arm_rate_monitor();
  void arm_attempt_timer();
  void finish(common::Status status);

  GridFtpClient& client_;
  std::vector<FtpUrl> replicas_;
  std::string local_name_;
  TransferOptions options_;
  ReliabilityOptions reliability_;
  ProgressCallback progress_;
  std::function<void(ReliableResult)> done_;

  std::shared_ptr<TransferHandle> handle_;
  sim::EventHandle monitor_;
  sim::EventHandle attempt_timer_;
  ReliableResult result_;
  Bytes offset_ = 0;          // restart marker: bytes already landed
  Bytes window_start_bytes_ = 0;
  std::size_t replica_index_ = 0;
  bool finished_ = false;
  std::shared_ptr<ReliableGet> self_;  // keep-alive until finish()
};

}  // namespace esg::gridftp
