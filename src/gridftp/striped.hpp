// Striped data transfer (paper §6.1, exercised at SC'2000 for Table 1).
//
// A file partitioned across several source hosts moves to several
// destination hosts, one stripe per (source_i -> destination_i) pair, with
// up to `parallelism` TCP streams per pair.  Striping multiplies the
// per-host NIC/CPU ceilings; combined with parallelism the SC'2000 run had
// 8 x 4 = 32 simultaneous streams.
#pragma once

#include <memory>
#include <vector>

#include "gridftp/client.hpp"

namespace esg::gridftp {

struct StripeEndpoint {
  FtpUrl source;            // stripe partition on a source host
  std::string dest_host;    // receiving host name
  std::string dest_path;    // path at the receiver
};

struct StripedResult {
  common::Status status = common::ok_status();
  Bytes total_bytes = 0;
  SimTime started = 0;
  SimTime finished = 0;
  std::vector<TransferResult> stripes;

  Rate aggregate_rate() const {
    const double secs = common::to_seconds(finished - started);
    return secs > 0 ? static_cast<double>(total_bytes) / secs : 0.0;
  }
};

/// Coordinates one striped transfer: each stripe is a third-party copy
/// driven by `client` (the controlling party, as in the paper's third-party
/// transfer feature).  Completion fires when every stripe finishes; the
/// first failure aborts the rest.
class StripedTransfer {
 public:
  StripedTransfer(GridFtpClient& client, std::vector<StripeEndpoint> stripes,
                  TransferOptions options,
                  std::function<void(StripedResult)> done,
                  ProgressCallback progress = nullptr);

  void abort();
  bool active() const { return !finished_; }
  Bytes delivered() const;

 private:
  void stripe_done(std::size_t index, TransferResult result);

  GridFtpClient& client_;
  std::vector<StripeEndpoint> stripes_;
  std::vector<std::shared_ptr<TransferHandle>> handles_;
  std::function<void(StripedResult)> done_;
  StripedResult result_;
  std::size_t outstanding_ = 0;
  bool finished_ = false;
};

}  // namespace esg::gridftp
