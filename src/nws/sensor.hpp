// NWS sensors: periodic latency pings and bandwidth probe transfers over
// host pairs, feeding adaptive forecasters and publishing to an information
// service (MDS in the prototype).
//
// Probes ride the same fluid network as foreground traffic, so a congested
// or failed path shows up in measurements exactly as it would have at
// SC'2000; the request manager's replica selection then sees it through
// the forecasts.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/tcp.hpp"
#include "nws/forecast.hpp"
#include "obs/metrics.hpp"

namespace esg::nws {

using common::Rate;
using common::SimDuration;
using common::SimTime;

struct SensorConfig {
  /// Probe interval; 0 disables the automatic periodic tick (a SensorClique
  /// or test drives measure() manually).
  SimDuration period = 60 * common::kSecond;
  common::Bytes probe_size = common::kMB;  // 1 MB bandwidth probe
  common::Bytes probe_buffer = common::kMiB;
  int probe_streams = 1;
  double latency_jitter_frac = 0.05;  // measurement noise on pings
  std::uint64_t seed = 1234;
};

struct Measurement {
  Rate bandwidth = 0.0;          // achieved probe rate (0 if probe failed)
  SimDuration latency = 0;       // measured RTT
  SimTime at = 0;
  bool probe_failed = false;
};

/// Published after every measurement round.
using PublishFn = std::function<void(const std::string& src_host,
                                     const std::string& dst_host,
                                     Rate bandwidth_forecast,
                                     SimDuration latency_forecast,
                                     const Measurement& raw)>;

/// Host sensor: NWS also "forecasts ... available CPU percentage for each
/// machine that it monitors" (paper §5).  The emulator's ground truth is
/// the host CPU resource's free fraction; the sensor observes it with
/// noise and publishes an adaptive forecast.
class HostSensor {
 public:
  using HostPublishFn =
      std::function<void(const std::string& host, double cpu_available)>;

  HostSensor(net::Network& network, const net::Host& host,
             SimDuration period, HostPublishFn publish,
             std::uint64_t seed = 99, double noise = 0.03);
  ~HostSensor();

  HostSensor(const HostSensor&) = delete;
  HostSensor& operator=(const HostSensor&) = delete;

  void stop();
  double cpu_forecast() const { return forecast_.predict(); }
  std::size_t rounds() const { return rounds_; }

 private:
  net::Network& net_;
  const net::Host& host_;
  HostPublishFn publish_;
  common::Rng rng_;
  double noise_;
  AdaptiveForecaster forecast_;
  sim::EventHandle tick_;
  std::size_t rounds_ = 0;
};

class NwsSensor {
 public:
  NwsSensor(net::Network& network, const net::Host& src, const net::Host& dst,
            SensorConfig config, PublishFn publish);
  ~NwsSensor();

  NwsSensor(const NwsSensor&) = delete;
  NwsSensor& operator=(const NwsSensor&) = delete;

  void stop();

  /// Run one measurement round now; `done` (optional) fires when the probe
  /// resolves.  Used by SensorClique's token passing and by tests.
  void measure(std::function<void()> done = nullptr);

  Rate bandwidth_forecast() const { return bandwidth_.predict(); }
  SimDuration latency_forecast() const {
    return static_cast<SimDuration>(latency_.predict());
  }
  const Measurement& last_measurement() const { return last_; }
  std::size_t rounds() const { return rounds_; }
  const AdaptiveForecaster& bandwidth_forecaster() const { return bandwidth_; }

 private:

  net::Network& net_;
  const net::Host& src_;
  const net::Host& dst_;
  SensorConfig config_;
  PublishFn publish_;
  common::Rng rng_;
  AdaptiveForecaster bandwidth_;
  AdaptiveForecaster latency_;
  Measurement last_;
  std::unique_ptr<net::TcpTransfer> probe_;
  sim::EventHandle tick_;
  std::size_t rounds_ = 0;
  // Relative error of the previous bandwidth forecast against each new
  // measurement — nws_forecast_error{src=...,dst=...} in the registry.
  obs::Histogram* forecast_error_ = nullptr;
};

/// Sensor clique (the NWS system's probe coordination): sensors sharing a
/// network take turns measuring, one probe at a time in token-passing
/// order, so probes never measure each other's traffic.  Uncoordinated
/// sensors on a shared bottleneck each see only 1/N of the capacity —
/// exactly the artifact the clique removes (tested and benched).
class SensorClique {
 public:
  /// `period` is the full round interval: every member measures once per
  /// period, sequentially.
  SensorClique(net::Network& network, SimDuration period);
  ~SensorClique();

  SensorClique(const SensorClique&) = delete;
  SensorClique& operator=(const SensorClique&) = delete;

  /// Add a member pair; the sensor is created with its automatic tick
  /// disabled and is owned by the clique.
  NwsSensor& add_member(const net::Host& src, const net::Host& dst,
                        SensorConfig config, PublishFn publish);

  void stop();
  std::size_t members() const { return sensors_.size(); }
  /// Completed full rounds (every member measured once).
  std::size_t rounds() const { return rounds_; }
  const NwsSensor& member(std::size_t i) const { return *sensors_[i]; }

 private:
  void run_round(std::size_t index);

  net::Network& net_;
  SimDuration period_;
  std::vector<std::unique_ptr<NwsSensor>> sensors_;
  sim::EventHandle tick_;
  bool round_active_ = false;
  bool stopped_ = false;
  std::size_t rounds_ = 0;
};

}  // namespace esg::nws
