// Network Weather Service forecasting (paper §5; Wolski, HPDC'97).
//
// NWS keeps a history of measurements per resource and runs a battery of
// simple predictors over it; at any instant the battery's *current best*
// predictor — the one with the lowest cumulative squared error so far — is
// used for the published forecast ("dynamic predictor selection").  This
// module reproduces that scheme with the classic members: last value,
// running mean, sliding-window mean and median, and exponential smoothing
// at several gains.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace esg::nws {

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Incorporate a new measurement.
  virtual void observe(double value) = 0;
  /// Predict the next measurement (0 before any observation).
  virtual double predict() const = 0;
  virtual const std::string& name() const = 0;
};

std::unique_ptr<Forecaster> make_last_value();
std::unique_ptr<Forecaster> make_running_mean();
std::unique_ptr<Forecaster> make_sliding_mean(std::size_t window);
std::unique_ptr<Forecaster> make_sliding_median(std::size_t window);
std::unique_ptr<Forecaster> make_exp_smoothing(double alpha);

/// Dynamic predictor selection over a battery of forecasters.
class AdaptiveForecaster : public Forecaster {
 public:
  /// Default battery mirrors the NWS paper's mix.
  AdaptiveForecaster();
  explicit AdaptiveForecaster(std::vector<std::unique_ptr<Forecaster>> battery);

  void observe(double value) override;
  double predict() const override;
  const std::string& name() const override { return name_; }

  /// Name of the member currently winning (lowest cumulative MSE).
  const std::string& best_member() const;
  /// Cumulative mean squared error of each member, index-aligned.
  std::vector<double> member_errors() const;
  std::size_t observations() const { return n_; }

 private:
  std::size_t best_index() const;

  std::string name_ = "adaptive";
  std::vector<std::unique_ptr<Forecaster>> battery_;
  std::vector<double> squared_error_;
  std::size_t n_ = 0;
};

}  // namespace esg::nws
