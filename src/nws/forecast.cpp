#include "nws/forecast.hpp"

#include <limits>

namespace esg::nws {

namespace {

class LastValue final : public Forecaster {
 public:
  void observe(double value) override { last_ = value; }
  double predict() const override { return last_; }
  const std::string& name() const override {
    static const std::string n = "last";
    return n;
  }

 private:
  double last_ = 0.0;
};

class RunningMean final : public Forecaster {
 public:
  void observe(double value) override { stats_.add(value); }
  double predict() const override { return stats_.mean(); }
  const std::string& name() const override {
    static const std::string n = "mean";
    return n;
  }

 private:
  common::OnlineStats stats_;
};

class SlidingMean final : public Forecaster {
 public:
  explicit SlidingMean(std::size_t window)
      : window_(window), name_("mean" + std::to_string(window)) {}
  void observe(double value) override { window_.push(value); }
  double predict() const override { return window_.mean(); }
  const std::string& name() const override { return name_; }

 private:
  common::SlidingWindow window_;
  std::string name_;
};

class SlidingMedian final : public Forecaster {
 public:
  explicit SlidingMedian(std::size_t window)
      : window_(window), name_("median" + std::to_string(window)) {}
  void observe(double value) override { window_.push(value); }
  double predict() const override { return window_.median(); }
  const std::string& name() const override { return name_; }

 private:
  common::SlidingWindow window_;
  std::string name_;
};

class ExpSmoothing final : public Forecaster {
 public:
  explicit ExpSmoothing(double alpha)
      : alpha_(alpha), name_("exp" + std::to_string(alpha).substr(0, 4)) {}
  void observe(double value) override {
    state_ = seen_ ? alpha_ * value + (1.0 - alpha_) * state_ : value;
    seen_ = true;
  }
  double predict() const override { return state_; }
  const std::string& name() const override { return name_; }

 private:
  double alpha_;
  double state_ = 0.0;
  bool seen_ = false;
  std::string name_;
};

}  // namespace

std::unique_ptr<Forecaster> make_last_value() {
  return std::make_unique<LastValue>();
}
std::unique_ptr<Forecaster> make_running_mean() {
  return std::make_unique<RunningMean>();
}
std::unique_ptr<Forecaster> make_sliding_mean(std::size_t window) {
  return std::make_unique<SlidingMean>(window);
}
std::unique_ptr<Forecaster> make_sliding_median(std::size_t window) {
  return std::make_unique<SlidingMedian>(window);
}
std::unique_ptr<Forecaster> make_exp_smoothing(double alpha) {
  return std::make_unique<ExpSmoothing>(alpha);
}

AdaptiveForecaster::AdaptiveForecaster() {
  battery_.push_back(make_last_value());
  battery_.push_back(make_running_mean());
  battery_.push_back(make_sliding_mean(10));
  battery_.push_back(make_sliding_mean(30));
  battery_.push_back(make_sliding_median(10));
  battery_.push_back(make_sliding_median(30));
  battery_.push_back(make_exp_smoothing(0.2));
  battery_.push_back(make_exp_smoothing(0.5));
  squared_error_.assign(battery_.size(), 0.0);
}

AdaptiveForecaster::AdaptiveForecaster(
    std::vector<std::unique_ptr<Forecaster>> battery)
    : battery_(std::move(battery)) {
  squared_error_.assign(battery_.size(), 0.0);
}

void AdaptiveForecaster::observe(double value) {
  // Score every member's standing prediction against the new truth, then
  // let them all learn it.
  if (n_ > 0) {
    for (std::size_t i = 0; i < battery_.size(); ++i) {
      const double err = battery_[i]->predict() - value;
      squared_error_[i] += err * err;
    }
  }
  for (auto& f : battery_) f->observe(value);
  ++n_;
}

std::size_t AdaptiveForecaster::best_index() const {
  std::size_t best = 0;
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < battery_.size(); ++i) {
    if (squared_error_[i] < best_err) {
      best_err = squared_error_[i];
      best = i;
    }
  }
  return best;
}

double AdaptiveForecaster::predict() const {
  if (battery_.empty()) return 0.0;
  return battery_[best_index()]->predict();
}

const std::string& AdaptiveForecaster::best_member() const {
  static const std::string kNone = "none";
  if (battery_.empty()) return kNone;
  return battery_[best_index()]->name();
}

std::vector<double> AdaptiveForecaster::member_errors() const {
  std::vector<double> out(squared_error_.size());
  const double n = n_ > 1 ? static_cast<double>(n_ - 1) : 1.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = squared_error_[i] / n;
  }
  return out;
}

}  // namespace esg::nws
