#include "nws/sensor.hpp"

#include <algorithm>
#include <cmath>

namespace esg::nws {

HostSensor::HostSensor(net::Network& network, const net::Host& host,
                       SimDuration period, HostPublishFn publish,
                       std::uint64_t seed, double noise)
    : net_(network),
      host_(host),
      publish_(std::move(publish)),
      rng_(seed),
      noise_(noise) {
  tick_ = net_.simulation().schedule_every(period, [this] {
    const net::Resource* cpu = host_.cpu();
    double available = 0.0;
    if (!host_.down() && cpu->nominal_capacity() > 0.0) {
      available = cpu->effective_capacity() / cpu->nominal_capacity();
    }
    // Measurement noise, clamped to a sane fraction.
    available = std::clamp(available + noise_ * rng_.normal(), 0.0, 1.0);
    forecast_.observe(available);
    ++rounds_;
    if (publish_) publish_(host_.name(), forecast_.predict());
    return true;
  });
}

HostSensor::~HostSensor() { stop(); }

void HostSensor::stop() { tick_.cancel(); }

NwsSensor::NwsSensor(net::Network& network, const net::Host& src,
                     const net::Host& dst, SensorConfig config,
                     PublishFn publish)
    : net_(network),
      src_(src),
      dst_(dst),
      config_(config),
      publish_(std::move(publish)),
      rng_(config.seed) {
  forecast_error_ = &net_.simulation().metrics().histogram(
      "nws_forecast_error", obs::relative_error_boundaries(),
      {{"src", src_.name()}, {"dst", dst_.name()}});
  // First round fires after one period (the service needs a warm-up, as the
  // real NWS does); forecasts before that are zero.  period == 0 leaves the
  // sensor under external control (SensorClique / tests).
  if (config_.period > 0) {
    tick_ = net_.simulation().schedule_every(config_.period, [this] {
      measure();
      return true;
    });
  }
}

NwsSensor::~NwsSensor() { stop(); }

void NwsSensor::stop() {
  tick_.cancel();
  if (probe_) probe_->cancel();
}

void NwsSensor::measure(std::function<void()> done) {
  // Latency ping: the real path RTT plus measurement jitter.
  const SimDuration true_rtt = net_.rtt(src_, dst_);
  const double jitter =
      1.0 + config_.latency_jitter_frac * std::abs(rng_.normal());
  const auto measured_rtt =
      static_cast<SimDuration>(static_cast<double>(true_rtt) * jitter);

  // Bandwidth probe: a short transfer on the real path (no disks).
  if (probe_) probe_->cancel();
  const SimTime start = net_.simulation().now();
  net::TcpOptions opts;
  opts.streams = config_.probe_streams;
  opts.buffer_size = config_.probe_buffer;
  opts.include_disks = false;
  // A hung probe is a failed probe.
  opts.dead_interval =
      config_.period > 0 ? config_.period / 2 : 15 * common::kSecond;

  net::TcpCallbacks cbs;
  cbs.on_complete = [this, start, measured_rtt,
                     done = std::move(done)](common::Status st) {
    Measurement m;
    m.latency = measured_rtt;
    m.at = net_.simulation().now();
    if (st.ok()) {
      const double secs = common::to_seconds(m.at - start);
      m.bandwidth =
          secs > 0 ? static_cast<double>(config_.probe_size) / secs : 0.0;
    } else {
      m.probe_failed = true;
      m.bandwidth = 0.0;  // an unreachable path forecasts toward zero
    }
    last_ = m;
    // Score the standing forecast against what the path actually delivered
    // before folding the new measurement in.
    if (rounds_ > 0 && m.bandwidth > 0.0) {
      const double prior = bandwidth_.predict();
      forecast_error_->observe(std::abs(prior - m.bandwidth) / m.bandwidth);
    }
    ++rounds_;
    bandwidth_.observe(m.bandwidth);
    latency_.observe(static_cast<double>(m.latency));
    if (publish_) {
      publish_(src_.name(), dst_.name(), bandwidth_.predict(),
               static_cast<SimDuration>(latency_.predict()), m);
    }
    probe_.reset();
    if (done) done();
  };
  probe_ = std::make_unique<net::TcpTransfer>(net_, src_, dst_,
                                              config_.probe_size, opts,
                                              std::move(cbs));
}

SensorClique::SensorClique(net::Network& network, SimDuration period)
    : net_(network), period_(period) {
  tick_ = net_.simulation().schedule_every(period_, [this] {
    if (stopped_) return false;
    if (!round_active_ && !sensors_.empty()) {
      round_active_ = true;
      run_round(0);
    }
    return true;
  });
}

SensorClique::~SensorClique() { stop(); }

void SensorClique::stop() {
  stopped_ = true;
  tick_.cancel();
  for (auto& s : sensors_) s->stop();
}

NwsSensor& SensorClique::add_member(const net::Host& src, const net::Host& dst,
                                    SensorConfig config, PublishFn publish) {
  config.period = 0;  // the clique holds the token, not the sensor
  sensors_.push_back(std::make_unique<NwsSensor>(net_, src, dst, config,
                                                 std::move(publish)));
  return *sensors_.back();
}

void SensorClique::run_round(std::size_t index) {
  if (stopped_ || index >= sensors_.size()) {
    round_active_ = false;
    if (!stopped_ && index >= sensors_.size()) ++rounds_;
    return;
  }
  // Token passing: the next member probes only when this one finishes.
  sensors_[index]->measure([this, index] { run_round(index + 1); });
}

}  // namespace esg::nws
