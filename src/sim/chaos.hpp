// Chaos engine: seeded, deterministic fault injection beyond binary outages.
//
// FailureSchedule scripts up/down outages (Figure 8's power failure); real
// deployments mostly suffer *degraded* states instead — links that brown out
// to a fraction of capacity, loss-rate spikes, services that crash and come
// back with empty state, tape libraries that stall, and payloads corrupted
// in flight.  The FaultInjector models all of these as timed FaultEvents.
//
// The injector is target-agnostic: sim cannot depend on net/gridftp/hrm, so
// each fault kind maps to a FaultHooks callback and the composition (which
// link browns out, which server crashes) happens where the stack is
// assembled — benches and tests.  A plan is either scripted via add() or
// generated from a ChaosProfile using the injector's private Rng, so a seed
// fully determines the fault timeline (assertable via timeline_hash()).
// Overlapping same-kind faults on one target are reference-counted exactly
// like FailureSchedule outages: the end hook fires when the last one lifts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"

namespace esg::sim {

enum class FaultKind {
  brownout,       // resource degraded to a fraction of nominal capacity
  loss_spike,     // elevated packet-loss probability on a link
  service_crash,  // a service dies (losing state) and later restarts
  stage_stall,    // a tape library stops dispatching queued stages
  corruption,     // payload bytes flipped in flight (instantaneous)
};

inline constexpr int kFaultKindCount = 5;

const char* fault_kind_name(FaultKind kind);
/// Inverse of fault_kind_name (used by serialized fault schedules).
common::Result<FaultKind> parse_fault_kind(std::string_view name);
/// Durable kinds hold a [start, start+duration) window; corruption fires
/// once at its start time.
inline bool fault_kind_durable(FaultKind kind) {
  return kind != FaultKind::corruption;
}

struct FaultEvent {
  FaultKind kind = FaultKind::brownout;
  std::string target;        // link / host / service name, hook-interpreted
  SimTime start = 0;
  SimDuration duration = 0;  // ignored for corruption (instantaneous)
  /// Kind-specific: brownout = remaining capacity fraction in [0,1];
  /// loss_spike = loss probability; others unused.
  double magnitude = 0.0;
  std::string description;
};

/// Callbacks invoked at fault transitions.  Durable kinds get (event, begin);
/// corruption fires once at its start time.  Unset hooks are skipped (the
/// fault still counts in the chaos metrics).
struct FaultHooks {
  std::function<void(const FaultEvent&, bool begin)> brownout;
  std::function<void(const FaultEvent&, bool begin)> loss_spike;
  std::function<void(const FaultEvent&, bool begin)> service_crash;
  std::function<void(const FaultEvent&, bool begin)> stage_stall;
  std::function<void(const FaultEvent&)> corruption;
};

/// Generation knobs for one fault kind: events arrive as a Poisson process
/// with the given mean interval, durations and magnitudes drawn uniformly.
struct FaultProfile {
  std::vector<std::string> targets;
  SimDuration mean_interval = 0;  // 0 = kind disabled
  SimDuration min_duration = 30 * common::kSecond;
  SimDuration max_duration = 2 * common::kMinute;
  double min_magnitude = 0.0;
  double max_magnitude = 0.0;
};

struct ChaosProfile {
  FaultProfile brownout;
  FaultProfile loss_spike;
  FaultProfile service_crash;
  FaultProfile stage_stall;
  FaultProfile corruption;
};

/// Canonicalize one event in place: negative starts/durations clamp to 0,
/// a -0.0 magnitude becomes +0.0 (so timeline_hash() is stable for plans
/// that are equal as fault windows), and corruption durations are zeroed.
/// add() and generate() apply this to everything entering a plan.
void normalize_fault(FaultEvent& event);

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Script an explicit fault (normalized; see normalize_fault).
  FaultInjector& add(FaultEvent event);

  /// Draw a randomized fault plan over [0, horizon) from the profile.  The
  /// injector's seed determines the plan; repeatable and order-stable.
  void generate(const ChaosProfile& profile, SimTime horizon);

  const std::vector<FaultEvent>& plan() const { return plan_; }

  /// Clamp every planned window to [0, horizon]: starts past the horizon
  /// snap to it and durations truncate so no window extends beyond it.  A
  /// window collapsed to zero length stays in the plan (it still counts,
  /// hashes, and fires begin-then-end at one instant) rather than being
  /// silently dropped — schedule enumerators rely on that determinism.
  FaultInjector& clamp_to(SimTime horizon);

  /// Fingerprint of the plan (kinds, targets, times, magnitudes) — two runs
  /// with the same seed must agree on it.
  std::uint64_t timeline_hash() const;

  /// Arm every planned fault on `simulation`.  Also records per-kind
  /// `chaos_faults_injected_total` counters and the `chaos_active_faults`
  /// gauge in the simulation's metrics registry.  Windows already in the
  /// simulation's past clamp to now() instead of asserting: the begin (and,
  /// for an already-elapsed window, the end) fires immediately, in order.
  void arm(Simulation& simulation, FaultHooks hooks) const;

  /// True if a planned fault of `kind` covers `target` at time `t`.
  bool active(FaultKind kind, const std::string& target, SimTime t) const;

 private:
  void generate_kind(FaultKind kind, const FaultProfile& profile,
                     SimTime horizon);

  common::Rng rng_;
  std::vector<FaultEvent> plan_;
};

}  // namespace esg::sim
