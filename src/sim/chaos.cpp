#include "sim/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "common/bytebuf.hpp"

namespace esg::sim {

namespace {

std::string fmt_magnitude(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::brownout: return "brownout";
    case FaultKind::loss_spike: return "loss_spike";
    case FaultKind::service_crash: return "service_crash";
    case FaultKind::stage_stall: return "stage_stall";
    case FaultKind::corruption: return "corruption";
  }
  return "unknown";
}

common::Result<FaultKind> parse_fault_kind(std::string_view name) {
  for (int i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    if (name == fault_kind_name(kind)) return kind;
  }
  return common::make_error(common::Errc::invalid_argument,
                            "unknown fault kind '" + std::string(name) + "'");
}

void normalize_fault(FaultEvent& event) {
  if (event.start < 0) event.start = 0;
  if (event.duration < 0) event.duration = 0;
  if (!fault_kind_durable(event.kind)) event.duration = 0;
  if (event.magnitude == 0.0) event.magnitude = 0.0;  // -0.0 -> +0.0
}

FaultInjector& FaultInjector::add(FaultEvent event) {
  normalize_fault(event);
  plan_.push_back(std::move(event));
  return *this;
}

FaultInjector& FaultInjector::clamp_to(SimTime horizon) {
  if (horizon < 0) horizon = 0;
  for (auto& e : plan_) {
    if (e.start > horizon) e.start = horizon;
    if (e.duration > horizon - e.start) e.duration = horizon - e.start;
  }
  return *this;
}

void FaultInjector::generate_kind(FaultKind kind, const FaultProfile& profile,
                                  SimTime horizon) {
  if (profile.mean_interval <= 0 || profile.targets.empty()) return;
  const double mean = static_cast<double>(profile.mean_interval);
  double t = rng_.exponential(mean);
  while (static_cast<SimTime>(t) < horizon) {
    FaultEvent e;
    e.kind = kind;
    e.target = profile.targets[rng_.uniform_int(profile.targets.size())];
    e.start = static_cast<SimTime>(t);
    e.duration = static_cast<SimDuration>(
        rng_.uniform(static_cast<double>(profile.min_duration),
                     static_cast<double>(profile.max_duration)));
    e.magnitude = rng_.uniform(profile.min_magnitude, profile.max_magnitude);
    e.description = std::string(fault_kind_name(kind)) + " on " + e.target;
    normalize_fault(e);
    plan_.push_back(std::move(e));
    t += rng_.exponential(mean);
  }
}

void FaultInjector::generate(const ChaosProfile& profile, SimTime horizon) {
  // Fixed kind order keeps the Rng draw sequence (and thus the plan) a pure
  // function of the seed.
  generate_kind(FaultKind::brownout, profile.brownout, horizon);
  generate_kind(FaultKind::loss_spike, profile.loss_spike, horizon);
  generate_kind(FaultKind::service_crash, profile.service_crash, horizon);
  generate_kind(FaultKind::stage_stall, profile.stage_stall, horizon);
  generate_kind(FaultKind::corruption, profile.corruption, horizon);
  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.start < b.start;
                   });
}

std::uint64_t FaultInjector::timeline_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& e : plan_) {
    const auto kind = static_cast<std::uint32_t>(e.kind);
    h = common::fnv1a64(&kind, sizeof(kind), h);
    h = common::fnv1a64(e.target.data(), e.target.size(), h);
    h = common::fnv1a64(&e.start, sizeof(e.start), h);
    h = common::fnv1a64(&e.duration, sizeof(e.duration), h);
    h = common::fnv1a64(&e.magnitude, sizeof(e.magnitude), h);
  }
  return h;
}

void FaultInjector::arm(Simulation& simulation, FaultHooks hooks) const {
  auto& metrics = simulation.metrics();
  auto* recorder = &simulation.flight_recorder();
  auto* active_gauge = &metrics.gauge("chaos_active_faults");
  // Overlap reference counting per (kind, target), like FailureSchedule.
  auto depth = std::make_shared<std::map<std::string, int>>();
  auto shared_hooks = std::make_shared<FaultHooks>(std::move(hooks));

  auto durable = [&](const FaultEvent& e,
                     std::function<void(const FaultEvent&, bool)>
                         FaultHooks::* hook) {
    const std::string key =
        std::string(fault_kind_name(e.kind)) + "|" + e.target;
    const std::string stem = std::string("fault.") + fault_kind_name(e.kind);
    auto* injected =
        &metrics.counter("chaos_faults_injected_total",
                         {{"kind", fault_kind_name(e.kind)}});
    // Windows already in the past clamp to now(): begin fires immediately
    // and, because begin is scheduled before end, still strictly first.
    const SimTime begin_at = std::max(e.start, simulation.now());
    simulation.schedule_at(
        begin_at, [e, key, stem, depth, shared_hooks, hook, injected,
                   active_gauge, recorder] {
          injected->add();
          active_gauge->add(1.0);
          recorder->record("chaos", stem + ".begin", e.target,
                           {{"magnitude", fmt_magnitude(e.magnitude)},
                            {"description", e.description}});
          if (++(*depth)[key] == 1 && (*shared_hooks).*hook) {
            ((*shared_hooks).*hook)(e, true);
          }
        });
    simulation.schedule_at(
        std::max(e.start + e.duration, begin_at),
        [e, key, stem, depth, shared_hooks, hook, active_gauge, recorder] {
          active_gauge->add(-1.0);
          recorder->record("chaos", stem + ".end", e.target);
          if (--(*depth)[key] == 0 && (*shared_hooks).*hook) {
            ((*shared_hooks).*hook)(e, false);
          }
        });
  };

  for (const auto& e : plan_) {
    switch (e.kind) {
      case FaultKind::brownout: durable(e, &FaultHooks::brownout); break;
      case FaultKind::loss_spike: durable(e, &FaultHooks::loss_spike); break;
      case FaultKind::service_crash:
        durable(e, &FaultHooks::service_crash);
        break;
      case FaultKind::stage_stall: durable(e, &FaultHooks::stage_stall); break;
      case FaultKind::corruption: {
        auto* injected = &metrics.counter("chaos_faults_injected_total",
                                          {{"kind", "corruption"}});
        simulation.schedule_at(
            std::max(e.start, simulation.now()),
            [e, shared_hooks, injected, recorder] {
              injected->add();
              recorder->record("chaos", "fault.corruption", e.target,
                               {{"description", e.description}});
              if (shared_hooks->corruption) shared_hooks->corruption(e);
            });
        break;
      }
    }
  }
}

bool FaultInjector::active(FaultKind kind, const std::string& target,
                           SimTime t) const {
  for (const auto& e : plan_) {
    if (e.kind == kind && e.target == target && t >= e.start &&
        t < e.start + e.duration) {
      return true;
    }
  }
  return false;
}

}  // namespace esg::sim
