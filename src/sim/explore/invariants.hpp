// The declarative invariant suite checked on every explored schedule.
//
// Every enumerated fault plan is bounded (clamp_to the horizon) and the
// canonical world's retry budgets are generous, so the self-healing stack
// is *expected* to fully recover from anything the enumerator emits.  The
// invariants pin that expectation down:
//
//   terminates           — the workload completes before the liveness cap.
//   no-file-lost         — no file permanently fails while a replica is
//                          alive (every fault window ends, so replicas
//                          always come back; a permanent failure means the
//                          recovery machinery gave up wrongly).
//   breakers-reclose     — after a post-run cooldown advance, every circuit
//                          breaker re-admits traffic; none wedges open.
//   phases-tile          — each file's postmortem phase slices are
//                          contiguous and sum exactly to its whole span.
//   alerts-correlated    — every alert firing during the run correlates to
//                          an injected fault (no page without a cause).
//   deterministic-replay — re-running the same schedule reproduces the
//                          RunManifest bytes and flight digest exactly.
//
// A Violation carries the full schedule and renders as a self-contained
// repro: the offending schedule's JSON plus the one-line esg-explore
// replay command.
#pragma once

#include <string>
#include <vector>

#include "sim/explore/world.hpp"

namespace esg::explore {

struct Violation {
  std::string invariant;
  std::string detail;
  FaultSchedule schedule;

  /// Multi-line report: invariant, detail, schedule JSON, replay command.
  std::string render() const;
};

struct InvariantOptions {
  WorldOptions world;
  /// Run the schedule twice and byte-compare (the expensive invariant;
  /// sweeps apply it to every Nth schedule).
  bool check_determinism = false;
};

struct CheckResult {
  ScheduleRun run;
  std::vector<Violation> violations;
  int invariants_checked = 0;
};

/// The invariant names in check order (determinism last, when enabled).
std::vector<std::string> invariant_names(bool with_determinism);

/// Run `schedule` against the canonical world and evaluate the suite.
CheckResult check_schedule(const FaultSchedule& schedule,
                           const InvariantOptions& options = {});

}  // namespace esg::explore
