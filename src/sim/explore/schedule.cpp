#include "sim/explore/schedule.hpp"

#include <cstdio>

#include "common/bytebuf.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"

namespace esg::explore {

namespace {

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_i64(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

// %.17g round-trips every double; magnitudes must re-serialize byte-stably.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::uint64_t FaultSchedule::hash() const {
  std::uint64_t h = common::fnv1a64("esg.fault_schedule.v1");
  h = common::fnv1a64(&sim_seed, sizeof(sim_seed), h);
  h = common::fnv1a64(&horizon, sizeof(horizon), h);
  for (const auto& e : faults) {
    const auto kind = static_cast<std::uint32_t>(e.kind);
    h = common::fnv1a64(&kind, sizeof(kind), h);
    h = common::fnv1a64(e.target.data(), e.target.size(), h);
    h = common::fnv1a64(&e.start, sizeof(e.start), h);
    h = common::fnv1a64(&e.duration, sizeof(e.duration), h);
    h = common::fnv1a64(&e.magnitude, sizeof(e.magnitude), h);
  }
  return h;
}

std::string FaultSchedule::hash_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash()));
  return buf;
}

std::string FaultSchedule::to_json() const {
  std::string out = "{\"schema\":\"esg.fault_schedule.v1\",";
  out += "\"name\":\"" + obs::json_escape(name) + "\",";
  out += "\"sim_seed\":" + fmt_u64(sim_seed) + ",";
  out += "\"horizon_ns\":" + fmt_i64(horizon) + ",";
  out += "\"faults\":[";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto& e = faults[i];
    if (i) out += ",";
    out += "{\"kind\":\"";
    out += sim::fault_kind_name(e.kind);
    out += "\",\"target\":\"" + obs::json_escape(e.target) + "\",";
    out += "\"start_ns\":" + fmt_i64(e.start) + ",";
    out += "\"duration_ns\":" + fmt_i64(e.duration) + ",";
    out += "\"magnitude\":" + fmt_double(e.magnitude);
    if (!e.description.empty()) {
      out += ",\"description\":\"" + obs::json_escape(e.description) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

common::Result<FaultSchedule> FaultSchedule::from_json(std::string_view text) {
  auto parsed = obs::json::parse(text);
  if (!parsed) return parsed.error();
  const auto& root = parsed.value();
  if (!root.is_object()) {
    return common::make_error(common::Errc::invalid_argument,
                              "fault schedule: not a JSON object");
  }
  const std::string schema = root.string_or("schema", "");
  if (schema != "esg.fault_schedule.v1") {
    return common::make_error(common::Errc::invalid_argument,
                              "fault schedule: unknown schema '" + schema +
                                  "'");
  }
  FaultSchedule sched;
  sched.name = root.string_or("name", "");
  sched.sim_seed =
      static_cast<std::uint64_t>(root.number_or("sim_seed", 1.0));
  sched.horizon = static_cast<common::SimTime>(
      root.number_or("horizon_ns", static_cast<double>(sched.horizon)));
  const auto* faults = root.find("faults");
  if (faults != nullptr) {
    if (!faults->is_array()) {
      return common::make_error(common::Errc::invalid_argument,
                                "fault schedule: 'faults' is not an array");
    }
    for (const auto& f : faults->as_array()) {
      if (!f.is_object()) {
        return common::make_error(common::Errc::invalid_argument,
                                  "fault schedule: fault entry not an object");
      }
      auto kind = sim::parse_fault_kind(f.string_or("kind", ""));
      if (!kind) return kind.error();
      sim::FaultEvent e;
      e.kind = kind.value();
      e.target = f.string_or("target", "");
      e.start = static_cast<common::SimTime>(f.number_or("start_ns", 0.0));
      e.duration =
          static_cast<common::SimDuration>(f.number_or("duration_ns", 0.0));
      e.magnitude = f.number_or("magnitude", 0.0);
      e.description = f.string_or("description", "");
      sim::normalize_fault(e);
      sched.faults.push_back(std::move(e));
    }
  }
  return sched;
}

std::string replay_command(const FaultSchedule& schedule) {
  // The schedule JSON contains no single quotes (json_escape never emits
  // them), so single-quoting it is shell-safe for a copy-paste repro.
  return "esg-explore replay --inline '" + schedule.to_json() + "'";
}

}  // namespace esg::explore
