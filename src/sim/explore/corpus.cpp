#include "sim/explore/corpus.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/manifest.hpp"  // write_file / read_file

namespace esg::explore {

namespace fs = std::filesystem;

std::string seed_filename(const FaultSchedule& schedule) {
  return "seed-" + schedule.hash_hex() + ".json";
}

common::Result<std::string> save_seed(const std::string& dir,
                                      const FaultSchedule& schedule) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return common::make_error(common::Errc::io_error,
                              "cannot create corpus dir '" + dir +
                                  "': " + ec.message());
  }
  const std::string path = dir + "/" + seed_filename(schedule);
  if (!obs::write_file(path, schedule.to_json() + "\n")) {
    return common::make_error(common::Errc::io_error,
                              "cannot write seed '" + path + "'");
  }
  return path;
}

common::Result<std::vector<FaultSchedule>> load_corpus(
    const std::string& dir) {
  std::vector<FaultSchedule> out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return out;

  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seed-", 0) == 0 &&
        entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return common::make_error(common::Errc::io_error,
                              "cannot list corpus dir '" + dir +
                                  "': " + ec.message());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    auto text = obs::read_file(path);
    if (!text) return text.error();
    auto sched = FaultSchedule::from_json(text.value());
    if (!sched) {
      return common::make_error(common::Errc::invalid_argument,
                                "corpus seed '" + path + "': " +
                                    sched.error().to_string());
    }
    if (sched.value().name.empty()) {
      sched.value().name = fs::path(path).stem().string();
    }
    out.push_back(std::move(sched.value()));
  }
  return out;
}

common::Result<CorpusReplay> replay_corpus(const std::string& dir,
                                           const WorldOptions& world) {
  auto corpus = load_corpus(dir);
  if (!corpus) return corpus.error();

  CorpusReplay replay;
  InvariantOptions opts;
  opts.world = world;
  opts.check_determinism = true;
  for (const auto& seed : corpus.value()) {
    ++replay.seeds;
    auto result = check_schedule(seed, opts);
    if (!result.violations.empty()) {
      ++replay.failed;
      replay.violations.insert(replay.violations.end(),
                               result.violations.begin(),
                               result.violations.end());
    }
  }
  return replay;
}

}  // namespace esg::explore
