#include "sim/explore/enumerate.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/rng.hpp"

namespace esg::explore {

namespace {

using common::kSecond;

// One realized single fault from the target space (before timing).
struct FaultTemplate {
  sim::FaultKind kind = sim::FaultKind::brownout;
  std::string target;
  double magnitude = 0.0;
};

std::vector<FaultTemplate> expand_templates(const EnumerationConfig& cfg) {
  std::vector<FaultTemplate> out;
  for (const auto& link : cfg.space.brownout_links) {
    for (double m : cfg.magnitude_grid) {
      out.push_back({sim::FaultKind::brownout, link, m});
    }
  }
  for (const auto& link : cfg.space.loss_links) {
    for (double p : cfg.loss_grid) {
      out.push_back({sim::FaultKind::loss_spike, link, p});
    }
  }
  for (const auto& host : cfg.space.crash_hosts) {
    out.push_back({sim::FaultKind::service_crash, host, 0.0});
  }
  for (const auto& t : cfg.space.stall_targets) {
    out.push_back({sim::FaultKind::stage_stall, t, 0.0});
  }
  for (const auto& t : cfg.space.corruption_targets) {
    out.push_back({sim::FaultKind::corruption, t, 0.0});
  }
  return out;
}

sim::FaultEvent realize(const FaultTemplate& t, common::SimTime start,
                        common::SimDuration duration) {
  sim::FaultEvent e;
  e.kind = t.kind;
  e.target = t.target;
  e.start = start;
  e.duration = duration;
  e.magnitude = t.magnitude;
  e.description =
      std::string(sim::fault_kind_name(t.kind)) + " on " + t.target;
  sim::normalize_fault(e);
  return e;
}

// Emitter that owns dedup + budget accounting.
class Sink {
 public:
  Sink(std::size_t budget, std::uint64_t sim_seed, common::SimTime horizon)
      : budget_(budget), sim_seed_(sim_seed), horizon_(horizon) {}

  bool full() const { return out_.size() >= budget_; }

  void emit(std::string name, std::vector<sim::FaultEvent> faults) {
    if (full()) return;
    FaultSchedule s;
    s.name = std::move(name);
    s.sim_seed = sim_seed_;
    s.horizon = horizon_;
    s.faults = std::move(faults);
    std::stable_sort(s.faults.begin(), s.faults.end(),
                     [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
                       return a.start < b.start;
                     });
    if (!seen_.insert(s.hash()).second) return;
    out_.push_back(std::move(s));
  }

  std::vector<FaultSchedule> take() { return std::move(out_); }

 private:
  std::size_t budget_;
  std::uint64_t sim_seed_;
  common::SimTime horizon_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<FaultSchedule> out_;
};

}  // namespace

EnumerationConfig canonical_enumeration() {
  EnumerationConfig cfg;
  cfg.space.brownout_links = {"client-uplink", "lbnl-uplink", "isi-uplink"};
  cfg.space.loss_links = {"client-uplink"};
  cfg.space.crash_hosts = {"lbnl.host", "isi.host", "hpss.lbl.gov"};
  cfg.space.stall_targets = {"tape"};
  cfg.space.corruption_targets = {"client"};
  cfg.start_grid = {5 * kSecond, 25 * kSecond, 60 * kSecond};
  cfg.duration_grid = {0, 20 * kSecond, 45 * kSecond};
  cfg.magnitude_grid = {0.25, 0.5};
  cfg.loss_grid = {0.003, 0.01};
  return cfg;
}

std::vector<FaultSchedule> enumerate_schedules(
    const EnumerationConfig& cfg) {
  Sink sink(cfg.budget, cfg.sim_seed, cfg.horizon);
  const auto templates = expand_templates(cfg);

  // Tier 1: singles — every template at every grid timing.  Instantaneous
  // kinds skip the duration axis (their windows are always zero-length).
  int index = 0;
  for (const auto& t : templates) {
    for (common::SimTime start : cfg.start_grid) {
      if (!sim::fault_kind_durable(t.kind)) {
        sink.emit("single:" + std::to_string(index++),
                  {realize(t, start, 0)});
        continue;
      }
      for (common::SimDuration duration : cfg.duration_grid) {
        sink.emit("single:" + std::to_string(index++),
                  {realize(t, start, duration)});
      }
    }
  }

  // Tier 2: ordered pairs over one representative per template (first grid
  // start, longest grid duration), staggered so the second window opens
  // while the first is still active — then the same pair in the other
  // order.  Both permutations matter: "crash during stall" and "stall
  // during crash" exercise different recovery paths.
  const common::SimTime pair_start =
      cfg.start_grid.empty() ? 5 * kSecond : cfg.start_grid.front();
  const common::SimDuration pair_duration =
      cfg.duration_grid.empty()
          ? 30 * kSecond
          : *std::max_element(cfg.duration_grid.begin(),
                              cfg.duration_grid.end());
  const common::SimDuration stagger =
      pair_duration > 0 ? pair_duration / 2 : 10 * kSecond;
  // One representative per (kind, target): the first template for each.
  std::vector<FaultTemplate> reps;
  for (const auto& t : templates) {
    const bool dup = std::any_of(reps.begin(), reps.end(),
                                 [&](const FaultTemplate& r) {
                                   return r.kind == t.kind &&
                                          r.target == t.target;
                                 });
    if (!dup) reps.push_back(t);
  }
  index = 0;
  for (std::size_t i = 0; i < reps.size(); ++i) {
    for (std::size_t j = 0; j < reps.size(); ++j) {
      if (i == j) continue;
      sink.emit("pair:" + std::to_string(index++),
                {realize(reps[i], pair_start, pair_duration),
                 realize(reps[j], pair_start + stagger, pair_duration)});
    }
  }

  // Tier 3: seeded random multi-fault schedules snapped to the grids, until
  // the budget is met.  The sweep seed (not the sim seed) drives the draws,
  // so the same config always fills with the same schedules.
  common::Rng rng(cfg.sweep_seed);
  index = 0;
  // Bounded attempts: dedup collisions must not loop forever when the
  // space is smaller than the budget.
  std::size_t attempts = 4 * cfg.budget + 64;
  while (!sink.full() && attempts-- > 0 && !templates.empty()) {
    const std::size_t n =
        2 + rng.uniform_int(cfg.max_random_faults >= 2
                                ? cfg.max_random_faults - 1
                                : 1);
    std::vector<sim::FaultEvent> faults;
    for (std::size_t k = 0; k < n; ++k) {
      const auto& t = templates[rng.uniform_int(templates.size())];
      const common::SimTime start =
          cfg.start_grid.empty()
              ? 0
              : cfg.start_grid[rng.uniform_int(cfg.start_grid.size())];
      const common::SimDuration duration =
          cfg.duration_grid.empty()
              ? 0
              : cfg.duration_grid[rng.uniform_int(cfg.duration_grid.size())];
      faults.push_back(realize(t, start, duration));
    }
    sink.emit("random:" + std::to_string(index++), std::move(faults));
  }

  return sink.take();
}

}  // namespace esg::explore
