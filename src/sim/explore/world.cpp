#include "sim/explore/world.hpp"

#include <memory>
#include <utility>

#include "campaign/driver.hpp"
#include "directory/service.hpp"
#include "hrm/hrm.hpp"
#include "mds/mds.hpp"
#include "obs/alert.hpp"
#include "replica/catalog.hpp"
#include "rm/request_manager.hpp"
#include "sim/chaos.hpp"

namespace esg::explore {

namespace {

using common::kSecond;

constexpr const char* kCollection = "explore";
constexpr const char* kTopology = "star: client-site/hub/lbnl/isi, 3 uplinks";

std::string disk_file_name(int i) {
  return "month." + std::to_string(i) + ".ncx";
}
std::string tape_file_name(int i) {
  return "deep." + std::to_string(i) + ".ncx";
}

}  // namespace

ScheduleRun run_schedule(const FaultSchedule& schedule,
                         const WorldOptions& options) {
  ScheduleRun out;

  sim::Simulation sim{schedule.sim_seed};
  net::Network net{sim};
  rpc::Orb orb{net};
  security::CertificateAuthority ca{"/O=Grid/CN=ESG CA"};
  gridftp::ServerRegistry registry;

  for (const char* site : {"client-site", "hub", "lbnl", "isi"}) {
    net.add_site(site);
  }
  net.add_link({.name = "client-uplink", .site_a = "client-site",
                .site_b = "hub", .capacity = common::mbps(200),
                .latency = 5 * common::kMillisecond});
  net.add_link({.name = "lbnl-uplink", .site_a = "lbnl", .site_b = "hub",
                .capacity = common::mbps(150),
                .latency = 5 * common::kMillisecond});
  net.add_link({.name = "isi-uplink", .site_a = "isi", .site_b = "hub",
                .capacity = common::mbps(150),
                .latency = 5 * common::kMillisecond});

  auto add_host = [&](const char* name, const char* site) {
    return net.add_host({.name = name, .site = site,
                         .nic_rate = common::gbps(1),
                         .cpu_rate = common::gbps(1),
                         .disk_rate = common::gbps(1)});
  };
  auto* client_host = add_host("client", "client-site");
  auto* catalog_host = add_host("catalog.host", "lbnl");
  auto* mds_host = add_host("mds.host", "lbnl");

  auto make_server = [&](const char* name, const char* site) {
    auto* host = add_host(name, site);
    security::GridMapFile gm;
    gm.add("/O=Grid/CN=esg-user", "esg");
    auto server = std::make_unique<gridftp::GridFtpServer>(
        orb, *host, std::make_shared<storage::HostStorage>(), ca,
        std::move(gm));
    registry.add(server.get());
    return server;
  };
  auto lbnl_server = make_server("lbnl.host", "lbnl");
  auto isi_server = make_server("isi.host", "isi");
  auto mss_server = make_server("hpss.lbl.gov", "lbnl");

  hrm::HrmConfig hcfg;
  hcfg.tape.drives = 1;
  hcfg.tape.mount_time = 5 * kSecond;
  hcfg.tape.avg_seek = 2 * kSecond;
  hcfg.tape.read_rate = common::mbps(400);
  hrm::HrmService hrm(orb, mss_server->host(), mss_server->storage_ptr(),
                      hcfg);

  security::CredentialWallet wallet;
  wallet.set_identity(
      ca.issue("/O=Grid/CN=esg-user", 0, 1000 * common::kHour));
  gridftp::GridFtpClient client(orb, *client_host,
                                std::make_shared<storage::HostStorage>(),
                                std::move(wallet), registry);

  directory::DirectoryService catalog_service(
      orb, *catalog_host, std::make_shared<directory::DirectoryServer>());
  mds::MdsService mds_service(orb, *mds_host);

  // ---- seed catalog, replicas and MDS forecasts ----
  replica::ReplicaCatalog catalog(
      directory::DirectoryClient(orb, *client_host, *catalog_host), "esg");
  catalog.create_catalog([](common::Status) {});
  catalog.create_collection(kCollection, [](common::Status) {});
  replica::LocationInfo lbnl{};
  lbnl.name = "lbnl-disk";
  lbnl.hostname = "lbnl.host";
  lbnl.path = "co2";
  replica::LocationInfo isi = lbnl;
  isi.name = "isi-disk";
  isi.hostname = "isi.host";
  replica::LocationInfo mss{};
  mss.name = "lbnl-hpss";
  mss.hostname = "hpss.lbl.gov";
  mss.path = "archive";
  mss.storage_type = "mss";

  std::vector<rm::FileRequest> wanted;
  for (int i = 0; i < options.disk_files; ++i) {
    const std::string name = disk_file_name(i);
    catalog.register_logical_file(kCollection, {name, options.file_size},
                                  [](common::Status) {});
    lbnl.files.push_back(name);
    isi.files.push_back(name);
    for (auto* server : {lbnl_server.get(), isi_server.get()}) {
      (void)server->storage().put(
          storage::FileObject::synthetic("co2/" + name, options.file_size));
    }
    wanted.push_back({kCollection, name});
  }
  const bool want_tape =
      options.workload == Workload::request_manager && options.tape_files > 0;
  for (int i = 0; want_tape && i < options.tape_files; ++i) {
    const std::string name = tape_file_name(i);
    catalog.register_logical_file(kCollection, {name, options.file_size},
                                  [](common::Status) {});
    mss.files.push_back(name);
    hrm.archive(
        storage::FileObject::synthetic("archive/" + name, options.file_size));
    wanted.push_back({kCollection, name});
  }
  catalog.register_location(kCollection, lbnl, [](common::Status) {});
  catalog.register_location(kCollection, isi, [](common::Status) {});
  if (want_tape) {
    catalog.register_location(kCollection, mss, [](common::Status) {});
  }

  auto mds = mds::MdsClient(orb, *client_host, *mds_host);
  for (const auto& [src, bw] :
       std::vector<std::pair<std::string, common::Rate>>{
           {"lbnl.host", common::mbps(120)},
           {"isi.host", common::mbps(80)},
           {"hpss.lbl.gov", common::mbps(100)}}) {
    mds::NetworkRecord rec;
    rec.src_host = src;
    rec.dst_host = "client";
    rec.bandwidth = bw;
    rec.latency = 10 * common::kMillisecond;
    mds.publish_network(rec, [](common::Status) {});
  }
  sim.run();  // drain the seeding RPCs before faults/workload start

  // ---- arm the schedule ----
  sim::FaultInjector injector(schedule.sim_seed);
  for (const auto& e : schedule.faults) injector.add(e);
  injector.clamp_to(schedule.horizon);
  out.timeline_hash = injector.timeline_hash();

  sim::FaultHooks hooks;
  hooks.brownout = [&](const sim::FaultEvent& e, bool begin) {
    if (auto* link = net.find_link(e.target)) {
      net.set_link_brownout(*link, begin ? e.magnitude : 1.0);
    }
  };
  hooks.loss_spike = [&](const sim::FaultEvent& e, bool begin) {
    if (auto* link = net.find_link(e.target)) {
      net.set_link_loss(*link, begin ? e.magnitude : link->nominal_loss());
    }
  };
  hooks.service_crash = [&](const sim::FaultEvent& e, bool begin) {
    if (e.target == "lbnl.host") {
      begin ? lbnl_server->crash() : lbnl_server->restart();
    } else if (e.target == "isi.host") {
      begin ? isi_server->crash() : isi_server->restart();
    } else if (e.target == "hpss.lbl.gov") {
      begin ? hrm.crash() : hrm.restart();
    }
  };
  hooks.stage_stall = [&](const sim::FaultEvent&, bool begin) {
    hrm.tape().set_stalled(begin);
  };
  hooks.corruption = [&](const sim::FaultEvent&) {
    client.inject_corruption(1);
  };
  injector.arm(sim, std::move(hooks));

  // ---- streaming telemetry: burn-rate paging only.  The canonical runs
  // are short and bursty, so an EWMA anomaly watchdog would fire on the
  // workload's own ramp — every page must instead be attributable to an
  // injected fault, which is exactly the alert invariant.
  obs::BurnRateRule burn;
  burn.name = "gridftp-failure-burn";
  burn.bad_metric = "gridftp_transfers_failed_total";
  burn.good_metric = "gridftp_transfers_started_total";
  burn.objective = 0.99;
  burn.threshold = 2.0;
  sim.alerts().add(burn);
  auto telemetry = sim.start_telemetry(kSecond);

  // ---- workload ----
  rm::BreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown = 30 * kSecond;

  bool done = false;
  if (options.workload == Workload::request_manager) {
    rm::RequestManager manager(orb, *client_host, catalog,
                               mds::MdsClient(orb, *client_host, *mds_host),
                               client, nullptr, breaker);
    rm::RequestOptions opts;
    opts.transfer.buffer_size = common::kMiB;
    opts.transfer.parallelism = 2;
    opts.transfer.stall_timeout = 10 * kSecond;
    // Generous budgets: every bounded fault window must be survivable, so
    // a permanent failure is a lost file, not an exhausted retry count.
    opts.reliability.max_attempts = 60;
    opts.reliability.retry_backoff = kSecond;
    opts.reliability.max_backoff = 8 * kSecond;
    opts.reliability.jitter = 0.25;
    // A crashed HRM loses in-flight stage RPCs; the default 30-minute
    // per-attempt stage timeout would park the tape worker far past the
    // liveness cap, so detect and retry within a minute instead.
    opts.stage_timeout = 60 * kSecond;
    opts.stage_retry.max_attempts = 12;
    opts.stage_retry.retry_backoff = 5 * kSecond;
    opts.max_concurrent = 4;

    out.files_requested = static_cast<int>(wanted.size());
    rm::RequestResult result;
    manager.submit(wanted, opts, [&](rm::RequestResult r) {
      result = std::move(r);
      done = true;
      telemetry.cancel();
    });
    sim.run_while_pending(
        [&] { return done || sim.now() >= options.run_cap; });
    out.terminated = done;
    if (done) {
      sim.run();  // drain trailing fault windows deterministically
      out.finished_at = result.finished;
      for (const auto& f : result.files) {
        if (f.status.ok()) {
          ++out.completed;
        } else {
          ++out.failed;
          out.failure_details.push_back(
              f.request.filename + ": " + f.status.error().to_string());
        }
      }
    }
    // Advance past the breaker cooldown, then every breaker must re-admit
    // traffic (closed, or open-past-cooldown ready to probe).
    sim.schedule_after(breaker.cooldown + kSecond, [] {});
    sim.run();
    for (const auto& host : manager.health().hosts()) {
      if (!manager.health().healthy(host)) {
        out.unhealthy_hosts.push_back(host);
      }
    }
  } else {
    campaign::CampaignCatalog ccat;
    ccat.name = kCollection;
    for (int i = 0; i < options.disk_files; ++i) {
      campaign::CampaignFile f;
      f.dataset = kCollection;
      f.name = disk_file_name(i);
      f.size = options.file_size;
      f.sources = {{"lbnl.host", "co2/" + f.name},
                   {"isi.host", "co2/" + f.name}};
      f.destination_site = "client-site";
      ccat.files.push_back(std::move(f));
    }
    campaign::CampaignOptions copts;
    copts.per_site_concurrency = 2;
    copts.transfer.buffer_size = common::kMiB;
    copts.transfer.parallelism = 2;
    copts.transfer.stall_timeout = 10 * kSecond;
    copts.retry.max_attempts = 60;
    copts.retry.retry_backoff = kSecond;
    copts.retry.max_backoff = 8 * kSecond;
    copts.retry.jitter = 0.25;
    copts.breaker = breaker;
    campaign::CampaignDriver driver(
        sim, std::move(ccat),
        {{.site = "client-site", .client = &client,
          .local_prefix = "replica"}},
        copts);

    out.files_requested = options.disk_files;
    campaign::IntegrityReport report;
    driver.run([&](const campaign::IntegrityReport& r) {
      report = r;
      done = true;
      telemetry.cancel();
    });
    sim.run_while_pending(
        [&] { return done || sim.now() >= options.run_cap; });
    out.terminated = done;
    if (done) {
      sim.run();
      out.finished_at = sim.now();
      out.completed = static_cast<int>(report.files_moved);
      out.failed = static_cast<int>(report.files_failed);
      if (report.files_failed > 0) {
        out.failure_details.push_back(
            std::to_string(report.files_failed) +
            " campaign task(s) permanently failed");
      }
    }
    sim.schedule_after(breaker.cooldown + kSecond, [] {});
    sim.run();
    for (const auto& host : driver.health().hosts()) {
      if (!driver.health().healthy(host)) {
        out.unhealthy_hosts.push_back(host);
      }
    }
  }
  if (!out.terminated) out.finished_at = sim.now();
  out.flight_digest = sim.flight_recorder().digest();

  // ---- manifest + alert correlation ----
  out.manifest = obs::capture_manifest(
      "explore", schedule.sim_seed, kTopology, out.timeline_hash,
      sim.flight_recorder(), sim.metrics().snapshot(sim.now()));
  out.manifest.set_bench("files_completed", out.completed);
  out.manifest.set_bench("files_failed", out.failed);
  out.manifest.set_bench("finished_at_s", common::to_seconds(out.finished_at));
  out.manifest.alerts = sim.alerts().history();
  for (const auto& a : out.manifest.alerts) {
    if (a.fired_at > out.finished_at) continue;
    ++out.alerts_fired;
    if (obs::correlate_alert(out.manifest.events, a) == nullptr) {
      out.uncorrelated_alerts.push_back(
          a.rule + " @" + common::format_time(a.fired_at));
    }
  }
  out.manifest_json = out.manifest.to_json();
  return out;
}

}  // namespace esg::explore
