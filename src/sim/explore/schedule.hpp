// A FaultSchedule is one point in the fault-interleaving search space: a
// fully explicit, serializable fault plan (no profile randomness left) plus
// the simulation seed and horizon it is meant to run against.
//
// Schedules are the currency of the explorer: the enumerator emits them,
// the canonical world replays them through a FaultInjector, the shrinker
// minimizes them, and violated ones are checked into
// bench/baselines/explore/ as JSON regression seeds.  Everything therefore
// hangs off two properties:
//
//   * hash(): a canonical FNV-1a fingerprint (seed, horizon, every fault's
//     kind/target/window/magnitude) — the schedule's identity in sweep
//     summaries, seed filenames and dedup sets;
//   * to_json()/from_json(): a deterministic, byte-stable round-trip (the
//     JSON a parsed schedule re-serializes to is identical), so a violation
//     message can embed the exact one-line replay artifact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "sim/chaos.hpp"

namespace esg::explore {

struct FaultSchedule {
  /// Optional provenance tag ("single:3", "shrunk", corpus file stem, ...).
  std::string name;
  /// Seed for the Simulation the schedule runs against.
  std::uint64_t sim_seed = 1;
  /// Enumeration horizon: every fault window fits inside [0, horizon].
  common::SimTime horizon = 150 * common::kSecond;
  std::vector<sim::FaultEvent> faults;

  /// Canonical fingerprint; equal schedules (after normalize_fault) agree.
  std::uint64_t hash() const;
  /// hash() as 16 lowercase hex digits (seed filenames, log lines).
  std::string hash_hex() const;

  /// Single-line deterministic JSON; parse(to_json()) re-serializes to the
  /// identical bytes (times are integer nanoseconds, magnitudes %.17g).
  std::string to_json() const;
  static common::Result<FaultSchedule> from_json(std::string_view text);
};

/// The copy-paste replay command for a schedule (single-quoted inline JSON
/// for the esg-explore CLI) — every invariant-violation message embeds it.
std::string replay_command(const FaultSchedule& schedule);

}  // namespace esg::explore
