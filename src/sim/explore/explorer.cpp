#include "sim/explore/explorer.hpp"

#include "common/bytebuf.hpp"

namespace esg::explore {

SweepSummary run_sweep(const SweepConfig& config) {
  SweepSummary summary;
  summary.schedules_hash = common::fnv1a64("esg.explore.sweep.v1");
  summary.outcome_digest = summary.schedules_hash;

  const auto schedules = enumerate_schedules(config.enumeration);
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    const FaultSchedule& schedule = schedules[i];
    InvariantOptions opts;
    opts.world = config.world;
    opts.check_determinism =
        config.determinism_stride > 0 &&
        i % config.determinism_stride == 0;

    auto result = check_schedule(schedule, opts);
    ++summary.schedules_run;
    summary.invariants_checked +=
        static_cast<std::size_t>(result.invariants_checked);
    const std::uint64_t sched_hash = schedule.hash();
    summary.schedules_hash = common::fnv1a64(
        &sched_hash, sizeof(sched_hash), summary.schedules_hash);
    summary.outcome_digest =
        common::fnv1a64(&result.run.flight_digest,
                        sizeof(result.run.flight_digest),
                        summary.outcome_digest);

    if (config.progress) {
      config.progress(std::to_string(i + 1) + "/" +
                      std::to_string(schedules.size()) + " " +
                      schedule.hash_hex() +
                      (result.violations.empty()
                           ? " ok"
                           : " VIOLATION: " +
                                 result.violations.front().invariant));
    }
    if (result.violations.empty()) continue;

    ++summary.violations;
    for (const auto& v : result.violations) {
      summary.violation_log.push_back(v.render());
    }
    if (config.corpus_dir.empty()) continue;

    // Shrink against the *first* violated invariant: the minimal schedule
    // must reproduce the same failure class, not just any failure.
    const std::string invariant = result.violations.front().invariant;
    Oracle oracle = [&](const FaultSchedule& candidate) {
      auto check = check_schedule(candidate, opts);
      for (const auto& v : check.violations) {
        if (v.invariant == invariant) return true;
      }
      return false;
    };
    auto shrunk = shrink_schedule(schedule, oracle, config.shrink);
    if (shrunk.reproduced) {
      auto saved = save_seed(config.corpus_dir, shrunk.minimal);
      if (saved) {
        ++summary.seeds_written;
        summary.violation_log.push_back(
            "shrunk " + std::to_string(shrunk.original_faults) + " -> " +
            std::to_string(shrunk.minimal.faults.size()) +
            " fault(s), seed saved: " + saved.value() + "\n");
      }
    }
  }
  return summary;
}

}  // namespace esg::explore
