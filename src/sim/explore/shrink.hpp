// Counterexample shrinking: reduce a violating fault schedule to a minimal
// one that still violates, so the checked-in regression seed (and the
// human reading it) sees the essence of the bug, not the random noise the
// sweep happened to wrap around it.
//
// Classic delta debugging (Zeller's ddmin) over the fault list, followed
// by per-fault simplification:
//
//   1. ddmin      — find a 1-minimal *subset* of the faults: removing any
//                   single remaining fault makes the violation disappear.
//   2. durations  — per fault, the shortest ladder duration that still
//                   violates (many bugs only need the window to exist).
//   3. starts     — per fault, the earliest snap-grid start that still
//                   violates (canonical timings diff well between seeds).
//
// The three passes iterate to a fixed point.  Everything is driven through
// a caller-supplied oracle (true = "still violates"), so the shrinker is
// deterministic whenever the oracle is — which check_schedule() guarantees.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/explore/schedule.hpp"

namespace esg::explore {

/// Does this schedule still exhibit the failure being minimized?
using Oracle = std::function<bool(const FaultSchedule&)>;

struct ShrinkOptions {
  /// Hard cap on oracle invocations (each one is a full world run).
  int max_runs = 400;
  /// Candidate durations tried smallest-first for each durable fault.
  std::vector<common::SimDuration> duration_ladder = {
      0, 5 * common::kSecond, 10 * common::kSecond, 20 * common::kSecond,
      45 * common::kSecond};
  /// Candidate start times tried earliest-first for each fault.
  std::vector<common::SimTime> start_snap = {
      0, 5 * common::kSecond, 25 * common::kSecond, 60 * common::kSecond};
};

struct ShrinkResult {
  FaultSchedule minimal;
  /// Oracle invocations spent (<= max_runs + 1 for the initial repro).
  int oracle_runs = 0;
  std::size_t original_faults = 0;
  /// False when the input schedule did not violate under the oracle at
  /// all — `minimal` is then the unmodified input.
  bool reproduced = false;
};

ShrinkResult shrink_schedule(const FaultSchedule& input, const Oracle& oracle,
                             const ShrinkOptions& options = {});

}  // namespace esg::explore
