#include "sim/explore/shrink.hpp"

#include <algorithm>

namespace esg::explore {

namespace {

class Shrinker {
 public:
  Shrinker(const Oracle& oracle, const ShrinkOptions& options)
      : oracle_(oracle), options_(options) {}

  int runs() const { return runs_; }

  bool violates(const FaultSchedule& candidate) {
    if (runs_ >= options_.max_runs) return false;  // budget gone: keep as-is
    ++runs_;
    return oracle_(candidate);
  }

  /// ddmin over the fault list: on return `sched` violates and removing
  /// any single fault from it no longer does (1-minimal), budget allowing.
  void minimize_set(FaultSchedule& sched) {
    std::size_t granularity = 2;
    while (sched.faults.size() >= 2 && runs_ < options_.max_runs) {
      granularity = std::min(granularity, sched.faults.size());
      const std::size_t chunk =
          (sched.faults.size() + granularity - 1) / granularity;
      bool reduced = false;
      for (std::size_t begin = 0;
           begin < sched.faults.size() && !reduced; begin += chunk) {
        const std::size_t end =
            std::min(begin + chunk, sched.faults.size());
        FaultSchedule candidate = sched;
        candidate.faults.erase(candidate.faults.begin() + begin,
                               candidate.faults.begin() + end);
        if (!candidate.faults.empty() && violates(candidate)) {
          sched = std::move(candidate);
          granularity = std::max<std::size_t>(2, granularity - 1);
          reduced = true;
        }
      }
      if (!reduced) {
        if (granularity >= sched.faults.size()) break;
        granularity = std::min(sched.faults.size(), granularity * 2);
      }
    }
  }

  /// Per-fault window simplification: shortest still-violating ladder
  /// duration, then earliest still-violating snap start.
  void minimize_windows(FaultSchedule& sched) {
    for (std::size_t i = 0; i < sched.faults.size(); ++i) {
      if (sim::fault_kind_durable(sched.faults[i].kind)) {
        for (common::SimDuration d : options_.duration_ladder) {
          if (d >= sched.faults[i].duration) break;
          FaultSchedule candidate = sched;
          candidate.faults[i].duration = d;
          if (violates(candidate)) {
            sched = std::move(candidate);
            break;  // ladder is ascending: the first hit is the shortest
          }
        }
      }
      for (common::SimTime s : options_.start_snap) {
        if (s >= sched.faults[i].start) break;
        FaultSchedule candidate = sched;
        candidate.faults[i].start = s;
        if (violates(candidate)) {
          sched = std::move(candidate);
          break;
        }
      }
    }
  }

 private:
  const Oracle& oracle_;
  const ShrinkOptions& options_;
  int runs_ = 0;
};

}  // namespace

ShrinkResult shrink_schedule(const FaultSchedule& input, const Oracle& oracle,
                             const ShrinkOptions& options) {
  ShrinkResult result;
  result.minimal = input;
  result.original_faults = input.faults.size();

  Shrinker shrinker(oracle, options);
  // The repro check runs outside the budget accounting guard so a
  // max_runs=0 caller still learns whether the input violates.
  result.reproduced = oracle(result.minimal);
  result.oracle_runs = 1;
  if (!result.reproduced) return result;

  std::uint64_t before;
  do {
    before = result.minimal.hash();
    shrinker.minimize_set(result.minimal);
    shrinker.minimize_windows(result.minimal);
  } while (result.minimal.hash() != before);

  result.oracle_runs += shrinker.runs();
  result.minimal.name = "shrunk:" + input.hash_hex();
  return result;
}

}  // namespace esg::explore
