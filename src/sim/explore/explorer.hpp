// The sweep driver: enumerate schedules, check every invariant on each,
// shrink whatever violates, and emit a deterministic summary.
//
// This is the tentpole entry point tying the explorer together.  One
// run_sweep() call is one systematic exploration campaign:
//
//   enumerate_schedules(cfg)  →  check_schedule() per schedule (the
//   expensive determinism invariant applied every `determinism_stride`-th
//   schedule)  →  on violation: shrink_schedule() with the same invariant
//   as the oracle, save the minimal schedule into the seed corpus, and
//   keep the rendered repro in `violation_log`.
//
// The summary's schedules_hash/outcome_digest fold every schedule identity
// and per-run flight digest, so two sweeps over the same config must agree
// byte-for-byte — that pair is what bench_explore pins into its gated
// manifest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/explore/corpus.hpp"
#include "sim/explore/enumerate.hpp"
#include "sim/explore/invariants.hpp"
#include "sim/explore/shrink.hpp"

namespace esg::explore {

struct SweepConfig {
  EnumerationConfig enumeration = canonical_enumeration();
  WorldOptions world;
  /// Apply the deterministic-replay invariant to every Nth schedule
  /// (1 = always, 0 = never).  It doubles that schedule's cost, so sweeps
  /// sample it instead of paying it everywhere.
  std::size_t determinism_stride = 8;
  /// Shrink violations and persist the minimal schedules here ("" = keep
  /// violations unshrunk and unsaved — the corpus stays curated).
  std::string corpus_dir;
  ShrinkOptions shrink;
  /// Progress callback, called once per schedule ("12/200 a3f9… ok").
  std::function<void(const std::string&)> progress;
};

struct SweepSummary {
  std::size_t schedules_run = 0;
  std::size_t invariants_checked = 0;  // summed over all schedules
  std::size_t violations = 0;          // violating *schedules*
  std::size_t seeds_written = 0;       // shrunk seeds saved to the corpus
  /// Fold of every explored schedule's hash, in sweep order.
  std::uint64_t schedules_hash = 0;
  /// Fold of every run's flight digest, in sweep order — the sweep's
  /// behavioural fingerprint.
  std::uint64_t outcome_digest = 0;
  /// Rendered repro (schedule JSON + replay command) per violation.
  std::vector<std::string> violation_log;
};

SweepSummary run_sweep(const SweepConfig& config);

}  // namespace esg::explore
