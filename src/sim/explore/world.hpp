// The canonical exploration world: one small, fixed topology + workload
// that every enumerated fault schedule runs against.
//
// It is a shrunken bench_chaos: the star topology (client-site / hub / lbnl
// / isi, HPSS co-located at lbnl), a few disk files replicated at both
// replica sites plus one tape-resident file, and the full self-healing
// stack — ReliableGet restart markers, retry backoff, replica rotation,
// circuit breakers, HRM stage retries, checksum re-fetch — under streaming
// telemetry with a burn-rate alert rule.  Small on purpose: a sweep runs
// hundreds of schedules, so one run must cost milliseconds of wall clock.
//
// run_schedule() arms the schedule's faults on this world, drives the
// workload to completion (under a liveness cap), then extracts everything
// the invariant suite needs: per-file outcomes, breaker health after a
// post-run cooldown, the alert timeline with fault correlation, and the
// byte-deterministic RunManifest + flight digest for replay comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "sim/explore/schedule.hpp"

namespace esg::explore {

/// Which stack carries the workload.  request_manager is the paper-§4 path
/// (replica lookup, MDS ranking, HRM staging for the tape file);
/// campaign drives the same files through campaign::CampaignDriver's
/// ReliableGet worker slots instead (disk files only — the campaign layer
/// has no tape staging path).
enum class Workload { request_manager, campaign };

struct WorldOptions {
  Workload workload = Workload::request_manager;
  int disk_files = 3;
  int tape_files = 1;
  common::Bytes file_size = 4'000'000;
  /// Liveness cap: if the workload has not completed by this simulated
  /// time, the run is declared non-terminating (the `terminates`
  /// invariant fails) instead of spinning forever.
  common::SimTime run_cap = 30 * common::kMinute;
};

/// Everything one schedule run produced, pre-digested for the invariants.
struct ScheduleRun {
  /// The workload completion callback fired before the liveness cap.
  bool terminated = false;
  int files_requested = 0;
  int completed = 0;
  int failed = 0;
  /// "file: error text" for every permanent failure.
  std::vector<std::string> failure_details;

  std::uint64_t timeline_hash = 0;
  std::uint64_t flight_digest = 0;
  common::SimTime finished_at = 0;

  /// Hosts whose breaker still refuses traffic after the post-run
  /// cooldown advance (must be empty: every breaker re-admits).
  std::vector<std::string> unhealthy_hosts;

  int alerts_fired = 0;  // firings at or before finished_at
  /// "rule @ time" for every firing correlate_alert could not tie to an
  /// injected fault (must be empty: no alert without a cause).
  std::vector<std::string> uncorrelated_alerts;

  obs::RunManifest manifest;
  std::string manifest_json;
};

/// Run one schedule against the canonical world.  Deterministic: the same
/// (schedule, options) produces byte-identical manifest_json and
/// flight_digest on every call.
ScheduleRun run_schedule(const FaultSchedule& schedule,
                         const WorldOptions& options = {});

}  // namespace esg::explore
