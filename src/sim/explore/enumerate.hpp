// Schedule enumeration: turn a target space and a handful of small grids
// into a deterministic, deduplicated stream of FaultSchedules.
//
// The search strategy follows the systematic-testing playbook (SimGrid-style
// state-space exploration, scaled to what a sweep can afford):
//
//   1. singles    — the full cross product of (kind, target, magnitude) ×
//                   start_grid × duration_grid.  Every fault the space can
//                   express runs at least once at every grid timing.
//   2. pairs      — ordered pairs (both permutations) over a representative
//                   subset of the singles, staggered so the windows overlap
//                   and abut in both orders.  Pairwise interleavings are
//                   where most fault-handling bugs live (breaker trips
//                   during a brownout, crash during a tape stall, ...).
//   3. random     — seeded multi-fault schedules (2..max_random_faults
//                   faults, timings snapped to the grids) to fill whatever
//                   budget remains past the systematic tiers.
//
// Output is stable: same config ⇒ same schedules in the same order, with
// duplicates (by FaultSchedule::hash) removed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/explore/schedule.hpp"

namespace esg::explore {

/// What can be faulted, as hook-interpreted target names understood by the
/// canonical world (see world.hpp).
struct TargetSpace {
  std::vector<std::string> brownout_links;
  std::vector<std::string> loss_links;
  std::vector<std::string> crash_hosts;
  std::vector<std::string> stall_targets;       // tape libraries
  std::vector<std::string> corruption_targets;  // receiving clients
};

struct EnumerationConfig {
  TargetSpace space;
  /// Window start times tried for every single fault.
  std::vector<common::SimTime> start_grid;
  /// Window durations tried for every durable single fault (0 = the
  /// zero-length edge case the injector must survive).
  std::vector<common::SimDuration> duration_grid;
  /// Brownout magnitudes (remaining-capacity fractions).
  std::vector<double> magnitude_grid;
  /// Loss-spike probabilities.
  std::vector<double> loss_grid;

  std::uint64_t sim_seed = 1;
  common::SimTime horizon = 150 * common::kSecond;

  /// Total schedule budget (singles + pairs + random fill, after dedup).
  std::size_t budget = 200;
  /// Seed for the random tier (independent of sim_seed).
  std::uint64_t sweep_seed = 0xe5611a5ULL;
  std::size_t max_random_faults = 4;
};

/// The canonical enumeration grid for the canonical world (world.hpp) —
/// benches, tests and the CLI all sweep the same space by default.
EnumerationConfig canonical_enumeration();

/// Enumerate up to config.budget distinct schedules, stable order.
std::vector<FaultSchedule> enumerate_schedules(const EnumerationConfig& config);

}  // namespace esg::explore
