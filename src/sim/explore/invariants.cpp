#include "sim/explore/invariants.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/postmortem.hpp"

namespace esg::explore {

namespace {

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += "; ";
    out += p;
  }
  return out;
}

}  // namespace

std::string Violation::render() const {
  std::string out = "invariant violated: " + invariant + "\n";
  out += "  " + detail + "\n";
  out += "  schedule " + schedule.hash_hex() + ": " + schedule.to_json() +
         "\n";
  out += "  replay: " + replay_command(schedule) + "\n";
  return out;
}

std::vector<std::string> invariant_names(bool with_determinism) {
  std::vector<std::string> names = {"terminates", "no-file-lost",
                                    "breakers-reclose", "phases-tile",
                                    "alerts-correlated"};
  if (with_determinism) names.push_back("deterministic-replay");
  return names;
}

CheckResult check_schedule(const FaultSchedule& schedule,
                           const InvariantOptions& options) {
  CheckResult result;
  result.run = run_schedule(schedule, options.world);
  const ScheduleRun& run = result.run;
  auto violate = [&](const char* invariant, std::string detail) {
    result.violations.push_back(
        {invariant, std::move(detail), schedule});
  };

  // terminates
  ++result.invariants_checked;
  if (!run.terminated) {
    violate("terminates",
            "workload did not complete before the liveness cap (" +
                common::format_time(options.world.run_cap) + ")");
    // The remaining invariants describe a completed run; stop here.
    return result;
  }

  // no-file-lost
  ++result.invariants_checked;
  if (run.failed > 0) {
    violate("no-file-lost",
            std::to_string(run.failed) + " of " +
                std::to_string(run.files_requested) +
                " file(s) permanently failed although every fault window "
                "ends: " +
                join(run.failure_details));
  }

  // breakers-reclose
  ++result.invariants_checked;
  if (!run.unhealthy_hosts.empty()) {
    violate("breakers-reclose",
            "breaker(s) still refusing traffic after cooldown: " +
                join(run.unhealthy_hosts));
  }

  // phases-tile: every file's postmortem slices are contiguous and sum
  // exactly to the file's whole [started, finished] span.
  ++result.invariants_checked;
  for (const auto& file : obs::postmortem_files(run.manifest.events)) {
    const auto pm = obs::build_postmortem(run.manifest.events, file);
    if (!pm.found || pm.finished < pm.started) continue;
    common::SimDuration covered = 0;
    bool contiguous = !pm.phases.empty();
    for (std::size_t i = 0; i < pm.phases.size(); ++i) {
      covered += pm.phases[i].duration();
      if (i > 0 && pm.phases[i].start != pm.phases[i - 1].end) {
        contiguous = false;
      }
    }
    if (!pm.phases.empty() &&
        (pm.phases.front().start != pm.started ||
         pm.phases.back().end != pm.finished)) {
      contiguous = false;
    }
    if (!contiguous || covered != pm.total()) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "phase slices of '%s' do not tile its span "
                    "(covered %.3f s of %.3f s%s)",
                    file.c_str(), common::to_seconds(covered),
                    common::to_seconds(pm.total()),
                    contiguous ? "" : ", non-contiguous");
      violate("phases-tile", buf);
    }
  }

  // alerts-correlated
  ++result.invariants_checked;
  if (!run.uncorrelated_alerts.empty()) {
    violate("alerts-correlated",
            "alert firing(s) with no injected-fault cause: " +
                join(run.uncorrelated_alerts));
  }

  // deterministic-replay
  if (options.check_determinism) {
    ++result.invariants_checked;
    const ScheduleRun again = run_schedule(schedule, options.world);
    if (again.manifest_json != run.manifest_json ||
        again.flight_digest != run.flight_digest) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "same-schedule rerun diverged (manifest bytes %s, "
                    "flight digest %016" PRIx64 " vs %016" PRIx64 ")",
                    again.manifest_json == run.manifest_json ? "equal"
                                                             : "DIFFER",
                    run.flight_digest, again.flight_digest);
      violate("deterministic-replay", buf);
    }
  }
  return result;
}

}  // namespace esg::explore
