// Regression-seed corpus: violating schedules, shrunk and checked in.
//
// When a sweep finds an invariant violation, the shrinker minimizes the
// schedule and save_seed() serializes it under the corpus directory as
// `seed-<hash16>.json`.  The corpus then becomes a permanent regression
// suite: replay_corpus() re-runs every checked-in seed through the
// invariant harness (ctest, bench_explore and `esg-explore corpus` all
// call it) and expects the violation to stay *fixed* — a seed that fails
// again is a regression of a previously-shrunk bug.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "sim/explore/invariants.hpp"

namespace esg::explore {

/// Canonical corpus file name for a schedule: "seed-<hash16>.json".
std::string seed_filename(const FaultSchedule& schedule);

/// Write `schedule` to `dir/seed_filename(schedule)`; returns the path.
common::Result<std::string> save_seed(const std::string& dir,
                                      const FaultSchedule& schedule);

/// Load every `seed-*.json` under `dir`, sorted by file name (stable
/// replay order).  A missing directory is an empty corpus, not an error;
/// an unparsable seed file is an error.
common::Result<std::vector<FaultSchedule>> load_corpus(
    const std::string& dir);

struct CorpusReplay {
  std::size_t seeds = 0;
  std::size_t failed = 0;  // seeds whose invariants still violate
  std::vector<Violation> violations;
};

/// Replay every corpus seed through the invariant suite (determinism
/// check included — seeds are few and precious).
common::Result<CorpusReplay> replay_corpus(const std::string& dir,
                                           const WorldOptions& world = {});

}  // namespace esg::explore
