#include "sim/failure.hpp"

#include <map>
#include <memory>

namespace esg::sim {

FailureSchedule& FailureSchedule::add(Outage outage) {
  outages_.push_back(std::move(outage));
  return *this;
}

FailureSchedule& FailureSchedule::add(std::string target, SimTime start,
                                      SimDuration duration,
                                      std::string description) {
  return add(Outage{std::move(target), start, duration, std::move(description)});
}

void FailureSchedule::arm(
    Simulation& simulation,
    std::function<void(const std::string&, bool, const std::string&)> set_down)
    const {
  // Shared depth counters implement overlap reference counting per target.
  auto depth = std::make_shared<std::map<std::string, int>>();
  auto toggle = std::make_shared<
      std::function<void(const std::string&, bool, const std::string&)>>(
      std::move(set_down));
  for (const auto& outage : outages_) {
    simulation.schedule_at(
        outage.start, [depth, toggle, outage] {
          if (++(*depth)[outage.target] == 1) {
            (*toggle)(outage.target, true, outage.description);
          }
        });
    simulation.schedule_at(
        outage.start + outage.duration, [depth, toggle, outage] {
          if (--(*depth)[outage.target] == 0) {
            (*toggle)(outage.target, false, outage.description);
          }
        });
  }
}

bool FailureSchedule::is_down(const std::string& target, SimTime t) const {
  for (const auto& outage : outages_) {
    if (outage.target == target && t >= outage.start &&
        t < outage.start + outage.duration) {
      return true;
    }
  }
  return false;
}

}  // namespace esg::sim
