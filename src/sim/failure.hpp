// Failure injection.
//
// Figure 8 of the paper shows a 14-hour run punctuated by real outages — a
// SCinet power failure, DNS problems, and exhibit-floor backbone problems —
// with GridFTP restarting interrupted transfers when connectivity returned.
// A FailureSchedule scripts such outages deterministically: each Outage
// names a target (a network resource or a service), a start time, and a
// duration.  The schedule is applied to a Simulation by arming two events
// per outage that call a user-supplied toggle.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace esg::sim {

struct Outage {
  std::string target;       // resource or service name to take down
  SimTime start = 0;        // when the outage begins
  SimDuration duration = 0; // how long it lasts
  std::string description;  // e.g. "SCinet power failure"
};

class FailureSchedule {
 public:
  FailureSchedule& add(Outage outage);

  FailureSchedule& add(std::string target, SimTime start, SimDuration duration,
                       std::string description = {});

  const std::vector<Outage>& outages() const { return outages_; }

  /// Arm every outage on `simulation`.  `set_down(target, down, description)`
  /// is invoked at each transition.  Outages whose intervals overlap on the
  /// same target are reference-counted so the target only comes back up when
  /// the last overlapping outage ends.
  void arm(Simulation& simulation,
           std::function<void(const std::string& target, bool down,
                              const std::string& description)>
               set_down) const;

  /// True if any scheduled outage covers `target` at time `t`.
  bool is_down(const std::string& target, SimTime t) const;

 private:
  std::vector<Outage> outages_;
};

}  // namespace esg::sim
