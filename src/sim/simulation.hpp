// Discrete-event simulation kernel.
//
// A Simulation owns a queue of (time, sequence, callback) events.  Events at
// equal times fire in scheduling order, which — together with the
// per-simulation Rng — makes every experiment bit-reproducible from a seed.
// All grid components (GridFTP servers, catalogs, the request manager, NWS
// sensors) run as callbacks inside one kernel; the paper's "multi-threaded
// request manager" maps to concurrent sim processes, one per logical file.
//
// The queue is a bucketed *calendar queue* (Brown 1988) rather than a binary
// heap: events hash into `buckets_[(at / width) % n]`, each bucket is kept
// sorted so its earliest event sits at the back, and the dequeue cursor walks
// the buckets like the days of a circulating calendar year.  With the bucket
// count resized to track the live event population and the width fitted to
// the observed event span, push and pop are O(1) amortised instead of the
// heap's O(log n) — the difference that dominates at 100k concurrent
// transfer-completion events (see bench_micro's event-queue benchmark).  The
// pop order is *identical* to the heap's strict (time, sequence) order: the
// calendar is a different index over the same total order, so flight-recorder
// digests and manifest baselines replay byte-for-byte.
//
// Cancellation stays lazy: EventHandle::cancel flips a shared flag and the
// dead event is skipped (or purged) later.  The purge heuristic — compact
// when dead events outnumber live ones — is tunable via PurgePolicy so
// cancel-heavy workloads (telemetry ticks, explorer watchdogs, completion
// rescheduling storms) can trade memory for purge frequency.
//
// The kernel is deliberately single-threaded.  Parallelism in this codebase
// lives one level up: the benchmark harness runs many independent
// Simulations across a common::ThreadPool.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace esg::sim {

using common::SimDuration;
using common::SimTime;

class Simulation;

/// Cancellable handle to a scheduled event.  Copies share the underlying
/// cancellation flag; cancelling any copy cancels the event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet.  Safe to call repeatedly.
  void cancel() {
    if (alive_ && *alive_) {
      *alive_ = false;
      // Tell the owning simulation a dead event is (probably) still queued
      // so it can purge when cancellations pile up.  The counter outlives
      // the simulation (shared ownership), so late cancels stay safe.
      if (cancelled_) ++*cancelled_;
    }
  }

  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Simulation;
  EventHandle(std::shared_ptr<bool> alive,
              std::shared_ptr<std::uint64_t> cancelled)
      : alive_(std::move(alive)), cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::uint64_t> cancelled_;
};

/// When to compact lazily-cancelled events out of the calendar.  The purge
/// fires on push once the queue holds at least `min_queue` events and
/// `dead_weight * dead > size_weight * size` — the default 3/2 ratio purges
/// when dead events outnumber live ones 2:1, the long-standing heuristic.
/// Cancel-heavy workloads can lower the ratio (purge sooner, smaller queue)
/// or raise `min_queue` (purge later, fewer compactions); either way total
/// purge work stays linear in the number of cancellations because each purge
/// requires a constant fraction of fresh dead events since the last one.
struct PurgePolicy {
  std::uint64_t dead_weight = 3;
  std::uint64_t size_weight = 2;
  std::size_t min_queue = 64;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  common::Rng& rng() { return rng_; }

  /// Schedule `fn` at absolute simulated time `at` (>= now).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after a delay (>= 0).
  EventHandle schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + std::max<SimDuration>(0, delay), std::move(fn));
  }

  /// Schedule a periodic event.  `fn` returning false stops the series.
  EventHandle schedule_every(SimDuration period, std::function<bool()> fn);

  /// Run until the event queue is empty.
  void run();

  /// Run until simulated time `deadline` (events at exactly `deadline` fire).
  void run_until(SimTime deadline);

  /// Run until `pred()` becomes true (checked after every event) or the
  /// queue drains.  Returns true if the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& pred);

  /// Events currently stored (including lazily-cancelled ones not yet
  /// purged), mirroring the pre-calendar `queue_.size()` semantics.
  std::size_t pending_events() const { return stored_; }
  std::uint64_t events_fired() const { return fired_; }

  /// Tune the lazy-cancel purge heuristic (see PurgePolicy).
  void set_purge_policy(PurgePolicy policy) { purge_policy_ = policy; }
  const PurgePolicy& purge_policy() const { return purge_policy_; }
  /// How many compaction passes the purge heuristic has run.
  std::uint64_t purges() const { return purges_; }

  /// A logger whose lines carry this simulation's timestamps.
  common::Logger make_logger(std::string component);

  /// Per-simulation observability: every component hanging off this kernel
  /// records into one registry / tracer, so a whole run snapshots and
  /// exports as a unit (and concurrent Simulations never share state).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }
  obs::TimeSeriesStore& telemetry() { return telemetry_; }
  const obs::TimeSeriesStore& telemetry() const { return telemetry_; }
  obs::AlertEngine& alerts() { return alerts_; }
  const obs::AlertEngine& alerts() const { return alerts_; }

  /// Start streaming telemetry: every `period` the metrics registry is
  /// sampled into telemetry() and alerts() evaluates its rules — so every
  /// instrumented subsystem emits history, and alerts fire *during* the
  /// run, with zero call-site changes.  The tick samples once immediately,
  /// then re-arms only while other events are pending, so a drained
  /// workload still terminates run().  Cancel the handle to stop early.
  EventHandle start_telemetry(SimDuration period = common::kSecond);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };

  /// Strict total order all dequeues follow: (time, sequence).
  static bool event_before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::size_t bucket_index(SimTime at) const {
    return static_cast<std::size_t>(at / width_) & (buckets_.size() - 1);
  }
  bool step();  // fire one event; false if queue empty
  void push_event(Event event);
  void purge_cancelled();
  /// Position the calendar cursor on the earliest live event, dropping
  /// cancelled events found at bucket backs along the way.  Returns false
  /// when no live event remains.  After a `true` return the next event is
  /// `buckets_[cursor_].back()`.
  bool find_next();
  /// Full scan fallback when a whole calendar rotation found nothing in its
  /// year window (a long empty stretch of simulated time): jump the cursor
  /// straight to the global minimum.  Returns false when the calendar holds
  /// no live event.
  bool jump_to_min();
  /// Grow/shrink the bucket array and refit the bucket width to the live
  /// population (drops cancelled events as a side effect).
  void resize_calendar(std::size_t n_buckets);
  void maybe_grow();
  std::size_t live_estimate() const {
    const std::uint64_t dead = std::min<std::uint64_t>(*cancelled_, stored_);
    return stored_ - static_cast<std::size_t>(dead);
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;

  // Calendar state.  Each bucket is sorted descending by (time, seq) so the
  // bucket's earliest event is popped O(1) from the back; `cursor_` and
  // `year_end_` track the rotation (the bucket being drained and the upper
  // time bound of its current year).  Invariant: no live event precedes the
  // cursor's year window.
  std::vector<std::vector<Event>> buckets_;
  SimDuration width_ = common::kMillisecond;
  std::size_t cursor_ = 0;
  SimTime year_end_ = common::kMillisecond;
  std::size_t stored_ = 0;  // events in buckets, including dead ones

  PurgePolicy purge_policy_{};
  std::uint64_t purges_ = 0;
  // Dead events believed still queued; shared with every EventHandle.  An
  // over-count (cancel after fire) only triggers an early purge, which
  // resets it from ground truth.
  std::shared_ptr<std::uint64_t> cancelled_ =
      std::make_shared<std::uint64_t>(0);
  common::Rng rng_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_{[this] { return now_; }};
  obs::FlightRecorder recorder_{[this] { return now_; }};
  obs::TimeSeriesStore telemetry_;
  obs::AlertEngine alerts_{telemetry_, &recorder_};
  obs::Gauge* depth_gauge_ = nullptr;      // sim_queue_depth
  obs::Counter* purge_counter_ = nullptr;  // sim_queue_purges

  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
};

}  // namespace esg::sim
