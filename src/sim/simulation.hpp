// Discrete-event simulation kernel.
//
// A Simulation owns a priority queue of (time, sequence, callback) events.
// Events at equal times fire in scheduling order, which — together with the
// per-simulation Rng — makes every experiment bit-reproducible from a seed.
// All grid components (GridFTP servers, catalogs, the request manager, NWS
// sensors) run as callbacks inside one kernel; the paper's "multi-threaded
// request manager" maps to concurrent sim processes, one per logical file.
//
// The kernel is deliberately single-threaded.  Parallelism in this codebase
// lives one level up: the benchmark harness runs many independent
// Simulations across a common::ThreadPool.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace esg::sim {

using common::SimDuration;
using common::SimTime;

class Simulation;

/// Cancellable handle to a scheduled event.  Copies share the underlying
/// cancellation flag; cancelling any copy cancels the event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet.  Safe to call repeatedly.
  void cancel() {
    if (alive_ && *alive_) {
      *alive_ = false;
      // Tell the owning simulation a dead event is (probably) still queued
      // so it can purge when cancellations pile up.  The counter outlives
      // the simulation (shared ownership), so late cancels stay safe.
      if (cancelled_) ++*cancelled_;
    }
  }

  bool pending() const { return alive_ && *alive_; }

 private:
  friend class Simulation;
  EventHandle(std::shared_ptr<bool> alive,
              std::shared_ptr<std::uint64_t> cancelled)
      : alive_(std::move(alive)), cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::uint64_t> cancelled_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  common::Rng& rng() { return rng_; }

  /// Schedule `fn` at absolute simulated time `at` (>= now).
  EventHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` after a delay (>= 0).
  EventHandle schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + std::max<SimDuration>(0, delay), std::move(fn));
  }

  /// Schedule a periodic event.  `fn` returning false stops the series.
  EventHandle schedule_every(SimDuration period, std::function<bool()> fn);

  /// Run until the event queue is empty.
  void run();

  /// Run until simulated time `deadline` (events at exactly `deadline` fire).
  void run_until(SimTime deadline);

  /// Run until `pred()` becomes true (checked after every event) or the
  /// queue drains.  Returns true if the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& pred);

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_fired() const { return fired_; }

  /// A logger whose lines carry this simulation's timestamps.
  common::Logger make_logger(std::string component);

  /// Per-simulation observability: every component hanging off this kernel
  /// records into one registry / tracer, so a whole run snapshots and
  /// exports as a unit (and concurrent Simulations never share state).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  const obs::FlightRecorder& flight_recorder() const { return recorder_; }
  obs::TimeSeriesStore& telemetry() { return telemetry_; }
  const obs::TimeSeriesStore& telemetry() const { return telemetry_; }
  obs::AlertEngine& alerts() { return alerts_; }
  const obs::AlertEngine& alerts() const { return alerts_; }

  /// Start streaming telemetry: every `period` the metrics registry is
  /// sampled into telemetry() and alerts() evaluates its rules — so every
  /// instrumented subsystem emits history, and alerts fire *during* the
  /// run, with zero call-site changes.  The tick samples once immediately,
  /// then re-arms only while other events are pending, so a drained
  /// workload still terminates run().  Cancel the handle to stop early.
  EventHandle start_telemetry(SimDuration period = common::kSecond);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  // Min-heap comparator: push_heap/pop_heap keep the earliest event at the
  // front.  The queue is a plain vector so lazily-cancelled events can be
  // purged in place (std::erase_if + make_heap) when they outnumber live
  // ones — long runs that cancel heavily (watchdogs, ramps, retries) would
  // otherwise bloat the heap and slow every push/pop.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const { return a > b; }
  };

  bool step();  // fire one event; false if queue empty
  void push_event(Event event);
  void purge_cancelled();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::vector<Event> queue_;  // heap ordered by EventAfter
  // Dead events believed still queued; shared with every EventHandle.  An
  // over-count (cancel after fire) only triggers an early purge, which
  // resets it from ground truth.
  std::shared_ptr<std::uint64_t> cancelled_ =
      std::make_shared<std::uint64_t>(0);
  common::Rng rng_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_{[this] { return now_; }};
  obs::FlightRecorder recorder_{[this] { return now_; }};
  obs::TimeSeriesStore telemetry_;
  obs::AlertEngine alerts_{telemetry_, &recorder_};

  static constexpr std::size_t kPurgeMinQueue = 64;
};

}  // namespace esg::sim
