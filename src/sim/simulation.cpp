#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

namespace esg::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

void Simulation::push_event(Event event) {
  queue_.push_back(std::move(event));
  std::push_heap(queue_.begin(), queue_.end(), EventAfter{});
  // Purge when lazily-cancelled events outnumber live ones 2:1
  // (3*dead > 2*size  <=>  dead > 2*(size - dead)).
  if (queue_.size() >= kPurgeMinQueue && 3 * *cancelled_ > 2 * queue_.size()) {
    purge_cancelled();
  }
}

void Simulation::purge_cancelled() {
  std::erase_if(queue_, [](const Event& e) { return e.alive && !*e.alive; });
  std::make_heap(queue_.begin(), queue_.end(), EventAfter{});
  *cancelled_ = 0;
}

EventHandle Simulation::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  auto alive = std::make_shared<bool>(true);
  push_event(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive), cancelled_);
}

EventHandle Simulation::schedule_every(SimDuration period,
                                       std::function<bool()> fn) {
  assert(period > 0);
  // The outer handle's flag is shared with every rescheduled instance so a
  // single cancel() stops the series.
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  // The queued wrapper events own `tick`; the body holds only a weak
  // reference to itself.  Once the series ends (or a cancelled instance is
  // purged) the last wrapper releases the closure, so whatever the callback
  // captured is destroyed instead of living on in a tick->closure->tick
  // cycle.
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, fn = std::move(fn), alive, weak_tick]() {
    if (!*alive) return;
    if (!fn()) {
      *alive = false;
      return;
    }
    if (auto t = weak_tick.lock()) {
      push_event(Event{now_ + period, next_seq_++, [t] { (*t)(); }, alive});
    }
  };
  push_event(Event{now_ + period, next_seq_++, [t = tick] { (*t)(); }, alive});
  return EventHandle(std::move(alive), cancelled_);
}

EventHandle Simulation::start_telemetry(SimDuration period) {
  assert(period > 0);
  telemetry_.sample_registry(metrics_, now_);
  alerts_.evaluate(now_);
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  // Same ownership scheme as schedule_every: queued wrappers own the
  // closure, the body only weakly references itself.
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, alive, weak_tick] {
    if (!*alive) return;
    telemetry_.sample_registry(metrics_, now_);
    alerts_.evaluate(now_);
    // Re-arm only while the workload is still alive: when this tick was
    // the last event in the queue the run is over, and a self-perpetuating
    // sampler would keep run() from ever returning.
    if (!queue_.empty()) {
      if (auto t = weak_tick.lock()) {
        push_event(Event{now_ + period, next_seq_++, [t] { (*t)(); }, alive});
      }
    } else {
      *alive = false;
    }
  };
  push_event(Event{now_ + period, next_seq_++, [t = tick] { (*t)(); }, alive});
  return EventHandle(std::move(alive), cancelled_);
}

bool Simulation::step() {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), EventAfter{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    if (ev.alive && !*ev.alive) {  // cancelled
      if (*cancelled_ > 0) --*cancelled_;
      continue;
    }
    assert(ev.at >= now_);
    now_ = ev.at;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Peek next live event time.
    const Event& head = queue_.front();
    if (head.alive && !*head.alive) {
      std::pop_heap(queue_.begin(), queue_.end(), EventAfter{});
      queue_.pop_back();
      if (*cancelled_ > 0) --*cancelled_;
      continue;
    }
    if (head.at > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

bool Simulation::run_while_pending(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

common::Logger Simulation::make_logger(std::string component) {
  common::Logger log(std::move(component));
  log.bind_clock([this] { return now_; });
  return log;
}

}  // namespace esg::sim
