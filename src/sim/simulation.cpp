#include "sim/simulation.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace esg::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
  buckets_.resize(kMinBuckets);
  year_end_ = width_;
  depth_gauge_ = &metrics_.gauge("sim_queue_depth");
  purge_counter_ = &metrics_.counter("sim_queue_purges");
  depth_gauge_->set(0.0);
  // Surface span drops as a metric so truncated traces never fail silently
  // (esg-report summary warns on it, profiles carry it).  The gauge is
  // created lazily on the first drop: clean runs keep byte-identical
  // snapshots.
  tracer_.set_drop_hook([this](std::size_t dropped_total) {
    metrics_.gauge("obs_trace_dropped")
        .set(static_cast<double>(dropped_total));
  });
}

void Simulation::push_event(Event event) {
  maybe_grow();
  // Invariant: every live event's time is >= the cursor's window start.  A
  // push into the past of the rotation (legal after run_until advanced the
  // cursor beyond now_) rewinds the cursor to the event's own window —
  // rewinding only re-scans buckets, it can never skip one.
  if (event.at < year_end_ - width_) {
    year_end_ = (event.at / width_ + 1) * width_;
    cursor_ = bucket_index(event.at);
  }
  auto& bucket = buckets_[bucket_index(event.at)];
  // Buckets are sorted descending by (time, seq): the earliest event sits at
  // the back for O(1) pop, and a fresh event (max seq so far) lands at the
  // front of its equal-time group so ties still fire in schedule order.
  const auto it = std::lower_bound(
      bucket.begin(), bucket.end(), event,
      [](const Event& a, const Event& b) { return event_before(b, a); });
  bucket.insert(it, std::move(event));
  ++stored_;
  depth_gauge_->set(static_cast<double>(stored_));
  if (stored_ >= purge_policy_.min_queue &&
      purge_policy_.dead_weight * *cancelled_ >
          purge_policy_.size_weight * stored_) {
    purge_cancelled();
  }
}

void Simulation::purge_cancelled() {
  stored_ = 0;
  for (auto& bucket : buckets_) {
    std::erase_if(bucket, [](const Event& e) { return e.alive && !*e.alive; });
    stored_ += bucket.size();
  }
  *cancelled_ = 0;
  ++purges_;
  purge_counter_->add(1);
  depth_gauge_->set(static_cast<double>(stored_));
  if (buckets_.size() > kMinBuckets && stored_ * 4 < buckets_.size()) {
    resize_calendar(std::max(kMinBuckets, std::bit_ceil(stored_ * 2 + 1)));
  }
}

void Simulation::maybe_grow() {
  if (buckets_.size() < kMaxBuckets &&
      live_estimate() > buckets_.size() * 2) {
    resize_calendar(std::min(kMaxBuckets, buckets_.size() * 2));
  }
}

void Simulation::resize_calendar(std::size_t n_buckets) {
  std::vector<Event> live;
  live.reserve(stored_);
  SimTime lo = std::numeric_limits<SimTime>::max();
  SimTime hi = std::numeric_limits<SimTime>::min();
  for (auto& bucket : buckets_) {
    for (auto& e : bucket) {
      if (e.alive && !*e.alive) {
        if (*cancelled_ > 0) --*cancelled_;
        continue;
      }
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
      live.push_back(std::move(e));
    }
  }
  // Refit the bucket width so the live population spreads across the new
  // year instead of clumping into a few buckets when the event span drifts.
  if (live.size() >= 2 && hi > lo) {
    width_ = std::max<SimDuration>(
        1, (hi - lo) / static_cast<SimDuration>(n_buckets) + 1);
  }
  buckets_.assign(n_buckets, {});
  const SimTime anchor = live.empty() ? now_ : lo;
  year_end_ = (anchor / width_ + 1) * width_;
  cursor_ = bucket_index(anchor);
  // Descending (time, seq) order lets every event append at its bucket's
  // back, keeping the rebuild linear.
  std::sort(live.begin(), live.end(),
            [](const Event& a, const Event& b) { return event_before(b, a); });
  stored_ = live.size();
  for (auto& e : live) {
    buckets_[bucket_index(e.at)].push_back(std::move(e));
  }
  depth_gauge_->set(static_cast<double>(stored_));
}

bool Simulation::find_next() {
  if (stored_ == 0) return false;
  const std::size_t n = buckets_.size();
  std::size_t advanced = 0;
  while (true) {
    auto& bucket = buckets_[cursor_];
    while (!bucket.empty() && bucket.back().alive && !*bucket.back().alive) {
      bucket.pop_back();
      --stored_;
      if (*cancelled_ > 0) --*cancelled_;
    }
    if (stored_ == 0) {
      depth_gauge_->set(0.0);
      return false;
    }
    if (!bucket.empty() && bucket.back().at < year_end_) return true;
    cursor_ = (cursor_ + 1) & (n - 1);
    year_end_ += width_;
    if (++advanced >= n) return jump_to_min();
  }
}

bool Simulation::jump_to_min() {
  // A whole rotation found nothing due: the next event lies past a long
  // empty stretch of simulated time.  Rather than spinning year after year,
  // scan every bucket once and jump the cursor straight to the minimum.
  const Event* best = nullptr;
  for (auto& bucket : buckets_) {
    while (!bucket.empty() && bucket.back().alive && !*bucket.back().alive) {
      bucket.pop_back();
      --stored_;
      if (*cancelled_ > 0) --*cancelled_;
    }
    if (bucket.empty()) continue;
    if (!best || event_before(bucket.back(), *best)) best = &bucket.back();
  }
  if (!best) {
    depth_gauge_->set(0.0);
    return false;
  }
  year_end_ = (best->at / width_ + 1) * width_;
  cursor_ = bucket_index(best->at);
  return true;
}

EventHandle Simulation::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  auto alive = std::make_shared<bool>(true);
  push_event(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive), cancelled_);
}

EventHandle Simulation::schedule_every(SimDuration period,
                                       std::function<bool()> fn) {
  assert(period > 0);
  // The outer handle's flag is shared with every rescheduled instance so a
  // single cancel() stops the series.
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  // The queued wrapper events own `tick`; the body holds only a weak
  // reference to itself.  Once the series ends (or a cancelled instance is
  // purged) the last wrapper releases the closure, so whatever the callback
  // captured is destroyed instead of living on in a tick->closure->tick
  // cycle.
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, fn = std::move(fn), alive, weak_tick]() {
    if (!*alive) return;
    if (!fn()) {
      *alive = false;
      return;
    }
    if (auto t = weak_tick.lock()) {
      push_event(Event{now_ + period, next_seq_++, [t] { (*t)(); }, alive});
    }
  };
  push_event(Event{now_ + period, next_seq_++, [t = tick] { (*t)(); }, alive});
  return EventHandle(std::move(alive), cancelled_);
}

EventHandle Simulation::start_telemetry(SimDuration period) {
  assert(period > 0);
  telemetry_.sample_registry(metrics_, now_);
  alerts_.evaluate(now_);
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  // Same ownership scheme as schedule_every: queued wrappers own the
  // closure, the body only weakly references itself.
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, alive, weak_tick] {
    if (!*alive) return;
    telemetry_.sample_registry(metrics_, now_);
    alerts_.evaluate(now_);
    // Re-arm only while the workload is still alive: when this tick was
    // the last event in the queue the run is over, and a self-perpetuating
    // sampler would keep run() from ever returning.
    if (stored_ > 0) {
      if (auto t = weak_tick.lock()) {
        push_event(Event{now_ + period, next_seq_++, [t] { (*t)(); }, alive});
      }
    } else {
      *alive = false;
    }
  };
  push_event(Event{now_ + period, next_seq_++, [t = tick] { (*t)(); }, alive});
  return EventHandle(std::move(alive), cancelled_);
}

bool Simulation::step() {
  if (!find_next()) return false;
  auto& bucket = buckets_[cursor_];
  Event ev = std::move(bucket.back());
  bucket.pop_back();
  --stored_;
  depth_gauge_->set(static_cast<double>(stored_));
  assert(ev.at >= now_);
  now_ = ev.at;
  ++fired_;
  ev.fn();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime deadline) {
  while (find_next()) {
    if (buckets_[cursor_].back().at > deadline) break;
    step();  // re-runs find_next: O(1), the cursor is already positioned
  }
  now_ = std::max(now_, deadline);
}

bool Simulation::run_while_pending(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

common::Logger Simulation::make_logger(std::string component) {
  common::Logger log(std::move(component));
  log.bind_clock([this] { return now_; });
  return log;
}

}  // namespace esg::sim
