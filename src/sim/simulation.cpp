#include "sim/simulation.hpp"

#include <utility>

namespace esg::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventHandle Simulation::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle Simulation::schedule_every(SimDuration period,
                                       std::function<bool()> fn) {
  assert(period > 0);
  // The outer handle's flag is shared with every rescheduled instance so a
  // single cancel() stops the series.
  auto alive = std::make_shared<bool>(true);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, fn = std::move(fn), alive, tick]() {
    if (!*alive) return;
    if (!fn()) {
      *alive = false;
      return;
    }
    queue_.push(Event{now_ + period, next_seq_++, *tick, alive});
  };
  queue_.push(Event{now_ + period, next_seq_++, *tick, alive});
  return EventHandle(std::move(alive));
}

bool Simulation::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard idiom
    // given we pop immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (ev.alive && !*ev.alive) continue;  // cancelled
    assert(ev.at >= now_);
    now_ = ev.at;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Peek next live event time.
    if (queue_.top().alive && !*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

bool Simulation::run_while_pending(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

common::Logger Simulation::make_logger(std::string component) {
  common::Logger log(std::move(component));
  log.bind_clock([this] { return now_; });
  return log;
}

}  // namespace esg::sim
