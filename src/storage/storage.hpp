// Host storage namespaces and disk caches.
//
// Files in the emulator are (name, size, optional real content).  Transfer
// timing is governed entirely by the fluid network (the host's disk
// resource is part of every data path), so content bytes never traverse the
// emulated wire — they are attached to the destination file object when a
// transfer completes, which is how the climate examples end up reading real
// ncx bytes after a simulated GridFTP fetch.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace esg::storage {

using common::Bytes;

struct FileObject {
  std::string name;  // path within the host namespace
  Bytes size = 0;
  /// Real bytes, when the experiment cares about content (ncx datasets).
  std::shared_ptr<const std::vector<std::uint8_t>> content;
  /// Number of times this payload was corrupted in flight.  Synthetic files
  /// carry no bytes to flip, so the counter stands in for the damage and is
  /// folded into file_checksum() — a corrupted copy never matches.
  std::uint32_t corruption = 0;

  static FileObject synthetic(std::string name, Bytes size) {
    return FileObject{std::move(name), size, nullptr};
  }
  static FileObject with_content(
      std::string name, std::shared_ptr<const std::vector<std::uint8_t>> data) {
    const Bytes size = static_cast<Bytes>(data->size());
    return FileObject{std::move(name), size, std::move(data)};
  }
};

/// Content fingerprint used for end-to-end transfer integrity.  Covers the
/// payload only — never the name — so a file renamed on landing still
/// verifies.  Files with real bytes hash the bytes; synthetic files hash
/// (size, corruption).
std::uint64_t file_checksum(const FileObject& file);

/// Flip one payload byte (copy-on-write for shared content) or, for
/// synthetic files, bump the corruption counter.  Either way the file's
/// checksum no longer matches the original.  `salt` picks which byte.
void corrupt_file(FileObject& file, std::uint64_t salt = 1);

/// Flat per-host file namespace with a capacity budget.
class HostStorage {
 public:
  explicit HostStorage(Bytes capacity = 1000 * common::kGB)
      : capacity_(capacity) {}

  common::Status put(FileObject file);
  common::Result<FileObject> get(const std::string& name) const;
  bool exists(const std::string& name) const { return files_.count(name) > 0; }
  common::Result<Bytes> size_of(const std::string& name) const;
  common::Status remove(const std::string& name);

  /// Grow a file in place (used to track partial transfer arrivals so the
  /// request manager's size-polling monitor sees real progress).
  common::Status resize(const std::string& name, Bytes new_size);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  std::size_t file_count() const { return files_.size(); }
  std::vector<std::string> list() const;

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  std::map<std::string, FileObject> files_;
};

/// LRU disk cache with pinning — the staging area HRM manages in front of
/// the tape system, and the destination cache at client sites.
class DiskCache {
 public:
  explicit DiskCache(Bytes capacity) : capacity_(capacity) {}

  /// Insert a file, evicting unpinned LRU entries to make room.
  common::Status put(FileObject file);

  bool contains(const std::string& name) const { return files_.count(name) > 0; }

  /// Fetch and mark recently used.
  common::Result<FileObject> get(const std::string& name);

  /// Pin/unpin: pinned files cannot be evicted (a transfer is reading them).
  common::Status pin(const std::string& name);
  common::Status unpin(const std::string& name);
  int pin_count(const std::string& name) const;

  common::Status remove(const std::string& name);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  std::size_t file_count() const { return files_.size(); }
  std::uint64_t evictions() const { return evictions_; }

  /// Invoked with each file as it is evicted — lets the HRM mirror cache
  /// state into the GridFTP-served namespace.
  void set_eviction_hook(std::function<void(const FileObject&)> hook) {
    eviction_hook_ = std::move(hook);
  }

 private:
  struct Slot {
    FileObject file;
    int pins = 0;
    std::list<std::string>::iterator lru_pos;
  };

  bool make_room(Bytes needed);

  Bytes capacity_;
  Bytes used_ = 0;
  std::uint64_t evictions_ = 0;
  std::map<std::string, Slot> files_;
  std::list<std::string> lru_;  // front = most recently used
  std::function<void(const FileObject&)> eviction_hook_;
};

}  // namespace esg::storage
