#include "storage/storage.hpp"

#include <algorithm>

#include "common/bytebuf.hpp"

namespace esg::storage {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;

std::uint64_t file_checksum(const FileObject& file) {
  if (file.content && !file.content->empty()) {
    return common::fnv1a64(file.content->data(), file.content->size());
  }
  std::uint64_t h = common::fnv1a64(&file.size, sizeof(file.size));
  return common::fnv1a64(&file.corruption, sizeof(file.corruption), h);
}

void corrupt_file(FileObject& file, std::uint64_t salt) {
  if (file.content && !file.content->empty()) {
    auto damaged =
        std::make_shared<std::vector<std::uint8_t>>(*file.content);
    const std::size_t at = static_cast<std::size_t>(
        common::fnv1a64(&salt, sizeof(salt)) % damaged->size());
    (*damaged)[at] ^= 0xFF;
    file.content = std::move(damaged);
  }
  ++file.corruption;
}

Status HostStorage::put(FileObject file) {
  auto it = files_.find(file.name);
  const Bytes delta = file.size - (it == files_.end() ? 0 : it->second.size);
  if (used_ + delta > capacity_) {
    return Error{Errc::out_of_space,
                 "storage full writing " + file.name};
  }
  used_ += delta;
  files_[file.name] = std::move(file);
  return common::ok_status();
}

Result<FileObject> HostStorage::get(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "no file: " + name};
  }
  return it->second;
}

Result<Bytes> HostStorage::size_of(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "no file: " + name};
  }
  return it->second.size;
}

Status HostStorage::remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "no file: " + name};
  }
  used_ -= it->second.size;
  files_.erase(it);
  return common::ok_status();
}

Status HostStorage::resize(const std::string& name, Bytes new_size) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "no file: " + name};
  }
  const Bytes delta = new_size - it->second.size;
  if (used_ + delta > capacity_) {
    return Error{Errc::out_of_space, "storage full resizing " + name};
  }
  used_ += delta;
  it->second.size = new_size;
  return common::ok_status();
}

std::vector<std::string> HostStorage::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, f] : files_) out.push_back(name);
  return out;
}

// ---------------- DiskCache ----------------

bool DiskCache::make_room(Bytes needed) {
  if (needed > capacity_) return false;
  while (used_ + needed > capacity_) {
    // Evict the least recently used unpinned entry.
    auto victim = files_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      auto f = files_.find(*it);
      if (f != files_.end() && f->second.pins == 0) {
        victim = f;
        break;
      }
    }
    if (victim == files_.end()) return false;  // everything pinned
    used_ -= victim->second.file.size;
    lru_.erase(victim->second.lru_pos);
    storage::FileObject evicted = std::move(victim->second.file);
    files_.erase(victim);
    ++evictions_;
    if (eviction_hook_) eviction_hook_(evicted);
  }
  return true;
}

Status DiskCache::put(FileObject file) {
  auto it = files_.find(file.name);
  if (it != files_.end()) {
    // Refresh in place.  Shield the entry being updated from eviction
    // while making room, or make_room could invalidate `it`.
    const Bytes delta = file.size - it->second.file.size;
    if (delta > 0) {
      ++it->second.pins;
      const bool fits = make_room(delta);
      --it->second.pins;
      if (!fits) {
        return Error{Errc::out_of_space, "cache full updating " + file.name};
      }
    }
    used_ += delta;
    it->second.file = std::move(file);
    lru_.erase(it->second.lru_pos);
    lru_.push_front(it->first);
    it->second.lru_pos = lru_.begin();
    return common::ok_status();
  }
  if (!make_room(file.size)) {
    return Error{Errc::out_of_space, "cache full inserting " + file.name};
  }
  used_ += file.size;
  lru_.push_front(file.name);
  Slot slot{std::move(file), 0, lru_.begin()};
  files_.emplace(lru_.front(), std::move(slot));
  return common::ok_status();
}

Result<FileObject> DiskCache::get(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "not cached: " + name};
  }
  lru_.erase(it->second.lru_pos);
  lru_.push_front(name);
  it->second.lru_pos = lru_.begin();
  return it->second.file;
}

Status DiskCache::pin(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "not cached: " + name};
  }
  ++it->second.pins;
  return common::ok_status();
}

Status DiskCache::unpin(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "not cached: " + name};
  }
  it->second.pins = std::max(0, it->second.pins - 1);
  return common::ok_status();
}

int DiskCache::pin_count(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.pins;
}

Status DiskCache::remove(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "not cached: " + name};
  }
  if (it->second.pins > 0) {
    return Error{Errc::permission_denied, "file pinned: " + name};
  }
  used_ -= it->second.file.size;
  lru_.erase(it->second.lru_pos);
  files_.erase(it);
  return common::ok_status();
}

}  // namespace esg::storage
