// Tape library model — the mass-storage system (HPSS at LBNL in the paper)
// that HRM fronts.
//
// Files live on cartridges; a fixed set of drives serves staging requests.
// Staging a file costs: queueing for a drive, a cartridge mount (skipped if
// that cartridge is already mounted on the chosen drive), a seek, and the
// read at tape bandwidth.  These latencies are what the HRM's disk cache
// and its overlap of staging with WAN transfer are designed to hide.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "sim/simulation.hpp"
#include "storage/storage.hpp"

namespace esg::storage {

using common::SimDuration;

struct TapeConfig {
  int drives = 2;
  SimDuration mount_time = 45 * common::kSecond;
  SimDuration avg_seek = 20 * common::kSecond;
  common::Rate read_rate = common::mbps(120);  // ~15 MB/s tape drive
  /// Files per cartridge when auto-assigning.
  int files_per_cartridge = 8;
};

class TapeLibrary {
 public:
  TapeLibrary(sim::Simulation& simulation, TapeConfig config);

  /// Register a file in the archive; cartridge auto-assigned round-robin.
  void store(FileObject file);
  /// Register a file on a named cartridge.
  void store_on(FileObject file, const std::string& cartridge);

  bool contains(const std::string& name) const { return files_.count(name) > 0; }
  common::Result<Bytes> size_of(const std::string& name) const;
  std::size_t file_count() const { return files_.size(); }

  /// Queue a staging request.  `done` fires with the file (or not_found)
  /// once a drive has read it off tape.
  void stage(const std::string& name,
             std::function<void(common::Result<FileObject>)> done);

  /// Stall / unstall the library: while stalled, queued requests are not
  /// dispatched to drives (reads already in progress finish).  Unstalling
  /// immediately pumps the backlog.  Models a robot arm jam or an HPSS
  /// outage without losing queued work.
  void set_stalled(bool stalled);
  bool stalled() const { return stalled_; }

  /// Requests currently waiting for a drive.
  std::size_t queue_depth() const { return queue_.size(); }
  int busy_drives() const { return busy_drives_; }
  std::uint64_t mounts() const { return mounts_; }
  std::uint64_t stages_completed() const { return stages_completed_; }

  /// Pure timing model (exposed for tests): cost to stage `size` bytes,
  /// given whether the cartridge must first be mounted.
  SimDuration stage_cost(Bytes size, bool needs_mount) const;

 private:
  struct Request {
    std::string name;
    std::function<void(common::Result<FileObject>)> done;
  };
  struct ArchivedFile {
    FileObject file;
    std::string cartridge;
  };

  void pump();  // dispatch queued requests to idle drives

  sim::Simulation& sim_;
  TapeConfig config_;
  std::map<std::string, ArchivedFile> files_;
  std::deque<Request> queue_;
  std::vector<std::string> drive_mounted_;  // cartridge per drive ("" = none)
  std::vector<bool> drive_busy_;
  int busy_drives_ = 0;
  bool stalled_ = false;
  int next_cartridge_seq_ = 0;
  int files_on_current_cartridge_ = 0;
  std::uint64_t mounts_ = 0;
  std::uint64_t stages_completed_ = 0;
};

}  // namespace esg::storage
