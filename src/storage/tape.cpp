#include "storage/tape.hpp"

#include <cassert>

namespace esg::storage {

using common::Errc;
using common::Error;
using common::Result;

TapeLibrary::TapeLibrary(sim::Simulation& simulation, TapeConfig config)
    : sim_(simulation), config_(config) {
  assert(config_.drives >= 1);
  drive_mounted_.assign(static_cast<std::size_t>(config_.drives), "");
  drive_busy_.assign(static_cast<std::size_t>(config_.drives), false);
}

void TapeLibrary::store(FileObject file) {
  if (files_on_current_cartridge_ >= config_.files_per_cartridge) {
    ++next_cartridge_seq_;
    files_on_current_cartridge_ = 0;
  }
  ++files_on_current_cartridge_;
  store_on(std::move(file), "cart-" + std::to_string(next_cartridge_seq_));
}

void TapeLibrary::store_on(FileObject file, const std::string& cartridge) {
  const std::string name = file.name;
  files_[name] = ArchivedFile{std::move(file), cartridge};
}

Result<Bytes> TapeLibrary::size_of(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Error{Errc::not_found, "not archived: " + name};
  }
  return it->second.file.size;
}

SimDuration TapeLibrary::stage_cost(Bytes size, bool needs_mount) const {
  const auto read = static_cast<SimDuration>(
      static_cast<double>(size) / config_.read_rate *
      static_cast<double>(common::kSecond));
  return (needs_mount ? config_.mount_time : 0) + config_.avg_seek + read;
}

void TapeLibrary::stage(const std::string& name,
                        std::function<void(Result<FileObject>)> done) {
  if (!files_.count(name)) {
    // Report asynchronously for uniform caller behaviour.
    sim_.schedule_after(common::kMillisecond,
                        [name, done = std::move(done)] {
                          done(Error{Errc::not_found, "not archived: " + name});
                        });
    return;
  }
  queue_.push_back(Request{name, std::move(done)});
  pump();
}

void TapeLibrary::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  sim_.flight_recorder().record(
      "hrm", stalled_ ? "tape.stalled" : "tape.resumed", "tape",
      {{"queued", std::to_string(queue_.size())}});
  if (!stalled_) pump();
}

void TapeLibrary::pump() {
  while (!stalled_ && !queue_.empty()) {
    // Prefer a drive that already has the right cartridge mounted, then any
    // idle drive.
    const auto& req = queue_.front();
    const std::string& cartridge = files_.at(req.name).cartridge;
    int chosen = -1;
    for (int d = 0; d < config_.drives; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (drive_busy_[ud]) continue;
      if (drive_mounted_[ud] == cartridge) {
        chosen = d;
        break;
      }
      if (chosen < 0) chosen = d;
    }
    if (chosen < 0) return;  // all drives busy; pump() re-runs on completion

    const auto ud = static_cast<std::size_t>(chosen);
    const bool needs_mount = drive_mounted_[ud] != cartridge;
    if (needs_mount) {
      drive_mounted_[ud] = cartridge;
      ++mounts_;
    }
    drive_busy_[ud] = true;
    ++busy_drives_;

    Request r = std::move(queue_.front());
    queue_.pop_front();
    const SimDuration cost =
        stage_cost(files_.at(r.name).file.size, needs_mount);
    sim_.schedule_after(cost, [this, ud, r = std::move(r)] {
      drive_busy_[ud] = false;
      --busy_drives_;
      ++stages_completed_;
      r.done(files_.at(r.name).file);
      pump();
    });
  }
}

}  // namespace esg::storage
