#include "common/strings.hpp"

#include <algorithm>
#include <cctype>

namespace esg::common {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_trimmed(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (const auto& part : split(s, delim)) {
    auto t = trim(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool wildcard_match(std::string_view pattern, std::string_view text) {
  // Iterative greedy match with backtracking to the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace esg::common
