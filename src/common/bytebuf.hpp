// Byte-buffer serialization used by the RPC layer (the stand-in for the
// paper's CORBA and LDAP wire protocols) and by the ncx file format.
//
// Encoding is little-endian fixed-width integers, IEEE doubles, and
// length-prefixed strings.  Readers are bounds-checked and report
// protocol_error instead of reading past the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace esg::common {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }

  void raw(const void* data, std::size_t n) { append(data, n); }

  void str_vec(const std::vector<std::string>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& s : v) str(s);
  }

  void f64_vec(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double d : v) f64(d);
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> u8() { return read_pod<std::uint8_t>(); }
  Result<std::uint16_t> u16() { return read_pod<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return read_pod<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return read_pod<std::uint64_t>(); }
  Result<std::int32_t> i32() { return read_pod<std::int32_t>(); }
  Result<std::int64_t> i64() { return read_pod<std::int64_t>(); }
  Result<double> f64() { return read_pod<double>(); }

  Result<bool> boolean() {
    auto v = u8();
    if (!v) return v.error();
    return *v != 0;
  }

  Result<std::string> str() {
    auto n = u32();
    if (!n) return n.error();
    if (remaining() < *n) return truncated();
    std::string out(reinterpret_cast<const char*>(data_ + pos_), *n);
    pos_ += *n;
    return out;
  }

  Result<std::vector<std::string>> str_vec() {
    auto n = u32();
    if (!n) return n.error();
    std::vector<std::string> out;
    out.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto s = str();
      if (!s) return s.error();
      out.push_back(std::move(*s));
    }
    return out;
  }

  Result<std::vector<double>> f64_vec() {
    auto n = u32();
    if (!n) return n.error();
    std::vector<double> out;
    out.reserve(*n);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto d = f64();
      if (!d) return d.error();
      out.push_back(*d);
    }
    return out;
  }

  Status skip(std::size_t n) {
    if (remaining() < n) return truncated();
    pos_ += n;
    return ok_status();
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> read_pod() {
    if (remaining() < sizeof(T)) return Error{Errc::protocol_error,
                                              "buffer truncated"};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  static Error truncated() {
    return Error{Errc::protocol_error, "buffer truncated"};
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — used for content tags and the toy-PKI signature.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);
std::uint64_t fnv1a64(std::string_view s);

}  // namespace esg::common
