// Minimal leveled logger with component tags.
//
// Components log through a named Logger ("gridftp", "rm", ...).  The global
// level defaults to `warn` so tests and benchmarks stay quiet; examples turn
// on `info` to narrate what the prototype is doing.  When a logger is bound
// to a simulation clock the simulated timestamp is printed, which is how the
// Fig 4-style monitor annotates its event stream.
//
// Thread-safety: the global level is atomic and the sink is mutex-guarded,
// so set_global_log_level()/set_log_sink() may race freely with logging from
// the benchmark harness's worker threads.  A custom sink is invoked OUTSIDE
// the internal mutex (a copy is taken under the lock), so a sink may itself
// log or swap sinks without deadlocking — but it must be internally
// thread-safe if loggers run on several threads.  bind_clock() is NOT
// synchronized; bind a logger's clock before sharing it across threads.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/units.hpp"

namespace esg::common {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

const char* log_level_name(LogLevel level);

/// Process-wide minimum level; messages below it are dropped.
void set_global_log_level(LogLevel level);
LogLevel global_log_level();

/// Redirect log output (tests capture it); nullptr restores stderr.
using LogSink = std::function<void(const std::string& line)>;
void set_log_sink(LogSink sink);

class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  /// Bind a clock so lines carry simulated timestamps.
  void bind_clock(std::function<SimTime()> now) { now_ = std::move(now); }

  bool enabled(LogLevel level) const {
    return level >= global_log_level();
  }

  void log(LogLevel level, const std::string& message) const;

  template <typename... Args>
  void logf(LogLevel level, const Args&... args) const {
    if (!enabled(level)) return;
    std::ostringstream os;
    (os << ... << args);
    log(level, os.str());
  }

  template <typename... Args>
  void trace(const Args&... args) const { logf(LogLevel::trace, args...); }
  template <typename... Args>
  void debug(const Args&... args) const { logf(LogLevel::debug, args...); }
  template <typename... Args>
  void info(const Args&... args) const { logf(LogLevel::info, args...); }
  template <typename... Args>
  void warn(const Args&... args) const { logf(LogLevel::warn, args...); }
  template <typename... Args>
  void error(const Args&... args) const { logf(LogLevel::error, args...); }

  const std::string& component() const { return component_; }

 private:
  std::string component_;
  std::function<SimTime()> now_;
};

}  // namespace esg::common
