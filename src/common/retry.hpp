// Unified retry/backoff policy.
//
// Every self-healing layer in the stack retries something: GridFTP's
// reliability plugin re-fetches from alternate replicas, the request manager
// re-issues HRM stage requests, clients re-poll flaky services.  Those knobs
// used to be scattered (a constant `retry_backoff` here, a `stage_timeout`
// there); RetryPolicy gives them one shape — exponential backoff with a cap
// and deterministic seeded jitter, an optional per-attempt timeout, and an
// overall deadline.  Layers inherit or embed the policy so configuration
// reads uniformly at every level.
#pragma once

#include <algorithm>
#include <limits>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace esg::common {

struct RetryPolicy {
  /// Give up after this many attempts (the first try counts as attempt 1).
  int max_attempts = 20;
  /// Backoff before the first retry; retry n waits roughly
  /// retry_backoff * backoff_multiplier^(n-1), capped at max_backoff.
  SimDuration retry_backoff = 5 * kSecond;
  double backoff_multiplier = 2.0;
  SimDuration max_backoff = 2 * kMinute;
  /// Jitter fraction: each backoff is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter), drawn from the caller's (seeded) Rng so runs
  /// replay exactly.  0 disables jitter.
  double jitter = 0.0;
  /// Budget for a single attempt; 0 = use the layer's transport timeout.
  SimDuration attempt_timeout = 0;
  /// Overall budget measured from the first attempt; 0 = unlimited.
  SimDuration deadline = 0;

  bool out_of_attempts(int attempts) const { return attempts >= max_attempts; }

  bool past_deadline(SimTime started, SimTime now) const {
    return deadline > 0 && now - started >= deadline;
  }

  /// Overall budget left at `now` for a sequence that began at `started`.
  /// Zero when the deadline has passed; "unlimited" when deadline == 0.
  SimDuration remaining_budget(SimTime started, SimTime now) const {
    if (deadline <= 0) return std::numeric_limits<SimDuration>::max();
    const SimTime until = started + deadline;
    return until > now ? until - now : 0;
  }

  /// Backoff before retry number `failures` (1 = after the first failure).
  /// The max_backoff cap applies to the *jittered* value, so no backoff ever
  /// exceeds the documented ceiling.
  SimDuration backoff_after(int failures, Rng& rng) const {
    double d = static_cast<double>(retry_backoff);
    for (int i = 1; i < failures; ++i) {
      d *= backoff_multiplier;
      if (d >= static_cast<double>(max_backoff)) break;
    }
    d = std::min(d, static_cast<double>(max_backoff));
    if (jitter > 0.0) {
      d *= 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
      d = std::min(d, static_cast<double>(max_backoff));
    }
    return static_cast<SimDuration>(std::max(0.0, d));
  }

  /// backoff_after() truncated to the remaining overall deadline budget, so
  /// a backoff sleep never carries the caller past `deadline`.  Returns 0
  /// when the budget is already exhausted — callers should give up rather
  /// than sleep (past_deadline() will confirm).
  SimDuration backoff_within_deadline(int failures, SimTime started,
                                      SimTime now, Rng& rng) const {
    // Always draw the jitter so the rng stream (and thus replay determinism)
    // does not depend on how much budget is left.
    const SimDuration d = backoff_after(failures, rng);
    return std::min(d, remaining_budget(started, now));
  }
};

}  // namespace esg::common
