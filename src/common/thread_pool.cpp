#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace esg::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t threads) {
  if (n == 0) return;
  ThreadPool pool(threads);
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(n, pool.thread_count());
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futs.push_back(pool.submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace esg::common
