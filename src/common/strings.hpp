// Small string utilities shared by the directory service, catalogs, and the
// GridFTP control-channel parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace esg::common {

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on a delimiter, dropping empty fields and trimming whitespace.
std::vector<std::string> split_trimmed(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Glob-lite match supporting '*' wildcards (used by LDAP substring filters).
bool wildcard_match(std::string_view pattern, std::string_view text);

}  // namespace esg::common
