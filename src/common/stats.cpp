#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esg::common {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::reset() { *this = OnlineStats{}; }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

void SlidingWindow::push(double x) {
  values_.push_back(x);
  if (values_.size() > capacity_) values_.pop_front();
}

double SlidingWindow::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double SlidingWindow::median() const {
  if (values_.empty()) return 0.0;
  std::vector<double> copy(values_.begin(), values_.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double hi = copy[mid];
  const double lo = *std::max_element(copy.begin(),
                                      copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

BandwidthSampler::BandwidthSampler(SimDuration bucket) : bucket_(bucket) {
  assert(bucket_ > 0);
}

void BandwidthSampler::record(SimTime t, Bytes bytes) {
  if (bytes <= 0) return;
  if (buckets_.empty()) origin_ = (t / bucket_) * bucket_;
  // Non-monotone callers (retried transfers replaying an old timestamp)
  // land in the first bucket instead of underflowing the index.
  t = std::max(t, origin_);
  const auto idx = static_cast<std::size_t>((t - origin_) / bucket_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += bytes;
  total_ += bytes;
}

void BandwidthSampler::record_interval(SimTime from, SimTime to,
                                       Bytes bytes) {
  if (bytes <= 0) return;
  if (to <= from) {
    record(to, bytes);
    return;
  }
  if (buckets_.empty()) origin_ = (from / bucket_) * bucket_;
  from = std::max(from, origin_);  // clamp to the recorded epoch
  if (to <= from) {
    record(to, bytes);
    return;
  }
  const double span = static_cast<double>(to - from);
  const auto last_idx = static_cast<std::size_t>((to - 1 - origin_) / bucket_);
  if (last_idx >= buckets_.size()) buckets_.resize(last_idx + 1, 0);
  // Walk bucket boundaries, apportioning by overlap; remainder arithmetic
  // keeps the total exact.
  Bytes remaining = bytes;
  SimTime cursor = from;
  while (cursor < to) {
    const SimTime bucket_end =
        origin_ + (((cursor - origin_) / bucket_) + 1) * bucket_;
    const SimTime seg_end = std::min(bucket_end, to);
    Bytes share;
    if (seg_end == to) {
      share = remaining;
    } else {
      share = static_cast<Bytes>(static_cast<double>(bytes) *
                                 static_cast<double>(seg_end - cursor) / span);
      share = std::min(share, remaining);
    }
    const auto idx = static_cast<std::size_t>((cursor - origin_) / bucket_);
    buckets_[idx] += share;
    remaining -= share;
    cursor = seg_end;
  }
  total_ += bytes;
}

Rate BandwidthSampler::peak_rate(SimDuration window) const {
  if (buckets_.empty() || window < bucket_) return 0.0;
  const auto w = static_cast<std::size_t>(window / bucket_);
  if (w == 0 || w > buckets_.size()) {
    // Window longer than the whole recording: average over everything.
    const SimDuration span = static_cast<SimDuration>(buckets_.size()) * bucket_;
    return static_cast<Rate>(total_) / to_seconds(span);
  }
  Bytes sum = 0;
  for (std::size_t i = 0; i < w; ++i) sum += buckets_[i];
  Bytes best = sum;
  for (std::size_t i = w; i < buckets_.size(); ++i) {
    sum += buckets_[i] - buckets_[i - w];
    best = std::max(best, sum);
  }
  return static_cast<Rate>(best) / to_seconds(window);
}

Rate BandwidthSampler::average_rate(SimTime from, SimTime to) const {
  if (to <= from || buckets_.empty()) return 0.0;
  Bytes sum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const SimTime b0 = origin_ + static_cast<SimTime>(i) * bucket_;
    if (b0 >= from && b0 + bucket_ <= to) sum += buckets_[i];
  }
  return static_cast<Rate>(sum) / to_seconds(to - from);
}

SimTime BandwidthSampler::last_time() const {
  if (buckets_.empty()) return 0;
  return origin_ + static_cast<SimTime>(buckets_.size()) * bucket_;
}

std::vector<std::pair<SimTime, Rate>> BandwidthSampler::series() const {
  std::vector<std::pair<SimTime, Rate>> out;
  out.reserve(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const SimTime t = origin_ + static_cast<SimTime>(i) * bucket_;
    out.emplace_back(t, static_cast<Rate>(buckets_[i]) / to_seconds(bucket_));
  }
  return out;
}

}  // namespace esg::common
