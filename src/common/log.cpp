#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace esg::common {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};

std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex

// stderr writes get their own mutex so interleaved lines stay whole even
// while another thread is busy inside a slow custom sink.
std::mutex g_stderr_mutex;

void emit(const std::string& line) {
  LogSink sink;
  {
    std::scoped_lock lock(g_sink_mutex);
    sink = g_sink;
  }
  // Invoke outside the lock: a sink may log or call set_log_sink() itself.
  if (sink) {
    sink(line);
    return;
  }
  std::scoped_lock lock(g_stderr_mutex);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

void set_global_log_level(LogLevel level) { g_level.store(level); }

LogLevel global_log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::scoped_lock lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) const {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(message.size() + component_.size() + 32);
  if (now_) {
    line += "[";
    line += format_time(now_());
    line += "] ";
  }
  line += "[";
  line += log_level_name(level);
  line += "] [";
  line += component_;
  line += "] ";
  line += message;
  emit(line);
}

}  // namespace esg::common
