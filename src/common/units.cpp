#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace esg::common {

std::string format_bytes(Bytes b) {
  char buf[64];
  const double v = static_cast<double>(b);
  if (b >= kGB) {
    std::snprintf(buf, sizeof buf, "%.1f GB", v / static_cast<double>(kGB));
  } else if (b >= kMB) {
    std::snprintf(buf, sizeof buf, "%.1f MB", v / static_cast<double>(kMB));
  } else if (b >= kKB) {
    std::snprintf(buf, sizeof buf, "%.1f KB", v / static_cast<double>(kKB));
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(b));
  }
  return buf;
}

std::string format_rate(Rate r) {
  char buf[64];
  const double bits = r * 8.0;
  if (bits >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f Gb/s", bits / 1e9);
  } else if (bits >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1f Mb/s", bits / 1e6);
  } else if (bits >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1f Kb/s", bits / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f b/s", bits);
  }
  return buf;
}

std::string format_time(SimTime t) {
  char buf[96];
  const std::int64_t total_ms = t / kMillisecond;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t s = (total_ms / 1000) % 60;
  const std::int64_t m = (total_ms / 60'000) % 60;
  const std::int64_t h = total_ms / 3'600'000;
  if (h > 0) {
    std::snprintf(buf, sizeof buf, "%lldh%02lldm%02lld.%03llds",
                  static_cast<long long>(h), static_cast<long long>(m),
                  static_cast<long long>(s), static_cast<long long>(ms));
  } else if (m > 0) {
    std::snprintf(buf, sizeof buf, "%lldm%02lld.%03llds",
                  static_cast<long long>(m), static_cast<long long>(s),
                  static_cast<long long>(ms));
  } else {
    std::snprintf(buf, sizeof buf, "%lld.%03llds", static_cast<long long>(s),
                  static_cast<long long>(ms));
  }
  return buf;
}

}  // namespace esg::common
