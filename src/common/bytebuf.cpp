#include "common/bytebuf.hpp"

namespace esg::common {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) {
  return fnv1a64(s.data(), s.size());
}

}  // namespace esg::common
