// Deterministic random number generation.
//
// Every simulation owns its own xoshiro256** stream seeded through
// splitmix64, so experiments replay exactly from a seed and independent
// simulations (run in parallel by the benchmark harness) never share state.
#pragma once

#include <cmath>
#include <cstdint>

namespace esg::common {

/// splitmix64 — used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (public-domain algorithm by Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    cached_normal_valid_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Multiply-shift rejection-free mapping (Lemire); bias negligible for
    // the modest n used here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Standard normal via Box–Muller with caching.
  double normal() {
    if (cached_normal_valid_) {
      cached_normal_valid_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    cached_normal_valid_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Derive an independent child stream (used to give each sensor / site its
  /// own decorrelated noise source).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_normal_ = 0.0;
  bool cached_normal_valid_ = false;
};

}  // namespace esg::common
