// Lightweight expected-style error handling.
//
// The emulator avoids exceptions on hot paths; fallible operations return
// Result<T>, carrying either a value or an Error {code, message}.  This is a
// deliberately small subset of std::expected (not yet available on the
// toolchain this project targets).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace esg::common {

/// Error categories shared across modules.
enum class Errc {
  ok = 0,
  not_found,
  already_exists,
  invalid_argument,
  permission_denied,
  unavailable,       // service or resource temporarily down
  timed_out,
  aborted,           // cancelled by caller or failure-injection
  protocol_error,    // malformed wire message / unexpected verb
  io_error,          // storage-level failure
  out_of_space,
  auth_failed,
  internal,
};

/// Human-readable name of an error code.
const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::internal;
  std::string message;

  std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Error err) : data_(std::in_place_index<1>, std::move(err)) {}

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations that return no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)), has_error_(true) {}

  bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(has_error_);
    return err_;
  }

 private:
  Error err_{};
  bool has_error_ = false;
};

using Status = Result<void>;

inline Status ok_status() { return Status{}; }

inline const char* errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::permission_denied: return "permission_denied";
    case Errc::unavailable: return "unavailable";
    case Errc::timed_out: return "timed_out";
    case Errc::aborted: return "aborted";
    case Errc::protocol_error: return "protocol_error";
    case Errc::io_error: return "io_error";
    case Errc::out_of_space: return "out_of_space";
    case Errc::auth_failed: return "auth_failed";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

}  // namespace esg::common
