// Units used throughout the ESG grid emulator.
//
// Simulated time is an integer nanosecond count (`SimTime`) so event ordering
// is exact and runs are bit-reproducible.  Data sizes are byte counts and
// rates are bytes/second (double); helpers convert to the networking units
// the paper reports (Mb/s, Gb/s).
#pragma once

#include <cstdint>
#include <string>

namespace esg::common {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, also in nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

/// Largest representable simulated instant; used as "never".
inline constexpr SimTime kTimeNever = INT64_MAX;

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr SimDuration milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

constexpr SimDuration seconds(double s) { return from_seconds(s); }

/// Data sizes in bytes.
using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;
inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kMB = 1000 * kKB;
inline constexpr Bytes kGB = 1000 * kMB;

/// Transfer rates in bytes per second.
using Rate = double;

/// Convert a rate expressed in megabits/second (the paper's unit) to B/s.
constexpr Rate mbps(double v) { return v * 1e6 / 8.0; }
/// Convert a rate expressed in gigabits/second to B/s.
constexpr Rate gbps(double v) { return v * 1e9 / 8.0; }

/// Convert a rate in bytes/second to megabits/second for reporting.
constexpr double to_mbps(Rate r) { return r * 8.0 / 1e6; }
/// Convert a rate in bytes/second to gigabits/second for reporting.
constexpr double to_gbps(Rate r) { return r * 8.0 / 1e9; }

/// Pretty-print a byte count ("230.8 GB" style, decimal units as the paper).
std::string format_bytes(Bytes b);
/// Pretty-print a rate ("512.9 Mb/s" style).
std::string format_rate(Rate r);
/// Pretty-print a simulated time ("1h02m03.4s" style).
std::string format_time(SimTime t);

}  // namespace esg::common
