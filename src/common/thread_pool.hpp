// Fixed-size worker pool used by the benchmark harness to run independent
// simulation instances of a parameter sweep concurrently.
//
// Each sim::Simulation is fully self-contained, so sweep points share no
// mutable state; the pool only hands out whole tasks.  Following the C++
// Core Guidelines CP rules: RAII join in the destructor (no detach),
// condition-variable waits always take a predicate, and tasks are moved into
// workers by value.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace esg::common {

class ThreadPool {
 public:
  /// `threads == 0` picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submit a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t thread_count() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  static void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                           std::size_t threads = 0);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  bool stopping_ = false;                    // guarded by mutex_
  std::vector<std::thread> workers_;
};

}  // namespace esg::common
