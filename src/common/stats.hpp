// Statistics helpers used by the NWS forecasters, the benchmark harness, and
// the bandwidth samplers that reproduce Table 1 / Figure 8.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/units.hpp"

namespace esg::common {

/// Streaming mean / variance (Welford).
class OnlineStats {
 public:
  void add(double x);
  /// Combine another accumulator's samples into this one (parallel-variance
  /// combination); equivalent to having add()ed the other's samples here.
  void merge(const OnlineStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample (copies + nth_element; fine for report-time use).
double quantile(std::vector<double> values, double q);

/// Fixed-capacity sliding window with O(1) push and O(n) aggregates —
/// exactly what the NWS forecasters need over recent measurements.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {}

  void push(double x);
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double median() const;
  double last() const { return values_.empty() ? 0.0 : values_.back(); }
  const std::deque<double>& values() const { return values_; }

 private:
  std::size_t capacity_;
  std::deque<double> values_;
};

/// Records (time, bytes-delivered) increments and reports the rate over
/// arbitrary windows.  This is the instrument behind the paper's
/// "peak over 0.1 s / peak over 5 s / sustained over 1 h" rows in Table 1
/// and the Figure 8 bandwidth-vs-time series.
class BandwidthSampler {
 public:
  /// `bucket` is the sampling resolution; peaks over windows smaller than a
  /// bucket are not observable.
  explicit BandwidthSampler(SimDuration bucket = 100 * kMillisecond);

  /// Account `bytes` delivered at simulated time `t` (monotone t required).
  void record(SimTime t, Bytes bytes);

  /// Account `bytes` delivered smoothly over [from, to): distributed across
  /// the covered buckets proportionally.  Use this when deltas arrive at
  /// event granularity coarser than the bucket, else rates alias into
  /// spurious spikes.
  void record_interval(SimTime from, SimTime to, Bytes bytes);

  /// Highest average rate over any window of length `window`.
  Rate peak_rate(SimDuration window) const;

  /// Average rate between two instants.
  Rate average_rate(SimTime from, SimTime to) const;

  /// Total bytes recorded.
  Bytes total_bytes() const { return total_; }

  /// Time of the last recorded sample.
  SimTime last_time() const;

  /// Per-bucket (bucket_start_time, rate) series for plotting (Figure 8).
  std::vector<std::pair<SimTime, Rate>> series() const;

  SimDuration bucket() const { return bucket_; }

 private:
  SimDuration bucket_;
  SimTime origin_ = 0;
  std::vector<Bytes> buckets_;  // bytes per bucket, index 0 at origin_
  Bytes total_ = 0;
};

}  // namespace esg::common
