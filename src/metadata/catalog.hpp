// CDMS-style metadata catalog (paper §3).
//
// "Based on LDAP, this catalog provides a view of data as a collection of
// datasets, comprised primarily of multidimensional data variables together
// with descriptive, textual data.  A single dataset may consist of
// thousands of individual data files ... A CDAT client contains the logic
// to query the metadata catalog and translate a dataset name, variable
// name, and spatiotemporal region into the logical file names stored in the
// replica catalog."
//
// DN scheme:
//   ds=<dataset>,mc=cdms,o=grid           dataset entry
//   var=<variable>,ds=...                 variable entries (units, long name)
//   tf=<filename>,ds=...                  time-chunk file entries
//                                         (startmonth, endmonth exclusive)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "directory/service.hpp"

namespace esg::metadata {

struct VariableDesc {
  std::string name;
  std::string units;
  std::string long_name;
};

struct DatasetInfo {
  std::string name;             // e.g. "pcmdi-ocean-r1"
  std::string model;            // e.g. "esg-synthetic-v1"
  std::string institution;      // e.g. "LLNL/PCMDI"
  std::string collection;       // replica-catalog logical collection
  int start_month = 0;          // absolute month index of first sample
  int n_months = 0;
  int months_per_file = 12;     // time-chunking of files
  std::vector<VariableDesc> variables;

  /// Canonical chunk file name covering [m0, m0+months_per_file).
  std::string file_name(int chunk_index) const;
  int chunk_count() const;
};

/// A (collection, filename) pair plus its time coverage — what the CDAT
/// layer hands to the request manager.
struct LogicalFileRef {
  std::string collection;
  std::string filename;
  int start_month = 0;
  int end_month = 0;  // exclusive
};

class MetadataCatalog {
 public:
  explicit MetadataCatalog(directory::DirectoryClient client);

  using StatusCb = std::function<void(common::Status)>;

  /// Publish a dataset: the ds= entry, per-variable entries, and one tf=
  /// entry per time chunk.
  void publish_dataset(const DatasetInfo& dataset, StatusCb done);

  void lookup_dataset(const std::string& name,
                      std::function<void(common::Result<DatasetInfo>)> done);

  void list_datasets(
      std::function<void(common::Result<std::vector<std::string>>)> done);

  /// The CDAT translation step: (dataset, variable, month range) ->
  /// logical file names.  `month_end` is exclusive.  Fails if the variable
  /// is not part of the dataset or the range misses the dataset entirely.
  void files_for(const std::string& dataset, const std::string& variable,
                 int month_start, int month_end,
                 std::function<void(common::Result<std::vector<LogicalFileRef>>)>
                     done);

  static directory::Dn root_dn();
  static directory::Dn dataset_dn(const std::string& name);

 private:
  directory::DirectoryClient client_;
};

}  // namespace esg::metadata
