#include "metadata/catalog.hpp"

#include <algorithm>

namespace esg::metadata {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using directory::Dn;
using directory::Entry;
using directory::Scope;

std::string DatasetInfo::file_name(int chunk_index) const {
  const int m0 = start_month + chunk_index * months_per_file;
  const int m1 = std::min(m0 + months_per_file, start_month + n_months);
  return name + "." + std::to_string(m0) + "-" + std::to_string(m1) + ".ncx";
}

int DatasetInfo::chunk_count() const {
  if (months_per_file <= 0) return 0;
  return (n_months + months_per_file - 1) / months_per_file;
}

MetadataCatalog::MetadataCatalog(directory::DirectoryClient client)
    : client_(std::move(client)) {}

Dn MetadataCatalog::root_dn() {
  return Dn::from_rdns({{"mc", "cdms"}, {"o", "grid"}});
}

Dn MetadataCatalog::dataset_dn(const std::string& name) {
  return root_dn().child("ds", name);
}

void MetadataCatalog::publish_dataset(const DatasetInfo& dataset,
                                      StatusCb done) {
  Entry ds(dataset_dn(dataset.name));
  ds.add("objectclass", "dataset");
  ds.add("name", dataset.name);
  ds.add("model", dataset.model);
  ds.add("institution", dataset.institution);
  ds.add("collection", dataset.collection);
  ds.add("startmonth", dataset.start_month);
  ds.add("nmonths", dataset.n_months);
  ds.add("monthsperfile", dataset.months_per_file);
  for (const auto& v : dataset.variables) ds.add("variable", v.name);

  // Entries write sequentially; a shared countdown fires `done` once.
  const int total = 1 + static_cast<int>(dataset.variables.size()) +
                    dataset.chunk_count();
  auto remaining = std::make_shared<int>(total);
  auto failed = std::make_shared<bool>(false);
  auto cb = std::make_shared<StatusCb>(std::move(done));
  auto step = [remaining, failed, cb](Status st) {
    if (!st.ok() && !*failed) {
      *failed = true;
      (*cb)(st);
      return;
    }
    if (--*remaining == 0 && !*failed) (*cb)(common::ok_status());
  };

  client_.add(ds, /*ensure=*/true, step);
  for (const auto& v : dataset.variables) {
    Entry ve(dataset_dn(dataset.name).child("var", v.name));
    ve.add("objectclass", "variable");
    ve.add("name", v.name);
    ve.add("units", v.units);
    ve.add("longname", v.long_name);
    client_.add(ve, /*ensure=*/true, step);
  }
  for (int c = 0; c < dataset.chunk_count(); ++c) {
    const int m0 = dataset.start_month + c * dataset.months_per_file;
    const int m1 = std::min(m0 + dataset.months_per_file,
                            dataset.start_month + dataset.n_months);
    Entry fe(dataset_dn(dataset.name).child("tf", dataset.file_name(c)));
    fe.add("objectclass", "timechunk");
    fe.add("name", dataset.file_name(c));
    fe.add("startmonth", m0);
    fe.add("endmonth", m1);
    client_.add(fe, /*ensure=*/true, step);
  }
}

void MetadataCatalog::lookup_dataset(
    const std::string& name, std::function<void(Result<DatasetInfo>)> done) {
  client_.search(
      dataset_dn(name), Scope::sub, "(objectclass=*)",
      [name, done = std::move(done)](Result<std::vector<Entry>> r) {
        if (!r) return done(r.error());
        DatasetInfo info;
        bool found = false;
        std::vector<VariableDesc> vars;
        for (const auto& e : *r) {
          const std::string oc = e.get("objectclass");
          if (oc == "dataset") {
            found = true;
            info.name = e.get("name");
            info.model = e.get("model");
            info.institution = e.get("institution");
            info.collection = e.get("collection");
            info.start_month = static_cast<int>(e.get_int("startmonth"));
            info.n_months = static_cast<int>(e.get_int("nmonths"));
            info.months_per_file =
                static_cast<int>(e.get_int("monthsperfile"));
          } else if (oc == "variable") {
            vars.push_back(VariableDesc{e.get("name"), e.get("units"),
                                        e.get("longname")});
          }
        }
        if (!found) {
          return done(Error{Errc::not_found, "no dataset " + name});
        }
        info.variables = std::move(vars);
        done(std::move(info));
      });
}

void MetadataCatalog::list_datasets(
    std::function<void(Result<std::vector<std::string>>)> done) {
  client_.search(root_dn(), Scope::one, "(objectclass=dataset)",
                 [done = std::move(done)](Result<std::vector<Entry>> r) {
                   if (!r) return done(r.error());
                   std::vector<std::string> names;
                   names.reserve(r->size());
                   for (const auto& e : *r) names.push_back(e.get("name"));
                   done(std::move(names));
                 });
}

void MetadataCatalog::files_for(
    const std::string& dataset, const std::string& variable, int month_start,
    int month_end,
    std::function<void(Result<std::vector<LogicalFileRef>>)> done) {
  lookup_dataset(
      dataset, [this, dataset, variable, month_start, month_end,
                done = std::move(done)](Result<DatasetInfo> info) mutable {
        if (!info) return done(info.error());
        const bool has_var =
            std::any_of(info->variables.begin(), info->variables.end(),
                        [&](const VariableDesc& v) { return v.name == variable; });
        if (!has_var) {
          return done(Error{Errc::not_found,
                            "dataset " + dataset + " has no variable " +
                                variable});
        }
        // Chunks overlapping [month_start, month_end).
        client_.search(
            dataset_dn(dataset), Scope::one,
            "(&(objectclass=timechunk)(startmonth<=" +
                std::to_string(month_end - 1) + ")(endmonth>=" +
                std::to_string(month_start + 1) + "))",
            [collection = info->collection, done = std::move(done)](
                Result<std::vector<Entry>> r) {
              if (!r) return done(r.error());
              std::vector<LogicalFileRef> refs;
              refs.reserve(r->size());
              for (const auto& e : *r) {
                refs.push_back(LogicalFileRef{
                    collection, e.get("name"),
                    static_cast<int>(e.get_int("startmonth")),
                    static_cast<int>(e.get_int("endmonth"))});
              }
              if (refs.empty()) {
                return done(Error{Errc::not_found,
                                  "no files cover the requested months"});
              }
              std::sort(refs.begin(), refs.end(),
                        [](const LogicalFileRef& a, const LogicalFileRef& b) {
                          return a.start_month < b.start_month;
                        });
              done(std::move(refs));
            });
      });
}

}  // namespace esg::metadata
