// Globus-style replica catalog (paper §6.2, Fig 6).
//
// The catalog registers three kinds of entries under an LDAP tree:
//
//   rc=<catalog>,o=Grid                          the catalog root
//   lc=<collection>,rc=...                       logical collections
//   loc=<location>,lc=...                        complete or partial physical
//                                                copies of a collection
//   lf=<file>,lc=...                             optional per-file entries
//                                                (size metadata)
//
// Location entries carry the protocol/hostname/path needed to map logical
// names to URLs, plus a multi-valued `filename` attribute listing which of
// the collection's files that location actually holds — partial collections
// (jupiter.isi.edu in Fig 6) list a subset.
//
// All operations are asynchronous over the emulated LDAP service.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "directory/service.hpp"
#include "gridftp/url.hpp"

namespace esg::replica {

struct LocationInfo {
  std::string name;       // e.g. "jupiter-isi"
  std::string hostname;   // e.g. "jupiter.isi.edu"
  std::string protocol = "gsiftp";
  std::string path;       // directory prefix at the location
  std::vector<std::string> files;  // files of the collection present here
  std::string storage_type = "disk";  // "disk" or "mss" (HRM-fronted tape)

  /// URL for one file of the collection at this location.
  gridftp::FtpUrl url_for(const std::string& filename) const {
    return gridftp::FtpUrl{hostname,
                           path.empty() ? filename : path + "/" + filename};
  }
};

struct LogicalFileInfo {
  std::string name;
  common::Bytes size = 0;
};

/// A replica candidate returned by find_replicas.
struct Replica {
  LocationInfo location;
  gridftp::FtpUrl url;
};

class ReplicaCatalog {
 public:
  /// `catalog_name` names the rc= root, e.g. "esg".
  ReplicaCatalog(directory::DirectoryClient client, std::string catalog_name);

  using StatusCb = std::function<void(common::Status)>;

  /// Create the rc= root (idempotent via ensure).
  void create_catalog(StatusCb done);

  void create_collection(const std::string& collection, StatusCb done);

  /// Register a logical file: adds an lf= entry with size and appends the
  /// name to the collection's filename list.
  void register_logical_file(const std::string& collection,
                             const LogicalFileInfo& file, StatusCb done);

  /// Register a physical location of a collection.
  void register_location(const std::string& collection,
                         const LocationInfo& location, StatusCb done);

  /// Record that `filename` now has a replica at `location`.
  void add_file_to_location(const std::string& collection,
                            const std::string& location,
                            const std::string& filename, StatusCb done);

  void remove_file_from_location(const std::string& collection,
                                 const std::string& location,
                                 const std::string& filename, StatusCb done);

  /// All locations of a collection.
  void list_locations(
      const std::string& collection,
      std::function<void(common::Result<std::vector<LocationInfo>>)> done);

  /// All locations holding a given file, with ready-made URLs.
  void find_replicas(
      const std::string& collection, const std::string& filename,
      std::function<void(common::Result<std::vector<Replica>>)> done);

  /// Size metadata for one logical file.
  void lookup_logical_file(
      const std::string& collection, const std::string& filename,
      std::function<void(common::Result<LogicalFileInfo>)> done);

  /// Names of all logical files in a collection.
  void list_files(
      const std::string& collection,
      std::function<void(common::Result<std::vector<std::string>>)> done);

  const std::string& catalog_name() const { return catalog_name_; }
  directory::Dn root_dn() const;
  directory::Dn collection_dn(const std::string& collection) const;

  static LocationInfo location_from_entry(const directory::Entry& entry);

 private:
  directory::DirectoryClient client_;
  std::string catalog_name_;
};

}  // namespace esg::replica
