#include "replica/catalog.hpp"

namespace esg::replica {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;
using directory::Dn;
using directory::Entry;
using directory::ModOp;
using directory::Scope;

ReplicaCatalog::ReplicaCatalog(directory::DirectoryClient client,
                               std::string catalog_name)
    : client_(std::move(client)), catalog_name_(std::move(catalog_name)) {}

Dn ReplicaCatalog::root_dn() const {
  return Dn::from_rdns({{"rc", catalog_name_}, {"o", "Grid"}});
}

Dn ReplicaCatalog::collection_dn(const std::string& collection) const {
  return root_dn().child("lc", collection);
}

void ReplicaCatalog::create_catalog(StatusCb done) {
  Entry root(root_dn());
  root.add("objectclass", "replicacatalog");
  client_.add(root, /*ensure=*/true, std::move(done));
}

void ReplicaCatalog::create_collection(const std::string& collection,
                                       StatusCb done) {
  Entry e(collection_dn(collection));
  e.add("objectclass", "logicalcollection");
  e.add("name", collection);
  client_.add(e, /*ensure=*/true, std::move(done));
}

void ReplicaCatalog::register_logical_file(const std::string& collection,
                                           const LogicalFileInfo& file,
                                           StatusCb done) {
  Entry e(collection_dn(collection).child("lf", file.name));
  e.add("objectclass", "logicalfile");
  e.add("name", file.name);
  e.add("size", file.size);
  auto cb = std::move(done);
  // Two steps: the lf= entry, then the filename attribute on the collection.
  client_.add(e, /*ensure=*/true,
              [this, collection, name = file.name,
               cb = std::move(cb)](Status st) mutable {
                if (!st.ok()) return cb(st);
                client_.modify(collection_dn(collection),
                               {{ModOp::Kind::add, "filename", name}},
                               std::move(cb));
              });
}

void ReplicaCatalog::register_location(const std::string& collection,
                                       const LocationInfo& location,
                                       StatusCb done) {
  Entry e(collection_dn(collection).child("loc", location.name));
  e.add("objectclass", "location");
  e.add("name", location.name);
  e.add("hostname", location.hostname);
  e.add("protocol", location.protocol);
  e.add("path", location.path);
  e.add("storagetype", location.storage_type);
  for (const auto& f : location.files) e.add("filename", f);
  client_.add(e, /*ensure=*/true, std::move(done));
}

void ReplicaCatalog::add_file_to_location(const std::string& collection,
                                          const std::string& location,
                                          const std::string& filename,
                                          StatusCb done) {
  client_.modify(collection_dn(collection).child("loc", location),
                 {{ModOp::Kind::add, "filename", filename}}, std::move(done));
}

void ReplicaCatalog::remove_file_from_location(const std::string& collection,
                                               const std::string& location,
                                               const std::string& filename,
                                               StatusCb done) {
  client_.modify(collection_dn(collection).child("loc", location),
                 {{ModOp::Kind::remove_value, "filename", filename}},
                 std::move(done));
}

LocationInfo ReplicaCatalog::location_from_entry(const Entry& entry) {
  LocationInfo info;
  info.name = entry.get("name");
  info.hostname = entry.get("hostname");
  info.protocol = entry.get("protocol");
  info.path = entry.get("path");
  info.storage_type = entry.get("storagetype");
  info.files = entry.values("filename");
  return info;
}

void ReplicaCatalog::list_locations(
    const std::string& collection,
    std::function<void(Result<std::vector<LocationInfo>>)> done) {
  client_.search(collection_dn(collection), Scope::one,
                 "(objectclass=location)",
                 [done = std::move(done)](Result<std::vector<Entry>> r) {
                   if (!r) return done(r.error());
                   std::vector<LocationInfo> out;
                   out.reserve(r->size());
                   for (const auto& e : *r) {
                     out.push_back(location_from_entry(e));
                   }
                   done(std::move(out));
                 });
}

void ReplicaCatalog::find_replicas(
    const std::string& collection, const std::string& filename,
    std::function<void(Result<std::vector<Replica>>)> done) {
  client_.search(
      collection_dn(collection), Scope::one,
      "(&(objectclass=location)(filename=" + filename + "))",
      [collection, filename, done = std::move(done)](Result<std::vector<Entry>> r) {
        if (!r) return done(r.error());
        std::vector<Replica> out;
        out.reserve(r->size());
        for (const auto& e : *r) {
          Replica rep;
          rep.location = location_from_entry(e);
          rep.url = rep.location.url_for(filename);
          out.push_back(std::move(rep));
        }
        if (out.empty()) {
          return done(Error{Errc::not_found,
                            "no replicas of " + filename + " in " + collection});
        }
        done(std::move(out));
      });
}

void ReplicaCatalog::lookup_logical_file(
    const std::string& collection, const std::string& filename,
    std::function<void(Result<LogicalFileInfo>)> done) {
  client_.lookup(collection_dn(collection).child("lf", filename),
                 [done = std::move(done)](Result<Entry> r) {
                   if (!r) return done(r.error());
                   LogicalFileInfo info;
                   info.name = r->get("name");
                   info.size = r->get_int("size");
                   done(std::move(info));
                 });
}

void ReplicaCatalog::list_files(
    const std::string& collection,
    std::function<void(Result<std::vector<std::string>>)> done) {
  client_.lookup(collection_dn(collection),
                 [done = std::move(done)](Result<Entry> r) {
                   if (!r) return done(r.error());
                   done(r->values("filename"));
                 });
}

}  // namespace esg::replica
