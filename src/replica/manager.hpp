// Replica management: the higher-level services the paper builds on the
// catalog + GridFTP ("reliable creation of a copy of a large data collection
// at a new location", §6.2).
#pragma once

#include <memory>

#include "gridftp/client.hpp"
#include "replica/catalog.hpp"

namespace esg::replica {

struct ReplicateResult {
  common::Status status = common::ok_status();
  common::Bytes bytes_copied = 0;
  int files_copied = 0;
};

/// Copies files between registered locations (third-party GridFTP) and
/// keeps the catalog consistent: the new replica is registered only after
/// the data lands.
class ReplicaManager {
 public:
  ReplicaManager(ReplicaCatalog& catalog, gridftp::GridFtpClient& ftp);

  /// Copy one file of a collection from one location to another and
  /// register the new replica.
  void replicate_file(const std::string& collection,
                      const std::string& filename,
                      const std::string& from_location,
                      const std::string& to_location,
                      const gridftp::TransferOptions& options,
                      std::function<void(ReplicateResult)> done);

  /// Copy every file the source location holds that the destination lacks.
  /// Files copy sequentially (reliable collection copy, not a bandwidth
  /// race); the first failure stops the remainder.
  void replicate_collection(const std::string& collection,
                            const std::string& from_location,
                            const std::string& to_location,
                            const gridftp::TransferOptions& options,
                            std::function<void(ReplicateResult)> done);

 private:
  struct CollectionJob;

  ReplicaCatalog& catalog_;
  gridftp::GridFtpClient& ftp_;
};

}  // namespace esg::replica
