#include "replica/manager.hpp"

#include <algorithm>

namespace esg::replica {

using common::Errc;
using common::Error;
using common::Result;
using common::Status;

ReplicaManager::ReplicaManager(ReplicaCatalog& catalog,
                               gridftp::GridFtpClient& ftp)
    : catalog_(catalog), ftp_(ftp) {}

namespace {

Result<LocationInfo> find_location(const std::vector<LocationInfo>& locations,
                                   const std::string& name) {
  for (const auto& loc : locations) {
    if (loc.name == name) return loc;
  }
  return Error{Errc::not_found, "no such location: " + name};
}

}  // namespace

void ReplicaManager::replicate_file(
    const std::string& collection, const std::string& filename,
    const std::string& from_location, const std::string& to_location,
    const gridftp::TransferOptions& options,
    std::function<void(ReplicateResult)> done) {
  catalog_.list_locations(
      collection,
      [this, collection, filename, from_location, to_location, options,
       done = std::move(done)](
          Result<std::vector<LocationInfo>> locs) mutable {
        if (!locs) return done(ReplicateResult{locs.error(), 0, 0});
        auto from = find_location(*locs, from_location);
        auto to = find_location(*locs, to_location);
        if (!from) return done(ReplicateResult{from.error(), 0, 0});
        if (!to) return done(ReplicateResult{to.error(), 0, 0});
        if (std::find(from->files.begin(), from->files.end(), filename) ==
            from->files.end()) {
          return done(ReplicateResult{
              Error{Errc::not_found,
                    filename + " not present at " + from_location},
              0, 0});
        }
        ftp_.third_party_copy(
            from->url_for(filename), to->url_for(filename), options,
            [this, collection, filename, to_location,
             done = std::move(done)](gridftp::TransferResult r) mutable {
              if (!r.status.ok()) {
                return done(
                    ReplicateResult{r.status, r.bytes_transferred, 0});
              }
              // Data landed: make it visible in the catalog.
              catalog_.add_file_to_location(
                  collection, to_location, filename,
                  [bytes = r.bytes_transferred,
                   done = std::move(done)](Status st) {
                    done(ReplicateResult{st, bytes, st.ok() ? 1 : 0});
                  });
            });
      });
}

// Sequential per-file state for a collection copy; keeps itself alive.
struct ReplicaManager::CollectionJob
    : std::enable_shared_from_this<CollectionJob> {
  ReplicaManager* manager = nullptr;
  std::string collection, from, to;
  gridftp::TransferOptions options;
  std::vector<std::string> pending;
  ReplicateResult result;
  std::function<void(ReplicateResult)> done;

  void next() {
    if (pending.empty()) {
      return done(std::move(result));
    }
    const std::string file = pending.back();
    pending.pop_back();
    auto self = shared_from_this();
    manager->replicate_file(
        collection, file, from, to, options, [self](ReplicateResult r) {
          self->result.bytes_copied += r.bytes_copied;
          self->result.files_copied += r.files_copied;
          if (!r.status.ok()) {
            self->result.status = r.status;
            return self->done(std::move(self->result));
          }
          self->next();
        });
  }
};

void ReplicaManager::replicate_collection(
    const std::string& collection, const std::string& from_location,
    const std::string& to_location, const gridftp::TransferOptions& options,
    std::function<void(ReplicateResult)> done) {
  catalog_.list_locations(
      collection,
      [this, collection, from_location, to_location, options,
       done = std::move(done)](
          Result<std::vector<LocationInfo>> locs) mutable {
        if (!locs) return done(ReplicateResult{locs.error(), 0, 0});
        auto from = find_location(*locs, from_location);
        auto to = find_location(*locs, to_location);
        if (!from) return done(ReplicateResult{from.error(), 0, 0});
        if (!to) return done(ReplicateResult{to.error(), 0, 0});

        auto job = std::make_shared<CollectionJob>();
        job->manager = this;
        job->collection = collection;
        job->from = from_location;
        job->to = to_location;
        job->options = options;
        job->done = std::move(done);
        // Copy what the source has and the destination lacks, in a
        // deterministic (reversed-lexical via pop_back) order.
        for (const auto& f : from->files) {
          if (std::find(to->files.begin(), to->files.end(), f) ==
              to->files.end()) {
            job->pending.push_back(f);
          }
        }
        std::sort(job->pending.rbegin(), job->pending.rend());
        job->next();
      });
}

}  // namespace esg::replica
