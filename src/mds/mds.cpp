#include "mds/mds.hpp"

namespace esg::mds {

using common::Result;
using common::Status;
using directory::Dn;
using directory::Entry;
using directory::Scope;

MdsService::MdsService(rpc::Orb& orb, const net::Host& host)
    : host_(host), backing_(std::make_shared<directory::DirectoryServer>()) {
  service_ = std::make_unique<directory::DirectoryService>(orb, host_,
                                                           backing_, "mds");
  // Pre-create the two organizational branches.
  Entry root(Dn::from_rdns({{"o", "mds"}}));
  root.add("objectclass", "organization");
  (void)backing_->ensure(root);
  for (const char* ou : {"network", "hosts"}) {
    Entry branch(Dn::from_rdns({{"ou", ou}, {"o", "mds"}}));
    branch.add("objectclass", "organizationalUnit");
    (void)backing_->ensure(branch);
  }
}

MdsClient::MdsClient(rpc::Orb& orb, const net::Host& from,
                     const net::Host& mds_host)
    : client_(orb, from, mds_host, "mds") {}

Dn MdsClient::network_dn(const std::string& src, const std::string& dst) {
  return Dn::from_rdns({{"nw", src + "--" + dst}, {"ou", "network"},
                        {"o", "mds"}});
}

Dn MdsClient::host_dn(const std::string& name) {
  return Dn::from_rdns({{"host", name}, {"ou", "hosts"}, {"o", "mds"}});
}

NetworkRecord MdsClient::network_from_entry(const Entry& entry) {
  NetworkRecord r;
  r.src_host = entry.get("srchost");
  r.dst_host = entry.get("dsthost");
  r.bandwidth = static_cast<double>(entry.get_int("bandwidth"));
  r.latency = entry.get_int("latency");
  r.updated = entry.get_int("updated");
  r.probe_failed = entry.get("probefailed") == "1";
  return r;
}

void MdsClient::publish_network(const NetworkRecord& record,
                                std::function<void(Status)> done) {
  Entry e(network_dn(record.src_host, record.dst_host));
  e.add("objectclass", "networkperformance");
  e.add("srchost", record.src_host);
  e.add("dsthost", record.dst_host);
  e.add("bandwidth", static_cast<std::int64_t>(record.bandwidth));
  e.add("latency", record.latency);
  e.add("updated", record.updated);
  e.add("probefailed", record.probe_failed ? "1" : "0");
  client_.add(e, /*ensure=*/true, std::move(done));
}

void MdsClient::query_network(
    const std::string& src_host, const std::string& dst_host,
    std::function<void(Result<NetworkRecord>)> done) {
  client_.lookup(network_dn(src_host, dst_host),
                 [done = std::move(done)](Result<Entry> r) {
                   if (!r) return done(r.error());
                   done(network_from_entry(*r));
                 });
}

void MdsClient::query_paths_to(
    const std::string& dst_host,
    std::function<void(Result<std::vector<NetworkRecord>>)> done) {
  client_.search(Dn::from_rdns({{"ou", "network"}, {"o", "mds"}}), Scope::one,
                 "(&(objectclass=networkperformance)(dsthost=" + dst_host +
                     "))",
                 [done = std::move(done)](Result<std::vector<Entry>> r) {
                   if (!r) return done(r.error());
                   std::vector<NetworkRecord> out;
                   out.reserve(r->size());
                   for (const auto& e : *r) {
                     out.push_back(network_from_entry(e));
                   }
                   done(std::move(out));
                 });
}

void MdsClient::publish_host(const HostRecord& record,
                             std::function<void(Status)> done) {
  Entry e(host_dn(record.name));
  e.add("objectclass", "computeelement");
  e.add("name", record.name);
  e.add("site", record.site);
  e.add("nicrate", static_cast<std::int64_t>(record.nic_rate));
  e.add("diskrate", static_cast<std::int64_t>(record.disk_rate));
  // Permille keeps the directory's integer attribute convention.
  e.add("cpuavailpermille",
        static_cast<std::int64_t>(record.cpu_available * 1000.0));
  e.add("updated", record.updated);
  client_.add(e, /*ensure=*/true, std::move(done));
}

void MdsClient::query_host(const std::string& name,
                           std::function<void(Result<HostRecord>)> done) {
  client_.lookup(host_dn(name), [done = std::move(done)](Result<Entry> r) {
    if (!r) return done(r.error());
    HostRecord h;
    h.name = r->get("name");
    h.site = r->get("site");
    h.nic_rate = static_cast<double>(r->get_int("nicrate"));
    h.disk_rate = static_cast<double>(r->get_int("diskrate"));
    h.cpu_available =
        static_cast<double>(r->get_int("cpuavailpermille", -1000)) / 1000.0;
    h.updated = r->get_int("updated");
    done(std::move(h));
  });
}

}  // namespace esg::mds
