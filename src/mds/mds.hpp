// MDS — the Grid information service (paper §5/§6: "NWS information is
// accessed by the MDS information service").
//
// A thin convention layer over the LDAP directory: network-performance
// records live under ou=network,o=mds and host records under
// ou=hosts,o=mds.  NWS sensors publish through MdsClient; the request
// manager queries forecasts through the same client.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "directory/service.hpp"

namespace esg::mds {

using common::Rate;
using common::SimDuration;
using common::SimTime;

struct NetworkRecord {
  std::string src_host;
  std::string dst_host;
  Rate bandwidth = 0.0;       // forecast, bytes/second
  SimDuration latency = 0;    // forecast RTT
  SimTime updated = 0;
  bool probe_failed = false;  // last raw probe failed (path likely down)
};

struct HostRecord {
  std::string name;
  std::string site;
  Rate nic_rate = 0.0;
  Rate disk_rate = 0.0;
  /// NWS CPU-availability forecast in [0, 1] (-1 = not published).
  double cpu_available = -1.0;
  SimTime updated = 0;
};

/// Server side: a GRIS-like directory served from `host` as service "mds".
class MdsService {
 public:
  MdsService(rpc::Orb& orb, const net::Host& host);

  const net::Host& host() const { return host_; }
  directory::DirectoryServer& server() { return service_->server(); }

 private:
  const net::Host& host_;
  std::shared_ptr<directory::DirectoryServer> backing_;
  std::unique_ptr<directory::DirectoryService> service_;
};

class MdsClient {
 public:
  MdsClient(rpc::Orb& orb, const net::Host& from, const net::Host& mds_host);

  void publish_network(const NetworkRecord& record,
                       std::function<void(common::Status)> done);

  void query_network(
      const std::string& src_host, const std::string& dst_host,
      std::function<void(common::Result<NetworkRecord>)> done);

  /// All records with the given destination (replica selection wants the
  /// bandwidth from every candidate source to one sink).
  void query_paths_to(
      const std::string& dst_host,
      std::function<void(common::Result<std::vector<NetworkRecord>>)> done);

  void publish_host(const HostRecord& record,
                    std::function<void(common::Status)> done);

  void query_host(const std::string& name,
                  std::function<void(common::Result<HostRecord>)> done);

  static directory::Dn network_dn(const std::string& src,
                                  const std::string& dst);
  static directory::Dn host_dn(const std::string& name);
  static NetworkRecord network_from_entry(const directory::Entry& entry);

 private:
  directory::DirectoryClient client_;
};

}  // namespace esg::mds
