// esg2_subsetting — the paper's §9 future work, demonstrated.
//
// A scientist at the SC demo floor wants the tropical temperature field
// for one El Niño winter out of a 10-year, 3-variable global dataset.
// ESG-I moves whole chunk files; ESG-II pushes the extraction to the data
// (the GridFTP ERET "ncx.subset" module) so only the region of interest
// crosses the WAN.  The example runs both ways, verifies the science is
// identical, and shows the wire savings.
#include <cstdio>

#include "climate/render.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"

using namespace esg;

int main() {
  std::printf("== ESG-II server-side subsetting demo ==\n\n");

  ::esg::esg::TestbedConfig cfg;
  cfg.grid = climate::GridSpec{90, 180};  // 2-degree global grid
  ::esg::esg::EsgTestbed testbed(cfg);

  ::esg::esg::DatasetSpec spec;
  spec.name = "pcmdi-b06-r4";
  spec.start_month = 0;
  spec.n_months = 120;  // a decade of monthly output
  spec.months_per_file = 12;
  spec.replica_hosts = {"sprite.llnl.gov", "dataportal.ncar.edu"};
  if (auto st = testbed.publish_dataset(spec); !st.ok()) {
    std::printf("publish failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  testbed.start_sensors(2);
  ::esg::esg::EsgClient client(testbed);

  ::esg::esg::AnalysisRequest req;
  req.dataset = spec.name;
  req.variable = "temperature";
  req.month_start = 59;  // Dec of year 5 .. Feb of year 6 (one DJF winter)
  req.month_end = 62;

  std::printf("request: %s, months %d..%d, tropical band only\n\n",
              req.variable.c_str(), req.month_start, req.month_end);

  // ESG-I: whole chunk files cross the network.
  auto whole = client.analyze_blocking(req);
  if (!whole.status.ok()) {
    std::printf("ESG-I analysis failed: %s\n",
                whole.status.error().to_string().c_str());
    return 1;
  }
  std::printf("ESG-I  (whole files):     %s over the WAN, %zu files\n",
              common::format_bytes(whole.transfer.total_bytes).c_str(),
              whole.transfer.files.size());

  // ESG-II: extraction at the data, with a tropical latitude box.
  req.server_side_subset = true;
  req.lat_box = {{-23.5, 23.5}};
  auto subset = client.analyze_blocking(req);
  if (!subset.status.ok()) {
    std::printf("ESG-II analysis failed: %s\n",
                subset.status.error().to_string().c_str());
    return 1;
  }
  std::printf("ESG-II (server subset):   %s over the WAN, %zu files\n",
              common::format_bytes(subset.transfer.total_bytes).c_str(),
              subset.transfer.files.size());
  std::printf("wire reduction: %.1fx\n\n",
              static_cast<double>(whole.transfer.total_bytes) /
                  static_cast<double>(subset.transfer.total_bytes));

  // The science agrees: compare the tropical rows of the ESG-I mean with
  // the ESG-II mean.
  const auto& g = whole.mean.grid();
  double max_diff = 0.0;
  int sub_i = 0;
  for (int i = 0; i < g.nlat; ++i) {
    if (g.lat(i) < -23.5 || g.lat(i) > 23.5) continue;
    for (int j = 0; j < g.nlon; ++j) {
      max_diff = std::max(max_diff, std::abs(whole.mean.at(0, i, j) -
                                             subset.mean.at(0, sub_i, j)));
    }
    ++sub_i;
  }
  std::printf("max |ESG-I - ESG-II| over the tropics: %.2e degC\n\n",
              max_diff);

  std::printf("tropical DJF mean temperature (ESG-II):\n%s\n",
              climate::render_ascii(subset.mean).c_str());
  if (climate::write_ppm(subset.mean, "esg2_tropics_djf.ppm").ok()) {
    std::printf("wrote esg2_tropics_djf.ppm\n");
  }
  return 0;
}
