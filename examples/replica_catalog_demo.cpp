// replica_catalog_demo — Figure 6, exactly.
//
// Builds the paper's example replica catalog: two logical collections of
// CO2 measurements; the 1998 collection has a *partial* replica at
// jupiter.isi.edu and a *complete* one at sprite.llnl.gov.  Then exercises
// the catalog the way the request manager does, and uses the replica
// manager to complete the partial location (third-party GridFTP copy +
// catalog registration).
#include <cstdio>

#include "directory/service.hpp"
#include "replica/manager.hpp"
#include "esg/testbed.hpp"

using namespace esg;

namespace {

void show_catalog(::esg::esg::EsgTestbed& testbed,
                  replica::ReplicaCatalog& catalog) {
  bool done = false;
  catalog.list_locations(
      "CO2 measurements 1998",
      [&](common::Result<std::vector<replica::LocationInfo>> r) {
        if (r) {
          for (const auto& loc : *r) {
            std::printf("  location %-14s host %-18s files:", loc.name.c_str(),
                        loc.hostname.c_str());
            for (const auto& f : loc.files) std::printf(" %s", f.c_str());
            std::printf("\n");
          }
        }
        done = true;
      });
  testbed.run_until_flag(done);
}

}  // namespace

int main() {
  std::printf("== replica catalog demo (Fig 6) ==\n\n");
  ::esg::esg::EsgTestbed testbed;
  auto catalog = testbed.make_replica_catalog();

  // Build the Figure 6 tree.
  int pending = 0;
  auto step = [&pending](common::Status st) {
    if (!st.ok()) {
      std::printf("catalog op failed: %s\n", st.error().to_string().c_str());
    }
    --pending;
  };
  const std::vector<std::string> files = {"jan.ncx", "feb.ncx", "mar.ncx"};
  ++pending;
  catalog.create_catalog(step);
  for (const char* coll : {"CO2 measurements 1998", "CO2 measurements 1999"}) {
    ++pending;
    catalog.create_collection(coll, step);
  }
  for (const auto& f : files) {
    ++pending;
    catalog.register_logical_file("CO2 measurements 1998", {f, 25'000'000},
                                  step);
  }
  replica::LocationInfo jupiter;
  jupiter.name = "jupiter-isi";
  jupiter.hostname = "jupiter.isi.edu";
  jupiter.path = "data/co2/1998";
  jupiter.files = {"jan.ncx"};  // partial, as in the figure
  replica::LocationInfo sprite;
  sprite.name = "sprite-llnl";
  sprite.hostname = "sprite.llnl.gov";
  sprite.path = "pcmdi/co2/1998";
  sprite.files = files;  // complete
  ++pending;
  catalog.register_location("CO2 measurements 1998", jupiter, step);
  ++pending;
  catalog.register_location("CO2 measurements 1998", sprite, step);
  testbed.simulation().run_while_pending([&] { return pending == 0; });

  // Back the complete location with actual bytes.
  auto* llnl = testbed.server("sprite.llnl.gov");
  auto* isi = testbed.server("jupiter.isi.edu");
  for (const auto& f : files) {
    (void)llnl->storage().put(
        storage::FileObject::synthetic("pcmdi/co2/1998/" + f, 25'000'000));
  }
  (void)isi->storage().put(
      storage::FileObject::synthetic("data/co2/1998/jan.ncx", 25'000'000));

  std::printf("initial catalog state:\n");
  show_catalog(testbed, catalog);

  // The request manager's question: where can I get feb.ncx?
  bool queried = false;
  catalog.find_replicas(
      "CO2 measurements 1998", "feb.ncx",
      [&](common::Result<std::vector<replica::Replica>> r) {
        std::printf("\nreplicas of feb.ncx:\n");
        if (r) {
          for (const auto& rep : *r) {
            std::printf("  %s\n", rep.url.to_string().c_str());
          }
        }
        queried = true;
      });
  testbed.run_until_flag(queried);

  // Complete the partial replica: third-party copies + registration.
  std::printf("\nreplicating missing files to jupiter-isi...\n");
  replica::ReplicaManager manager(catalog, testbed.ftp_client());
  bool replicated = false;
  gridftp::TransferOptions opts;
  opts.parallelism = 2;
  opts.buffer_size = 2 * common::kMiB;
  manager.replicate_collection(
      "CO2 measurements 1998", "sprite-llnl", "jupiter-isi", opts,
      [&](replica::ReplicateResult r) {
        if (r.status.ok()) {
          std::printf("copied %d files, %s\n", r.files_copied,
                      common::format_bytes(r.bytes_copied).c_str());
        } else {
          std::printf("replication failed: %s\n",
                      r.status.error().to_string().c_str());
        }
        replicated = true;
      });
  testbed.run_until_flag(replicated);

  std::printf("\nfinal catalog state (jupiter-isi now complete):\n");
  show_catalog(testbed, catalog);
  return 0;
}
