// esg-report: offline analysis of run manifests (DESIGN.md §9, §11).
//
// A RunManifest (written by the benches, or by any code calling
// obs::capture_manifest) carries the whole identity of a simulated run:
// seed, topology, fault-plan fingerprint, flight-recorder events, final
// metrics snapshot, headline bench numbers — and, when the run streamed
// telemetry, the alert timeline and condensed per-series history.  This
// tool retells that story without re-running anything:
//
//   esg-report summary       MANIFEST.json
//   esg-report postmortem    MANIFEST.json [file...]
//   esg-report slo           MANIFEST.json 'rule' ['rule'...]
//   esg-report timeline      MANIFEST.json [series-substr...]
//   esg-report alerts        MANIFEST.json
//   esg-report critical-path MANIFEST.json [file...]
//   esg-report flame         MANIFEST.json [file] [--out FILE]
//   esg-report diff          BASELINE.json CURRENT.json [--tolerance F]
//                            [--ignore SUBSTR]... [--exact]
//
// `critical-path` renders the time-where table plus each file's critical
// path from the manifest's profile section (no file arguments = the tail
// exemplars' files).  `flame` emits collapsed stacks (flamegraph.pl /
// speedscope format) for the whole run — or, with a file argument, just
// that request's critical path — on stdout or into --out.
//
// `postmortem` with no file argument reports every failed or degraded
// transfer.  `slo` rules look like "rm_files_failed_total == 0" or
// "p99(rm_file_duration_seconds) < 300".  `timeline` renders the retained
// rollup history of each telemetry series (filtered by name substring) as
// per-bucket rows and a sparkline; `alerts` prints every firing with its
// root-cause correlation against the injected fault events.  `diff` is the
// regression watchdog: identity fields and the alert timeline compare
// exactly, metrics and bench values under the tolerance; any drift (or
// failed SLO) exits nonzero so the bench gate can fail a build.
//
// Every subcommand validates its arguments the same way: a bad subcommand,
// a missing operand or an unreadable manifest prints a one-line error plus
// the usage text and exits 2 (analysis findings — failed SLOs, drift —
// exit 1; only a clean run exits 0).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/alert.hpp"
#include "obs/flame.hpp"
#include "obs/manifest.hpp"
#include "obs/postmortem.hpp"
#include "obs/slo.hpp"

namespace {

const char kUsage[] =
    "usage:\n"
    "  esg-report summary       MANIFEST.json\n"
    "  esg-report postmortem    MANIFEST.json [file...]\n"
    "  esg-report slo           MANIFEST.json RULE [RULE...]\n"
    "  esg-report timeline      MANIFEST.json [series-substr...]\n"
    "  esg-report alerts        MANIFEST.json\n"
    "  esg-report critical-path MANIFEST.json [file...]\n"
    "  esg-report flame         MANIFEST.json [file] [--out FILE]\n"
    "  esg-report diff          BASELINE.json CURRENT.json [--tolerance F]\n"
    "                           [--ignore SUBSTR]... [--exact]\n";

int usage(const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "esg-report: %s\n", error.c_str());
  std::fputs(kUsage, stderr);
  return 2;
}

esg::obs::RunManifest load_or_die(const std::string& path) {
  auto m = esg::obs::load_manifest(path);
  if (!m) {
    std::fprintf(stderr, "esg-report: %s: %s\n", path.c_str(),
                 m.error().to_string().c_str());
    std::exit(2);
  }
  return std::move(*m);
}

int cmd_summary(const std::string& path) {
  const auto m = load_or_die(path);
  std::printf("manifest   %s\n", m.name.c_str());
  std::printf("seed       %llu\n", static_cast<unsigned long long>(m.seed));
  std::printf("topology   %s\n", m.topology.c_str());
  std::printf("faults     timeline_hash=%016llx\n",
              static_cast<unsigned long long>(m.fault_timeline_hash));
  std::printf("flight     digest=%016llx recorded=%llu evicted=%llu\n",
              static_cast<unsigned long long>(m.flight_digest),
              static_cast<unsigned long long>(m.events_recorded),
              static_cast<unsigned long long>(m.events_evicted));
  std::printf("metrics    %zu series\n", m.metrics.entries.size());
  std::printf("telemetry  %zu series, %zu alerts\n", m.series.size(),
              m.alerts.size());
  for (const auto& b : m.bench) {
    std::printf("bench      %s = %g\n", b.name.c_str(), b.value);
  }
  const auto degraded = esg::obs::degraded_files(m.events);
  std::printf("transfers  %zu tracked, %zu failed/degraded\n",
              esg::obs::postmortem_files(m.events).size(), degraded.size());
  for (const auto& f : degraded) std::printf("  degraded: %s\n", f.c_str());
  if (m.has_profile) {
    std::printf("profile    %s: %llu files, total %.3fs\n",
                m.profile.root_span.c_str(),
                static_cast<unsigned long long>(m.profile.files_profiled),
                esg::common::to_seconds(m.profile.total));
  }
  // Dropped spans silently invalidate profiles and traces — shout.
  double dropped = 0.0;
  for (const auto& e : m.metrics.entries) {
    if (e.name == "obs_trace_dropped") dropped = std::max(dropped, e.value);
  }
  if (m.has_profile) {
    dropped = std::max(dropped, static_cast<double>(m.profile.dropped_spans));
  }
  if (dropped > 0) {
    std::printf(
        "\n*** WARNING: %.0f trace spans were DROPPED (tracer buffer full) "
        "***\n*** traces, profiles and flame exports from this run are "
        "incomplete — raise Tracer::set_capacity ***\n",
        dropped);
  }
  return 0;
}

int cmd_critical_path(const std::string& path,
                      std::vector<std::string> files) {
  const auto m = load_or_die(path);
  if (!m.has_profile) {
    std::fprintf(stderr, "esg-report: %s has no profile section\n",
                 path.c_str());
    return 2;
  }
  std::fputs(m.profile.render().c_str(), stdout);
  if (files.empty()) {
    // Default to the tail exemplars' files, slowest categories first.
    for (const auto& ex : m.profile.exemplars) {
      if (std::find(files.begin(), files.end(), ex.file) == files.end()) {
        files.push_back(ex.file);
      }
    }
  }
  int missing = 0;
  for (const auto& f : files) {
    const esg::obs::FileProfile* fp = m.profile.find(f);
    if (fp == nullptr) {
      std::printf("\n%s: no per-file profile row in the manifest "
                  "(condensed to exemplars?)\n",
                  f.c_str());
      ++missing;
      continue;
    }
    std::fputs("\n", stdout);
    std::fputs(esg::obs::render_critical_path(*fp).c_str(), stdout);
  }
  return missing == 0 ? 0 : 1;
}

int cmd_flame(const std::vector<std::string>& args) {
  std::string path, file, out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) return usage("--out needs a value");
      out_path = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage("unknown flame option '" + args[i] + "'");
    } else if (path.empty()) {
      path = args[i];
    } else if (file.empty()) {
      file = args[i];
    } else {
      return usage("flame takes one manifest and at most one file");
    }
  }
  if (path.empty()) return usage("flame needs a manifest");
  const auto m = load_or_die(path);
  if (!m.has_profile) {
    std::fprintf(stderr, "esg-report: %s has no profile section\n",
                 path.c_str());
    return 2;
  }
  std::string flame;
  if (file.empty()) {
    flame = esg::obs::to_collapsed_stacks(m.profile);
  } else {
    const esg::obs::FileProfile* fp = m.profile.find(file);
    if (fp == nullptr) {
      std::fprintf(stderr,
                   "esg-report: no per-file profile row for '%s' in %s\n",
                   file.c_str(), path.c_str());
      return 1;
    }
    flame = esg::obs::to_collapsed_stacks(*fp, m.profile.root_span);
  }
  if (out_path.empty()) {
    std::fputs(flame.c_str(), stdout);
    return 0;
  }
  if (!esg::obs::write_file(out_path, flame)) {
    std::fprintf(stderr, "esg-report: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("wrote collapsed stacks to %s\n", out_path.c_str());
  return 0;
}

int cmd_postmortem(const std::string& path, std::vector<std::string> files) {
  const auto m = load_or_die(path);
  if (files.empty()) files = esg::obs::degraded_files(m.events);
  if (files.empty()) {
    std::printf("no failed or degraded transfers in %s\n", path.c_str());
    return 0;
  }
  for (const auto& f : files) {
    const auto pm = esg::obs::build_postmortem(m, f);
    std::fputs(pm.render().c_str(), stdout);
    std::fputs("\n", stdout);
  }
  return 0;
}

int cmd_slo(const std::string& path, const std::vector<std::string>& exprs) {
  const auto m = load_or_die(path);
  std::vector<esg::obs::SloRule> rules;
  for (const auto& e : exprs) {
    auto rule = esg::obs::parse_slo_rule(e);
    if (!rule) {
      std::fprintf(stderr, "esg-report: bad rule '%s': %s\n", e.c_str(),
                   rule.error().to_string().c_str());
      return 2;
    }
    rules.push_back(std::move(*rule));
  }
  const auto report = esg::obs::evaluate_slos(rules, m.metrics);
  std::fputs(report.render().c_str(), stdout);
  return report.all_pass ? 0 : 1;
}

// One telemetry series: life aggregates, then the retained rollup buckets
// as rows plus a min-max-scaled sparkline of the bucket means.
void print_series(const esg::obs::SeriesSummary& s) {
  std::string label = s.name;
  if (!s.labels.empty()) {
    label += "{";
    for (std::size_t i = 0; i < s.labels.size(); ++i) {
      if (i) label += ",";
      label += s.labels[i].first + "=" + s.labels[i].second;
    }
    label += "}";
  }
  std::printf("%s\n", label.c_str());
  std::printf("  life: %llu samples, min %g, max %g, mean %g\n",
              static_cast<unsigned long long>(s.samples), s.min, s.max,
              s.samples ? s.sum / static_cast<double>(s.samples) : 0.0);
  if (s.points.empty()) return;
  double lo = s.points.front().mean();
  double hi = lo;
  for (const auto& p : s.points) {
    lo = std::min(lo, p.mean());
    hi = std::max(hi, p.mean());
  }
  static const char kRamp[] = " _.-=+*#%@";
  std::string spark;
  for (const auto& p : s.points) {
    const double f = hi > lo ? (p.mean() - lo) / (hi - lo) : 0.5;
    spark += kRamp[std::max(0, std::min(9, static_cast<int>(f * 9.0 + 0.5)))];
  }
  std::printf("  |%s|  (%g .. %g)\n", spark.c_str(), lo, hi);
  for (const auto& p : s.points) {
    std::printf("  [%8s] min %-12g max %-12g mean %-12g n=%llu\n",
                esg::common::format_time(p.start).c_str(), p.min, p.max,
                p.mean(), static_cast<unsigned long long>(p.count));
  }
}

int cmd_timeline(const std::string& path,
                 const std::vector<std::string>& filters) {
  const auto m = load_or_die(path);
  std::size_t shown = 0;
  for (const auto& s : m.series) {
    if (!filters.empty() &&
        std::none_of(filters.begin(), filters.end(), [&](const auto& f) {
          return s.name.find(f) != std::string::npos;
        })) {
      continue;
    }
    print_series(s);
    ++shown;
  }
  if (shown == 0) {
    std::printf("no telemetry series%s in %s\n",
                filters.empty() ? "" : " matching the filters", path.c_str());
  }
  if (!m.alerts.empty()) {
    std::printf("\nalert timeline:\n%s",
                esg::obs::render_alerts(m.alerts).c_str());
  }
  return 0;
}

int cmd_alerts(const std::string& path) {
  const auto m = load_or_die(path);
  if (m.alerts.empty()) {
    std::printf("no alerts fired in %s\n", path.c_str());
    return 0;
  }
  std::fputs(esg::obs::render_alerts(m.alerts).c_str(), stdout);
  std::printf("\nroot-cause correlation:\n");
  for (const auto& a : m.alerts) {
    const auto* fault = esg::obs::correlate_alert(m.events, a);
    if (fault != nullptr) {
      std::printf("  %-24s <- %s %s (%s, at %s)\n", a.rule.c_str(),
                  fault->name.c_str(), fault->target.c_str(),
                  std::string(fault->attr("description")).c_str(),
                  esg::common::format_time(fault->at).c_str());
    } else {
      std::printf("  %-24s <- no injected fault in the recency window\n",
                  a.rule.c_str());
    }
  }
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::string baseline_path, current_path;
  esg::obs::DriftTolerance tolerance;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--tolerance") {
      if (i + 1 >= args.size()) return usage("--tolerance needs a value");
      tolerance.relative = std::atof(args[++i].c_str());
    } else if (a == "--ignore") {
      if (i + 1 >= args.size()) return usage("--ignore needs a value");
      tolerance.ignore.push_back(args[++i]);
    } else if (a == "--exact") {
      tolerance.relative = 0.0;
      tolerance.absolute = 0.0;
    } else if (!a.empty() && a[0] == '-') {
      return usage("unknown diff option '" + a + "'");
    } else if (baseline_path.empty()) {
      baseline_path = a;
    } else if (current_path.empty()) {
      current_path = a;
    } else {
      return usage("diff takes exactly two manifests");
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    return usage("diff needs BASELINE.json and CURRENT.json");
  }
  const auto baseline = load_or_die(baseline_path);
  const auto current = load_or_die(current_path);
  const auto report = esg::obs::diff_manifests(baseline, current, tolerance);
  std::fputs(report.render().c_str(), stdout);
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("no subcommand given");
  const std::string cmd = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (cmd == "summary") {
    if (rest.size() != 1) return usage("summary takes exactly one manifest");
    return cmd_summary(rest[0]);
  }
  if (cmd == "postmortem") {
    if (rest.empty()) return usage("postmortem needs a manifest");
    const std::string path = rest.front();
    rest.erase(rest.begin());
    return cmd_postmortem(path, std::move(rest));
  }
  if (cmd == "slo") {
    if (rest.size() < 2) return usage("slo needs a manifest and a rule");
    const std::string path = rest.front();
    rest.erase(rest.begin());
    return cmd_slo(path, rest);
  }
  if (cmd == "timeline") {
    if (rest.empty()) return usage("timeline needs a manifest");
    const std::string path = rest.front();
    rest.erase(rest.begin());
    return cmd_timeline(path, rest);
  }
  if (cmd == "alerts") {
    if (rest.size() != 1) return usage("alerts takes exactly one manifest");
    return cmd_alerts(rest[0]);
  }
  if (cmd == "critical-path") {
    if (rest.empty()) return usage("critical-path needs a manifest");
    const std::string path = rest.front();
    rest.erase(rest.begin());
    return cmd_critical_path(path, std::move(rest));
  }
  if (cmd == "flame") return cmd_flame(rest);
  if (cmd == "diff") return cmd_diff(rest);
  return usage("unknown subcommand '" + cmd + "'");
}
