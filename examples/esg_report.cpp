// esg-report: offline analysis of run manifests (DESIGN.md §9).
//
// A RunManifest (written by the benches, or by any code calling
// obs::capture_manifest) carries the whole identity of a simulated run:
// seed, topology, fault-plan fingerprint, flight-recorder events, final
// metrics snapshot and headline bench numbers.  This tool retells that
// story without re-running anything:
//
//   esg-report summary    MANIFEST.json
//   esg-report postmortem MANIFEST.json [file...]
//   esg-report slo        MANIFEST.json 'rule' ['rule'...]
//   esg-report diff       BASELINE.json CURRENT.json [--tolerance F]
//                         [--ignore SUBSTR]... [--exact]
//
// `postmortem` with no file argument reports every failed or degraded
// transfer.  `slo` rules look like "rm_files_failed_total == 0" or
// "p99(rm_file_duration_seconds) < 300".  `diff` is the regression
// watchdog: identity fields compare exactly, metrics and bench values
// under the tolerance; any drift (or failed SLO) exits nonzero so the
// bench gate can fail a build.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/postmortem.hpp"
#include "obs/slo.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  esg-report summary    MANIFEST.json\n"
      "  esg-report postmortem MANIFEST.json [file...]\n"
      "  esg-report slo        MANIFEST.json RULE [RULE...]\n"
      "  esg-report diff       BASELINE.json CURRENT.json [--tolerance F]\n"
      "                        [--ignore SUBSTR]... [--exact]\n");
  return 2;
}

esg::obs::RunManifest load_or_die(const std::string& path) {
  auto m = esg::obs::load_manifest(path);
  if (!m) {
    std::fprintf(stderr, "esg-report: %s: %s\n", path.c_str(),
                 m.error().to_string().c_str());
    std::exit(2);
  }
  return std::move(*m);
}

int cmd_summary(const std::string& path) {
  const auto m = load_or_die(path);
  std::printf("manifest   %s\n", m.name.c_str());
  std::printf("seed       %llu\n", static_cast<unsigned long long>(m.seed));
  std::printf("topology   %s\n", m.topology.c_str());
  std::printf("faults     timeline_hash=%016llx\n",
              static_cast<unsigned long long>(m.fault_timeline_hash));
  std::printf("flight     digest=%016llx recorded=%llu evicted=%llu\n",
              static_cast<unsigned long long>(m.flight_digest),
              static_cast<unsigned long long>(m.events_recorded),
              static_cast<unsigned long long>(m.events_evicted));
  std::printf("metrics    %zu series\n", m.metrics.entries.size());
  for (const auto& b : m.bench) {
    std::printf("bench      %s = %g\n", b.name.c_str(), b.value);
  }
  const auto degraded = esg::obs::degraded_files(m.events);
  std::printf("transfers  %zu tracked, %zu failed/degraded\n",
              esg::obs::postmortem_files(m.events).size(), degraded.size());
  for (const auto& f : degraded) std::printf("  degraded: %s\n", f.c_str());
  return 0;
}

int cmd_postmortem(const std::string& path, std::vector<std::string> files) {
  const auto m = load_or_die(path);
  if (files.empty()) files = esg::obs::degraded_files(m.events);
  if (files.empty()) {
    std::printf("no failed or degraded transfers in %s\n", path.c_str());
    return 0;
  }
  for (const auto& f : files) {
    const auto pm = esg::obs::build_postmortem(m, f);
    std::fputs(pm.render().c_str(), stdout);
    std::fputs("\n", stdout);
  }
  return 0;
}

int cmd_slo(const std::string& path, const std::vector<std::string>& exprs) {
  const auto m = load_or_die(path);
  std::vector<esg::obs::SloRule> rules;
  for (const auto& e : exprs) {
    auto rule = esg::obs::parse_slo_rule(e);
    if (!rule) {
      std::fprintf(stderr, "esg-report: bad rule '%s': %s\n", e.c_str(),
                   rule.error().to_string().c_str());
      return 2;
    }
    rules.push_back(std::move(*rule));
  }
  const auto report = esg::obs::evaluate_slos(rules, m.metrics);
  std::fputs(report.render().c_str(), stdout);
  return report.all_pass ? 0 : 1;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::string baseline_path, current_path;
  esg::obs::DriftTolerance tolerance;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--tolerance" && i + 1 < args.size()) {
      tolerance.relative = std::atof(args[++i].c_str());
    } else if (a == "--ignore" && i + 1 < args.size()) {
      tolerance.ignore.push_back(args[++i]);
    } else if (a == "--exact") {
      tolerance.relative = 0.0;
      tolerance.absolute = 0.0;
    } else if (baseline_path.empty()) {
      baseline_path = a;
    } else if (current_path.empty()) {
      current_path = a;
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage();
  const auto baseline = load_or_die(baseline_path);
  const auto current = load_or_die(current_path);
  const auto report = esg::obs::diff_manifests(baseline, current, tolerance);
  std::fputs(report.render().c_str(), stdout);
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (cmd == "summary" && rest.size() == 1) return cmd_summary(rest[0]);
  if (cmd == "postmortem") {
    const std::string path = rest.front();
    rest.erase(rest.begin());
    return cmd_postmortem(path, std::move(rest));
  }
  if (cmd == "slo" && rest.size() >= 2) {
    const std::string path = rest.front();
    rest.erase(rest.begin());
    return cmd_slo(path, rest);
  }
  if (cmd == "diff") return cmd_diff(rest);
  return usage();
}
