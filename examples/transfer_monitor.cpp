// transfer_monitor — Figure 4, live.
//
// "a transfer-monitoring tool was developed to show the status of the
// request transfer dynamically ... The top part of the screen shows for
// each file the amount transferred relative to the total file size.  The
// middle part shows which replica locations have been selected based on
// the bandwidth and latency measurements provided by NWS.  At the bottom,
// messages about the initiation of replica selection and file transfer."
//
// This example submits a six-file request, prints monitor frames every few
// simulated seconds, and injects a mid-transfer outage at the preferred
// site so the alternate-replica failover shows up in the message log.
#include <cstdio>

#include "esg/client.hpp"
#include "esg/testbed.hpp"
#include "obs/alert.hpp"
#include "obs/export.hpp"

using namespace esg;
using common::kSecond;

int main() {
  std::printf("== transfer monitor demo (Fig 4) ==\n");

  ::esg::esg::TestbedConfig cfg;
  cfg.grid = climate::GridSpec{180, 360};  // ~9 MB chunks, visible progress
  ::esg::esg::EsgTestbed testbed(cfg);

  ::esg::esg::DatasetSpec spec;
  spec.name = "pcmdi-amip-r3";
  spec.start_month = 24;
  spec.n_months = 72;
  spec.months_per_file = 12;
  spec.replica_hosts = {"pdsf.lbl.gov", "jupiter.isi.edu"};
  if (auto st = testbed.publish_dataset(spec); !st.ok()) {
    std::printf("publish failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  // Congest the coastal OC-48 toward Dallas so ISI is clearly the
  // preferred replica, then take ISI down mid-request to show failover.
  auto* nton = testbed.network().find_link("nton");
  testbed.network().fluid().set_background(nton->backward(),
                                           common::gbps(2.35));
  auto* isi_uplink = testbed.network().find_link("isi-uplink");
  testbed.network().fluid().set_background(isi_uplink->backward(),
                                           common::mbps(850));
  testbed.start_sensors(2);

  // Six files, fetched concurrently by the request manager.
  std::vector<rm::FileRequest> files;
  metadata::DatasetInfo info;
  info.name = spec.name;
  info.start_month = spec.start_month;
  info.n_months = spec.n_months;
  info.months_per_file = spec.months_per_file;
  for (int c = 0; c < info.chunk_count(); ++c) {
    files.push_back(rm::FileRequest{spec.name, info.file_name(c)});
  }

  rm::RequestOptions options;
  options.transfer.parallelism = 2;
  options.transfer.buffer_size = 2 * common::kMiB;
  options.transfer.stall_timeout = 3 * kSecond;
  options.reliability.retry_backoff = 2 * kSecond;
  options.poll_interval = kSecond;

  // Streaming telemetry + online alerting: the pane below each frame shows
  // burn-rate pages (failed attempts burning the 99% success budget) and
  // goodput anomalies as they fire — Fig 4 grown a during-run watchdog.
  obs::BurnRateRule burn;
  burn.name = "transfer-failure-burn";
  burn.bad_metric = "gridftp_transfers_failed_total";
  burn.good_metric = "gridftp_transfers_started_total";
  burn.objective = 0.99;
  burn.threshold = 2.0;
  burn.long_window = 20 * kSecond;
  burn.short_window = 5 * kSecond;
  testbed.simulation().alerts().add(burn);
  obs::AnomalyRule cliff;
  cliff.name = "goodput-cliff";
  cliff.metric = "gridftp_channel_bytes_total";
  cliff.rate_window = 5 * kSecond;
  testbed.simulation().alerts().add(cliff);
  testbed.simulation().start_telemetry(kSecond);

  bool done = false;
  rm::RequestResult result;
  testbed.request_manager().submit(files, options, [&](rm::RequestResult r) {
    result = std::move(r);
    done = true;
  });

  // Kill the preferred site mid-request; the reliability plugin reroutes.
  testbed.simulation().schedule_at(
      testbed.simulation().now() + 1 * kSecond, [&] {
        std::printf("\n*** injecting outage: jupiter.isi.edu goes down ***\n");
        testbed.network().set_host_down(
            *testbed.network().find_host("jupiter.isi.edu"), true);
      });
  testbed.simulation().schedule_at(
      testbed.simulation().now() + 30 * kSecond, [&] {
        std::printf("\n*** jupiter.isi.edu restored ***\n");
        testbed.network().set_host_down(
            *testbed.network().find_host("jupiter.isi.edu"), false);
      });

  // Print a monitor frame every 4 simulated seconds until done.
  while (!done) {
    const auto next = testbed.simulation().now() + 4 * kSecond;
    testbed.simulation().run_while_pending(
        [&] { return done || testbed.simulation().now() >= next; });
    // Render from a registry snapshot so the frame carries the live
    // queue-depth / cache / per-server byte counters (Fig 4 + metrics pane).
    const auto snap = testbed.simulation().metrics().snapshot(
        testbed.simulation().now());
    std::printf("\n%s",
                testbed.monitor().render(testbed.simulation().now(),
                                         snap).c_str());
    std::printf("%s",
                testbed.simulation().alerts().render(
                    testbed.simulation().now()).c_str());
    if (testbed.simulation().pending_events() == 0) break;
  }

  std::printf("\n=== request complete ===\n");
  for (const auto& f : result.files) {
    std::printf("  %-28s %-8s %s from %s (attempts %d, switches %d)\n",
                f.request.filename.c_str(),
                f.status.ok() ? "OK" : "FAILED",
                common::format_bytes(f.bytes).c_str(), f.chosen_host.c_str(),
                f.attempts, f.replica_switches);
  }
  std::printf("total: %s in %s (%s aggregate)\n",
              common::format_bytes(result.total_bytes).c_str(),
              common::format_time(result.finished - result.started).c_str(),
              common::format_rate(result.aggregate_rate()).c_str());

  // Prometheus-style dump of everything the run recorded.
  const std::string prom = obs::to_prometheus_text(
      testbed.simulation().metrics().snapshot(testbed.simulation().now()));
  if (std::FILE* f = std::fopen("transfer_monitor_metrics.prom", "w")) {
    std::fwrite(prom.data(), 1, prom.size(), f);
    std::fclose(f);
    std::printf("wrote transfer_monitor_metrics.prom\n");
  }
  return 0;
}
