// esg-explore: the fault-interleaving explorer's command line (DESIGN.md
// §12).
//
//   esg-explore sweep  [--budget N] [--seed N] [--corpus DIR] [--stride N]
//                      [--campaign] [--quiet]
//   esg-explore replay (SCHEDULE.json | --inline JSON) [--campaign]
//   esg-explore shrink (SCHEDULE.json | --inline JSON) [--out DIR]
//                      [--max-runs N]
//   esg-explore corpus DIR
//
// `sweep` enumerates fault schedules over the canonical world (singles ×
// timing grid, ordered pairs, seeded random fill) and checks the invariant
// suite on each; violations print a full repro (schedule JSON + replay
// command) and, with --corpus, are shrunk and saved as regression seeds.
// `replay` re-runs one schedule — the file form takes a corpus seed, the
// --inline form takes the exact JSON a violation message printed — with
// the deterministic-replay invariant always on.  `shrink` minimizes a
// violating schedule via delta debugging.  `corpus` replays every checked
// -in seed and expects the whole suite to hold.
//
// Exit codes follow esg-report: 0 clean, 1 invariant findings, 2 usage or
// unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/explore/explorer.hpp"

namespace {

using namespace esg;

const char kUsage[] =
    "usage:\n"
    "  esg-explore sweep  [--budget N] [--seed N] [--corpus DIR]\n"
    "                     [--stride N] [--campaign] [--quiet]\n"
    "  esg-explore replay (SCHEDULE.json | --inline JSON) [--campaign]\n"
    "  esg-explore shrink (SCHEDULE.json | --inline JSON) [--out DIR]\n"
    "                     [--max-runs N]\n"
    "  esg-explore corpus DIR\n";

int usage(const std::string& error) {
  if (!error.empty()) {
    std::fprintf(stderr, "esg-explore: %s\n", error.c_str());
  }
  std::fputs(kUsage, stderr);
  return 2;
}

/// Parse the (SCHEDULE.json | --inline JSON) operand shared by replay and
/// shrink.  Exits 2 on unreadable/unparsable input.
explore::FaultSchedule load_schedule(const std::vector<std::string>& args,
                                     std::size_t& i) {
  std::string text;
  std::string origin;
  if (args[i] == "--inline") {
    if (i + 1 >= args.size()) {
      std::exit(usage("--inline needs the schedule JSON"));
    }
    origin = "--inline";
    text = args[++i];
  } else {
    origin = args[i];
    auto file = obs::read_file(args[i]);
    if (!file) {
      std::fprintf(stderr, "esg-explore: %s: %s\n", origin.c_str(),
                   file.error().to_string().c_str());
      std::exit(2);
    }
    text = file.value();
  }
  ++i;
  auto sched = explore::FaultSchedule::from_json(text);
  if (!sched) {
    std::fprintf(stderr, "esg-explore: %s: %s\n", origin.c_str(),
                 sched.error().to_string().c_str());
    std::exit(2);
  }
  return std::move(sched.value());
}

int cmd_sweep(const std::vector<std::string>& args) {
  explore::SweepConfig config;
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) std::exit(usage(a + " needs a value"));
      return args[++i];
    };
    if (a == "--budget") {
      config.enumeration.budget = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--seed") {
      config.enumeration.sim_seed =
          std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--corpus") {
      config.corpus_dir = next();
    } else if (a == "--stride") {
      config.determinism_stride =
          std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--campaign") {
      config.world.workload = explore::Workload::campaign;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      return usage("unknown sweep option '" + a + "'");
    }
  }
  if (!quiet) {
    config.progress = [](const std::string& line) {
      std::printf("  %s\n", line.c_str());
    };
  }

  const auto summary = explore::run_sweep(config);
  std::printf(
      "sweep: %zu schedules, %zu invariants checked, %zu violation(s), "
      "%zu seed(s) written\n",
      summary.schedules_run, summary.invariants_checked, summary.violations,
      summary.seeds_written);
  std::printf("schedules_hash=%016llx outcome_digest=%016llx\n",
              static_cast<unsigned long long>(summary.schedules_hash),
              static_cast<unsigned long long>(summary.outcome_digest));
  for (const auto& line : summary.violation_log) {
    std::fputs(line.c_str(), stdout);
  }
  return summary.violations == 0 ? 0 : 1;
}

int cmd_replay(const std::vector<std::string>& args) {
  if (args.empty()) return usage("replay needs a schedule");
  std::size_t i = 0;
  const auto schedule = load_schedule(args, i);
  explore::InvariantOptions opts;
  opts.check_determinism = true;
  for (; i < args.size(); ++i) {
    if (args[i] == "--campaign") {
      opts.world.workload = explore::Workload::campaign;
    } else {
      return usage("unknown replay option '" + args[i] + "'");
    }
  }

  const auto result = explore::check_schedule(schedule, opts);
  std::printf(
      "schedule %s: %zu fault(s), %d invariant(s) checked, "
      "completed %d/%d\n",
      schedule.hash_hex().c_str(), schedule.faults.size(),
      result.invariants_checked, result.run.completed,
      result.run.files_requested);
  if (result.violations.empty()) {
    std::printf("all invariants hold\n");
    return 0;
  }
  for (const auto& v : result.violations) {
    std::fputs(v.render().c_str(), stdout);
  }
  return 1;
}

int cmd_shrink(const std::vector<std::string>& args) {
  if (args.empty()) return usage("shrink needs a schedule");
  std::size_t i = 0;
  const auto schedule = load_schedule(args, i);
  std::string out_dir;
  explore::ShrinkOptions shrink;
  for (; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) std::exit(usage(a + " needs a value"));
      return args[++i];
    };
    if (a == "--out") {
      out_dir = next();
    } else if (a == "--max-runs") {
      shrink.max_runs = std::atoi(next().c_str());
    } else {
      return usage("unknown shrink option '" + a + "'");
    }
  }

  // Pin the oracle to the first invariant the input violates, so the
  // minimal schedule reproduces that failure class.
  explore::InvariantOptions opts;
  auto first = explore::check_schedule(schedule, opts);
  if (first.violations.empty()) {
    std::printf("schedule %s violates no invariant; nothing to shrink\n",
                schedule.hash_hex().c_str());
    return 0;
  }
  const std::string invariant = first.violations.front().invariant;
  explore::Oracle oracle = [&](const explore::FaultSchedule& candidate) {
    auto check = explore::check_schedule(candidate, opts);
    for (const auto& v : check.violations) {
      if (v.invariant == invariant) return true;
    }
    return false;
  };

  const auto result = explore::shrink_schedule(schedule, oracle, shrink);
  std::printf("shrunk %zu -> %zu fault(s) in %d oracle run(s) [%s]\n",
              result.original_faults, result.minimal.faults.size(),
              result.oracle_runs, invariant.c_str());
  std::printf("%s\n", result.minimal.to_json().c_str());
  std::printf("replay: %s\n",
              explore::replay_command(result.minimal).c_str());
  if (!out_dir.empty()) {
    auto saved = explore::save_seed(out_dir, result.minimal);
    if (!saved) {
      std::fprintf(stderr, "esg-explore: %s\n",
                   saved.error().to_string().c_str());
      return 2;
    }
    std::printf("seed saved: %s\n", saved.value().c_str());
  }
  return 1;  // the input did violate — same convention as replay
}

int cmd_corpus(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage("corpus needs exactly one directory");
  auto replay = explore::replay_corpus(args[0]);
  if (!replay) {
    std::fprintf(stderr, "esg-explore: %s\n",
                 replay.error().to_string().c_str());
    return 2;
  }
  std::printf("corpus %s: %zu seed(s), %zu failing\n", args[0].c_str(),
              replay.value().seeds, replay.value().failed);
  for (const auto& v : replay.value().violations) {
    std::fputs(v.render().c_str(), stdout);
  }
  return replay.value().failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing subcommand");
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "replay") return cmd_replay(args);
  if (cmd == "shrink") return cmd_shrink(args);
  if (cmd == "corpus") return cmd_corpus(args);
  return usage("unknown subcommand '" + cmd + "'");
}
