// climate_analysis — the Figure 3 scenario.
//
// "Visualization of Climate Data.  Shown are Temperature (Color) and Clouds
// and Terrain (in 3D)."  This example runs the full interactive-analysis
// pipeline for three variables over two simulated years, computes seasonal
// climatologies and anomalies on the client (as CDAT does), and writes PPM
// images — the headless stand-ins for the VCDAT renderings.
#include <cstdio>

#include "climate/analysis.hpp"
#include "climate/render.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"

using namespace esg;

int main() {
  std::printf("== climate analysis (Fig 3 scenario) ==\n\n");

  ::esg::esg::TestbedConfig cfg;
  cfg.grid = climate::GridSpec{36, 72};
  ::esg::esg::EsgTestbed testbed(cfg);

  ::esg::esg::DatasetSpec spec;
  spec.name = "pcmdi-coupled-r2";
  spec.start_month = 36;
  spec.n_months = 24;
  spec.months_per_file = 12;
  spec.replica_hosts = {"sprite.llnl.gov", "jupiter.isi.edu",
                        "dataportal.ncar.edu"};
  if (auto st = testbed.publish_dataset(spec); !st.ok()) {
    std::printf("publish failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  testbed.start_sensors(2);
  ::esg::esg::EsgClient client(testbed);

  for (const std::string variable :
       {"temperature", "precipitation", "cloud_fraction"}) {
    ::esg::esg::AnalysisRequest request;
    request.dataset = spec.name;
    request.variable = variable;
    request.month_start = 36;
    request.month_end = 60;
    auto result = client.analyze_blocking(request);
    if (!result.status.ok()) {
      std::printf("%s: analysis failed: %s\n", variable.c_str(),
                  result.status.error().to_string().c_str());
      return 1;
    }

    std::printf("--- %s (%d months fetched, %s moved) ---\n",
                variable.c_str(), result.field.ntime(),
                common::format_bytes(result.transfer.total_bytes).c_str());

    // Climatology + variability, CDAT-style, on the client.
    const auto series = climate::global_mean_series(result.field);
    double lo = series[0], hi = series[0];
    for (double v : series) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    std::printf("global mean range over 24 months: %.2f .. %.2f %s\n", lo,
                hi, result.field.units().c_str());

    const auto anomalies = climate::anomaly(result.field);
    const auto anomaly_stats = climate::field_stats(anomalies);
    std::printf("anomaly stddev: %.2f %s\n", anomaly_stats.stddev,
                result.field.units().c_str());

    const std::string ppm = "esg_" + variable + "_mean.ppm";
    if (climate::write_ppm(result.mean, ppm).ok()) {
      std::printf("wrote %s (open with any PPM viewer)\n", ppm.c_str());
    }
    std::printf("%s\n", climate::render_ascii(result.mean).c_str());
  }

  // Cross-variable analysis: where do temperature and cloud cover move
  // together?  (Both fetches hit the local chunk files via warm channels.)
  {
    ::esg::esg::AnalysisRequest t_req;
    t_req.dataset = spec.name;
    t_req.variable = "temperature";
    t_req.month_start = 36;
    t_req.month_end = 60;
    ::esg::esg::AnalysisRequest c_req = t_req;
    c_req.variable = "cloud_fraction";
    auto t_res = client.analyze_blocking(t_req);
    auto c_res = client.analyze_blocking(c_req);
    if (t_res.status.ok() && c_res.status.ok()) {
      auto corr = climate::correlation(t_res.field, c_res.field);
      if (corr.ok()) {
        auto stats = climate::field_stats(*corr);
        std::printf(
            "temperature-cloud correlation: range [%.2f, %.2f], mean %.2f\n\n",
            stats.min, stats.max, stats.mean);
      }
    }
  }

  // Zonal structure of temperature — the classic pole-to-pole profile.
  ::esg::esg::AnalysisRequest request;
  request.dataset = spec.name;
  request.variable = "temperature";
  request.month_start = 36;
  request.month_end = 48;
  auto result = client.analyze_blocking(request);
  if (result.status.ok()) {
    const auto zonal = climate::zonal_mean(climate::time_mean(result.field));
    std::printf("zonal mean temperature (degC) by latitude:\n");
    const auto& g = zonal.grid();
    for (int i = g.nlat - 1; i >= 0; i -= 3) {
      const double v = zonal.at(0, i, 0);
      std::printf("  %+6.1f deg: %6.1f |%s\n", g.lat(i), v,
                  std::string(static_cast<std::size_t>(
                                  std::max(0.0, (v + 40.0) / 2.0)),
                              '#')
                      .c_str());
    }
  }
  return 0;
}
