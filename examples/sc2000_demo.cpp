// sc2000_demo — the paper's §7 end-to-end demonstration, replayed.
//
// "we demonstrated the end-to-end functionality of the ESG prototype by
// performing visualizations of climate attributes such as precipitation
// and cloud cover using data sets that were distributed over several
// locations around the United States, including LBNL, LLNL, ISI, ANL and
// NCAR."
//
// The dataset here is *scattered*: every location holds a partial
// collection (two chunks each), so a multi-year request necessarily draws
// from several sites at once — the request manager's concurrent workers
// fetch from whichever site NWS ranks best per file.
#include <cstdio>
#include <set>

#include "climate/render.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"
#include "obs/export.hpp"

using namespace esg;

int main() {
  std::printf("== SC'2000 floor demo: distributed visualization ==\n\n");

  ::esg::esg::TestbedConfig cfg;
  cfg.grid = climate::GridSpec{36, 72};
  ::esg::esg::EsgTestbed testbed(cfg);

  ::esg::esg::DatasetSpec spec;
  spec.name = "pcmdi-ipcc-demo";
  spec.start_month = 36;
  spec.n_months = 60;  // five years, ten 6-month chunks
  spec.months_per_file = 6;
  spec.replica_hosts = {"pdsf.lbl.gov", "sprite.llnl.gov",
                        "jupiter.isi.edu", "pitcairn.mcs.anl.gov",
                        "dataportal.ncar.edu"};
  spec.layout = ::esg::esg::ReplicaLayout::scattered;
  if (auto st = testbed.publish_dataset(spec); !st.ok()) {
    std::printf("publish failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  std::printf(
      "dataset scattered across 5 sites (each location holds a partial\n"
      "collection, every chunk replicated at exactly two sites)\n");
  testbed.start_sensors(2);

  ::esg::esg::EsgClient client(testbed);
  for (const std::string variable : {"precipitation", "cloud_fraction"}) {
    ::esg::esg::AnalysisRequest req;
    req.dataset = spec.name;
    req.variable = variable;
    req.month_start = 36;
    req.month_end = 96;
    auto result = client.analyze_blocking(req);
    if (!result.status.ok()) {
      std::printf("%s failed: %s\n", variable.c_str(),
                  result.status.error().to_string().c_str());
      return 1;
    }
    std::set<std::string> sites_used;
    for (const auto& f : result.transfer.files) {
      sites_used.insert(f.chosen_host);
    }
    std::printf(
        "\n--- %s: %zu files (%s) fetched from %zu different sites ---\n",
        variable.c_str(), result.transfer.files.size(),
        common::format_bytes(result.transfer.total_bytes).c_str(),
        sites_used.size());
    for (const auto& f : result.transfer.files) {
      std::printf("  %-30s <- %s\n", f.request.filename.c_str(),
                  f.chosen_host.c_str());
    }
    std::printf("\n%s\n", climate::render_ascii(result.mean).c_str());
    const std::string ppm = "sc2000_" + variable + ".ppm";
    if (climate::write_ppm(result.mean, ppm).ok()) {
      std::printf("wrote %s\n", ppm.c_str());
    }
  }

  std::printf("\nFig 4-style monitor at completion:\n%s",
              testbed.monitor().render(testbed.simulation().now()).c_str());

  // Observability artifacts: a Chrome/Perfetto trace of the whole run
  // (rm -> gridftp -> net spans per file) and the metrics snapshot.
  auto write_file = [](const char* path, const std::string& body) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    }
  };
  write_file("sc2000_trace.json",
             obs::to_chrome_trace(testbed.simulation().tracer()));
  write_file("sc2000_metrics.json",
             obs::to_json(testbed.simulation().metrics().snapshot(
                 testbed.simulation().now())));
  std::printf(
      "open sc2000_trace.json in https://ui.perfetto.dev (or\n"
      "chrome://tracing) to see per-file rm/gridftp/net span nesting.\n");
  return 0;
}
