// Quickstart — the shortest path through the public API.
//
// Builds the ESG testbed (Fig 1/Fig 7 topology), publishes a small
// synthetic climate dataset replicated at two sites, then performs the
// paper's end-to-end flow once: select data by attributes, translate to
// logical files, let the request manager pick replicas and move the data,
// and compute a time mean on the client.
#include <cstdio>

#include "climate/render.hpp"
#include "esg/client.hpp"
#include "esg/testbed.hpp"

using namespace esg;

int main() {
  common::set_global_log_level(common::LogLevel::warn);
  std::printf("== ESG quickstart ==\n\n");

  // 1. Bring up the testbed: seven data sites, catalogs, MDS, HRM, RM.
  ::esg::esg::EsgTestbed testbed;
  std::printf("testbed up: %zu data hosts, client at %s\n",
              testbed.data_hosts().size(),
              testbed.client_host()->name().c_str());

  // 2. Publish a dataset: 2 years of monthly output, 6-month chunk files,
  //    replicated at LLNL (primary) and LBNL.
  ::esg::esg::DatasetSpec spec;
  spec.name = "pcmdi-ocean-r1";
  spec.start_month = 36;  // January 1998
  spec.n_months = 24;
  spec.months_per_file = 6;
  spec.replica_hosts = {"sprite.llnl.gov", "pdsf.lbl.gov"};
  if (auto st = testbed.publish_dataset(spec); !st.ok()) {
    std::printf("publish failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  std::printf("published %s: %d months in %d-month chunks at 2 sites\n",
              spec.name.c_str(), spec.n_months, spec.months_per_file);

  // 3. Warm the NWS sensors so replica selection has forecasts.
  testbed.start_sensors(2);
  std::printf("NWS sensors warm (2 measurement rounds)\n");

  // 4. The Fig 2 step: browse the metadata catalog by attributes — this is
  //    what VCDAT's selection screen queries.
  ::esg::esg::EsgClient client(testbed);
  bool browsed = false;
  client.metadata().lookup_dataset(
      "pcmdi-ocean-r1", [&](common::Result<metadata::DatasetInfo> r) {
        if (r) {
          std::printf("\ncatalog entry %s (%s, %s):\n", r->name.c_str(),
                      r->model.c_str(), r->institution.c_str());
          for (const auto& v : r->variables) {
            std::printf("  variable %-16s [%s] %s\n", v.name.c_str(),
                        v.units.c_str(), v.long_name.c_str());
          }
          std::printf("  coverage: months %d..%d in %d-month files\n",
                      r->start_month, r->start_month + r->n_months,
                      r->months_per_file);
        }
        browsed = true;
      });
  testbed.run_until_flag(browsed);

  // 5. The CDAT flow: attributes -> logical files -> RM -> analysis.
  ::esg::esg::AnalysisRequest request;
  request.dataset = "pcmdi-ocean-r1";
  request.variable = "temperature";
  request.month_start = 36;
  request.month_end = 48;  // calendar year 1998
  auto result = client.analyze_blocking(request);
  if (!result.status.ok()) {
    std::printf("analysis failed: %s\n",
                result.status.error().to_string().c_str());
    return 1;
  }

  std::printf("\nfetched %s in %s (%zu files)\n",
              common::format_bytes(result.transfer.total_bytes).c_str(),
              common::format_time(result.transfer.finished -
                                  result.transfer.started)
                  .c_str(),
              result.transfer.files.size());
  for (const auto& f : result.transfer.files) {
    std::printf("  %-28s from %-22s forecast %s\n",
                f.request.filename.c_str(), f.chosen_host.c_str(),
                common::format_rate(f.forecast_bandwidth).c_str());
  }
  std::printf(
      "\n1998 mean temperature: min %.1f, max %.1f, global mean %.1f degC\n",
      result.stats.min, result.stats.max, result.stats.mean);
  std::printf("\n%s\n", climate::render_ascii(result.mean).c_str());
  return 0;
}
