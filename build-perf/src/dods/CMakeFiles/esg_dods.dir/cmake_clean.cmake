file(REMOVE_RECURSE
  "CMakeFiles/esg_dods.dir/dods.cpp.o"
  "CMakeFiles/esg_dods.dir/dods.cpp.o.d"
  "libesg_dods.a"
  "libesg_dods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_dods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
