file(REMOVE_RECURSE
  "libesg_dods.a"
)
