# Empty dependencies file for esg_dods.
# This may be replaced when dependencies are built.
