# CMake generated Testfile for 
# Source directory: /root/repo/src/esg
# Build directory: /root/repo/build-perf/src/esg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
