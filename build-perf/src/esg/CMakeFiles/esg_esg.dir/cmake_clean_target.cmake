file(REMOVE_RECURSE
  "libesg_esg.a"
)
