file(REMOVE_RECURSE
  "CMakeFiles/esg_esg.dir/client.cpp.o"
  "CMakeFiles/esg_esg.dir/client.cpp.o.d"
  "CMakeFiles/esg_esg.dir/testbed.cpp.o"
  "CMakeFiles/esg_esg.dir/testbed.cpp.o.d"
  "libesg_esg.a"
  "libesg_esg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_esg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
