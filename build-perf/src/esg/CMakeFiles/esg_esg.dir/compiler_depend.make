# Empty compiler generated dependencies file for esg_esg.
# This may be replaced when dependencies are built.
