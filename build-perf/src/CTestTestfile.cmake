# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-perf/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("sim")
subdirs("net")
subdirs("rpc")
subdirs("security")
subdirs("directory")
subdirs("storage")
subdirs("gridftp")
subdirs("replica")
subdirs("nws")
subdirs("mds")
subdirs("hrm")
subdirs("rm")
subdirs("ncformat")
subdirs("climate")
subdirs("metadata")
subdirs("esg")
subdirs("dods")
