file(REMOVE_RECURSE
  "CMakeFiles/esg_net.dir/background.cpp.o"
  "CMakeFiles/esg_net.dir/background.cpp.o.d"
  "CMakeFiles/esg_net.dir/fluid.cpp.o"
  "CMakeFiles/esg_net.dir/fluid.cpp.o.d"
  "CMakeFiles/esg_net.dir/fluid_reference.cpp.o"
  "CMakeFiles/esg_net.dir/fluid_reference.cpp.o.d"
  "CMakeFiles/esg_net.dir/tcp.cpp.o"
  "CMakeFiles/esg_net.dir/tcp.cpp.o.d"
  "CMakeFiles/esg_net.dir/topology.cpp.o"
  "CMakeFiles/esg_net.dir/topology.cpp.o.d"
  "libesg_net.a"
  "libesg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
