
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/background.cpp" "src/net/CMakeFiles/esg_net.dir/background.cpp.o" "gcc" "src/net/CMakeFiles/esg_net.dir/background.cpp.o.d"
  "/root/repo/src/net/fluid.cpp" "src/net/CMakeFiles/esg_net.dir/fluid.cpp.o" "gcc" "src/net/CMakeFiles/esg_net.dir/fluid.cpp.o.d"
  "/root/repo/src/net/fluid_reference.cpp" "src/net/CMakeFiles/esg_net.dir/fluid_reference.cpp.o" "gcc" "src/net/CMakeFiles/esg_net.dir/fluid_reference.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/esg_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/esg_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/esg_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/esg_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
