file(REMOVE_RECURSE
  "CMakeFiles/esg_obs.dir/export.cpp.o"
  "CMakeFiles/esg_obs.dir/export.cpp.o.d"
  "CMakeFiles/esg_obs.dir/metrics.cpp.o"
  "CMakeFiles/esg_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/esg_obs.dir/trace.cpp.o"
  "CMakeFiles/esg_obs.dir/trace.cpp.o.d"
  "libesg_obs.a"
  "libesg_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
