file(REMOVE_RECURSE
  "libesg_obs.a"
)
