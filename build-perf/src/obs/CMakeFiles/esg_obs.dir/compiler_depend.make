# Empty compiler generated dependencies file for esg_obs.
# This may be replaced when dependencies are built.
