file(REMOVE_RECURSE
  "libesg_directory.a"
)
