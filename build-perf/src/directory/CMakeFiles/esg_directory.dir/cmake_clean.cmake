file(REMOVE_RECURSE
  "CMakeFiles/esg_directory.dir/dn.cpp.o"
  "CMakeFiles/esg_directory.dir/dn.cpp.o.d"
  "CMakeFiles/esg_directory.dir/entry.cpp.o"
  "CMakeFiles/esg_directory.dir/entry.cpp.o.d"
  "CMakeFiles/esg_directory.dir/filter.cpp.o"
  "CMakeFiles/esg_directory.dir/filter.cpp.o.d"
  "CMakeFiles/esg_directory.dir/replicated.cpp.o"
  "CMakeFiles/esg_directory.dir/replicated.cpp.o.d"
  "CMakeFiles/esg_directory.dir/server.cpp.o"
  "CMakeFiles/esg_directory.dir/server.cpp.o.d"
  "CMakeFiles/esg_directory.dir/service.cpp.o"
  "CMakeFiles/esg_directory.dir/service.cpp.o.d"
  "libesg_directory.a"
  "libesg_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
