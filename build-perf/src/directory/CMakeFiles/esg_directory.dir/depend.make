# Empty dependencies file for esg_directory.
# This may be replaced when dependencies are built.
