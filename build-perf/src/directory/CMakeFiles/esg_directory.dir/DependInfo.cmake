
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/directory/dn.cpp" "src/directory/CMakeFiles/esg_directory.dir/dn.cpp.o" "gcc" "src/directory/CMakeFiles/esg_directory.dir/dn.cpp.o.d"
  "/root/repo/src/directory/entry.cpp" "src/directory/CMakeFiles/esg_directory.dir/entry.cpp.o" "gcc" "src/directory/CMakeFiles/esg_directory.dir/entry.cpp.o.d"
  "/root/repo/src/directory/filter.cpp" "src/directory/CMakeFiles/esg_directory.dir/filter.cpp.o" "gcc" "src/directory/CMakeFiles/esg_directory.dir/filter.cpp.o.d"
  "/root/repo/src/directory/replicated.cpp" "src/directory/CMakeFiles/esg_directory.dir/replicated.cpp.o" "gcc" "src/directory/CMakeFiles/esg_directory.dir/replicated.cpp.o.d"
  "/root/repo/src/directory/server.cpp" "src/directory/CMakeFiles/esg_directory.dir/server.cpp.o" "gcc" "src/directory/CMakeFiles/esg_directory.dir/server.cpp.o.d"
  "/root/repo/src/directory/service.cpp" "src/directory/CMakeFiles/esg_directory.dir/service.cpp.o" "gcc" "src/directory/CMakeFiles/esg_directory.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/rpc/CMakeFiles/esg_rpc.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
