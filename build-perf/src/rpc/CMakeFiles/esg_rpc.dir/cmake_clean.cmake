file(REMOVE_RECURSE
  "CMakeFiles/esg_rpc.dir/orb.cpp.o"
  "CMakeFiles/esg_rpc.dir/orb.cpp.o.d"
  "libesg_rpc.a"
  "libesg_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
