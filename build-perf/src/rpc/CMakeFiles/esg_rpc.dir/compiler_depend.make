# Empty compiler generated dependencies file for esg_rpc.
# This may be replaced when dependencies are built.
