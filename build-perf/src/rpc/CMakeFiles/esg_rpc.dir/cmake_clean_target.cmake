file(REMOVE_RECURSE
  "libesg_rpc.a"
)
