file(REMOVE_RECURSE
  "libesg_ncformat.a"
)
