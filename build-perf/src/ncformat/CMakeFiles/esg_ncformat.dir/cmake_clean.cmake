file(REMOVE_RECURSE
  "CMakeFiles/esg_ncformat.dir/ncx.cpp.o"
  "CMakeFiles/esg_ncformat.dir/ncx.cpp.o.d"
  "libesg_ncformat.a"
  "libesg_ncformat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_ncformat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
