# Empty dependencies file for esg_ncformat.
# This may be replaced when dependencies are built.
