file(REMOVE_RECURSE
  "libesg_nws.a"
)
