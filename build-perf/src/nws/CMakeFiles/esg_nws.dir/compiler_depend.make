# Empty compiler generated dependencies file for esg_nws.
# This may be replaced when dependencies are built.
