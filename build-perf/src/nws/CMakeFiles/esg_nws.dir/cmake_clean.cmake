file(REMOVE_RECURSE
  "CMakeFiles/esg_nws.dir/forecast.cpp.o"
  "CMakeFiles/esg_nws.dir/forecast.cpp.o.d"
  "CMakeFiles/esg_nws.dir/sensor.cpp.o"
  "CMakeFiles/esg_nws.dir/sensor.cpp.o.d"
  "libesg_nws.a"
  "libesg_nws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_nws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
