file(REMOVE_RECURSE
  "CMakeFiles/esg_gridftp.dir/client.cpp.o"
  "CMakeFiles/esg_gridftp.dir/client.cpp.o.d"
  "CMakeFiles/esg_gridftp.dir/multisource.cpp.o"
  "CMakeFiles/esg_gridftp.dir/multisource.cpp.o.d"
  "CMakeFiles/esg_gridftp.dir/reliability.cpp.o"
  "CMakeFiles/esg_gridftp.dir/reliability.cpp.o.d"
  "CMakeFiles/esg_gridftp.dir/server.cpp.o"
  "CMakeFiles/esg_gridftp.dir/server.cpp.o.d"
  "CMakeFiles/esg_gridftp.dir/striped.cpp.o"
  "CMakeFiles/esg_gridftp.dir/striped.cpp.o.d"
  "CMakeFiles/esg_gridftp.dir/striped_volume.cpp.o"
  "CMakeFiles/esg_gridftp.dir/striped_volume.cpp.o.d"
  "CMakeFiles/esg_gridftp.dir/url.cpp.o"
  "CMakeFiles/esg_gridftp.dir/url.cpp.o.d"
  "libesg_gridftp.a"
  "libesg_gridftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_gridftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
