# Empty compiler generated dependencies file for esg_gridftp.
# This may be replaced when dependencies are built.
