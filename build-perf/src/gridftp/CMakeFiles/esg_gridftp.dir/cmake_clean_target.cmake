file(REMOVE_RECURSE
  "libesg_gridftp.a"
)
