# Empty compiler generated dependencies file for esg_metadata.
# This may be replaced when dependencies are built.
