file(REMOVE_RECURSE
  "libesg_metadata.a"
)
