file(REMOVE_RECURSE
  "CMakeFiles/esg_metadata.dir/catalog.cpp.o"
  "CMakeFiles/esg_metadata.dir/catalog.cpp.o.d"
  "libesg_metadata.a"
  "libesg_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
