# Empty dependencies file for esg_storage.
# This may be replaced when dependencies are built.
