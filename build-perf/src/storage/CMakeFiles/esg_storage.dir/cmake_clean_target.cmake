file(REMOVE_RECURSE
  "libesg_storage.a"
)
