
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/storage.cpp" "src/storage/CMakeFiles/esg_storage.dir/storage.cpp.o" "gcc" "src/storage/CMakeFiles/esg_storage.dir/storage.cpp.o.d"
  "/root/repo/src/storage/tape.cpp" "src/storage/CMakeFiles/esg_storage.dir/tape.cpp.o" "gcc" "src/storage/CMakeFiles/esg_storage.dir/tape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
