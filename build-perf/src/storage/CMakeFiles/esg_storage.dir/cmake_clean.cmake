file(REMOVE_RECURSE
  "CMakeFiles/esg_storage.dir/storage.cpp.o"
  "CMakeFiles/esg_storage.dir/storage.cpp.o.d"
  "CMakeFiles/esg_storage.dir/tape.cpp.o"
  "CMakeFiles/esg_storage.dir/tape.cpp.o.d"
  "libesg_storage.a"
  "libesg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
