
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chaos.cpp" "src/sim/CMakeFiles/esg_sim.dir/chaos.cpp.o" "gcc" "src/sim/CMakeFiles/esg_sim.dir/chaos.cpp.o.d"
  "/root/repo/src/sim/failure.cpp" "src/sim/CMakeFiles/esg_sim.dir/failure.cpp.o" "gcc" "src/sim/CMakeFiles/esg_sim.dir/failure.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/esg_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/esg_sim.dir/simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
