file(REMOVE_RECURSE
  "CMakeFiles/esg_sim.dir/chaos.cpp.o"
  "CMakeFiles/esg_sim.dir/chaos.cpp.o.d"
  "CMakeFiles/esg_sim.dir/failure.cpp.o"
  "CMakeFiles/esg_sim.dir/failure.cpp.o.d"
  "CMakeFiles/esg_sim.dir/simulation.cpp.o"
  "CMakeFiles/esg_sim.dir/simulation.cpp.o.d"
  "libesg_sim.a"
  "libesg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
