file(REMOVE_RECURSE
  "CMakeFiles/esg_rm.dir/health.cpp.o"
  "CMakeFiles/esg_rm.dir/health.cpp.o.d"
  "CMakeFiles/esg_rm.dir/monitor.cpp.o"
  "CMakeFiles/esg_rm.dir/monitor.cpp.o.d"
  "CMakeFiles/esg_rm.dir/request_manager.cpp.o"
  "CMakeFiles/esg_rm.dir/request_manager.cpp.o.d"
  "CMakeFiles/esg_rm.dir/service.cpp.o"
  "CMakeFiles/esg_rm.dir/service.cpp.o.d"
  "libesg_rm.a"
  "libesg_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
