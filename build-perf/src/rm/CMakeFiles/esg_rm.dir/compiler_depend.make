# Empty compiler generated dependencies file for esg_rm.
# This may be replaced when dependencies are built.
