file(REMOVE_RECURSE
  "libesg_rm.a"
)
