file(REMOVE_RECURSE
  "libesg_security.a"
)
