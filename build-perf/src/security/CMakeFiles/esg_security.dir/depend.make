# Empty dependencies file for esg_security.
# This may be replaced when dependencies are built.
