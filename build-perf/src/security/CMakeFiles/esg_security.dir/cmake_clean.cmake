file(REMOVE_RECURSE
  "CMakeFiles/esg_security.dir/gsi.cpp.o"
  "CMakeFiles/esg_security.dir/gsi.cpp.o.d"
  "libesg_security.a"
  "libesg_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
