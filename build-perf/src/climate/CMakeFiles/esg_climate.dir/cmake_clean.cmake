file(REMOVE_RECURSE
  "CMakeFiles/esg_climate.dir/analysis.cpp.o"
  "CMakeFiles/esg_climate.dir/analysis.cpp.o.d"
  "CMakeFiles/esg_climate.dir/field.cpp.o"
  "CMakeFiles/esg_climate.dir/field.cpp.o.d"
  "CMakeFiles/esg_climate.dir/model.cpp.o"
  "CMakeFiles/esg_climate.dir/model.cpp.o.d"
  "CMakeFiles/esg_climate.dir/render.cpp.o"
  "CMakeFiles/esg_climate.dir/render.cpp.o.d"
  "CMakeFiles/esg_climate.dir/subset.cpp.o"
  "CMakeFiles/esg_climate.dir/subset.cpp.o.d"
  "libesg_climate.a"
  "libesg_climate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_climate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
