file(REMOVE_RECURSE
  "libesg_climate.a"
)
