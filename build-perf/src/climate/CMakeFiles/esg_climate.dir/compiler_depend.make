# Empty compiler generated dependencies file for esg_climate.
# This may be replaced when dependencies are built.
