
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/climate/analysis.cpp" "src/climate/CMakeFiles/esg_climate.dir/analysis.cpp.o" "gcc" "src/climate/CMakeFiles/esg_climate.dir/analysis.cpp.o.d"
  "/root/repo/src/climate/field.cpp" "src/climate/CMakeFiles/esg_climate.dir/field.cpp.o" "gcc" "src/climate/CMakeFiles/esg_climate.dir/field.cpp.o.d"
  "/root/repo/src/climate/model.cpp" "src/climate/CMakeFiles/esg_climate.dir/model.cpp.o" "gcc" "src/climate/CMakeFiles/esg_climate.dir/model.cpp.o.d"
  "/root/repo/src/climate/render.cpp" "src/climate/CMakeFiles/esg_climate.dir/render.cpp.o" "gcc" "src/climate/CMakeFiles/esg_climate.dir/render.cpp.o.d"
  "/root/repo/src/climate/subset.cpp" "src/climate/CMakeFiles/esg_climate.dir/subset.cpp.o" "gcc" "src/climate/CMakeFiles/esg_climate.dir/subset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/ncformat/CMakeFiles/esg_ncformat.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/storage/CMakeFiles/esg_storage.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
