file(REMOVE_RECURSE
  "CMakeFiles/esg_replica.dir/catalog.cpp.o"
  "CMakeFiles/esg_replica.dir/catalog.cpp.o.d"
  "CMakeFiles/esg_replica.dir/manager.cpp.o"
  "CMakeFiles/esg_replica.dir/manager.cpp.o.d"
  "libesg_replica.a"
  "libesg_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
