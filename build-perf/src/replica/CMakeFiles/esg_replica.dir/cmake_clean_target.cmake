file(REMOVE_RECURSE
  "libesg_replica.a"
)
