# Empty compiler generated dependencies file for esg_replica.
# This may be replaced when dependencies are built.
