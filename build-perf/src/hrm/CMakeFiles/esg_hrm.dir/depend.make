# Empty dependencies file for esg_hrm.
# This may be replaced when dependencies are built.
