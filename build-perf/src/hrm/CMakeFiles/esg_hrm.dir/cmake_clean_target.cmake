file(REMOVE_RECURSE
  "libesg_hrm.a"
)
