file(REMOVE_RECURSE
  "CMakeFiles/esg_hrm.dir/hrm.cpp.o"
  "CMakeFiles/esg_hrm.dir/hrm.cpp.o.d"
  "libesg_hrm.a"
  "libesg_hrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_hrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
