# Empty compiler generated dependencies file for esg_mds.
# This may be replaced when dependencies are built.
