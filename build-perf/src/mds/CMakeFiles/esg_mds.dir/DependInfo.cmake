
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/mds.cpp" "src/mds/CMakeFiles/esg_mds.dir/mds.cpp.o" "gcc" "src/mds/CMakeFiles/esg_mds.dir/mds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/directory/CMakeFiles/esg_directory.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/rpc/CMakeFiles/esg_rpc.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
