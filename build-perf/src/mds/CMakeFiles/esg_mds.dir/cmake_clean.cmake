file(REMOVE_RECURSE
  "CMakeFiles/esg_mds.dir/mds.cpp.o"
  "CMakeFiles/esg_mds.dir/mds.cpp.o.d"
  "libesg_mds.a"
  "libesg_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
