file(REMOVE_RECURSE
  "libesg_mds.a"
)
