file(REMOVE_RECURSE
  "CMakeFiles/esg_common.dir/bytebuf.cpp.o"
  "CMakeFiles/esg_common.dir/bytebuf.cpp.o.d"
  "CMakeFiles/esg_common.dir/log.cpp.o"
  "CMakeFiles/esg_common.dir/log.cpp.o.d"
  "CMakeFiles/esg_common.dir/stats.cpp.o"
  "CMakeFiles/esg_common.dir/stats.cpp.o.d"
  "CMakeFiles/esg_common.dir/strings.cpp.o"
  "CMakeFiles/esg_common.dir/strings.cpp.o.d"
  "CMakeFiles/esg_common.dir/thread_pool.cpp.o"
  "CMakeFiles/esg_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/esg_common.dir/units.cpp.o"
  "CMakeFiles/esg_common.dir/units.cpp.o.d"
  "libesg_common.a"
  "libesg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
