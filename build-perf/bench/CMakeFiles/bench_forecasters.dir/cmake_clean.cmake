file(REMOVE_RECURSE
  "CMakeFiles/bench_forecasters.dir/bench_forecasters.cpp.o"
  "CMakeFiles/bench_forecasters.dir/bench_forecasters.cpp.o.d"
  "bench_forecasters"
  "bench_forecasters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forecasters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
