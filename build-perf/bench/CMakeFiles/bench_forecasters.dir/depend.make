# Empty dependencies file for bench_forecasters.
# This may be replaced when dependencies are built.
