
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_forecasters.cpp" "bench/CMakeFiles/bench_forecasters.dir/bench_forecasters.cpp.o" "gcc" "bench/CMakeFiles/bench_forecasters.dir/bench_forecasters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/nws/CMakeFiles/esg_nws.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
