# Empty compiler generated dependencies file for bench_cpu_limits.
# This may be replaced when dependencies are built.
