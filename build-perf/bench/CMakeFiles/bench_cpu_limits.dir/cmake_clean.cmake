file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_limits.dir/bench_cpu_limits.cpp.o"
  "CMakeFiles/bench_cpu_limits.dir/bench_cpu_limits.cpp.o.d"
  "bench_cpu_limits"
  "bench_cpu_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
