# Empty dependencies file for bench_concurrent_fetch.
# This may be replaced when dependencies are built.
