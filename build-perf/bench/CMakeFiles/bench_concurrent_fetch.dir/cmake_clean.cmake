file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_fetch.dir/bench_concurrent_fetch.cpp.o"
  "CMakeFiles/bench_concurrent_fetch.dir/bench_concurrent_fetch.cpp.o.d"
  "bench_concurrent_fetch"
  "bench_concurrent_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
