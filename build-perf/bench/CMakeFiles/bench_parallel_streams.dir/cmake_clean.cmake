file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_streams.dir/bench_parallel_streams.cpp.o"
  "CMakeFiles/bench_parallel_streams.dir/bench_parallel_streams.cpp.o.d"
  "bench_parallel_streams"
  "bench_parallel_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
