# Empty compiler generated dependencies file for bench_parallel_streams.
# This may be replaced when dependencies are built.
