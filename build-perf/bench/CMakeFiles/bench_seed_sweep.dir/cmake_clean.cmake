file(REMOVE_RECURSE
  "CMakeFiles/bench_seed_sweep.dir/bench_seed_sweep.cpp.o"
  "CMakeFiles/bench_seed_sweep.dir/bench_seed_sweep.cpp.o.d"
  "bench_seed_sweep"
  "bench_seed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
