# Empty dependencies file for bench_seed_sweep.
# This may be replaced when dependencies are built.
