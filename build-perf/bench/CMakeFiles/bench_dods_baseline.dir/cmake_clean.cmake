file(REMOVE_RECURSE
  "CMakeFiles/bench_dods_baseline.dir/bench_dods_baseline.cpp.o"
  "CMakeFiles/bench_dods_baseline.dir/bench_dods_baseline.cpp.o.d"
  "bench_dods_baseline"
  "bench_dods_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dods_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
