# Empty compiler generated dependencies file for bench_replica_selection.
# This may be replaced when dependencies are built.
