file(REMOVE_RECURSE
  "CMakeFiles/bench_replica_selection.dir/bench_replica_selection.cpp.o"
  "CMakeFiles/bench_replica_selection.dir/bench_replica_selection.cpp.o.d"
  "bench_replica_selection"
  "bench_replica_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replica_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
