file(REMOVE_RECURSE
  "CMakeFiles/bench_multisource.dir/bench_multisource.cpp.o"
  "CMakeFiles/bench_multisource.dir/bench_multisource.cpp.o.d"
  "bench_multisource"
  "bench_multisource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multisource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
