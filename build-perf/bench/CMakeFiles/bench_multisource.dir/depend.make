# Empty dependencies file for bench_multisource.
# This may be replaced when dependencies are built.
