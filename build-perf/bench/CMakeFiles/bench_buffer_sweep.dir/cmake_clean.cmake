file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_sweep.dir/bench_buffer_sweep.cpp.o"
  "CMakeFiles/bench_buffer_sweep.dir/bench_buffer_sweep.cpp.o.d"
  "bench_buffer_sweep"
  "bench_buffer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
