file(REMOVE_RECURSE
  "CMakeFiles/bench_subsetting.dir/bench_subsetting.cpp.o"
  "CMakeFiles/bench_subsetting.dir/bench_subsetting.cpp.o.d"
  "bench_subsetting"
  "bench_subsetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
