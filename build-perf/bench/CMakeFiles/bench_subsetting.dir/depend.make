# Empty dependencies file for bench_subsetting.
# This may be replaced when dependencies are built.
