file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_caching.dir/bench_channel_caching.cpp.o"
  "CMakeFiles/bench_channel_caching.dir/bench_channel_caching.cpp.o.d"
  "bench_channel_caching"
  "bench_channel_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
