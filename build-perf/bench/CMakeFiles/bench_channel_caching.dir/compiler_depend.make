# Empty compiler generated dependencies file for bench_channel_caching.
# This may be replaced when dependencies are built.
