# Empty dependencies file for bench_hrm_staging.
# This may be replaced when dependencies are built.
