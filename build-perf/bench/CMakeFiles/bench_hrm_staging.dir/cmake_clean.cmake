file(REMOVE_RECURSE
  "CMakeFiles/bench_hrm_staging.dir/bench_hrm_staging.cpp.o"
  "CMakeFiles/bench_hrm_staging.dir/bench_hrm_staging.cpp.o.d"
  "bench_hrm_staging"
  "bench_hrm_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hrm_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
