file(REMOVE_RECURSE
  "CMakeFiles/bench_fluid_scale.dir/bench_fluid_scale.cpp.o"
  "CMakeFiles/bench_fluid_scale.dir/bench_fluid_scale.cpp.o.d"
  "bench_fluid_scale"
  "bench_fluid_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fluid_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
