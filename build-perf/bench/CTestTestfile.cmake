# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-perf/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fluid_scale_smoke "/root/repo/build-perf/bench/bench_fluid_scale" "--small")
set_tests_properties(bench_fluid_scale_smoke PROPERTIES  LABELS "perf" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;55;add_test;/root/repo/bench/CMakeLists.txt;0;")
