# Empty dependencies file for climate_analysis.
# This may be replaced when dependencies are built.
