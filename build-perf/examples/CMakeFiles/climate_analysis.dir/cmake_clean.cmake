file(REMOVE_RECURSE
  "CMakeFiles/climate_analysis.dir/climate_analysis.cpp.o"
  "CMakeFiles/climate_analysis.dir/climate_analysis.cpp.o.d"
  "climate_analysis"
  "climate_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
