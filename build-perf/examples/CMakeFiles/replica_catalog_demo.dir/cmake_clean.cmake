file(REMOVE_RECURSE
  "CMakeFiles/replica_catalog_demo.dir/replica_catalog_demo.cpp.o"
  "CMakeFiles/replica_catalog_demo.dir/replica_catalog_demo.cpp.o.d"
  "replica_catalog_demo"
  "replica_catalog_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_catalog_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
