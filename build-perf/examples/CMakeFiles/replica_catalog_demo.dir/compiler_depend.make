# Empty compiler generated dependencies file for replica_catalog_demo.
# This may be replaced when dependencies are built.
