# Empty compiler generated dependencies file for sc2000_demo.
# This may be replaced when dependencies are built.
