file(REMOVE_RECURSE
  "CMakeFiles/sc2000_demo.dir/sc2000_demo.cpp.o"
  "CMakeFiles/sc2000_demo.dir/sc2000_demo.cpp.o.d"
  "sc2000_demo"
  "sc2000_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc2000_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
