file(REMOVE_RECURSE
  "CMakeFiles/transfer_monitor.dir/transfer_monitor.cpp.o"
  "CMakeFiles/transfer_monitor.dir/transfer_monitor.cpp.o.d"
  "transfer_monitor"
  "transfer_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
