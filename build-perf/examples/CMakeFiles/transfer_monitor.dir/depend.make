# Empty dependencies file for transfer_monitor.
# This may be replaced when dependencies are built.
