file(REMOVE_RECURSE
  "CMakeFiles/esg2_subsetting.dir/esg2_subsetting.cpp.o"
  "CMakeFiles/esg2_subsetting.dir/esg2_subsetting.cpp.o.d"
  "esg2_subsetting"
  "esg2_subsetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg2_subsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
