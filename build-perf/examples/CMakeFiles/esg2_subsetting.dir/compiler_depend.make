# Empty compiler generated dependencies file for esg2_subsetting.
# This may be replaced when dependencies are built.
