# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-perf/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-perf/tests/common_test[1]_include.cmake")
include("/root/repo/build-perf/tests/sim_test[1]_include.cmake")
include("/root/repo/build-perf/tests/net_test[1]_include.cmake")
include("/root/repo/build-perf/tests/rpc_test[1]_include.cmake")
include("/root/repo/build-perf/tests/security_test[1]_include.cmake")
include("/root/repo/build-perf/tests/directory_test[1]_include.cmake")
include("/root/repo/build-perf/tests/storage_test[1]_include.cmake")
include("/root/repo/build-perf/tests/gridftp_test[1]_include.cmake")
include("/root/repo/build-perf/tests/replica_test[1]_include.cmake")
include("/root/repo/build-perf/tests/nws_test[1]_include.cmake")
include("/root/repo/build-perf/tests/hrm_test[1]_include.cmake")
include("/root/repo/build-perf/tests/rm_test[1]_include.cmake")
include("/root/repo/build-perf/tests/ncformat_test[1]_include.cmake")
include("/root/repo/build-perf/tests/climate_test[1]_include.cmake")
include("/root/repo/build-perf/tests/metadata_test[1]_include.cmake")
include("/root/repo/build-perf/tests/esg_test[1]_include.cmake")
include("/root/repo/build-perf/tests/subset_test[1]_include.cmake")
include("/root/repo/build-perf/tests/rm_service_test[1]_include.cmake")
include("/root/repo/build-perf/tests/dods_test[1]_include.cmake")
include("/root/repo/build-perf/tests/property_test[1]_include.cmake")
include("/root/repo/build-perf/tests/replicated_directory_test[1]_include.cmake")
include("/root/repo/build-perf/tests/striped_volume_test[1]_include.cmake")
include("/root/repo/build-perf/tests/multisource_test[1]_include.cmake")
include("/root/repo/build-perf/tests/chaos_test[1]_include.cmake")
include("/root/repo/build-perf/tests/obs_test[1]_include.cmake")
include("/root/repo/build-perf/tests/fluid_scale_test[1]_include.cmake")
