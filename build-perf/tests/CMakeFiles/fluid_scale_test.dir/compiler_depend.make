# Empty compiler generated dependencies file for fluid_scale_test.
# This may be replaced when dependencies are built.
