file(REMOVE_RECURSE
  "CMakeFiles/fluid_scale_test.dir/fluid_scale_test.cpp.o"
  "CMakeFiles/fluid_scale_test.dir/fluid_scale_test.cpp.o.d"
  "fluid_scale_test"
  "fluid_scale_test.pdb"
  "fluid_scale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
