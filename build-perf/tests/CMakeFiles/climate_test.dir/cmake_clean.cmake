file(REMOVE_RECURSE
  "CMakeFiles/climate_test.dir/climate_test.cpp.o"
  "CMakeFiles/climate_test.dir/climate_test.cpp.o.d"
  "climate_test"
  "climate_test.pdb"
  "climate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
