# Empty compiler generated dependencies file for subset_test.
# This may be replaced when dependencies are built.
