
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/subset_test.cpp" "tests/CMakeFiles/subset_test.dir/subset_test.cpp.o" "gcc" "tests/CMakeFiles/subset_test.dir/subset_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-perf/src/esg/CMakeFiles/esg_esg.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/rm/CMakeFiles/esg_rm.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/replica/CMakeFiles/esg_replica.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/mds/CMakeFiles/esg_mds.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/gridftp/CMakeFiles/esg_gridftp.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/security/CMakeFiles/esg_security.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/metadata/CMakeFiles/esg_metadata.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/directory/CMakeFiles/esg_directory.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/climate/CMakeFiles/esg_climate.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/ncformat/CMakeFiles/esg_ncformat.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/nws/CMakeFiles/esg_nws.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/hrm/CMakeFiles/esg_hrm.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/storage/CMakeFiles/esg_storage.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/rpc/CMakeFiles/esg_rpc.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/obs/CMakeFiles/esg_obs.dir/DependInfo.cmake"
  "/root/repo/build-perf/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
