file(REMOVE_RECURSE
  "CMakeFiles/subset_test.dir/subset_test.cpp.o"
  "CMakeFiles/subset_test.dir/subset_test.cpp.o.d"
  "subset_test"
  "subset_test.pdb"
  "subset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
