# Empty dependencies file for nws_test.
# This may be replaced when dependencies are built.
