file(REMOVE_RECURSE
  "CMakeFiles/nws_test.dir/nws_test.cpp.o"
  "CMakeFiles/nws_test.dir/nws_test.cpp.o.d"
  "nws_test"
  "nws_test.pdb"
  "nws_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nws_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
