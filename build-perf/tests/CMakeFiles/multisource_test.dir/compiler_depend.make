# Empty compiler generated dependencies file for multisource_test.
# This may be replaced when dependencies are built.
