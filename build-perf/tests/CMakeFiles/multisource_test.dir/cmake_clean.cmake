file(REMOVE_RECURSE
  "CMakeFiles/multisource_test.dir/multisource_test.cpp.o"
  "CMakeFiles/multisource_test.dir/multisource_test.cpp.o.d"
  "multisource_test"
  "multisource_test.pdb"
  "multisource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
