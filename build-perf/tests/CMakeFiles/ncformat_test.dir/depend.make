# Empty dependencies file for ncformat_test.
# This may be replaced when dependencies are built.
