file(REMOVE_RECURSE
  "CMakeFiles/ncformat_test.dir/ncformat_test.cpp.o"
  "CMakeFiles/ncformat_test.dir/ncformat_test.cpp.o.d"
  "ncformat_test"
  "ncformat_test.pdb"
  "ncformat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncformat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
