file(REMOVE_RECURSE
  "CMakeFiles/dods_test.dir/dods_test.cpp.o"
  "CMakeFiles/dods_test.dir/dods_test.cpp.o.d"
  "dods_test"
  "dods_test.pdb"
  "dods_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
