# Empty dependencies file for dods_test.
# This may be replaced when dependencies are built.
