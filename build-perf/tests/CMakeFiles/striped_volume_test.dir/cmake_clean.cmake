file(REMOVE_RECURSE
  "CMakeFiles/striped_volume_test.dir/striped_volume_test.cpp.o"
  "CMakeFiles/striped_volume_test.dir/striped_volume_test.cpp.o.d"
  "striped_volume_test"
  "striped_volume_test.pdb"
  "striped_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striped_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
