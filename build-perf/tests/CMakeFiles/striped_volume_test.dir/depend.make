# Empty dependencies file for striped_volume_test.
# This may be replaced when dependencies are built.
