file(REMOVE_RECURSE
  "CMakeFiles/replicated_directory_test.dir/replicated_directory_test.cpp.o"
  "CMakeFiles/replicated_directory_test.dir/replicated_directory_test.cpp.o.d"
  "replicated_directory_test"
  "replicated_directory_test.pdb"
  "replicated_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
