# Empty dependencies file for replicated_directory_test.
# This may be replaced when dependencies are built.
