# Empty dependencies file for rm_test.
# This may be replaced when dependencies are built.
