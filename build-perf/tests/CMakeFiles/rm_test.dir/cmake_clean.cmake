file(REMOVE_RECURSE
  "CMakeFiles/rm_test.dir/rm_test.cpp.o"
  "CMakeFiles/rm_test.dir/rm_test.cpp.o.d"
  "rm_test"
  "rm_test.pdb"
  "rm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
