# Empty compiler generated dependencies file for hrm_test.
# This may be replaced when dependencies are built.
