file(REMOVE_RECURSE
  "CMakeFiles/hrm_test.dir/hrm_test.cpp.o"
  "CMakeFiles/hrm_test.dir/hrm_test.cpp.o.d"
  "hrm_test"
  "hrm_test.pdb"
  "hrm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
