# Empty compiler generated dependencies file for rm_service_test.
# This may be replaced when dependencies are built.
