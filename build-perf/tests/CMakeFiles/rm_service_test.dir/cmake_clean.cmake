file(REMOVE_RECURSE
  "CMakeFiles/rm_service_test.dir/rm_service_test.cpp.o"
  "CMakeFiles/rm_service_test.dir/rm_service_test.cpp.o.d"
  "rm_service_test"
  "rm_service_test.pdb"
  "rm_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
