# Empty compiler generated dependencies file for esg_test.
# This may be replaced when dependencies are built.
