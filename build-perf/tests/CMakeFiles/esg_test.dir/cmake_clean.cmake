file(REMOVE_RECURSE
  "CMakeFiles/esg_test.dir/esg_test.cpp.o"
  "CMakeFiles/esg_test.dir/esg_test.cpp.o.d"
  "esg_test"
  "esg_test.pdb"
  "esg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
