# Bench regression gate (ctest: bench-gate, labels perf/report).
#
# Re-runs the deterministic benches and diffs the RunManifests they write
# against the baselines checked in under bench/baselines/.  Identity fields
# (seed, fault timeline hash, flight digest) must match exactly; metrics and
# bench values may move up to the tolerance (default 20%).  Any drift —
# or a bench failing outright — fails the gate.
#
# The manifests deliberately carry only machine-independent numbers: heap
# allocations per solve/touch, solver-invariant counters (flows walked per
# touch, max component solve size, live component count, calendar-drained
# completions), and sim-time metrics (sim_queue_depth/purges, net_components,
# net_component_solve_size) — never wall-clock timings.  A regression in the
# partitioned solver's isolation (a mutation touching more than its island)
# or in steady-state allocation discipline therefore fails this gate
# deterministically on any machine.
#
# Invoked by ctest as:
#   cmake -DBENCH_FLUID=<bench_fluid_scale> -DBENCH_CHAOS=<bench_chaos>
#         -DESG_REPORT=<esg-report> -DBASELINE_DIR=<repo>/bench/baselines
#         -DWORK_DIR=<build>/bench-gate [-DTOLERANCE=0.2]
#         -P tools/bench_gate.cmake
#
# Refresh the baselines intentionally (after an accepted perf change) with:
#   cp <build>/bench-gate/MANIFEST_*.json bench/baselines/

foreach(var BENCH_FLUID BENCH_CHAOS BENCH_CAMPAIGN BENCH_EXPLORE ESG_REPORT
            BASELINE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_gate: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.2)
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_bench label)
  execute_process(
    COMMAND ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_gate: ${label} failed (exit ${rc}):\n${out}")
  endif()
  message(STATUS "${label}: ok")
endfunction()

function(gate_manifest name)
  set(baseline "${BASELINE_DIR}/MANIFEST_${name}.json")
  set(current "${WORK_DIR}/MANIFEST_${name}.json")
  if(NOT EXISTS "${baseline}")
    message(FATAL_ERROR
      "bench_gate: no baseline ${baseline} — run the benches and copy "
      "${current} there to establish one")
  endif()
  if(NOT EXISTS "${current}")
    message(FATAL_ERROR "bench_gate: bench did not write ${current}")
  endif()
  execute_process(
    COMMAND "${ESG_REPORT}" diff "${baseline}" "${current}"
            --tolerance "${TOLERANCE}" --ignore wall_clock
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  message(STATUS "diff MANIFEST_${name}.json vs baseline:\n${out}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "bench_gate: ${name} drifted beyond ${TOLERANCE} vs the checked-in "
      "baseline (see diff above).  If the change is intended, refresh "
      "bench/baselines/MANIFEST_${name}.json from ${current}.")
  endif()
endfunction()

run_bench("bench_fluid_scale --small" "${BENCH_FLUID}" --small)
run_bench("bench_chaos" "${BENCH_CHAOS}")
run_bench("bench_campaign --small" "${BENCH_CAMPAIGN}" --small)
run_bench("bench_explore" "${BENCH_EXPLORE}"
          --corpus "${BASELINE_DIR}/explore")

gate_manifest(fluid_scale)
gate_manifest(chaos)
gate_manifest(campaign)
gate_manifest(explore)

# Smoke the profile reporting path end-to-end: the chaos manifest carries a
# profile section, so critical-path and flame must both succeed on it.
run_bench("esg-report critical-path MANIFEST_chaos.json"
          "${ESG_REPORT}" critical-path "${WORK_DIR}/MANIFEST_chaos.json")
run_bench("esg-report flame MANIFEST_chaos.json"
          "${ESG_REPORT}" flame "${WORK_DIR}/MANIFEST_chaos.json"
          --out "${WORK_DIR}/chaos.folded")

message(STATUS "bench_gate: all manifests within tolerance ${TOLERANCE}")
