// Tests for host storage, the pinned-LRU disk cache, and the tape library.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "storage/storage.hpp"
#include "storage/tape.hpp"

namespace est = esg::storage;
namespace ec = esg::common;
namespace es = esg::sim;

using ec::kSecond;

// ---------- HostStorage ----------

TEST(HostStorage, PutGetRemove) {
  est::HostStorage fs(100);
  ASSERT_TRUE(fs.put(est::FileObject::synthetic("a", 40)).ok());
  ASSERT_TRUE(fs.put(est::FileObject::synthetic("b", 40)).ok());
  EXPECT_EQ(fs.used(), 80);
  EXPECT_TRUE(fs.exists("a"));
  EXPECT_EQ(fs.size_of("a").value_or(0), 40);
  ASSERT_TRUE(fs.remove("a").ok());
  EXPECT_EQ(fs.used(), 40);
  EXPECT_FALSE(fs.get("a").ok());
}

TEST(HostStorage, CapacityEnforced) {
  est::HostStorage fs(100);
  ASSERT_TRUE(fs.put(est::FileObject::synthetic("a", 80)).ok());
  auto st = fs.put(est::FileObject::synthetic("b", 30));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, ec::Errc::out_of_space);
}

TEST(HostStorage, OverwriteAdjustsUsage) {
  est::HostStorage fs(100);
  ASSERT_TRUE(fs.put(est::FileObject::synthetic("a", 80)).ok());
  ASSERT_TRUE(fs.put(est::FileObject::synthetic("a", 20)).ok());
  EXPECT_EQ(fs.used(), 20);
}

TEST(HostStorage, ResizeTracksPartialArrival) {
  est::HostStorage fs(100);
  ASSERT_TRUE(fs.put(est::FileObject::synthetic("partial", 0)).ok());
  ASSERT_TRUE(fs.resize("partial", 60).ok());
  EXPECT_EQ(fs.size_of("partial").value_or(0), 60);
  EXPECT_EQ(fs.used(), 60);
  EXPECT_FALSE(fs.resize("partial", 200).ok());
}

TEST(HostStorage, ContentAttached) {
  est::HostStorage fs;
  auto data = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3});
  ASSERT_TRUE(fs.put(est::FileObject::with_content("f", data)).ok());
  auto f = fs.get("f");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size, 3);
  ASSERT_TRUE(f->content);
  EXPECT_EQ((*f->content)[2], 3);
}

// ---------- DiskCache ----------

TEST(DiskCache, LruEviction) {
  est::DiskCache cache(100);
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 40)).ok());
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("b", 40)).ok());
  (void)cache.get("a");  // a is now most recently used
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("c", 40)).ok());
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));  // LRU victim
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(DiskCache, PinnedFilesSurviveEviction) {
  est::DiskCache cache(100);
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 60)).ok());
  ASSERT_TRUE(cache.pin("a").ok());
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("b", 30)).ok());
  // a is LRU but pinned; inserting c (60) must evict b instead... but then
  // 60+60 > 100, so the insert fails outright.
  auto st = cache.put(est::FileObject::synthetic("c", 60));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(cache.contains("a"));
  // After unpinning, the same insert succeeds by evicting a (and b).
  ASSERT_TRUE(cache.unpin("a").ok());
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("c", 60)).ok());
  EXPECT_FALSE(cache.contains("a"));
}

TEST(DiskCache, OversizeInsertRejected) {
  est::DiskCache cache(100);
  EXPECT_FALSE(cache.put(est::FileObject::synthetic("big", 200)).ok());
}

TEST(DiskCache, RemoveRespectsPins) {
  est::DiskCache cache(100);
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 10)).ok());
  ASSERT_TRUE(cache.pin("a").ok());
  EXPECT_FALSE(cache.remove("a").ok());
  ASSERT_TRUE(cache.unpin("a").ok());
  EXPECT_TRUE(cache.remove("a").ok());
}

TEST(DiskCache, UpdateNeverEvictsItself) {
  // Regression: growing an existing unpinned entry used to let make_room
  // pick that very entry as the LRU victim, invalidating the iterator.
  est::DiskCache cache(100);
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 60)).ok());
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("b", 30)).ok());
  (void)cache.get("b");  // a becomes LRU
  // Growing a to 80 needs 20 more bytes (90 used): eviction must pick b,
  // never the entry being updated, even though a is the LRU.
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 80)).ok());
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_EQ(cache.used(), 80);
}

TEST(DiskCache, UpdateTooBigEvenAfterEvictionFails) {
  est::DiskCache cache(100);
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 60)).ok());
  auto st = cache.put(est::FileObject::synthetic("a", 150));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(cache.contains("a"));  // original untouched
  EXPECT_EQ(cache.used(), 60);
  EXPECT_EQ(cache.pin_count("a"), 0);  // the shield pin was released
}

TEST(DiskCache, PinCountNests) {
  est::DiskCache cache(100);
  ASSERT_TRUE(cache.put(est::FileObject::synthetic("a", 10)).ok());
  ASSERT_TRUE(cache.pin("a").ok());
  ASSERT_TRUE(cache.pin("a").ok());
  EXPECT_EQ(cache.pin_count("a"), 2);
  ASSERT_TRUE(cache.unpin("a").ok());
  EXPECT_FALSE(cache.remove("a").ok());  // still pinned once
}

// ---------- TapeLibrary ----------

namespace {

est::TapeConfig fast_tape() {
  est::TapeConfig cfg;
  cfg.drives = 2;
  cfg.mount_time = 30 * kSecond;
  cfg.avg_seek = 10 * kSecond;
  cfg.read_rate = 10'000'000;  // 10 MB/s
  return cfg;
}

}  // namespace

TEST(Tape, StageCostModel) {
  es::Simulation sim;
  est::TapeLibrary tape(sim, fast_tape());
  // 100 MB: mount 30 + seek 10 + read 10 = 50 s with mount, 20 s without.
  EXPECT_EQ(tape.stage_cost(100'000'000, true), 50 * kSecond);
  EXPECT_EQ(tape.stage_cost(100'000'000, false), 20 * kSecond);
}

TEST(Tape, StageDeliversFile) {
  es::Simulation sim;
  est::TapeLibrary tape(sim, fast_tape());
  tape.store(est::FileObject::synthetic("model-run.ncx", 100'000'000));
  bool done = false;
  tape.stage("model-run.ncx", [&](ec::Result<est::FileObject> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size, 100'000'000);
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 50 * kSecond);
  EXPECT_EQ(tape.stages_completed(), 1u);
}

TEST(Tape, MissingFileReportsNotFound) {
  es::Simulation sim;
  est::TapeLibrary tape(sim, fast_tape());
  bool done = false;
  tape.stage("ghost", [&](ec::Result<est::FileObject> r) {
    done = true;
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ec::Errc::not_found);
  });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Tape, CartridgeAffinitySkipsMount) {
  es::Simulation sim;
  auto cfg = fast_tape();
  cfg.drives = 1;
  est::TapeLibrary tape(sim, cfg);
  tape.store_on(est::FileObject::synthetic("a", 10'000'000), "cart-x");
  tape.store_on(est::FileObject::synthetic("b", 10'000'000), "cart-x");
  int done = 0;
  ec::SimTime finish = 0;
  auto cb = [&](ec::Result<est::FileObject> r) {
    ASSERT_TRUE(r.ok());
    ++done;
    finish = sim.now();
  };
  tape.stage("a", cb);
  tape.stage("b", cb);
  sim.run();
  EXPECT_EQ(done, 2);
  // First: mount 30 + seek 10 + read 1 = 41 s.  Second reuses the mounted
  // cartridge: seek 10 + read 1 = 11 s.  Total 52 s, one mount.
  EXPECT_EQ(finish, 52 * kSecond);
  EXPECT_EQ(tape.mounts(), 1u);
}

TEST(Tape, DrivesWorkInParallel) {
  es::Simulation sim;
  est::TapeLibrary tape(sim, fast_tape());  // 2 drives
  tape.store_on(est::FileObject::synthetic("a", 10'000'000), "cart-1");
  tape.store_on(est::FileObject::synthetic("b", 10'000'000), "cart-2");
  int done = 0;
  auto cb = [&](ec::Result<est::FileObject>) { ++done; };
  tape.stage("a", cb);
  tape.stage("b", cb);
  sim.run();
  EXPECT_EQ(done, 2);
  // Both staged concurrently: 41 s, not 82 s.
  EXPECT_EQ(sim.now(), 41 * kSecond);
}

TEST(Tape, QueueDrainsInOrder) {
  es::Simulation sim;
  auto cfg = fast_tape();
  cfg.drives = 1;
  est::TapeLibrary tape(sim, cfg);
  for (int i = 0; i < 4; ++i) {
    tape.store_on(est::FileObject::synthetic("f" + std::to_string(i),
                                             10'000'000),
                  "cart-" + std::to_string(i));
  }
  std::vector<std::string> completed;
  for (int i = 0; i < 4; ++i) {
    tape.stage("f" + std::to_string(i), [&, i](ec::Result<est::FileObject> r) {
      ASSERT_TRUE(r.ok());
      completed.push_back("f" + std::to_string(i));
    });
  }
  EXPECT_EQ(tape.queue_depth(), 3u);  // one dispatched immediately
  sim.run();
  EXPECT_EQ(completed,
            (std::vector<std::string>{"f0", "f1", "f2", "f3"}));
}

TEST(Tape, AutoCartridgeAssignmentGroupsFiles) {
  es::Simulation sim;
  est::TapeConfig cfg = fast_tape();
  cfg.files_per_cartridge = 2;
  cfg.drives = 1;  // single drive so mount counting is deterministic
  est::TapeLibrary tape(sim, cfg);
  for (int i = 0; i < 4; ++i) {
    tape.store(est::FileObject::synthetic("f" + std::to_string(i), 1000));
  }
  EXPECT_EQ(tape.file_count(), 4u);
  // Staging f0 then f1 (same cartridge) should need one mount; f2 a second.
  int done = 0;
  auto cb = [&](ec::Result<est::FileObject>) { ++done; };
  tape.stage("f0", cb);
  tape.stage("f1", cb);
  tape.stage("f2", cb);
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(tape.mounts(), 2u);
}
