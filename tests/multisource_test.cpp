// Tests for multi-source single-file fetch: range math, bit-exact
// reassembly, bandwidth aggregation across replica sites, and failover of
// a range to an alternate source.
#include <gtest/gtest.h>

#include "grid_fixture.hpp"
#include "gridftp/multisource.hpp"

namespace eg = esg::gridftp;
namespace ec = esg::common;
namespace est = esg::storage;
using ec::kSecond;
using esg::testing::MiniGrid;

namespace {

std::shared_ptr<const std::vector<std::uint8_t>> patterned(ec::Bytes n) {
  auto data = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < data->size(); ++i) {
    (*data)[i] = static_cast<std::uint8_t>((i * 11400714819323198485ull) >> 56);
  }
  return data;
}

eg::MultiSourceResult run_get(MiniGrid& grid, std::vector<eg::FtpUrl> urls,
                              eg::MultiSourceOptions opts = {}) {
  bool done = false;
  eg::MultiSourceResult result;
  eg::multi_source_get(*grid.client, std::move(urls), "assembled", opts,
                       [&](eg::MultiSourceResult r) {
                         result = std::move(r);
                         done = true;
                       });
  grid.sim.run_while_pending([&] { return done; });
  return result;
}

}  // namespace

TEST(MultiSource, ReassemblesBitExactlyFromThreeSites) {
  MiniGrid grid({"lbnl", "isi", "ncar"});
  auto data = patterned(3'000'001);  // odd size: uneven final range
  for (const char* host : {"lbnl.host", "isi.host", "ncar.host"}) {
    ASSERT_TRUE(grid.servers.at(host)
                    ->storage()
                    .put(est::FileObject::with_content("f.bin", data))
                    .ok());
  }
  auto result = run_get(grid, {{"lbnl.host", "f.bin"},
                               {"isi.host", "f.bin"},
                               {"ncar.host", "f.bin"}});
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_EQ(result.sources, 3);
  EXPECT_EQ(result.file_size, 3'000'001);
  EXPECT_EQ(result.bytes_transferred, 3'000'001);
  auto local = grid.client->local_storage().get("assembled");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(local->content);
  EXPECT_EQ(*local->content, *data);
  // Range temporaries cleaned up.
  EXPECT_EQ(grid.client->local_storage().file_count(), 1u);
}

TEST(MultiSource, AggregatesBandwidthAcrossSiteUplinks) {
  // Each site's uplink is 100 Mb/s; three sources together approach 300.
  auto run = [](std::size_t max_sources) {
    MiniGrid grid({"lbnl", "isi", "ncar"}, ec::mbps(100));
    // Fatten the shared client uplink so sites are the bottleneck.
    grid.net.fluid().set_capacity(
        grid.net.find_link("client-uplink")->backward(), ec::gbps(1));
    grid.net.fluid().set_capacity(
        grid.net.find_link("client-uplink")->forward(), ec::gbps(1));
    for (const char* host : {"lbnl.host", "isi.host", "ncar.host"}) {
      (void)grid.servers.at(host)->storage().put(
          est::FileObject::synthetic("big", 150'000'000));
    }
    eg::MultiSourceOptions opts;
    opts.max_sources = max_sources;
    opts.transfer.buffer_size = 2 * ec::kMiB;
    const auto t0 = grid.sim.now();
    auto result = run_get(grid,
                          {{"lbnl.host", "big"},
                           {"isi.host", "big"},
                           {"ncar.host", "big"}},
                          opts);
    EXPECT_TRUE(result.status.ok());
    return ec::to_seconds(grid.sim.now() - t0);
  };
  const double single = run(1);
  const double triple = run(3);
  EXPECT_GT(single, 2.2 * triple);  // ~3x aggregate from 3 sources
  EXPECT_LT(single, 4.0 * triple);
}

TEST(MultiSource, RangeFailsOverToAlternateReplica) {
  MiniGrid grid({"lbnl", "isi"});
  auto data = patterned(40'000'000);
  for (const char* host : {"lbnl.host", "isi.host"}) {
    ASSERT_TRUE(grid.servers.at(host)
                    ->storage()
                    .put(est::FileObject::with_content("f", data))
                    .ok());
  }
  // Kill isi shortly after the transfer starts; its range must restart
  // against lbnl and the file still assembles bit-exactly.
  grid.sim.schedule_at(500 * ec::kMillisecond, [&] {
    grid.net.set_host_down(*grid.net.find_host("isi.host"), true);
  });
  eg::MultiSourceOptions opts;
  opts.transfer.stall_timeout = 3 * kSecond;
  opts.reliability.retry_backoff = kSecond;
  auto result = run_get(grid, {{"lbnl.host", "f"}, {"isi.host", "f"}}, opts);
  ASSERT_TRUE(result.status.ok()) << result.status.error().to_string();
  EXPECT_GT(result.total_attempts, 2);
  auto local = grid.client->local_storage().get("assembled");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*local->content, *data);
}

TEST(MultiSource, SmallFileUsesFewerSources) {
  MiniGrid grid({"lbnl", "isi", "ncar"});
  for (const char* host : {"lbnl.host", "isi.host", "ncar.host"}) {
    (void)grid.servers.at(host)->storage().put(
        est::FileObject::synthetic("tiny", 100'000));
  }
  auto result = run_get(grid, {{"lbnl.host", "tiny"},
                               {"isi.host", "tiny"},
                               {"ncar.host", "tiny"}});
  ASSERT_TRUE(result.status.ok());
  // 100 KB is below the per-source floor: one range only.
  EXPECT_EQ(result.sources, 1);
  EXPECT_EQ(result.bytes_transferred, 100'000);
}

TEST(MultiSource, MissingFileFails) {
  MiniGrid grid({"lbnl"});
  auto result = run_get(grid, {{"lbnl.host", "ghost"}});
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, ec::Errc::not_found);
}

TEST(MultiSource, NoReplicasRejected) {
  MiniGrid grid({"lbnl"});
  auto result = run_get(grid, {});
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.error().code, ec::Errc::invalid_argument);
}
