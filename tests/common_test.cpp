// Unit tests for the common module: units, results, strings, serialization,
// RNG determinism, statistics, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/bytebuf.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace ec = esg::common;

// ---------- units ----------

TEST(Units, RateConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(ec::to_mbps(ec::mbps(512.9)), 512.9);
  EXPECT_DOUBLE_EQ(ec::to_gbps(ec::gbps(1.55)), 1.55);
  EXPECT_DOUBLE_EQ(ec::mbps(1000.0), ec::gbps(1.0));
}

TEST(Units, TimeConversions) {
  EXPECT_EQ(ec::seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ec::to_seconds(ec::kHour), 3600.0);
  EXPECT_EQ(ec::milliseconds(20), 20 * ec::kMillisecond);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(ec::format_bytes(230'800'000'000LL), "230.8 GB");
  EXPECT_EQ(ec::format_bytes(2'000'000'000LL), "2.0 GB");
  EXPECT_EQ(ec::format_bytes(512), "512 B");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(ec::format_rate(ec::gbps(1.55)), "1.55 Gb/s");
  EXPECT_EQ(ec::format_rate(ec::mbps(512.9)), "512.9 Mb/s");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(ec::format_time(ec::kHour + 2 * ec::kMinute + 3 * ec::kSecond),
            "1h02m03.000s");
  EXPECT_EQ(ec::format_time(1'500 * ec::kMillisecond), "1.500s");
}

// ---------- result ----------

TEST(Result, ValueAndError) {
  ec::Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  ec::Result<int> err(ec::Error{ec::Errc::not_found, "missing"});
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ec::Errc::not_found);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, StatusVoid) {
  ec::Status st = ec::ok_status();
  EXPECT_TRUE(st.ok());
  ec::Status bad = ec::Error{ec::Errc::timed_out, "slow"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().to_string(), "timed_out: slow");
}

// ---------- strings ----------

TEST(Strings, SplitPreservesEmpty) {
  auto parts = ec::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitTrimmedDropsEmpty) {
  auto parts = ec::split_trimmed(" a , , b ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(ec::trim("  x  "), "x");
  EXPECT_EQ(ec::to_lower("GridFTP"), "gridftp");
  EXPECT_TRUE(ec::iequals("LDAP", "ldap"));
  EXPECT_FALSE(ec::iequals("LDAP", "ldaps"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(ec::starts_with("gsiftp://host/path", "gsiftp://"));
  EXPECT_TRUE(ec::ends_with("file.ncx", ".ncx"));
  EXPECT_FALSE(ec::starts_with("a", "ab"));
}

TEST(Strings, Join) {
  EXPECT_EQ(ec::join({"lc=co2-1998", "rc=esg"}, ","), "lc=co2-1998,rc=esg");
  EXPECT_EQ(ec::join({}, ","), "");
}

struct WildcardCase {
  const char* pattern;
  const char* text;
  bool match;
};

class WildcardTest : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(ec::wildcard_match(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, WildcardTest,
    ::testing::Values(
        WildcardCase{"*", "anything", true},
        WildcardCase{"", "", true},
        WildcardCase{"", "x", false},
        WildcardCase{"co2*", "co2.1998.ncx", true},
        WildcardCase{"*.ncx", "co2.1998.ncx", true},
        WildcardCase{"co2*1998*", "co2.jan.1998.ncx", true},
        WildcardCase{"co2*1999*", "co2.jan.1998.ncx", false},
        WildcardCase{"a*b*c", "abc", true},
        WildcardCase{"a*b*c", "axxbyyc", true},
        WildcardCase{"a*b*c", "acb", false}));

// ---------- bytebuf ----------

TEST(ByteBuf, RoundTripScalars) {
  ec::ByteWriter w;
  w.u8(7);
  w.u32(123456);
  w.i64(-99);
  w.f64(3.25);
  w.boolean(true);
  w.str("earth system grid");

  ec::ByteReader r(w.bytes());
  EXPECT_EQ(*r.u8(), 7);
  EXPECT_EQ(*r.u32(), 123456u);
  EXPECT_EQ(*r.i64(), -99);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.25);
  EXPECT_TRUE(*r.boolean());
  EXPECT_EQ(*r.str(), "earth system grid");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuf, RoundTripVectors) {
  ec::ByteWriter w;
  w.str_vec({"a", "bb", ""});
  w.f64_vec({1.0, -2.5});
  ec::ByteReader r(w.bytes());
  auto sv = r.str_vec();
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(sv->size(), 3u);
  EXPECT_EQ((*sv)[1], "bb");
  auto dv = r.f64_vec();
  ASSERT_TRUE(dv.ok());
  EXPECT_DOUBLE_EQ((*dv)[1], -2.5);
}

TEST(ByteBuf, TruncationIsError) {
  ec::ByteWriter w;
  w.u32(10);  // claims a 10-byte string follows
  ec::ByteReader r(w.bytes());
  auto s = r.str();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ec::Errc::protocol_error);
}

TEST(ByteBuf, Fnv1aStableAndSensitive) {
  const auto h1 = ec::fnv1a64("gridftp");
  EXPECT_EQ(h1, ec::fnv1a64("gridftp"));
  EXPECT_NE(h1, ec::fnv1a64("gridftq"));
}

// ---------- rng ----------

TEST(Rng, DeterministicFromSeed) {
  ec::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  ec::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  ec::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  ec::Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, NormalMoments) {
  ec::Rng r(99);
  ec::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  ec::Rng parent(5);
  ec::Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

// ---------- stats ----------

TEST(OnlineStats, MeanVarMinMax) {
  ec::OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Quantile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(esg::common::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(esg::common::quantile(v, 1.0), 10.0);
  EXPECT_NEAR(esg::common::quantile(v, 0.5), 6.0, 1.0);
}

TEST(SlidingWindow, EvictsOldest) {
  ec::SlidingWindow w(3);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.push(v);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.last(), 4.0);
}

TEST(SlidingWindow, Median) {
  ec::SlidingWindow w(5);
  for (double v : {5.0, 1.0, 9.0}) w.push(v);
  EXPECT_DOUBLE_EQ(w.median(), 5.0);
  w.push(7.0);
  EXPECT_DOUBLE_EQ(w.median(), 6.0);  // even count: average of middle two
}

// ---------- bandwidth sampler ----------

TEST(BandwidthSampler, ConstantRate) {
  ec::BandwidthSampler s(100 * ec::kMillisecond);
  // 10 MB/s for 10 seconds, recorded every 100 ms.
  for (int i = 0; i < 100; ++i) {
    s.record(i * 100 * ec::kMillisecond, 1'000'000);
  }
  EXPECT_EQ(s.total_bytes(), 100'000'000);
  EXPECT_NEAR(s.peak_rate(ec::kSecond), 1e7, 1e5);
  EXPECT_NEAR(s.average_rate(0, 10 * ec::kSecond), 1e7, 1e5);
}

TEST(BandwidthSampler, PeakExceedsSustained) {
  ec::BandwidthSampler s(100 * ec::kMillisecond);
  // One hot second inside a quiet minute.
  for (int i = 0; i < 600; ++i) {
    const ec::Bytes b = (i >= 300 && i < 310) ? 10'000'000 : 100'000;
    s.record(i * 100 * ec::kMillisecond, b);
  }
  const double peak1s = s.peak_rate(ec::kSecond);
  const double avg = s.average_rate(0, 60 * ec::kSecond);
  // Hot second: 100 MB/s; hour average ~2.65 MB/s -> ratio ~37x.
  EXPECT_GT(peak1s, 30.0 * avg);
}

TEST(BandwidthSampler, SeriesShape) {
  ec::BandwidthSampler s(ec::kSecond);
  s.record(0, 1000);
  s.record(5 * ec::kSecond, 2000);
  auto series = s.series();
  ASSERT_EQ(series.size(), 6u);
  EXPECT_DOUBLE_EQ(series[0].second, 1000.0);
  EXPECT_DOUBLE_EQ(series[1].second, 0.0);
  EXPECT_DOUBLE_EQ(series[5].second, 2000.0);
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsSubmittedTasks) {
  ec::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i].get(), i * i);
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(100);
  ec::ThreadPool::parallel_for(100, [&](std::size_t i) { hits[i]++; }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ec::ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

// ---------- log ----------

TEST(Log, SinkCapturesAndLevelFilters) {
  std::vector<std::string> lines;
  ec::set_log_sink([&lines](const std::string& l) { lines.push_back(l); });
  ec::set_global_log_level(ec::LogLevel::info);

  ec::Logger log("test");
  log.debug("hidden");
  log.info("visible ", 42);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[INFO] [test] visible 42"), std::string::npos);

  ec::set_global_log_level(ec::LogLevel::warn);
  ec::set_log_sink(nullptr);
}

TEST(Log, BoundClockStampsSimulatedTime) {
  std::vector<std::string> lines;
  ec::set_log_sink([&lines](const std::string& l) { lines.push_back(l); });
  ec::set_global_log_level(ec::LogLevel::info);

  ec::SimTime now = 90 * ec::kSecond + 500 * ec::kMillisecond;
  ec::Logger log("rm");
  log.bind_clock([&now] { return now; });
  log.info("transfer started");
  now += ec::kMinute;
  log.info("transfer complete");

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("[1m30.500s] ", 0), 0u) << lines[0];
  EXPECT_EQ(lines[1].rfind("[2m30.500s] ", 0), 0u) << lines[1];

  ec::set_global_log_level(ec::LogLevel::warn);
  ec::set_log_sink(nullptr);
}

TEST(Log, SinkAndLevelSwapsAreThreadSafe) {
  // Hammer set_log_sink()/set_global_log_level() against concurrent logging;
  // under the TSAN preset this is a data-race check, elsewhere a smoke test.
  std::atomic<bool> stop{false};
  std::atomic<int> delivered{0};
  std::thread writer([&] {
    ec::Logger log("hammer");
    while (!stop.load()) log.error("x");
  });
  for (int i = 0; i < 200; ++i) {
    ec::set_log_sink([&delivered](const std::string&) { ++delivered; });
    ec::set_global_log_level(i % 2 ? ec::LogLevel::error : ec::LogLevel::off);
  }
  stop.store(true);
  writer.join();
  ec::set_global_log_level(ec::LogLevel::warn);
  ec::set_log_sink(nullptr);
  EXPECT_GE(delivered.load(), 0);
}

// ---------- online stats: edges and merge ----------

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  ec::OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStats, MergeMatchesSequentialFeed) {
  ec::OnlineStats all, left, right;
  const double xs[] = {1.0, 4.0, 9.0, 16.0, 25.0, 36.0, 49.0};
  for (int i = 0; i < 7; ++i) {
    all.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.mean(), all.mean());
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeAfterResetAdoptsOther) {
  ec::OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  // Merging an empty set is a no-op.
  ec::OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

// ---------- bandwidth sampler: interval splitting ----------

TEST(BandwidthSampler, RecordIntervalSplitsAcrossBuckets) {
  ec::BandwidthSampler s(ec::kSecond);
  // 3000 bytes spread over exactly three 1 s buckets.
  s.record_interval(0, 3 * ec::kSecond, 3000);
  const auto series = s.series();
  ASSERT_EQ(series.size(), 3u);
  for (const auto& [t, rate] : series) {
    (void)t;
    EXPECT_DOUBLE_EQ(rate, 1000.0);  // bytes/s
  }
  EXPECT_EQ(s.total_bytes(), 3000);
}

TEST(BandwidthSampler, RecordIntervalPartialOverlapKeepsTotalExact) {
  ec::BandwidthSampler s(ec::kSecond);
  // 700 bytes over [0.5 s, 2.5 s): shares 175/350/175 by overlap.
  s.record_interval(500 * ec::kMillisecond,
                    2 * ec::kSecond + 500 * ec::kMillisecond, 700);
  const auto series = s.series();
  ASSERT_EQ(series.size(), 3u);
  ec::Bytes sum = 0;
  for (const auto& [t, rate] : series) {
    (void)t;
    sum += static_cast<ec::Bytes>(rate + 0.5);
  }
  EXPECT_EQ(sum, 700);
  EXPECT_EQ(s.total_bytes(), 700);
  EXPECT_DOUBLE_EQ(series[1].second, 350.0);  // the fully covered bucket
}

TEST(BandwidthSampler, RecordIntervalZeroLengthFallsBackToPoint) {
  ec::BandwidthSampler s(ec::kSecond);
  s.record_interval(5 * ec::kSecond, 5 * ec::kSecond, 400);
  EXPECT_EQ(s.total_bytes(), 400);
  const auto series = s.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].second, 400.0);
}

TEST(BandwidthSampler, RecordIntervalNonMonotoneClampsToEpoch) {
  ec::BandwidthSampler s(ec::kSecond);
  s.record(10 * ec::kSecond, 100);  // establishes origin at 10 s
  // A retried transfer replaying an earlier window must not underflow; the
  // pre-epoch portion lands in the first bucket.
  s.record_interval(8 * ec::kSecond, 11 * ec::kSecond, 300);
  EXPECT_EQ(s.total_bytes(), 400);
  const auto series = s.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].second, 400.0);
}
